//! `splice-applicative` — the applicative-language substrate for the
//! distributed-recovery reproduction (Lin & Keller, ICPP 1986).
//!
//! The paper assumes a Rediflow-style applicative system: programs are
//! purely functional, evaluation unfolds an implicit call tree of tasks, and
//! a task is completely described by a packet holding a function id and
//! evaluated arguments. This crate provides that substrate:
//!
//! * [`ast`] — combinator programs and expressions;
//! * [`value`] — immutable, hashable runtime values;
//! * [`prim`] — strict local primitives;
//! * [`eval`] — the recursive *reference* evaluator defining the semantics;
//! * [`wave`] — the suspendable *wave* evaluator tasks run on processors,
//!   whose demands are the paper's `DEMAND_IT` spawn points;
//! * [`parser`] / [`pretty`] — surface syntax in and out;
//! * [`calltree`] — call-tree shape analysis of a reference run;
//! * [`programs`] — the workload library used across experiments.
//!
//! Determinacy (§2.1 of the paper) is the load-bearing property: any
//! activation of the same task packet yields the same result. In this crate
//! that is a theorem about [`wave`] vs [`eval`], and the repository's
//! property tests check it end-to-end through the distributed machines.

#![warn(missing_docs)]

pub mod ast;
pub mod calltree;
pub mod env;
pub mod error;
pub mod eval;
pub mod fxhash;
pub mod parser;
pub mod pretty;
pub mod prim;
pub mod programs;
pub mod value;
pub mod wave;

/// Maximum list length `range` will materialize; guards experiments against
/// accidentally huge values.
pub const MAX_RANGE_LEN: usize = 1 << 20;

pub use ast::{Expr, FnDef, FnId, Program};
pub use error::EvalError;
pub use eval::{eval_call, Budget};
pub use fxhash::{FxHashMap, FxHashSet};
pub use programs::Workload;
pub use value::Value;
pub use wave::{Demand, FramePool, TaskEval, WaveResult};
