//! Call-tree analysis.
//!
//! "The evaluation of an applicative program generates an implicit call tree.
//! The result of the root task is the answer of the program." (§1)
//!
//! This module reconstructs that tree from an instrumented reference
//! evaluation and summarizes its shape. Experiment reports use these shapes
//! to characterize workloads (wide/shallow vs. deep/narrow trees stress the
//! recovery algorithms differently), and tests use them to validate that the
//! distributed machine unfolds the same tree the semantics prescribe.

use crate::ast::{FnId, Program};
use crate::error::EvalError;
use crate::eval::{eval_call_with, Budget, CallObserver};
use crate::value::Value;
use std::collections::HashMap;

/// Shape statistics of a call tree.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Total number of tasks (function applications), including the root.
    pub tasks: u64,
    /// Number of leaf tasks (applications that spawn no children).
    pub leaves: u64,
    /// Maximum call depth (root = depth 0).
    pub max_depth: usize,
    /// Maximum number of children any single task spawned.
    pub max_fanout: usize,
    /// Tasks per call depth, indexed by depth.
    pub per_level: Vec<u64>,
    /// Applications per combinator.
    pub per_fn: HashMap<FnId, u64>,
}

impl TreeStats {
    /// Average branching factor over interior nodes.
    pub fn avg_fanout(&self) -> f64 {
        let interior = self.tasks.saturating_sub(self.leaves);
        if interior == 0 {
            0.0
        } else {
            // Every non-root task is somebody's child.
            (self.tasks - 1) as f64 / interior as f64
        }
    }
}

struct StatsObserver {
    stats: TreeStats,
    // Children spawned by each frame of the current call stack.
    stack: Vec<usize>,
}

impl CallObserver for StatsObserver {
    fn on_call(&mut self, f: FnId, _args: &[Value], depth: usize) {
        self.stats.tasks += 1;
        if let Some(parent) = self.stack.last_mut() {
            *parent += 1;
        }
        self.stack.push(0);
        self.stats.max_depth = self.stats.max_depth.max(depth);
        if self.stats.per_level.len() <= depth {
            self.stats.per_level.resize(depth + 1, 0);
        }
        self.stats.per_level[depth] += 1;
        *self.stats.per_fn.entry(f).or_insert(0) += 1;
    }

    fn on_return(&mut self, _f: FnId, _value: &Value, _depth: usize) {
        let children = self.stack.pop().expect("balanced call/return");
        if children == 0 {
            self.stats.leaves += 1;
        }
        self.stats.max_fanout = self.stats.max_fanout.max(children);
    }
}

/// Evaluates `f(args)` by reference semantics and returns the value together
/// with the call tree's shape statistics.
pub fn analyze(
    prog: &Program,
    f: FnId,
    args: &[Value],
    budget: Budget,
) -> Result<(Value, TreeStats), EvalError> {
    let mut obs = StatsObserver {
        stats: TreeStats::default(),
        stack: Vec::new(),
    };
    let value = eval_call_with(prog, f, args, budget, &mut obs)?;
    debug_assert!(obs.stack.is_empty());
    Ok((value, obs.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr;
    use crate::prim::PrimOp;

    fn fib_program() -> (Program, FnId) {
        let mut p = Program::new();
        let fib = p.declare("fib");
        p.define(
            "fib",
            &["n"],
            Expr::if_(
                Expr::Prim(PrimOp::Lt, vec![Expr::var("n"), Expr::int(2)]),
                Expr::var("n"),
                Expr::Prim(
                    PrimOp::Add,
                    vec![
                        Expr::Call(
                            fib,
                            vec![Expr::Prim(PrimOp::Sub, vec![Expr::var("n"), Expr::int(1)])],
                        ),
                        Expr::Call(
                            fib,
                            vec![Expr::Prim(PrimOp::Sub, vec![Expr::var("n"), Expr::int(2)])],
                        ),
                    ],
                ),
            ),
        );
        (p, fib)
    }

    #[test]
    fn fib_tree_shape() {
        let (p, fib) = fib_program();
        let (v, stats) = analyze(&p, fib, &[10.into()], Budget::default()).unwrap();
        assert_eq!(v, Value::Int(55));
        // Number of calls for fib(n) is 2*fib(n+1)-1 = 2*89-1 = 177.
        assert_eq!(stats.tasks, 177);
        assert_eq!(stats.max_fanout, 2);
        assert_eq!(stats.max_depth, 9); // fib(10)→fib(9)→…→fib(1)
        assert_eq!(stats.per_level[0], 1);
        assert_eq!(stats.per_level[1], 2);
        assert_eq!(stats.per_fn[&fib], 177);
        assert_eq!(stats.per_level.iter().sum::<u64>(), stats.tasks);
        assert!(stats.avg_fanout() > 1.0 && stats.avg_fanout() <= 2.0);
    }

    #[test]
    fn leaf_only_tree() {
        let mut p = Program::new();
        let f = p.define("f", &[], Expr::int(1));
        let (_, stats) = analyze(&p, f, &[], Budget::default()).unwrap();
        assert_eq!(stats.tasks, 1);
        assert_eq!(stats.leaves, 1);
        assert_eq!(stats.max_depth, 0);
        assert_eq!(stats.max_fanout, 0);
        assert_eq!(stats.avg_fanout(), 0.0);
    }

    #[test]
    fn linear_chain_tree() {
        let mut p = Program::new();
        let f = p.declare("count");
        p.define(
            "count",
            &["n"],
            Expr::if_(
                Expr::Prim(PrimOp::Le, vec![Expr::var("n"), Expr::int(0)]),
                Expr::int(0),
                Expr::Call(
                    f,
                    vec![Expr::Prim(PrimOp::Sub, vec![Expr::var("n"), Expr::int(1)])],
                ),
            ),
        );
        let (_, stats) = analyze(&p, f, &[8.into()], Budget::default()).unwrap();
        assert_eq!(stats.tasks, 9);
        assert_eq!(stats.leaves, 1);
        assert_eq!(stats.max_depth, 8);
        assert_eq!(stats.max_fanout, 1);
    }
}
