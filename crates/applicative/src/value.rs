//! Runtime values of the applicative language.
//!
//! Values are immutable and cheaply clonable (lists are `Arc`-shared), which
//! mirrors the paper's model: task packets and result packets carry values
//! between processors, and referential transparency means a value can be
//! copied freely without any notion of identity.
//!
//! There are deliberately no floats: values must implement `Eq + Hash` so
//! that `(function, arguments)` can key the within-task call cache (see
//! [`crate::wave`]).

use std::fmt;
use std::sync::Arc;

/// An immutable value of the applicative language.
///
/// The `Ord` implementation is structural (variant order, then payload); it
/// exists so protocol components can break ties deterministically (e.g.
/// plurality fallback in replica voting), not as a language-level ordering.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// The unit value, written `()`.
    Unit,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// An immutable string (used by word-count style workloads).
    Str(Arc<str>),
    /// An immutable list. Lists are heterogeneous; tuples are encoded as
    /// short lists.
    List(Arc<[Value]>),
}

impl Value {
    /// Convenience constructor for a list value.
    pub fn list<I: IntoIterator<Item = Value>>(items: I) -> Value {
        Value::List(items.into_iter().collect::<Vec<_>>().into())
    }

    /// Convenience constructor for an integer list.
    pub fn ints<I: IntoIterator<Item = i64>>(items: I) -> Value {
        Value::list(items.into_iter().map(Value::Int))
    }

    /// Convenience constructor for a string value.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the list payload, if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(xs) => Some(xs),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Unit => "unit",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Str(_) => "str",
            Value::List(_) => "list",
        }
    }

    /// Structural size of the value: number of scalar leaves, counting list
    /// spines. Used by the simulator's cost model to charge for message
    /// payloads and checkpoint storage.
    pub fn size(&self) -> usize {
        match self {
            Value::List(xs) => 1 + xs.iter().map(Value::size).sum::<usize>(),
            _ => 1,
        }
    }

    /// Truthiness for `if`: only booleans are conditions; anything else is a
    /// type error handled by the evaluator, so this is a checked conversion.
    pub fn truthy(&self) -> Option<bool> {
        self.as_bool()
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(true) => write!(f, "#t"),
            Value::Bool(false) => write!(f, "#f"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::List(xs) => {
                write!(f, "(list")?;
                for x in xs.iter() {
                    write!(f, " {x}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Value::Unit.to_string(), "()");
        assert_eq!(Value::Bool(true).to_string(), "#t");
        assert_eq!(Value::Bool(false).to_string(), "#f");
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::str("hi").to_string(), "\"hi\"");
        assert_eq!(Value::ints([1, 2]).to_string(), "(list 1 2)");
    }

    #[test]
    fn nested_list_display() {
        let v = Value::list([Value::ints([1]), Value::Unit]);
        assert_eq!(v.to_string(), "(list (list 1) ())");
    }

    #[test]
    fn size_counts_leaves_and_spines() {
        assert_eq!(Value::Int(3).size(), 1);
        assert_eq!(Value::ints([1, 2, 3]).size(), 4);
        let nested = Value::list([Value::ints([1, 2]), Value::Int(9)]);
        assert_eq!(nested.size(), 1 + 3 + 1);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(4).as_int(), Some(4));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(4).as_bool(), None);
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert!(Value::ints([1]).as_list().is_some());
        assert_eq!(Value::Unit.type_name(), "unit");
    }

    #[test]
    fn eq_and_hash_are_structural() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::ints([1, 2]));
        assert!(set.contains(&Value::ints([1, 2])));
        assert!(!set.contains(&Value::ints([2, 1])));
    }
}
