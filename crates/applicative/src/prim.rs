//! Strict primitive operations.
//!
//! Primitives execute *locally inside a task* — they never spawn children and
//! never suspend. Only user-combinator calls ([`crate::ast::Expr::Call`])
//! create tasks. Keeping primitives strict and total (over well-typed input)
//! preserves the paper's determinacy assumption.

use crate::error::EvalError;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// A primitive operator. Variant names mirror their surface syntax (see
/// [`PrimOp::name`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum PrimOp {
    // arithmetic
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Neg,
    Min,
    Max,
    // comparison (ints and strings)
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    // boolean (strict, non-short-circuiting; use `if` to guard recursion)
    And,
    Or,
    Not,
    // lists
    Cons,
    Head,
    Tail,
    IsEmpty,
    Len,
    Nth,
    Append,
    Reverse,
    Range,
    Take,
    Drop,
    MakeList,
    // strings
    StrCat,
    StrLen,
}

impl PrimOp {
    /// The surface-syntax name of the operator (used by the parser and
    /// pretty-printer).
    pub fn name(self) -> &'static str {
        use PrimOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Mod => "%",
            Neg => "neg",
            Min => "min",
            Max => "max",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            Eq => "=",
            Ne => "!=",
            And => "and",
            Or => "or",
            Not => "not",
            Cons => "cons",
            Head => "head",
            Tail => "tail",
            IsEmpty => "empty?",
            Len => "len",
            Nth => "nth",
            Append => "append",
            Reverse => "reverse",
            Range => "range",
            Take => "take",
            Drop => "drop",
            MakeList => "list",
            StrCat => "str-cat",
            StrLen => "str-len",
        }
    }

    /// Parses a surface name back to an operator.
    pub fn from_name(name: &str) -> Option<PrimOp> {
        use PrimOp::*;
        Some(match name {
            "+" => Add,
            "-" => Sub,
            "*" => Mul,
            "/" => Div,
            "%" => Mod,
            "neg" => Neg,
            "min" => Min,
            "max" => Max,
            "<" => Lt,
            "<=" => Le,
            ">" => Gt,
            ">=" => Ge,
            "=" => Eq,
            "!=" => Ne,
            "and" => And,
            "or" => Or,
            "not" => Not,
            "cons" => Cons,
            "head" => Head,
            "tail" => Tail,
            "empty?" => IsEmpty,
            "len" => Len,
            "nth" => Nth,
            "append" => Append,
            "reverse" => Reverse,
            "range" => Range,
            "take" => Take,
            "drop" => Drop,
            "list" => MakeList,
            "str-cat" => StrCat,
            "str-len" => StrLen,
            _ => return None,
        })
    }

    /// The operator's arity, or `None` if variadic (`list`).
    pub fn arity(self) -> Option<usize> {
        use PrimOp::*;
        Some(match self {
            Neg | Not | Head | Tail | IsEmpty | Len | Reverse | StrLen => 1,
            Add | Sub | Mul | Div | Mod | Min | Max | Lt | Le | Gt | Ge | Eq | Ne | And | Or
            | Cons | Nth | Append | Range | Take | Drop | StrCat => 2,
            MakeList => return None,
        })
    }

    /// Binary fast path: applies the operator to two by-value arguments.
    /// Integer/boolean pairs skip the slice walk, arity re-check and error
    /// closures of [`PrimOp::apply`] — this is the wave walker's inner
    /// loop. Anything else (list/string payloads, arity misuse) falls back
    /// to `apply`, so the two paths agree on every input.
    #[inline]
    pub fn apply2(self, a: Value, b: Value) -> Result<Value, EvalError> {
        use PrimOp::*;
        match (&a, &b) {
            (Value::Int(x), Value::Int(y)) => {
                let (x, y) = (*x, *y);
                Ok(match self {
                    Add => Value::Int(x.wrapping_add(y)),
                    Sub => Value::Int(x.wrapping_sub(y)),
                    Mul => Value::Int(x.wrapping_mul(y)),
                    Div if y != 0 => Value::Int(x.wrapping_div(y)),
                    Mod if y != 0 => Value::Int(x.wrapping_rem(y)),
                    Min => Value::Int(x.min(y)),
                    Max => Value::Int(x.max(y)),
                    Lt => Value::Bool(x < y),
                    Le => Value::Bool(x <= y),
                    Gt => Value::Bool(x > y),
                    Ge => Value::Bool(x >= y),
                    Eq => Value::Bool(x == y),
                    Ne => Value::Bool(x != y),
                    _ => return self.apply(&[a, b]),
                })
            }
            (Value::Bool(x), Value::Bool(y)) => {
                let (x, y) = (*x, *y);
                Ok(match self {
                    And => Value::Bool(x && y),
                    Or => Value::Bool(x || y),
                    Eq => Value::Bool(x == y),
                    Ne => Value::Bool(x != y),
                    _ => return self.apply(&[a, b]),
                })
            }
            _ => self.apply(&[a, b]),
        }
    }

    /// Applies the operator to evaluated arguments.
    pub fn apply(self, args: &[Value]) -> Result<Value, EvalError> {
        use PrimOp::*;
        if let Some(a) = self.arity() {
            if args.len() != a {
                return Err(EvalError::PrimArity {
                    op: self,
                    expected: a,
                    got: args.len(),
                });
            }
        }
        let int = |v: &Value| -> Result<i64, EvalError> {
            v.as_int()
                .ok_or_else(|| EvalError::type_error(self, "int", v))
        };
        let boolean = |v: &Value| -> Result<bool, EvalError> {
            v.as_bool()
                .ok_or_else(|| EvalError::type_error(self, "bool", v))
        };
        fn list_of(op: PrimOp, v: &Value) -> Result<&[Value], EvalError> {
            v.as_list()
                .ok_or_else(|| EvalError::type_error(op, "list", v))
        }

        Ok(match self {
            Add => Value::Int(int(&args[0])?.wrapping_add(int(&args[1])?)),
            Sub => Value::Int(int(&args[0])?.wrapping_sub(int(&args[1])?)),
            Mul => Value::Int(int(&args[0])?.wrapping_mul(int(&args[1])?)),
            Div => {
                let d = int(&args[1])?;
                if d == 0 {
                    return Err(EvalError::DivByZero);
                }
                Value::Int(int(&args[0])?.wrapping_div(d))
            }
            Mod => {
                let d = int(&args[1])?;
                if d == 0 {
                    return Err(EvalError::DivByZero);
                }
                Value::Int(int(&args[0])?.wrapping_rem(d))
            }
            Neg => Value::Int(int(&args[0])?.wrapping_neg()),
            Min => Value::Int(int(&args[0])?.min(int(&args[1])?)),
            Max => Value::Int(int(&args[0])?.max(int(&args[1])?)),
            Lt => Value::Bool(int(&args[0])? < int(&args[1])?),
            Le => Value::Bool(int(&args[0])? <= int(&args[1])?),
            Gt => Value::Bool(int(&args[0])? > int(&args[1])?),
            Ge => Value::Bool(int(&args[0])? >= int(&args[1])?),
            Eq => Value::Bool(args[0] == args[1]),
            Ne => Value::Bool(args[0] != args[1]),
            And => Value::Bool(boolean(&args[0])? && boolean(&args[1])?),
            Or => Value::Bool(boolean(&args[0])? || boolean(&args[1])?),
            Not => Value::Bool(!boolean(&args[0])?),
            Cons => {
                let tail = list_of(self, &args[1])?;
                let mut out = Vec::with_capacity(tail.len() + 1);
                out.push(args[0].clone());
                out.extend_from_slice(tail);
                Value::List(out.into())
            }
            Head => {
                let xs = list_of(self, &args[0])?;
                xs.first().cloned().ok_or(EvalError::EmptyList(self))?
            }
            Tail => {
                let xs = list_of(self, &args[0])?;
                if xs.is_empty() {
                    return Err(EvalError::EmptyList(self));
                }
                Value::List(xs[1..].to_vec().into())
            }
            IsEmpty => Value::Bool(list_of(self, &args[0])?.is_empty()),
            Len => Value::Int(list_of(self, &args[0])?.len() as i64),
            Nth => {
                let xs = list_of(self, &args[0])?;
                let i = int(&args[1])?;
                if i < 0 || i as usize >= xs.len() {
                    return Err(EvalError::IndexOutOfBounds {
                        index: i,
                        len: xs.len(),
                    });
                }
                xs[i as usize].clone()
            }
            Append => {
                let a = list_of(self, &args[0])?;
                let b = list_of(self, &args[1])?;
                let mut out = Vec::with_capacity(a.len() + b.len());
                out.extend_from_slice(a);
                out.extend_from_slice(b);
                Value::List(out.into())
            }
            Reverse => {
                let xs = list_of(self, &args[0])?;
                Value::List(xs.iter().rev().cloned().collect::<Vec<_>>().into())
            }
            Range => {
                let lo = int(&args[0])?;
                let hi = int(&args[1])?;
                if hi < lo {
                    Value::List(Vec::new().into())
                } else if (hi - lo) as usize > crate::MAX_RANGE_LEN {
                    return Err(EvalError::RangeTooLong { lo, hi });
                } else {
                    Value::List((lo..hi).map(Value::Int).collect::<Vec<_>>().into())
                }
            }
            Take => {
                let xs = list_of(self, &args[0])?;
                let n = int(&args[1])?.max(0) as usize;
                Value::List(xs[..n.min(xs.len())].to_vec().into())
            }
            Drop => {
                let xs = list_of(self, &args[0])?;
                let n = int(&args[1])?.max(0) as usize;
                Value::List(xs[n.min(xs.len())..].to_vec().into())
            }
            MakeList => Value::List(args.to_vec().into()),
            StrCat => {
                let a = args[0]
                    .as_str()
                    .ok_or_else(|| EvalError::type_error(self, "str", &args[0]))?;
                let b = args[1]
                    .as_str()
                    .ok_or_else(|| EvalError::type_error(self, "str", &args[1]))?;
                Value::Str(Arc::from(format!("{a}{b}").as_str()))
            }
            StrLen => {
                let s = args[0]
                    .as_str()
                    .ok_or_else(|| EvalError::type_error(self, "str", &args[0]))?;
                Value::Int(s.len() as i64)
            }
        })
    }
}

impl fmt::Display for PrimOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(op: PrimOp, args: &[Value]) -> Value {
        op.apply(args).unwrap()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(ok(PrimOp::Add, &[3.into(), 4.into()]), 7.into());
        assert_eq!(ok(PrimOp::Sub, &[3.into(), 4.into()]), Value::Int(-1));
        assert_eq!(ok(PrimOp::Mul, &[3.into(), 4.into()]), 12.into());
        assert_eq!(ok(PrimOp::Div, &[9.into(), 2.into()]), 4.into());
        assert_eq!(ok(PrimOp::Mod, &[9.into(), 2.into()]), 1.into());
        assert_eq!(ok(PrimOp::Neg, &[9.into()]), Value::Int(-9));
        assert_eq!(ok(PrimOp::Min, &[9.into(), 2.into()]), 2.into());
        assert_eq!(ok(PrimOp::Max, &[9.into(), 2.into()]), 9.into());
    }

    #[test]
    fn division_by_zero() {
        assert!(matches!(
            PrimOp::Div.apply(&[1.into(), 0.into()]),
            Err(EvalError::DivByZero)
        ));
        assert!(matches!(
            PrimOp::Mod.apply(&[1.into(), 0.into()]),
            Err(EvalError::DivByZero)
        ));
    }

    #[test]
    fn comparisons() {
        assert_eq!(ok(PrimOp::Lt, &[1.into(), 2.into()]), true.into());
        assert_eq!(ok(PrimOp::Ge, &[2.into(), 2.into()]), true.into());
        assert_eq!(
            ok(PrimOp::Eq, &[Value::ints([1]), Value::ints([1])]),
            true.into()
        );
        assert_eq!(ok(PrimOp::Ne, &[Value::Unit, Value::Int(0)]), true.into());
    }

    #[test]
    fn booleans_are_strict_but_total() {
        assert_eq!(ok(PrimOp::And, &[true.into(), false.into()]), false.into());
        assert_eq!(ok(PrimOp::Or, &[true.into(), false.into()]), true.into());
        assert_eq!(ok(PrimOp::Not, &[false.into()]), true.into());
        assert!(PrimOp::And.apply(&[Value::Int(1), true.into()]).is_err());
    }

    #[test]
    fn list_ops() {
        let xs = Value::ints([1, 2, 3]);
        assert_eq!(ok(PrimOp::Head, std::slice::from_ref(&xs)), 1.into());
        assert_eq!(
            ok(PrimOp::Tail, std::slice::from_ref(&xs)),
            Value::ints([2, 3])
        );
        assert_eq!(ok(PrimOp::Len, std::slice::from_ref(&xs)), 3.into());
        assert_eq!(ok(PrimOp::IsEmpty, &[Value::ints([])]), true.into());
        assert_eq!(ok(PrimOp::Nth, &[xs.clone(), 2.into()]), 3.into());
        assert_eq!(
            ok(PrimOp::Cons, &[0.into(), xs.clone()]),
            Value::ints([0, 1, 2, 3])
        );
        assert_eq!(
            ok(PrimOp::Append, &[Value::ints([1]), Value::ints([2])]),
            Value::ints([1, 2])
        );
        assert_eq!(
            ok(PrimOp::Reverse, std::slice::from_ref(&xs)),
            Value::ints([3, 2, 1])
        );
        assert_eq!(
            ok(PrimOp::Range, &[0.into(), 3.into()]),
            Value::ints([0, 1, 2])
        );
        assert_eq!(ok(PrimOp::Range, &[3.into(), 0.into()]), Value::ints([]));
        assert_eq!(
            ok(PrimOp::Take, &[xs.clone(), 2.into()]),
            Value::ints([1, 2])
        );
        assert_eq!(ok(PrimOp::Drop, &[xs.clone(), 2.into()]), Value::ints([3]));
        assert_eq!(
            ok(PrimOp::MakeList, &[1.into(), true.into()]),
            Value::list([1.into(), true.into()])
        );
    }

    #[test]
    fn list_errors() {
        assert!(matches!(
            PrimOp::Head.apply(&[Value::ints([])]),
            Err(EvalError::EmptyList(_))
        ));
        assert!(matches!(
            PrimOp::Nth.apply(&[Value::ints([1]), 5.into()]),
            Err(EvalError::IndexOutOfBounds { .. })
        ));
        assert!(PrimOp::Head.apply(&[Value::Int(1)]).is_err());
    }

    #[test]
    fn string_ops() {
        assert_eq!(
            ok(PrimOp::StrCat, &[Value::str("ab"), Value::str("cd")]),
            Value::str("abcd")
        );
        assert_eq!(ok(PrimOp::StrLen, &[Value::str("abc")]), 3.into());
    }

    #[test]
    fn arity_errors() {
        assert!(matches!(
            PrimOp::Add.apply(&[1.into()]),
            Err(EvalError::PrimArity { .. })
        ));
    }

    #[test]
    fn name_round_trip() {
        use PrimOp::*;
        for op in [
            Add, Sub, Mul, Div, Mod, Neg, Min, Max, Lt, Le, Gt, Ge, Eq, Ne, And, Or, Not, Cons,
            Head, Tail, IsEmpty, Len, Nth, Append, Reverse, Range, Take, Drop, MakeList, StrCat,
            StrLen,
        ] {
            assert_eq!(PrimOp::from_name(op.name()), Some(op), "{op:?}");
        }
        assert_eq!(PrimOp::from_name("no-such-op"), None);
    }

    #[test]
    fn range_guard() {
        let r = PrimOp::Range.apply(&[0.into(), Value::Int(100_000_000)]);
        assert!(matches!(r, Err(EvalError::RangeTooLong { .. })));
    }

    #[test]
    fn wrapping_semantics_do_not_panic() {
        assert_eq!(
            ok(PrimOp::Add, &[i64::MAX.into(), 1.into()]),
            Value::Int(i64::MIN)
        );
        assert_eq!(ok(PrimOp::Neg, &[i64::MIN.into()]), Value::Int(i64::MIN));
    }
}
