//! Workload library: the functional programs used by examples, tests and the
//! experiment harness.
//!
//! Each workload is a [`Program`] plus an entry application. The suite is
//! chosen to cover the call-tree shapes that stress the recovery algorithms
//! differently:
//!
//! | workload   | tree shape                                        |
//! |------------|---------------------------------------------------|
//! | fib        | binary, exponentially wide, shallow bodies        |
//! | binomial   | binary, Pascal-triangle overlap (no sharing here) |
//! | dcsum      | perfectly balanced binary tree                    |
//! | mapreduce  | balanced splitter with tunable leaf work          |
//! | tak        | ternary with nested (two-wave) recursion          |
//! | ackermann  | deep nested recursion, long dependency chains     |
//! | quicksort  | data-dependent, multi-wave, linear filter chains  |
//! | nqueens    | irregular fanout, calls inside `if` conditions    |
//! | poly       | binary tree + power-by-squaring chains            |
//! | mergesort  | balanced split with linear merge chains           |
//! | matvec     | wide row fanout with dot-product chains           |
//!
//! All programs are written in surface syntax and parsed, which keeps the
//! parser honest and the sources readable.

mod sources;

use crate::ast::{FnId, Program};
use crate::calltree::{analyze, TreeStats};
use crate::error::EvalError;
use crate::eval::{eval_call_with, Budget, NoObserver};
use crate::parser::parse;
use crate::value::Value;

/// A named program plus entry application — everything needed to run an
/// experiment.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Workload name, e.g. `fib(17)`.
    pub name: String,
    /// The program.
    pub program: Program,
    /// Entry combinator.
    pub entry: FnId,
    /// Entry arguments.
    pub args: Vec<Value>,
}

impl Workload {
    fn build(name: String, src: &str, entry: &str, args: Vec<Value>) -> Workload {
        let parsed = parse(src).unwrap_or_else(|e| panic!("workload `{name}`: {e}"));
        let problems = parsed.program.validate();
        assert!(problems.is_empty(), "workload `{name}`: {problems:?}");
        let entry = parsed
            .program
            .lookup(entry)
            .unwrap_or_else(|| panic!("workload `{name}`: no entry `{entry}`"));
        Workload {
            name,
            program: parsed.program,
            entry,
            args,
        }
    }

    /// Evaluates the workload by reference semantics.
    pub fn reference_result(&self) -> Result<Value, EvalError> {
        eval_call_with(
            &self.program,
            self.entry,
            &self.args,
            Budget::default(),
            &mut NoObserver,
        )
    }

    /// Reference result plus call-tree shape.
    pub fn analyze(&self) -> Result<(Value, TreeStats), EvalError> {
        analyze(&self.program, self.entry, &self.args, Budget::default())
    }

    /// Doubly recursive Fibonacci.
    pub fn fib(n: i64) -> Workload {
        Workload::build(format!("fib({n})"), sources::FIB, "fib", vec![n.into()])
    }

    /// Binomial coefficient by Pascal's rule.
    pub fn binomial(n: i64, k: i64) -> Workload {
        Workload::build(
            format!("binomial({n},{k})"),
            sources::BINOMIAL,
            "choose",
            vec![n.into(), k.into()],
        )
    }

    /// Divide-and-conquer sum of `lo..hi`: a perfectly balanced binary tree
    /// with `hi-lo` leaves.
    pub fn dcsum(lo: i64, hi: i64) -> Workload {
        Workload::build(
            format!("dcsum({lo},{hi})"),
            sources::DCSUM,
            "dsum",
            vec![lo.into(), hi.into()],
        )
    }

    /// Map `fib(work)` over `lo..hi` and sum: balanced splitter with tunable
    /// leaf cost. This is the "aggregate of processors" workload the paper's
    /// introduction motivates.
    pub fn mapreduce(lo: i64, hi: i64, work: i64) -> Workload {
        Workload::build(
            format!("mapreduce({lo},{hi},w={work})"),
            sources::MAPREDUCE,
            "mapred",
            vec![lo.into(), hi.into(), work.into()],
        )
    }

    /// The Takeuchi function.
    pub fn tak(x: i64, y: i64, z: i64) -> Workload {
        Workload::build(
            format!("tak({x},{y},{z})"),
            sources::TAK,
            "tak",
            vec![x.into(), y.into(), z.into()],
        )
    }

    /// Ackermann's function (keep `m <= 2` for sane sizes).
    pub fn ackermann(m: i64, n: i64) -> Workload {
        Workload::build(
            format!("ackermann({m},{n})"),
            sources::ACKERMANN,
            "ack",
            vec![m.into(), n.into()],
        )
    }

    /// Quicksort of a deterministically seeded pseudo-random integer list.
    pub fn quicksort(len: usize, seed: u64) -> Workload {
        let xs = lcg_list(len, seed);
        Workload::build(
            format!("quicksort(n={len},seed={seed})"),
            sources::QUICKSORT,
            "qsort",
            vec![Value::ints(xs)],
        )
    }

    /// Number of n-queens solutions.
    pub fn nqueens(n: i64) -> Workload {
        Workload::build(
            format!("nqueens({n})"),
            sources::NQUEENS,
            "nqueens",
            vec![n.into()],
        )
    }

    /// Polynomial evaluation by divide and conquer (Estrin-style split) over
    /// a seeded coefficient list.
    pub fn poly(degree: usize, x: i64, seed: u64) -> Workload {
        let coeffs: Vec<i64> = lcg_list(degree + 1, seed)
            .into_iter()
            .map(|c| c % 7)
            .collect();
        Workload::build(
            format!("poly(deg={degree},x={x},seed={seed})"),
            sources::POLY,
            "poly",
            vec![Value::ints(coeffs), x.into()],
        )
    }

    /// Bottom-up mergesort of a seeded list (balanced split + merge chains).
    pub fn mergesort(len: usize, seed: u64) -> Workload {
        let xs = lcg_list(len, seed);
        Workload::build(
            format!("mergesort(n={len},seed={seed})"),
            sources::MERGESORT,
            "msort",
            vec![Value::ints(xs)],
        )
    }

    /// Dense n×n matrix–vector product over seeded values.
    pub fn matvec(n: usize, seed: u64) -> Workload {
        let m: Vec<Value> = (0..n)
            .map(|i| {
                Value::ints(
                    lcg_list(n, seed.wrapping_add(i as u64))
                        .into_iter()
                        .map(|x| x % 10),
                )
            })
            .collect();
        let v = Value::ints(lcg_list(n, seed ^ 0xABCD).into_iter().map(|x| x % 10));
        Workload::build(
            format!("matvec(n={n},seed={seed})"),
            sources::MATVEC,
            "matvec",
            vec![Value::list(m), v],
        )
    }

    /// A small suite covering every tree shape, sized for unit tests
    /// (hundreds to a few thousand tasks each).
    pub fn suite_small() -> Vec<Workload> {
        vec![
            Workload::fib(12),
            Workload::binomial(10, 4),
            Workload::dcsum(0, 64),
            Workload::mapreduce(0, 16, 6),
            Workload::tak(8, 4, 2),
            Workload::ackermann(2, 3),
            Workload::quicksort(24, 42),
            Workload::nqueens(5),
            Workload::poly(15, 3, 7),
            Workload::mergesort(16, 11),
            Workload::matvec(6, 3),
        ]
    }

    /// A medium suite for experiments (thousands to tens of thousands of
    /// tasks each).
    pub fn suite_medium() -> Vec<Workload> {
        vec![
            Workload::fib(17),
            Workload::dcsum(0, 1024),
            Workload::mapreduce(0, 64, 10),
            Workload::quicksort(96, 42),
            Workload::nqueens(6),
        ]
    }
}

/// Deterministic pseudo-random list (64-bit LCG, values in 0..1000).
fn lcg_list(len: usize, seed: u64) -> Vec<i64> {
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as i64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fib_reference_values() {
        assert_eq!(
            Workload::fib(10).reference_result().unwrap(),
            Value::Int(55)
        );
        assert_eq!(Workload::fib(1).reference_result().unwrap(), Value::Int(1));
    }

    #[test]
    fn binomial_reference_values() {
        assert_eq!(
            Workload::binomial(10, 4).reference_result().unwrap(),
            Value::Int(210)
        );
        assert_eq!(
            Workload::binomial(6, 0).reference_result().unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn dcsum_is_gauss_sum() {
        assert_eq!(
            Workload::dcsum(0, 100).reference_result().unwrap(),
            Value::Int(4950)
        );
        assert_eq!(
            Workload::dcsum(5, 6).reference_result().unwrap(),
            Value::Int(5)
        );
    }

    #[test]
    fn mapreduce_sums_fibs() {
        // sum of fib(6) over 8 leaves = 8*8 = 64
        assert_eq!(
            Workload::mapreduce(0, 8, 6).reference_result().unwrap(),
            Value::Int(64)
        );
    }

    #[test]
    fn tak_reference_value() {
        assert_eq!(
            Workload::tak(8, 4, 2).reference_result().unwrap(),
            Value::Int(3)
        );
    }

    #[test]
    fn ackermann_reference_values() {
        assert_eq!(
            Workload::ackermann(2, 3).reference_result().unwrap(),
            Value::Int(9)
        );
        assert_eq!(
            Workload::ackermann(1, 5).reference_result().unwrap(),
            Value::Int(7)
        );
    }

    #[test]
    fn quicksort_sorts() {
        let w = Workload::quicksort(24, 42);
        let v = w.reference_result().unwrap();
        let xs = v.as_list().unwrap();
        let ints: Vec<i64> = xs.iter().map(|x| x.as_int().unwrap()).collect();
        let mut sorted = lcg_list(24, 42);
        sorted.sort();
        assert_eq!(ints, sorted);
    }

    #[test]
    fn nqueens_reference_values() {
        for (n, want) in [(4, 2), (5, 10), (6, 4)] {
            assert_eq!(
                Workload::nqueens(n).reference_result().unwrap(),
                Value::Int(want),
                "nqueens({n})"
            );
        }
    }

    #[test]
    fn poly_matches_horner() {
        let w = Workload::poly(15, 3, 7);
        let coeffs: Vec<i64> = lcg_list(16, 7).into_iter().map(|c| c % 7).collect();
        let x = 3i64;
        let mut want = 0i64;
        for c in coeffs.iter().rev() {
            want = want.wrapping_mul(x).wrapping_add(*c);
        }
        assert_eq!(w.reference_result().unwrap(), Value::Int(want));
    }

    #[test]
    fn mergesort_sorts() {
        let w = Workload::mergesort(20, 5);
        let v = w.reference_result().unwrap();
        let got: Vec<i64> = v
            .as_list()
            .unwrap()
            .iter()
            .map(|x| x.as_int().unwrap())
            .collect();
        let mut want = lcg_list(20, 5);
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn mergesort_agrees_with_quicksort() {
        let a = Workload::mergesort(24, 9).reference_result().unwrap();
        let b = Workload::quicksort(24, 9).reference_result().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn matvec_matches_direct_computation() {
        let n = 5;
        let seed = 3u64;
        let w = Workload::matvec(n, seed);
        let m: Vec<Vec<i64>> = (0..n)
            .map(|i| {
                lcg_list(n, seed.wrapping_add(i as u64))
                    .into_iter()
                    .map(|x| x % 10)
                    .collect()
            })
            .collect();
        let v: Vec<i64> = lcg_list(n, seed ^ 0xABCD)
            .into_iter()
            .map(|x| x % 10)
            .collect();
        let want: Vec<i64> = m
            .iter()
            .map(|row| row.iter().zip(&v).map(|(a, b)| a * b).sum())
            .collect();
        assert_eq!(w.reference_result().unwrap(), Value::ints(want));
    }

    #[test]
    fn whole_small_suite_evaluates() {
        for w in Workload::suite_small() {
            let (v, stats) = w.analyze().unwrap();
            assert!(stats.tasks >= 10, "{}: {} tasks", w.name, stats.tasks);
            assert_eq!(w.reference_result().unwrap(), v, "{}", w.name);
        }
    }

    #[test]
    fn tree_shapes_differ_across_suite() {
        let shapes: Vec<TreeStats> = Workload::suite_small()
            .iter()
            .map(|w| w.analyze().unwrap().1)
            .collect();
        let fanouts: Vec<usize> = shapes.iter().map(|s| s.max_fanout).collect();
        assert!(fanouts.iter().any(|&f| f >= 3), "{fanouts:?}");
        assert!(fanouts.contains(&2), "{fanouts:?}");
    }

    #[test]
    fn lcg_is_deterministic() {
        assert_eq!(lcg_list(5, 1), lcg_list(5, 1));
        assert_ne!(lcg_list(5, 1), lcg_list(5, 2));
    }
}
