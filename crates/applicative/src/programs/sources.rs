//! Surface-syntax sources of the workload programs.

/// Doubly recursive Fibonacci.
pub const FIB: &str = r#"
(def fib (n)
  (if (< n 2) n
      (+ (fib (- n 1)) (fib (- n 2)))))
"#;

/// Binomial coefficient by Pascal's rule (requires 0 <= k <= n).
pub const BINOMIAL: &str = r#"
(def choose (n k)
  (if (or (= k 0) (= k n)) 1
      (+ (choose (- n 1) (- k 1)) (choose (- n 1) k))))
"#;

/// Divide-and-conquer sum of the half-open range lo..hi.
pub const DCSUM: &str = r#"
(def dsum (lo hi)
  (if (>= lo hi) 0
      (if (= (- hi lo) 1) lo
          (let ((mid (/ (+ lo hi) 2)))
            (+ (dsum lo mid) (dsum mid hi))))))
"#;

/// Map fib(w) over lo..hi and sum the results.
pub const MAPREDUCE: &str = r#"
(def fib (n)
  (if (< n 2) n
      (+ (fib (- n 1)) (fib (- n 2)))))

(def mapred (lo hi w)
  (if (>= lo hi) 0
      (if (= (- hi lo) 1) (fib w)
          (let ((mid (/ (+ lo hi) 2)))
            (+ (mapred lo mid w) (mapred mid hi w))))))
"#;

/// The Takeuchi function (returns z at the base case).
pub const TAK: &str = r#"
(def tak (x y z)
  (if (< y x)
      (tak (tak (- x 1) y z)
           (tak (- y 1) z x)
           (tak (- z 1) x y))
      z))
"#;

/// Ackermann's function.
pub const ACKERMANN: &str = r#"
(def ack (m n)
  (if (= m 0) (+ n 1)
      (if (= n 0) (ack (- m 1) 1)
          (ack (- m 1) (ack m (- n 1))))))
"#;

/// Quicksort with user-level partition functions, so filtering itself
/// unfolds into (linear) task chains.
pub const QUICKSORT: &str = r#"
(def filter-le (p xs)
  (if (empty? xs) xs
      (if (<= (head xs) p)
          (cons (head xs) (filter-le p (tail xs)))
          (filter-le p (tail xs)))))

(def filter-gt (p xs)
  (if (empty? xs) xs
      (if (> (head xs) p)
          (cons (head xs) (filter-gt p (tail xs)))
          (filter-gt p (tail xs)))))

(def qsort (xs)
  (if (<= (len xs) 1) xs
      (let ((p (head xs))
            (rest (tail xs)))
        (append (qsort (filter-le p rest))
                (cons p (qsort (filter-gt p rest)))))))
"#;

/// Count n-queens solutions. `placed` holds the columns of already placed
/// queens, nearest row first.
pub const NQUEENS: &str = r#"
(def safe (col d placed)
  (if (empty? placed) #t
      (if (= (head placed) col) #f
          (if (= (head placed) (+ col d)) #f
              (if (= (head placed) (- col d)) #f
                  (safe col (+ d 1) (tail placed)))))))

(def nq-place (n col placed)
  (if (= (+ (len placed) 1) n) 1
      (nq-try n 0 (cons col placed))))

(def nq-try (n col placed)
  (if (>= col n) 0
      (+ (if (safe col 1 placed) (nq-place n col placed) 0)
         (nq-try n (+ col 1) placed))))

(def nqueens (n)
  (if (= n 0) 1 (nq-try n 0 (list))))
"#;

/// Polynomial evaluation: poly(cs, x) = sum of cs[i] * x^i, split in halves,
/// with power-by-squaring as a second recursion shape.
pub const POLY: &str = r#"
(def pow (x n)
  (if (= n 0) 1
      (if (= (% n 2) 0)
          (let ((h (pow x (/ n 2)))) (* h h))
          (* x (pow x (- n 1))))))

(def poly (cs x)
  (if (empty? cs) 0
      (if (= (len cs) 1) (head cs)
          (let ((h (/ (len cs) 2)))
            (+ (poly (take cs h) x)
               (* (pow x h) (poly (drop cs h) x)))))))
"#;

/// Bottom-up mergesort: a different sort shape from quicksort — the merge
/// recursion is data-independent, giving a balanced tree with linear merge
/// chains at every level.
pub const MERGESORT: &str = r#"
(def merge (xs ys)
  (if (empty? xs) ys
      (if (empty? ys) xs
          (if (<= (head xs) (head ys))
              (cons (head xs) (merge (tail xs) ys))
              (cons (head ys) (merge xs (tail ys)))))))

(def msort (xs)
  (if (<= (len xs) 1) xs
      (let ((h (/ (len xs) 2)))
        (merge (msort (take xs h)) (msort (drop xs h))))))
"#;

/// Dense matrix–vector product over nested lists: row tasks fan out wide
/// (one per row) and each row reduces with a dot-product chain.
pub const MATVEC: &str = r#"
(def dot (row v)
  (if (empty? row) 0
      (+ (* (head row) (head v)) (dot (tail row) (tail v)))))

(def rows (m v)
  (if (empty? m) (list)
      (cons (dot (head m) v) (rows (tail m) v))))

(def matvec (m v) (rows m v))
"#;
