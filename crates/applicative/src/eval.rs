//! The reference evaluator.
//!
//! A plain recursive interpreter that defines the language's semantics. The
//! distributed machine (simulated or threaded) must agree with this evaluator
//! on every program — that is the paper's determinacy property (§2.1), and it
//! is what the repository-wide `determinacy` property tests assert.
//!
//! The evaluator is instrumented with an optional [`CallObserver`] so the
//! call-tree analyser ([`crate::calltree`]) can reconstruct the implicit call
//! tree the paper talks about without a separate code path.

use crate::ast::{Expr, FnId, Program};
use crate::env::Env;
use crate::error::EvalError;
use crate::value::Value;

/// Resource limits for an evaluation.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Maximum number of AST nodes visited.
    pub fuel: u64,
    /// Maximum user-function call depth.
    pub max_depth: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            fuel: 200_000_000,
            max_depth: 4_000,
        }
    }
}

impl Budget {
    /// A small budget for tests that exercise the limits themselves.
    pub fn tiny() -> Budget {
        Budget {
            fuel: 10_000,
            max_depth: 64,
        }
    }
}

/// Observer of user-function applications during reference evaluation.
pub trait CallObserver {
    /// Called when `f` is applied to `args` at call depth `depth` (root
    /// call is depth 0), before the body is evaluated.
    fn on_call(&mut self, f: FnId, args: &[Value], depth: usize);
    /// Called when the application completes with `value`.
    fn on_return(&mut self, f: FnId, value: &Value, depth: usize);
}

/// A no-op observer.
pub struct NoObserver;

impl CallObserver for NoObserver {
    fn on_call(&mut self, _: FnId, _: &[Value], _: usize) {}
    fn on_return(&mut self, _: FnId, _: &Value, _: usize) {}
}

/// Evaluates the application of `f` to `args` under the default budget.
pub fn eval_call(prog: &Program, f: FnId, args: &[Value]) -> Result<Value, EvalError> {
    eval_call_with(prog, f, args, Budget::default(), &mut NoObserver)
}

/// Evaluates with an explicit budget and observer.
pub fn eval_call_with(
    prog: &Program,
    f: FnId,
    args: &[Value],
    budget: Budget,
    obs: &mut dyn CallObserver,
) -> Result<Value, EvalError> {
    let mut ev = Evaluator {
        prog,
        fuel: budget.fuel,
        max_depth: budget.max_depth,
        obs,
    };
    ev.call(f, args.to_vec(), 0)
}

/// Evaluates a closed expression (no free variables) under the default
/// budget. Convenient for tests and the parser's `main` form.
pub fn eval_expr(prog: &Program, expr: &Expr) -> Result<Value, EvalError> {
    let mut ev = Evaluator {
        prog,
        fuel: Budget::default().fuel,
        max_depth: Budget::default().max_depth,
        obs: &mut NoObserver,
    };
    let mut env = Env::new();
    ev.eval(expr, &mut env, 0)
}

struct Evaluator<'a> {
    prog: &'a Program,
    fuel: u64,
    max_depth: usize,
    obs: &'a mut dyn CallObserver,
}

impl<'a> Evaluator<'a> {
    fn call(&mut self, f: FnId, args: Vec<Value>, depth: usize) -> Result<Value, EvalError> {
        if depth > self.max_depth {
            return Err(EvalError::DepthExceeded);
        }
        let def = self.prog.def(f);
        if def.params.len() != args.len() {
            return Err(EvalError::CallArity {
                name: def.name.clone(),
                expected: def.params.len(),
                got: args.len(),
            });
        }
        self.obs.on_call(f, &args, depth);
        let mut env = Env::bind_params(&def.params, &args);
        let value = self.eval(&def.body, &mut env, depth)?;
        self.obs.on_return(f, &value, depth);
        Ok(value)
    }

    fn eval(&mut self, e: &Expr, env: &mut Env, depth: usize) -> Result<Value, EvalError> {
        if self.fuel == 0 {
            return Err(EvalError::FuelExhausted);
        }
        self.fuel -= 1;
        match e {
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Var(name) => env.lookup(name).cloned(),
            Expr::Prim(op, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env, depth)?);
                }
                op.apply(&vals)
            }
            Expr::If(c, t, els) => {
                let cond = self.eval(c, env, depth)?;
                match cond.truthy() {
                    Some(true) => self.eval(t, env, depth),
                    Some(false) => self.eval(els, env, depth),
                    None => Err(EvalError::NonBoolCondition(cond.type_name())),
                }
            }
            Expr::Call(f, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env, depth)?);
                }
                self.call(*f, vals, depth + 1)
            }
            Expr::Let(name, bound, body) => {
                let v = self.eval(bound, env, depth)?;
                env.push(name.clone(), v);
                let result = self.eval(body, env, depth);
                env.pop();
                result
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prim::PrimOp;

    fn fib_program() -> (Program, FnId) {
        let mut p = Program::new();
        let fib = p.declare("fib");
        p.define(
            "fib",
            &["n"],
            Expr::if_(
                Expr::Prim(PrimOp::Lt, vec![Expr::var("n"), Expr::int(2)]),
                Expr::var("n"),
                Expr::Prim(
                    PrimOp::Add,
                    vec![
                        Expr::Call(
                            fib,
                            vec![Expr::Prim(PrimOp::Sub, vec![Expr::var("n"), Expr::int(1)])],
                        ),
                        Expr::Call(
                            fib,
                            vec![Expr::Prim(PrimOp::Sub, vec![Expr::var("n"), Expr::int(2)])],
                        ),
                    ],
                ),
            ),
        );
        (p, fib)
    }

    #[test]
    fn fib_values() {
        let (p, fib) = fib_program();
        let expected = [0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55];
        for (n, want) in expected.iter().enumerate() {
            let got = eval_call(&p, fib, &[Value::Int(n as i64)]).unwrap();
            assert_eq!(got, Value::Int(*want), "fib({n})");
        }
    }

    #[test]
    fn call_arity_checked() {
        let (p, fib) = fib_program();
        assert!(matches!(
            eval_call(&p, fib, &[]),
            Err(EvalError::CallArity { .. })
        ));
    }

    #[test]
    fn if_requires_bool() {
        let mut p = Program::new();
        let f = p.define(
            "f",
            &[],
            Expr::if_(Expr::int(1), Expr::int(2), Expr::int(3)),
        );
        assert!(matches!(
            eval_call(&p, f, &[]),
            Err(EvalError::NonBoolCondition("int"))
        ));
    }

    #[test]
    fn if_branches_are_lazy() {
        // The untaken branch would divide by zero; laziness of branches is
        // what lets recursion terminate.
        let mut p = Program::new();
        let f = p.define(
            "f",
            &["b"],
            Expr::if_(
                Expr::var("b"),
                Expr::int(1),
                Expr::Prim(PrimOp::Div, vec![Expr::int(1), Expr::int(0)]),
            ),
        );
        assert_eq!(eval_call(&p, f, &[true.into()]).unwrap(), 1.into());
        assert!(matches!(
            eval_call(&p, f, &[false.into()]),
            Err(EvalError::DivByZero)
        ));
    }

    #[test]
    fn let_binds_and_scopes() {
        let mut p = Program::new();
        let f = p.define(
            "f",
            &["x"],
            Expr::let_(
                "y",
                Expr::Prim(PrimOp::Add, vec![Expr::var("x"), Expr::int(1)]),
                Expr::Prim(PrimOp::Mul, vec![Expr::var("y"), Expr::var("y")]),
            ),
        );
        assert_eq!(eval_call(&p, f, &[3.into()]).unwrap(), 16.into());
    }

    #[test]
    fn fuel_exhaustion() {
        let (p, fib) = fib_program();
        let r = eval_call_with(&p, fib, &[30.into()], Budget::tiny(), &mut NoObserver);
        assert!(matches!(r, Err(EvalError::FuelExhausted)));
    }

    #[test]
    fn depth_exhaustion() {
        let mut p = Program::new();
        let f = p.declare("loop");
        p.define("loop", &["n"], Expr::Call(f, vec![Expr::var("n")]));
        let r = eval_call_with(&p, f, &[0.into()], Budget::tiny(), &mut NoObserver);
        assert!(matches!(r, Err(EvalError::DepthExceeded)));
    }

    #[test]
    fn observer_sees_calls_in_applicative_order() {
        struct Counter(Vec<(FnId, usize)>, usize);
        impl CallObserver for Counter {
            fn on_call(&mut self, f: FnId, _: &[Value], depth: usize) {
                self.0.push((f, depth));
            }
            fn on_return(&mut self, _: FnId, _: &Value, _: usize) {
                self.1 += 1;
            }
        }
        let (p, fib) = fib_program();
        let mut obs = Counter(Vec::new(), 0);
        eval_call_with(&p, fib, &[4.into()], Budget::default(), &mut obs).unwrap();
        // fib(4) makes 9 calls total (including the root).
        assert_eq!(obs.0.len(), 9);
        assert_eq!(obs.1, 9);
        assert_eq!(obs.0[0], (fib, 0));
        assert!(obs.0.iter().all(|(f, _)| *f == fib));
    }

    #[test]
    fn eval_expr_closed() {
        let (p, fib) = fib_program();
        let v = eval_expr(&p, &Expr::Call(fib, vec![Expr::int(10)])).unwrap();
        assert_eq!(v, Value::Int(55));
    }
}
