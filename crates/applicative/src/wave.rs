//! The wave evaluator: demand-driven, suspendable task evaluation.
//!
//! A *task* is the application of one combinator to evaluated argument values
//! — exactly the paper's task packet. A task evaluates its body in **waves**:
//!
//! 1. Walk the body, computing everything local (literals, variables,
//!    primitives, satisfied `if`s and `let`s).
//! 2. Every user-function call whose arguments are fully evaluated but whose
//!    result is unknown becomes a **demand** — the `DEMAND_IT` of the paper's
//!    §4.2 protocol. All demands of a wave are discovered in a single
//!    deterministic left-to-right walk, which is what lets sibling subtrees
//!    be spawned and evaluated in parallel.
//! 3. The task suspends until *all* of the wave's demands have results, then
//!    re-walks. (The wave barrier makes demand discovery order — and hence
//!    the level stamps assigned to children — independent of the order in
//!    which results arrive. Splice recovery's result salvaging relies on
//!    this: a regenerated twin assigns the same stamps to the same children
//!    as its dead original.)
//!
//! Demands are memoised per task by `(function, arguments)`: the same call
//! appearing twice in one body spawns one child. Referential transparency
//! (§2.1) makes this sound.
//!
//! Divergence caveat: within a single wave the walker evaluates *all* strict
//! subexpressions, so an expression that errors locally (e.g. `1/0`) aborts
//! the task even if the reference evaluator would have diverged in an
//! earlier sibling first. For terminating, error-free programs — all shipped
//! workloads — wave and reference semantics agree, and the `determinacy`
//! property tests assert it.

use crate::ast::{Expr, FnId, Program};
use crate::env::Env;
use crate::error::EvalError;
use crate::fxhash::{FxHashMap, FxHasher};
use crate::value::Value;
use std::hash::{Hash, Hasher};

/// A child-task demand: a combinator applied to fully evaluated arguments.
/// This is the payload of a task packet.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Demand {
    /// The demanded combinator.
    pub fun: FnId,
    /// Its evaluated arguments.
    pub args: Vec<Value>,
}

impl Demand {
    /// Creates a demand.
    pub fn new(fun: FnId, args: Vec<Value>) -> Demand {
        Demand { fun, args }
    }
}

/// Result of evaluating one wave.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WaveResult {
    /// The task finished with this value.
    Done(Value),
    /// The task is blocked; `new_demands` are the child tasks discovered by
    /// this wave (deduplicated, in deterministic discovery order). It may be
    /// empty if the task is blocked solely on previously issued demands.
    Blocked {
        /// Newly discovered demands, in walk order.
        new_demands: Vec<Demand>,
    },
}

/// Recycled evaluation scratch: retired task frames (their call caches
/// keep their capacity), the shared value stack the walker evaluates on,
/// demand out-buffers, and environments. One pool serves one evaluation
/// context (a protocol engine, a `run_local` call tree); everything drawn
/// from it is returned on retirement, so steady-state wave evaluation
/// performs no heap allocation beyond genuinely new data.
#[derive(Debug, Default)]
pub struct FramePool {
    evals: Vec<TaskEval>,
    envs: Vec<Env>,
    demand_bufs: Vec<Vec<Demand>>,
    vals: Vec<Value>,
}

impl FramePool {
    /// An empty pool. Allocates nothing until frames are retired into it.
    pub fn new() -> FramePool {
        FramePool::default()
    }

    /// A task frame applying `fun` to `args`, recycled if possible.
    pub fn take_eval(&mut self, fun: FnId, args: &[Value]) -> TaskEval {
        match self.evals.pop() {
            Some(mut e) => {
                e.reset(fun, args);
                e
            }
            None => TaskEval::new(fun, args.to_vec()),
        }
    }

    /// Retires a finished frame; its allocations are reused by the next
    /// [`FramePool::take_eval`].
    pub fn put_eval(&mut self, mut eval: TaskEval) {
        eval.cache.clear();
        eval.args.clear();
        self.evals.push(eval);
    }

    /// A cleared demand out-buffer for [`TaskEval::step_pooled`].
    pub fn take_demands(&mut self) -> Vec<Demand> {
        self.demand_bufs.pop().unwrap_or_default()
    }

    /// Returns a demand buffer to the pool.
    pub fn put_demands(&mut self, mut buf: Vec<Demand>) {
        buf.clear();
        self.demand_bufs.push(buf);
    }
}

/// Entries a task's call cache holds inline before spilling to buckets.
/// Most tasks demand a handful of children; a linear scan over a short
/// vector beats hashing the demand key on every `Call` node the walker
/// revisits — and lets lookups key on `(FnId, &[Value])` without ever
/// materializing an owned [`Demand`].
const CACHE_SPILL: usize = 24;

/// The within-task call cache: `(function, arguments) → result slot`,
/// where `None` marks an issued-but-unanswered demand.
///
/// Small tasks stay in `small` (insertion order, linear scan). Tasks with
/// many demands (wide map steps) spill into `big`, a bucket map keyed by
/// a precomputed [`FxHasher`] hash of the demand, which keeps lookups
/// borrow-only: the probe hashes `(fun, args)` directly off the walker's
/// value stack.
#[derive(Clone, Debug, Default)]
struct DemandCache {
    small: Vec<(Demand, Option<Value>)>,
    big: FxHashMap<u64, Vec<(Demand, Option<Value>)>>,
    big_len: usize,
}

fn demand_key_hash(fun: FnId, args: &[Value]) -> u64 {
    let mut h = FxHasher::default();
    fun.hash(&mut h);
    args.hash(&mut h);
    h.finish()
}

impl DemandCache {
    fn len(&self) -> usize {
        self.small.len() + self.big_len
    }

    fn clear(&mut self) {
        self.small.clear();
        self.big.clear();
        self.big_len = 0;
    }

    /// Borrow-only lookup: no owned key is built on either tier.
    fn lookup(&self, fun: FnId, args: &[Value]) -> Option<&Option<Value>> {
        for (d, slot) in &self.small {
            if d.fun == fun && d.args[..] == *args {
                return Some(slot);
            }
        }
        if self.big_len == 0 {
            return None;
        }
        let bucket = self.big.get(&demand_key_hash(fun, args))?;
        bucket
            .iter()
            .find(|(d, _)| d.fun == fun && d.args[..] == *args)
            .map(|(_, slot)| slot)
    }

    fn slot_mut(&mut self, demand: &Demand) -> Option<&mut Option<Value>> {
        if let Some(i) = self
            .small
            .iter()
            .position(|(d, _)| d.fun == demand.fun && d.args == demand.args)
        {
            return Some(&mut self.small[i].1);
        }
        if self.big_len == 0 {
            return None;
        }
        let bucket = self
            .big
            .get_mut(&demand_key_hash(demand.fun, &demand.args))?;
        bucket
            .iter_mut()
            .find(|(d, _)| d.fun == demand.fun && d.args == demand.args)
            .map(|(_, slot)| slot)
    }

    /// Inserts a key known to be absent (callers look up first).
    fn insert(&mut self, demand: Demand, slot: Option<Value>) {
        if self.small.len() < CACHE_SPILL {
            self.small.push((demand, slot));
        } else {
            let hash = demand_key_hash(demand.fun, &demand.args);
            self.big.entry(hash).or_default().push((demand, slot));
            self.big_len += 1;
        }
    }

    /// One-pass preload: fills an existing empty slot (`Supplied`), leaves
    /// a filled slot alone (`Known`), or inserts a fresh satisfied entry
    /// (`New`). Index-based so the miss path can insert without a second
    /// scan (a returned slot reference would pin the borrow across arms).
    fn preload(&mut self, demand: Demand, value: Value) -> Preload {
        fn fill(slot: &mut Option<Value>, value: Value) -> Preload {
            if slot.is_none() {
                *slot = Some(value);
                Preload::Supplied
            } else {
                Preload::Known
            }
        }
        if let Some(i) = self
            .small
            .iter()
            .position(|(d, _)| d.fun == demand.fun && d.args == demand.args)
        {
            return fill(&mut self.small[i].1, value);
        }
        if self.big_len > 0 {
            let hash = demand_key_hash(demand.fun, &demand.args);
            if let Some(bucket) = self.big.get_mut(&hash) {
                if let Some(i) = bucket
                    .iter()
                    .position(|(d, _)| d.fun == demand.fun && d.args == demand.args)
                {
                    return fill(&mut bucket[i].1, value);
                }
            }
        }
        self.insert(demand, Some(value));
        Preload::New
    }
}

/// Outcome of [`DemandCache::preload`].
enum Preload {
    /// The demand was not in the cache; a satisfied entry was inserted.
    New,
    /// The demand was outstanding; its slot was filled.
    Supplied,
    /// The demand already had a value; nothing changed.
    Known,
}

/// One task's suspendable evaluation state: the task packet plus the call
/// cache accumulated so far.
#[derive(Clone, Debug)]
pub struct TaskEval {
    fun: FnId,
    args: Vec<Value>,
    cache: DemandCache,
    outstanding: usize,
    waves: u32,
    work: u64,
}

impl TaskEval {
    /// Creates the evaluation state for applying `fun` to `args`.
    pub fn new(fun: FnId, args: Vec<Value>) -> TaskEval {
        TaskEval {
            fun,
            args,
            cache: DemandCache::default(),
            outstanding: 0,
            waves: 0,
            work: 0,
        }
    }

    /// The task's combinator.
    pub fn fun(&self) -> FnId {
        self.fun
    }

    /// The task's arguments.
    pub fn args(&self) -> &[Value] {
        &self.args
    }

    /// Number of demands issued but not yet supplied.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// True when every issued demand has a result, i.e. the next wave can
    /// run. (Also true before the first wave.)
    pub fn ready(&self) -> bool {
        self.outstanding == 0
    }

    /// Number of waves run so far.
    pub fn waves(&self) -> u32 {
        self.waves
    }

    /// Total AST nodes visited across all waves — the task's abstract work,
    /// used by the simulator's cost model.
    pub fn work(&self) -> u64 {
        self.work
    }

    /// Reinitializes a recycled frame for applying `fun` to `args`,
    /// keeping the call cache's and argument buffer's allocations.
    pub fn reset(&mut self, fun: FnId, args: &[Value]) {
        self.fun = fun;
        self.args.clear();
        self.args.extend_from_slice(args);
        self.cache.clear();
        self.outstanding = 0;
        self.waves = 0;
        self.work = 0;
    }

    /// Moves the argument values out of a frame being retired (the
    /// engine builds the completed task's result demand from them without
    /// re-cloning the vector).
    pub fn take_args(&mut self) -> Vec<Value> {
        std::mem::take(&mut self.args)
    }

    /// Runs one wave. New demands are recorded as outstanding; the caller
    /// must eventually [`TaskEval::supply`] each one.
    ///
    /// Calling `step` while demands are outstanding is allowed (it is how a
    /// twin task consults salvaged results), but the shipped drivers enforce
    /// the wave barrier and only step when [`TaskEval::ready`].
    pub fn step(&mut self, prog: &Program) -> Result<WaveResult, EvalError> {
        let mut pool = FramePool::new();
        let mut new_demands = Vec::new();
        match self.step_pooled(prog, &mut pool, &mut new_demands)? {
            Some(v) => Ok(WaveResult::Done(v)),
            None => Ok(WaveResult::Blocked { new_demands }),
        }
    }

    /// Runs one wave on pooled scratch — the allocation-free hot path
    /// behind [`TaskEval::step`]. Newly discovered demands are *appended*
    /// to `new_demands` (the caller's reusable buffer) and recorded as
    /// outstanding. Returns `Ok(Some(value))` when the task finished and
    /// `Ok(None)` while it is blocked.
    pub fn step_pooled(
        &mut self,
        prog: &Program,
        pool: &mut FramePool,
        new_demands: &mut Vec<Demand>,
    ) -> Result<Option<Value>, EvalError> {
        let def = prog.def(self.fun);
        if def.params.len() != self.args.len() {
            return Err(EvalError::CallArity {
                name: def.name.clone(),
                expected: def.params.len(),
                got: self.args.len(),
            });
        }
        self.waves += 1;
        let mut env = pool.envs.pop().unwrap_or_default();
        env.rebind(&def.params, &self.args);
        let mut vals = std::mem::take(&mut pool.vals);
        let start = new_demands.len();
        let mut walker = Walker {
            prog,
            cache: &self.cache,
            new_demands,
            start,
            vals: &mut vals,
            visited: 0,
        };
        let out = walker.walk(&def.body, &mut env);
        let visited = walker.visited;
        // Restore the pooled scratch before propagating any error (an
        // aborted walk leaves values on the stack; clear releases them).
        vals.clear();
        pool.vals = vals;
        env.rebind(&[], &[]);
        pool.envs.push(env);
        self.work += visited;
        match out? {
            Walked::Val(v) => {
                debug_assert!(
                    new_demands.len() == start,
                    "a completed walk cannot discover demands"
                );
                Ok(Some(v))
            }
            Walked::Blocked => {
                for d in &new_demands[start..] {
                    self.cache.insert(d.clone(), None);
                    self.outstanding += 1;
                }
                Ok(None)
            }
        }
    }

    /// Supplies the result of a previously issued demand. Returns `true` if
    /// the demand was outstanding and is now satisfied; `false` if the demand
    /// was unknown or already satisfied (duplicate results are ignored, per
    /// the paper's case-6/7 analysis: "the second copy is simply ignored").
    pub fn supply(&mut self, demand: &Demand, value: Value) -> bool {
        match self.cache.slot_mut(demand) {
            Some(slot @ None) => {
                *slot = Some(value);
                self.outstanding -= 1;
                true
            }
            _ => false,
        }
    }

    /// Pre-loads a result *before* the demand is discovered, so the next wave
    /// finds it already satisfied and never spawns the child. This is how
    /// splice recovery injects salvaged orphan results (paper §4.1 cases 4–5:
    /// "P' will not spawn C' because the answer is already there").
    ///
    /// Returns `true` if the entry was new.
    pub fn preload(&mut self, demand: Demand, value: Value) -> bool {
        match self.cache.preload(demand, value) {
            Preload::New => true,
            Preload::Supplied => {
                // The demand was already issued: treat as a normal supply.
                self.outstanding -= 1;
                false
            }
            Preload::Known => false,
        }
    }

    /// Looks up a cached result.
    pub fn cached(&self, demand: &Demand) -> Option<&Value> {
        self.cache
            .lookup(demand.fun, &demand.args)
            .and_then(|s| s.as_ref())
    }

    /// Number of cache entries (issued + preloaded).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }
}

enum Walked {
    Val(Value),
    Blocked,
}

/// The per-wave body walker. All transient state lives on borrowed,
/// pooled buffers: `vals` is a shared value *stack* — arguments of the
/// node being evaluated sit above `base`, the stack length at node entry —
/// and call-cache lookups key on `(FnId, &[Value])` straight off that
/// stack, so a revisited `Call` node costs no allocation and no owned key.
/// Within-wave demand deduplication is a linear scan over the demands this
/// walk appended (`new_demands[start..]`): waves discover a handful of
/// demands, where a hash set costs an allocation per wave and wins
/// nothing.
struct Walker<'a> {
    prog: &'a Program,
    cache: &'a DemandCache,
    new_demands: &'a mut Vec<Demand>,
    start: usize,
    vals: &'a mut Vec<Value>,
    visited: u64,
}

impl<'a> Walker<'a> {
    /// Walks every argument expression, pushing results onto the value
    /// stack. Returns whether any argument blocked (siblings keep walking
    /// regardless: all of a wave's demands are discovered together so
    /// sibling subtrees run in parallel).
    fn walk_args(&mut self, args: &[Expr], env: &mut Env) -> Result<bool, EvalError> {
        let mut blocked = false;
        for a in args {
            match self.walk(a, env)? {
                Walked::Val(v) => self.vals.push(v),
                Walked::Blocked => blocked = true,
            }
        }
        Ok(blocked)
    }

    fn walk(&mut self, e: &Expr, env: &mut Env) -> Result<Walked, EvalError> {
        self.visited += 1;
        match e {
            Expr::Lit(v) => Ok(Walked::Val(v.clone())),
            Expr::Var(name) => Ok(Walked::Val(env.lookup(name)?.clone())),
            Expr::Prim(op, args) => {
                // Binary primitives are the bulk of every body; evaluate
                // their operands into locals and skip the value stack.
                // Both operands are always walked — a blocked left sibling
                // must not hide the right subtree's demands.
                if let [l, r] = &args[..] {
                    let a = self.walk(l, env)?;
                    let b = self.walk(r, env)?;
                    return match (a, b) {
                        (Walked::Val(x), Walked::Val(y)) => Ok(Walked::Val(op.apply2(x, y)?)),
                        _ => Ok(Walked::Blocked),
                    };
                }
                let base = self.vals.len();
                if self.walk_args(args, env)? {
                    self.vals.truncate(base);
                    return Ok(Walked::Blocked);
                }
                let out = op.apply(&self.vals[base..]);
                self.vals.truncate(base);
                Ok(Walked::Val(out?))
            }
            Expr::If(c, t, els) => match self.walk(c, env)? {
                // A blocked condition blocks the whole `if`: branches are
                // never walked speculatively, so recursion stays guarded.
                Walked::Blocked => Ok(Walked::Blocked),
                Walked::Val(cond) => match cond.truthy() {
                    Some(true) => self.walk(t, env),
                    Some(false) => self.walk(els, env),
                    None => Err(EvalError::NonBoolCondition(cond.type_name())),
                },
            },
            Expr::Call(f, args) => {
                let base = self.vals.len();
                if self.walk_args(args, env)? {
                    self.vals.truncate(base);
                    return Ok(Walked::Blocked);
                }
                let def = self.prog.def(*f);
                if def.params.len() != self.vals.len() - base {
                    let got = self.vals.len() - base;
                    self.vals.truncate(base);
                    return Err(EvalError::CallArity {
                        name: def.name.clone(),
                        expected: def.params.len(),
                        got,
                    });
                }
                // Probe the cache by (function, argument slice) straight
                // off the value stack — no owned key, no allocation. Only
                // a genuinely new demand materializes a `Demand`.
                let argv = &self.vals[base..];
                let out = match self.cache.lookup(*f, argv) {
                    Some(Some(v)) => Walked::Val(v.clone()),
                    Some(None) => Walked::Blocked,
                    None => {
                        let dup = self.new_demands[self.start..]
                            .iter()
                            .any(|d| d.fun == *f && d.args[..] == *argv);
                        if !dup {
                            let demand = Demand::new(*f, self.vals.drain(base..).collect());
                            self.new_demands.push(demand);
                        }
                        Walked::Blocked
                    }
                };
                self.vals.truncate(base);
                Ok(out)
            }
            Expr::Let(name, bound, body) => match self.walk(bound, env)? {
                // `let` is strict in the binding; the body waits for it.
                Walked::Blocked => Ok(Walked::Blocked),
                Walked::Val(v) => {
                    env.push(name.clone(), v);
                    let r = self.walk(body, env);
                    env.pop();
                    r
                }
            },
        }
    }
}

/// Runs a task to completion on a single processor by recursively satisfying
/// its demands depth-first. This is the smallest possible driver of the wave
/// evaluator and serves as the bridge between the reference semantics and
/// the distributed machines: `run_local` must agree with
/// [`crate::eval::eval_call`] on every terminating, error-free program.
pub fn run_local(prog: &Program, fun: FnId, args: &[Value]) -> Result<Value, EvalError> {
    let mut pool = FramePool::new();
    run_local_depth(prog, fun, args, &mut pool, 0)
}

fn run_local_depth(
    prog: &Program,
    fun: FnId,
    args: &[Value],
    pool: &mut FramePool,
    depth: usize,
) -> Result<Value, EvalError> {
    if depth > 100_000 {
        return Err(EvalError::DepthExceeded);
    }
    let mut task = pool.take_eval(fun, args);
    let mut demands = pool.take_demands();
    let result = 'run: loop {
        demands.clear();
        match task.step_pooled(prog, pool, &mut demands) {
            Err(e) => break Err(e),
            Ok(Some(v)) => break Ok(v),
            Ok(None) => {
                if demands.is_empty() && task.ready() {
                    // Blocked with nothing outstanding and nothing new: the
                    // program is stuck, which cannot happen for well-formed
                    // programs.
                    unreachable!("wave evaluator deadlock");
                }
                for d in &demands {
                    match run_local_depth(prog, d.fun, &d.args, pool, depth + 1) {
                        Ok(v) => task.supply(d, v),
                        Err(e) => break 'run Err(e),
                    };
                }
            }
        }
    };
    // Frames retire into the pool on every exit, so deep recursion reuses
    // a handful of allocations instead of building one per call.
    pool.put_demands(demands);
    pool.put_eval(task);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_call;
    use crate::prim::PrimOp;

    fn fib_program() -> (Program, FnId) {
        let mut p = Program::new();
        let fib = p.declare("fib");
        p.define(
            "fib",
            &["n"],
            Expr::if_(
                Expr::Prim(PrimOp::Lt, vec![Expr::var("n"), Expr::int(2)]),
                Expr::var("n"),
                Expr::Prim(
                    PrimOp::Add,
                    vec![
                        Expr::Call(
                            fib,
                            vec![Expr::Prim(PrimOp::Sub, vec![Expr::var("n"), Expr::int(1)])],
                        ),
                        Expr::Call(
                            fib,
                            vec![Expr::Prim(PrimOp::Sub, vec![Expr::var("n"), Expr::int(2)])],
                        ),
                    ],
                ),
            ),
        );
        (p, fib)
    }

    #[test]
    fn leaf_task_completes_in_one_wave() {
        let (p, fib) = fib_program();
        let mut t = TaskEval::new(fib, vec![1.into()]);
        assert!(matches!(
            t.step(&p).unwrap(),
            WaveResult::Done(Value::Int(1))
        ));
        assert_eq!(t.waves(), 1);
        assert!(t.work() > 0);
    }

    #[test]
    fn interior_task_demands_both_children_in_one_wave() {
        let (p, fib) = fib_program();
        let mut t = TaskEval::new(fib, vec![5.into()]);
        let r = t.step(&p).unwrap();
        match r {
            WaveResult::Blocked { new_demands } => {
                assert_eq!(
                    new_demands,
                    vec![
                        Demand::new(fib, vec![4.into()]),
                        Demand::new(fib, vec![3.into()])
                    ]
                );
            }
            other => panic!("expected blocked, got {other:?}"),
        }
        assert_eq!(t.outstanding(), 2);
        assert!(!t.ready());
    }

    #[test]
    fn supply_then_finish() {
        let (p, fib) = fib_program();
        let mut t = TaskEval::new(fib, vec![5.into()]);
        t.step(&p).unwrap();
        assert!(t.supply(&Demand::new(fib, vec![4.into()]), 3.into()));
        assert!(t.supply(&Demand::new(fib, vec![3.into()]), 2.into()));
        assert!(t.ready());
        match t.step(&p).unwrap() {
            WaveResult::Done(v) => assert_eq!(v, Value::Int(5)),
            other => panic!("expected done, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_supply_is_ignored() {
        let (p, fib) = fib_program();
        let mut t = TaskEval::new(fib, vec![5.into()]);
        t.step(&p).unwrap();
        let d = Demand::new(fib, vec![4.into()]);
        assert!(t.supply(&d, 3.into()));
        assert!(!t.supply(&d, 999.into()), "second copy must be ignored");
        assert!(!t.supply(&Demand::new(fib, vec![77.into()]), 1.into()));
        // First value wins.
        assert_eq!(t.cached(&d), Some(&Value::Int(3)));
    }

    #[test]
    fn preload_prevents_spawn() {
        // Salvage path: preload fib(4) before the first wave; the task then
        // only ever demands fib(3).
        let (p, fib) = fib_program();
        let mut t = TaskEval::new(fib, vec![5.into()]);
        assert!(t.preload(Demand::new(fib, vec![4.into()]), 3.into()));
        match t.step(&p).unwrap() {
            WaveResult::Blocked { new_demands } => {
                assert_eq!(new_demands, vec![Demand::new(fib, vec![3.into()])]);
            }
            other => panic!("expected blocked, got {other:?}"),
        }
        assert!(t.supply(&Demand::new(fib, vec![3.into()]), 2.into()));
        assert!(matches!(
            t.step(&p).unwrap(),
            WaveResult::Done(Value::Int(5))
        ));
    }

    #[test]
    fn preload_of_outstanding_demand_acts_as_supply() {
        let (p, fib) = fib_program();
        let mut t = TaskEval::new(fib, vec![5.into()]);
        t.step(&p).unwrap();
        assert_eq!(t.outstanding(), 2);
        assert!(!t.preload(Demand::new(fib, vec![4.into()]), 3.into()));
        assert_eq!(t.outstanding(), 1);
    }

    #[test]
    fn duplicate_calls_in_one_body_share_a_demand() {
        let mut p = Program::new();
        let g = p.define("g", &["x"], Expr::var("x"));
        let f = p.define(
            "f",
            &["x"],
            Expr::Prim(
                PrimOp::Add,
                vec![
                    Expr::Call(g, vec![Expr::var("x")]),
                    Expr::Call(g, vec![Expr::var("x")]),
                ],
            ),
        );
        let mut t = TaskEval::new(f, vec![21.into()]);
        match t.step(&p).unwrap() {
            WaveResult::Blocked { new_demands } => assert_eq!(new_demands.len(), 1),
            other => panic!("{other:?}"),
        }
        t.supply(&Demand::new(g, vec![21.into()]), 21.into());
        assert!(matches!(
            t.step(&p).unwrap(),
            WaveResult::Done(Value::Int(42))
        ));
    }

    #[test]
    fn run_local_matches_reference_on_fib() {
        let (p, fib) = fib_program();
        for n in 0..15 {
            let reference = eval_call(&p, fib, &[Value::Int(n)]).unwrap();
            let wave = run_local(&p, fib, &[Value::Int(n)]).unwrap();
            assert_eq!(reference, wave, "fib({n})");
        }
    }

    #[test]
    fn nested_calls_take_two_waves() {
        // f(x) = g(g(x)): the outer g can only be demanded after the inner
        // returns.
        let mut p = Program::new();
        let g = p.define(
            "g",
            &["x"],
            Expr::Prim(PrimOp::Add, vec![Expr::var("x"), Expr::int(1)]),
        );
        let f = p.define(
            "f",
            &["x"],
            Expr::Call(g, vec![Expr::Call(g, vec![Expr::var("x")])]),
        );
        let mut t = TaskEval::new(f, vec![0.into()]);
        match t.step(&p).unwrap() {
            WaveResult::Blocked { new_demands } => {
                assert_eq!(new_demands, vec![Demand::new(g, vec![0.into()])]);
            }
            other => panic!("{other:?}"),
        }
        t.supply(&Demand::new(g, vec![0.into()]), 1.into());
        match t.step(&p).unwrap() {
            WaveResult::Blocked { new_demands } => {
                assert_eq!(new_demands, vec![Demand::new(g, vec![1.into()])]);
            }
            other => panic!("{other:?}"),
        }
        t.supply(&Demand::new(g, vec![1.into()]), 2.into());
        assert!(matches!(
            t.step(&p).unwrap(),
            WaveResult::Done(Value::Int(2))
        ));
        assert_eq!(t.waves(), 3);
    }

    #[test]
    fn blocked_condition_does_not_speculate() {
        // h(n) = if g(n) then diverge(n) else 0 — the diverging branch must
        // not be demanded while the condition is blocked.
        let mut p = Program::new();
        let g = p.define("g", &["x"], Expr::bool(false));
        let dv = p.declare("diverge");
        p.define("diverge", &["x"], Expr::Call(dv, vec![Expr::var("x")]));
        let h = p.define(
            "h",
            &["n"],
            Expr::if_(
                Expr::Call(g, vec![Expr::var("n")]),
                Expr::Call(dv, vec![Expr::var("n")]),
                Expr::int(0),
            ),
        );
        let mut t = TaskEval::new(h, vec![1.into()]);
        match t.step(&p).unwrap() {
            WaveResult::Blocked { new_demands } => {
                assert_eq!(new_demands, vec![Demand::new(g, vec![1.into()])]);
            }
            other => panic!("{other:?}"),
        }
        t.supply(&Demand::new(g, vec![1.into()]), false.into());
        assert!(matches!(
            t.step(&p).unwrap(),
            WaveResult::Done(Value::Int(0))
        ));
    }
}
