//! The wave evaluator: demand-driven, suspendable task evaluation.
//!
//! A *task* is the application of one combinator to evaluated argument values
//! — exactly the paper's task packet. A task evaluates its body in **waves**:
//!
//! 1. Walk the body, computing everything local (literals, variables,
//!    primitives, satisfied `if`s and `let`s).
//! 2. Every user-function call whose arguments are fully evaluated but whose
//!    result is unknown becomes a **demand** — the `DEMAND_IT` of the paper's
//!    §4.2 protocol. All demands of a wave are discovered in a single
//!    deterministic left-to-right walk, which is what lets sibling subtrees
//!    be spawned and evaluated in parallel.
//! 3. The task suspends until *all* of the wave's demands have results, then
//!    re-walks. (The wave barrier makes demand discovery order — and hence
//!    the level stamps assigned to children — independent of the order in
//!    which results arrive. Splice recovery's result salvaging relies on
//!    this: a regenerated twin assigns the same stamps to the same children
//!    as its dead original.)
//!
//! Demands are memoised per task by `(function, arguments)`: the same call
//! appearing twice in one body spawns one child. Referential transparency
//! (§2.1) makes this sound.
//!
//! Divergence caveat: within a single wave the walker evaluates *all* strict
//! subexpressions, so an expression that errors locally (e.g. `1/0`) aborts
//! the task even if the reference evaluator would have diverged in an
//! earlier sibling first. For terminating, error-free programs — all shipped
//! workloads — wave and reference semantics agree, and the `determinacy`
//! property tests assert it.

use crate::ast::{Expr, FnId, Program};
use crate::env::Env;
use crate::error::EvalError;
use crate::value::Value;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

/// A child-task demand: a combinator applied to fully evaluated arguments.
/// This is the payload of a task packet.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Demand {
    /// The demanded combinator.
    pub fun: FnId,
    /// Its evaluated arguments.
    pub args: Vec<Value>,
}

impl Demand {
    /// Creates a demand.
    pub fn new(fun: FnId, args: Vec<Value>) -> Demand {
        Demand { fun, args }
    }
}

/// Result of evaluating one wave.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WaveResult {
    /// The task finished with this value.
    Done(Value),
    /// The task is blocked; `new_demands` are the child tasks discovered by
    /// this wave (deduplicated, in deterministic discovery order). It may be
    /// empty if the task is blocked solely on previously issued demands.
    Blocked {
        /// Newly discovered demands, in walk order.
        new_demands: Vec<Demand>,
    },
}

/// One task's suspendable evaluation state: the task packet plus the call
/// cache accumulated so far.
#[derive(Clone, Debug)]
pub struct TaskEval {
    fun: FnId,
    args: Vec<Value>,
    cache: HashMap<Demand, Option<Value>>,
    outstanding: usize,
    waves: u32,
    work: u64,
}

impl TaskEval {
    /// Creates the evaluation state for applying `fun` to `args`.
    pub fn new(fun: FnId, args: Vec<Value>) -> TaskEval {
        TaskEval {
            fun,
            args,
            cache: HashMap::new(),
            outstanding: 0,
            waves: 0,
            work: 0,
        }
    }

    /// The task's combinator.
    pub fn fun(&self) -> FnId {
        self.fun
    }

    /// The task's arguments.
    pub fn args(&self) -> &[Value] {
        &self.args
    }

    /// Number of demands issued but not yet supplied.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// True when every issued demand has a result, i.e. the next wave can
    /// run. (Also true before the first wave.)
    pub fn ready(&self) -> bool {
        self.outstanding == 0
    }

    /// Number of waves run so far.
    pub fn waves(&self) -> u32 {
        self.waves
    }

    /// Total AST nodes visited across all waves — the task's abstract work,
    /// used by the simulator's cost model.
    pub fn work(&self) -> u64 {
        self.work
    }

    /// Runs one wave. New demands are recorded as outstanding; the caller
    /// must eventually [`TaskEval::supply`] each one.
    ///
    /// Calling `step` while demands are outstanding is allowed (it is how a
    /// twin task consults salvaged results), but the shipped drivers enforce
    /// the wave barrier and only step when [`TaskEval::ready`].
    pub fn step(&mut self, prog: &Program) -> Result<WaveResult, EvalError> {
        let def = prog.def(self.fun);
        if def.params.len() != self.args.len() {
            return Err(EvalError::CallArity {
                name: def.name.clone(),
                expected: def.params.len(),
                got: self.args.len(),
            });
        }
        self.waves += 1;
        let mut env = Env::bind_params(&def.params, &self.args);
        let mut walker = Walker {
            prog,
            cache: &self.cache,
            new_demands: Vec::new(),
            seen: HashSet::new(),
            visited: 0,
        };
        let out = walker.walk(&def.body, &mut env)?;
        let visited = walker.visited;
        let new_demands = walker.new_demands;
        self.work += visited;
        match out {
            Walked::Val(v) => {
                debug_assert!(
                    new_demands.is_empty(),
                    "a completed walk cannot discover demands"
                );
                Ok(WaveResult::Done(v))
            }
            Walked::Blocked => {
                for d in &new_demands {
                    self.cache.insert(d.clone(), None);
                    self.outstanding += 1;
                }
                Ok(WaveResult::Blocked { new_demands })
            }
        }
    }

    /// Supplies the result of a previously issued demand. Returns `true` if
    /// the demand was outstanding and is now satisfied; `false` if the demand
    /// was unknown or already satisfied (duplicate results are ignored, per
    /// the paper's case-6/7 analysis: "the second copy is simply ignored").
    pub fn supply(&mut self, demand: &Demand, value: Value) -> bool {
        match self.cache.get_mut(demand) {
            Some(slot @ None) => {
                *slot = Some(value);
                self.outstanding -= 1;
                true
            }
            _ => false,
        }
    }

    /// Pre-loads a result *before* the demand is discovered, so the next wave
    /// finds it already satisfied and never spawns the child. This is how
    /// splice recovery injects salvaged orphan results (paper §4.1 cases 4–5:
    /// "P' will not spawn C' because the answer is already there").
    ///
    /// Returns `true` if the entry was new.
    pub fn preload(&mut self, demand: Demand, value: Value) -> bool {
        match self.cache.entry(demand) {
            Entry::Occupied(mut o) => {
                if o.get().is_none() {
                    // The demand was already issued: treat as a normal supply.
                    o.insert(Some(value));
                    self.outstanding -= 1;
                }
                false
            }
            Entry::Vacant(v) => {
                v.insert(Some(value));
                true
            }
        }
    }

    /// Looks up a cached result.
    pub fn cached(&self, demand: &Demand) -> Option<&Value> {
        self.cache.get(demand).and_then(|s| s.as_ref())
    }

    /// Number of cache entries (issued + preloaded).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }
}

enum Walked {
    Val(Value),
    Blocked,
}

struct Walker<'a> {
    prog: &'a Program,
    cache: &'a HashMap<Demand, Option<Value>>,
    new_demands: Vec<Demand>,
    seen: HashSet<Demand>,
    visited: u64,
}

impl<'a> Walker<'a> {
    fn walk(&mut self, e: &Expr, env: &mut Env) -> Result<Walked, EvalError> {
        self.visited += 1;
        match e {
            Expr::Lit(v) => Ok(Walked::Val(v.clone())),
            Expr::Var(name) => Ok(Walked::Val(env.lookup(name)?.clone())),
            Expr::Prim(op, args) => {
                let mut vals = Vec::with_capacity(args.len());
                let mut blocked = false;
                for a in args {
                    // Keep walking blocked siblings: all of a wave's demands
                    // are discovered together so siblings run in parallel.
                    match self.walk(a, env)? {
                        Walked::Val(v) => vals.push(v),
                        Walked::Blocked => blocked = true,
                    }
                }
                if blocked {
                    return Ok(Walked::Blocked);
                }
                Ok(Walked::Val(op.apply(&vals)?))
            }
            Expr::If(c, t, els) => match self.walk(c, env)? {
                // A blocked condition blocks the whole `if`: branches are
                // never walked speculatively, so recursion stays guarded.
                Walked::Blocked => Ok(Walked::Blocked),
                Walked::Val(cond) => match cond.truthy() {
                    Some(true) => self.walk(t, env),
                    Some(false) => self.walk(els, env),
                    None => Err(EvalError::NonBoolCondition(cond.type_name())),
                },
            },
            Expr::Call(f, args) => {
                let mut vals = Vec::with_capacity(args.len());
                let mut blocked = false;
                for a in args {
                    match self.walk(a, env)? {
                        Walked::Val(v) => vals.push(v),
                        Walked::Blocked => blocked = true,
                    }
                }
                if blocked {
                    return Ok(Walked::Blocked);
                }
                let def = self.prog.def(*f);
                if def.params.len() != vals.len() {
                    return Err(EvalError::CallArity {
                        name: def.name.clone(),
                        expected: def.params.len(),
                        got: vals.len(),
                    });
                }
                let demand = Demand::new(*f, vals);
                match self.cache.get(&demand) {
                    Some(Some(v)) => Ok(Walked::Val(v.clone())),
                    Some(None) => Ok(Walked::Blocked),
                    None => {
                        if self.seen.insert(demand.clone()) {
                            self.new_demands.push(demand);
                        }
                        Ok(Walked::Blocked)
                    }
                }
            }
            Expr::Let(name, bound, body) => match self.walk(bound, env)? {
                // `let` is strict in the binding; the body waits for it.
                Walked::Blocked => Ok(Walked::Blocked),
                Walked::Val(v) => {
                    env.push(name.clone(), v);
                    let r = self.walk(body, env);
                    env.pop();
                    r
                }
            },
        }
    }
}

/// Runs a task to completion on a single processor by recursively satisfying
/// its demands depth-first. This is the smallest possible driver of the wave
/// evaluator and serves as the bridge between the reference semantics and
/// the distributed machines: `run_local` must agree with
/// [`crate::eval::eval_call`] on every terminating, error-free program.
pub fn run_local(prog: &Program, fun: FnId, args: &[Value]) -> Result<Value, EvalError> {
    run_local_depth(prog, fun, args, 0)
}

fn run_local_depth(
    prog: &Program,
    fun: FnId,
    args: &[Value],
    depth: usize,
) -> Result<Value, EvalError> {
    if depth > 100_000 {
        return Err(EvalError::DepthExceeded);
    }
    let mut task = TaskEval::new(fun, args.to_vec());
    loop {
        match task.step(prog)? {
            WaveResult::Done(v) => return Ok(v),
            WaveResult::Blocked { new_demands } => {
                if new_demands.is_empty() && task.ready() {
                    // Blocked with nothing outstanding and nothing new: the
                    // program is stuck, which cannot happen for well-formed
                    // programs.
                    unreachable!("wave evaluator deadlock");
                }
                for d in new_demands {
                    let v = run_local_depth(prog, d.fun, &d.args, depth + 1)?;
                    task.supply(&d, v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_call;
    use crate::prim::PrimOp;

    fn fib_program() -> (Program, FnId) {
        let mut p = Program::new();
        let fib = p.declare("fib");
        p.define(
            "fib",
            &["n"],
            Expr::if_(
                Expr::Prim(PrimOp::Lt, vec![Expr::var("n"), Expr::int(2)]),
                Expr::var("n"),
                Expr::Prim(
                    PrimOp::Add,
                    vec![
                        Expr::Call(
                            fib,
                            vec![Expr::Prim(PrimOp::Sub, vec![Expr::var("n"), Expr::int(1)])],
                        ),
                        Expr::Call(
                            fib,
                            vec![Expr::Prim(PrimOp::Sub, vec![Expr::var("n"), Expr::int(2)])],
                        ),
                    ],
                ),
            ),
        );
        (p, fib)
    }

    #[test]
    fn leaf_task_completes_in_one_wave() {
        let (p, fib) = fib_program();
        let mut t = TaskEval::new(fib, vec![1.into()]);
        assert!(matches!(
            t.step(&p).unwrap(),
            WaveResult::Done(Value::Int(1))
        ));
        assert_eq!(t.waves(), 1);
        assert!(t.work() > 0);
    }

    #[test]
    fn interior_task_demands_both_children_in_one_wave() {
        let (p, fib) = fib_program();
        let mut t = TaskEval::new(fib, vec![5.into()]);
        let r = t.step(&p).unwrap();
        match r {
            WaveResult::Blocked { new_demands } => {
                assert_eq!(
                    new_demands,
                    vec![
                        Demand::new(fib, vec![4.into()]),
                        Demand::new(fib, vec![3.into()])
                    ]
                );
            }
            other => panic!("expected blocked, got {other:?}"),
        }
        assert_eq!(t.outstanding(), 2);
        assert!(!t.ready());
    }

    #[test]
    fn supply_then_finish() {
        let (p, fib) = fib_program();
        let mut t = TaskEval::new(fib, vec![5.into()]);
        t.step(&p).unwrap();
        assert!(t.supply(&Demand::new(fib, vec![4.into()]), 3.into()));
        assert!(t.supply(&Demand::new(fib, vec![3.into()]), 2.into()));
        assert!(t.ready());
        match t.step(&p).unwrap() {
            WaveResult::Done(v) => assert_eq!(v, Value::Int(5)),
            other => panic!("expected done, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_supply_is_ignored() {
        let (p, fib) = fib_program();
        let mut t = TaskEval::new(fib, vec![5.into()]);
        t.step(&p).unwrap();
        let d = Demand::new(fib, vec![4.into()]);
        assert!(t.supply(&d, 3.into()));
        assert!(!t.supply(&d, 999.into()), "second copy must be ignored");
        assert!(!t.supply(&Demand::new(fib, vec![77.into()]), 1.into()));
        // First value wins.
        assert_eq!(t.cached(&d), Some(&Value::Int(3)));
    }

    #[test]
    fn preload_prevents_spawn() {
        // Salvage path: preload fib(4) before the first wave; the task then
        // only ever demands fib(3).
        let (p, fib) = fib_program();
        let mut t = TaskEval::new(fib, vec![5.into()]);
        assert!(t.preload(Demand::new(fib, vec![4.into()]), 3.into()));
        match t.step(&p).unwrap() {
            WaveResult::Blocked { new_demands } => {
                assert_eq!(new_demands, vec![Demand::new(fib, vec![3.into()])]);
            }
            other => panic!("expected blocked, got {other:?}"),
        }
        assert!(t.supply(&Demand::new(fib, vec![3.into()]), 2.into()));
        assert!(matches!(
            t.step(&p).unwrap(),
            WaveResult::Done(Value::Int(5))
        ));
    }

    #[test]
    fn preload_of_outstanding_demand_acts_as_supply() {
        let (p, fib) = fib_program();
        let mut t = TaskEval::new(fib, vec![5.into()]);
        t.step(&p).unwrap();
        assert_eq!(t.outstanding(), 2);
        assert!(!t.preload(Demand::new(fib, vec![4.into()]), 3.into()));
        assert_eq!(t.outstanding(), 1);
    }

    #[test]
    fn duplicate_calls_in_one_body_share_a_demand() {
        let mut p = Program::new();
        let g = p.define("g", &["x"], Expr::var("x"));
        let f = p.define(
            "f",
            &["x"],
            Expr::Prim(
                PrimOp::Add,
                vec![
                    Expr::Call(g, vec![Expr::var("x")]),
                    Expr::Call(g, vec![Expr::var("x")]),
                ],
            ),
        );
        let mut t = TaskEval::new(f, vec![21.into()]);
        match t.step(&p).unwrap() {
            WaveResult::Blocked { new_demands } => assert_eq!(new_demands.len(), 1),
            other => panic!("{other:?}"),
        }
        t.supply(&Demand::new(g, vec![21.into()]), 21.into());
        assert!(matches!(
            t.step(&p).unwrap(),
            WaveResult::Done(Value::Int(42))
        ));
    }

    #[test]
    fn run_local_matches_reference_on_fib() {
        let (p, fib) = fib_program();
        for n in 0..15 {
            let reference = eval_call(&p, fib, &[Value::Int(n)]).unwrap();
            let wave = run_local(&p, fib, &[Value::Int(n)]).unwrap();
            assert_eq!(reference, wave, "fib({n})");
        }
    }

    #[test]
    fn nested_calls_take_two_waves() {
        // f(x) = g(g(x)): the outer g can only be demanded after the inner
        // returns.
        let mut p = Program::new();
        let g = p.define(
            "g",
            &["x"],
            Expr::Prim(PrimOp::Add, vec![Expr::var("x"), Expr::int(1)]),
        );
        let f = p.define(
            "f",
            &["x"],
            Expr::Call(g, vec![Expr::Call(g, vec![Expr::var("x")])]),
        );
        let mut t = TaskEval::new(f, vec![0.into()]);
        match t.step(&p).unwrap() {
            WaveResult::Blocked { new_demands } => {
                assert_eq!(new_demands, vec![Demand::new(g, vec![0.into()])]);
            }
            other => panic!("{other:?}"),
        }
        t.supply(&Demand::new(g, vec![0.into()]), 1.into());
        match t.step(&p).unwrap() {
            WaveResult::Blocked { new_demands } => {
                assert_eq!(new_demands, vec![Demand::new(g, vec![1.into()])]);
            }
            other => panic!("{other:?}"),
        }
        t.supply(&Demand::new(g, vec![1.into()]), 2.into());
        assert!(matches!(
            t.step(&p).unwrap(),
            WaveResult::Done(Value::Int(2))
        ));
        assert_eq!(t.waves(), 3);
    }

    #[test]
    fn blocked_condition_does_not_speculate() {
        // h(n) = if g(n) then diverge(n) else 0 — the diverging branch must
        // not be demanded while the condition is blocked.
        let mut p = Program::new();
        let g = p.define("g", &["x"], Expr::bool(false));
        let dv = p.declare("diverge");
        p.define("diverge", &["x"], Expr::Call(dv, vec![Expr::var("x")]));
        let h = p.define(
            "h",
            &["n"],
            Expr::if_(
                Expr::Call(g, vec![Expr::var("n")]),
                Expr::Call(dv, vec![Expr::var("n")]),
                Expr::int(0),
            ),
        );
        let mut t = TaskEval::new(h, vec![1.into()]);
        match t.step(&p).unwrap() {
            WaveResult::Blocked { new_demands } => {
                assert_eq!(new_demands, vec![Demand::new(g, vec![1.into()])]);
            }
            other => panic!("{other:?}"),
        }
        t.supply(&Demand::new(g, vec![1.into()]), false.into());
        assert!(matches!(
            t.step(&p).unwrap(),
            WaveResult::Done(Value::Int(0))
        ));
    }
}
