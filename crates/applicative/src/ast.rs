//! Abstract syntax of the applicative language.
//!
//! A [`Program`] is a set of named combinator definitions ([`FnDef`]). There
//! are no first-class closures: every user function is a top-level
//! combinator, so a *task packet* — `(FnId, Vec<Value>)` — completely
//! describes a computation. This is exactly the property the paper's
//! functional checkpointing depends on: "The packet contains all necessary
//! information ... to activate the child task" (§2).

use crate::value::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::prim::PrimOp;

/// Identifier of a top-level combinator: an index into [`Program::defs`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FnId(pub u32);

impl fmt::Display for FnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// An expression. Variables are referenced by name; shadowing resolves to the
/// innermost binding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// A literal value.
    Lit(Value),
    /// A variable reference (function parameter or `let` binding).
    Var(Arc<str>),
    /// A strict primitive operation, evaluated locally by the task.
    Prim(PrimOp, Vec<Expr>),
    /// Conditional. The condition must evaluate to a `Bool`. Branches are
    /// evaluated lazily — this is the only construct that guards recursion.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Application of a user combinator. In distributed execution this is a
    /// *spawn point*: the arguments are evaluated locally, then the
    /// application becomes a child task demand (`DEMAND_IT` in the paper's
    /// §4.2 protocol).
    Call(FnId, Vec<Expr>),
    /// `let name = bound in body`.
    Let(Arc<str>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Literal integer shorthand.
    pub fn int(n: i64) -> Expr {
        Expr::Lit(Value::Int(n))
    }

    /// Literal boolean shorthand.
    pub fn bool(b: bool) -> Expr {
        Expr::Lit(Value::Bool(b))
    }

    /// Variable shorthand.
    pub fn var(name: &str) -> Expr {
        Expr::Var(Arc::from(name))
    }

    /// `let` shorthand.
    pub fn let_(name: &str, bound: Expr, body: Expr) -> Expr {
        Expr::Let(Arc::from(name), Box::new(bound), Box::new(body))
    }

    /// `if` shorthand.
    pub fn if_(cond: Expr, then: Expr, els: Expr) -> Expr {
        Expr::If(Box::new(cond), Box::new(then), Box::new(els))
    }

    /// Number of AST nodes; used by cost models and as a complexity guard in
    /// tests.
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Lit(_) | Expr::Var(_) => 1,
            Expr::Prim(_, args) => 1 + args.iter().map(Expr::node_count).sum::<usize>(),
            Expr::If(c, t, e) => 1 + c.node_count() + t.node_count() + e.node_count(),
            Expr::Call(_, args) => 1 + args.iter().map(Expr::node_count).sum::<usize>(),
            Expr::Let(_, b, body) => 1 + b.node_count() + body.node_count(),
        }
    }

    /// Maximum nesting depth of the expression.
    pub fn depth(&self) -> usize {
        match self {
            Expr::Lit(_) | Expr::Var(_) => 1,
            Expr::Prim(_, args) => 1 + args.iter().map(Expr::depth).max().unwrap_or(0),
            Expr::If(c, t, e) => 1 + c.depth().max(t.depth()).max(e.depth()),
            Expr::Call(_, args) => 1 + args.iter().map(Expr::depth).max().unwrap_or(0),
            Expr::Let(_, b, body) => 1 + b.depth().max(body.depth()),
        }
    }

    /// Collects the `FnId`s of all user-function call sites in this
    /// expression (including nested ones), in left-to-right order.
    pub fn call_sites(&self) -> Vec<FnId> {
        let mut out = Vec::new();
        self.collect_calls(&mut out);
        out
    }

    fn collect_calls(&self, out: &mut Vec<FnId>) {
        match self {
            Expr::Lit(_) | Expr::Var(_) => {}
            Expr::Prim(_, args) => args.iter().for_each(|a| a.collect_calls(out)),
            Expr::If(c, t, e) => {
                c.collect_calls(out);
                t.collect_calls(out);
                e.collect_calls(out);
            }
            Expr::Call(f, args) => {
                out.push(*f);
                args.iter().for_each(|a| a.collect_calls(out));
            }
            Expr::Let(_, b, body) => {
                b.collect_calls(out);
                body.collect_calls(out);
            }
        }
    }
}

/// A top-level combinator definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FnDef {
    /// Human-readable name (unique within a program).
    pub name: Arc<str>,
    /// Parameter names, bound positionally at application time.
    pub params: Vec<Arc<str>>,
    /// The function body.
    pub body: Expr,
}

/// A complete program: a set of combinators. The *entry point* is chosen by
/// the workload (see [`crate::programs::Workload`]), not baked into the
/// program, so one program can serve many experiments.
#[derive(Clone, Debug, Default)]
pub struct Program {
    defs: Vec<FnDef>,
    by_name: HashMap<Arc<str>, FnId>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Registers a function name ahead of its definition, so that mutually
    /// recursive definitions can reference each other. Returns the reserved
    /// id. Calling [`Program::define`] later with the same name fills the
    /// body in.
    pub fn declare(&mut self, name: &str) -> FnId {
        if let Some(id) = self.by_name.get(name) {
            return *id;
        }
        let id = FnId(self.defs.len() as u32);
        let name: Arc<str> = Arc::from(name);
        self.defs.push(FnDef {
            name: name.clone(),
            params: Vec::new(),
            body: Expr::Lit(Value::Unit),
        });
        self.by_name.insert(name, id);
        id
    }

    /// Defines (or fills in a declared) function. Returns its id.
    pub fn define(&mut self, name: &str, params: &[&str], body: Expr) -> FnId {
        let id = self.declare(name);
        let def = &mut self.defs[id.0 as usize];
        def.params = params.iter().map(|p| Arc::from(*p)).collect();
        def.body = body;
        id
    }

    /// Looks a function up by name.
    pub fn lookup(&self, name: &str) -> Option<FnId> {
        self.by_name.get(name).copied()
    }

    /// Returns the definition of `id`.
    ///
    /// # Panics
    /// Panics if `id` is not a function of this program; ids are only ever
    /// minted by the program itself, so this indicates a cross-program mixup.
    pub fn def(&self, id: FnId) -> &FnDef {
        &self.defs[id.0 as usize]
    }

    /// All definitions, in id order.
    pub fn defs(&self) -> &[FnDef] {
        &self.defs
    }

    /// Number of definitions.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True if the program has no definitions.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Validates static well-formedness: every call site targets an existing
    /// function and has the right arity, and every variable is bound.
    /// Returns the list of problems found (empty means well-formed).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for (i, def) in self.defs.iter().enumerate() {
            let mut scope: Vec<Arc<str>> = def.params.clone();
            self.validate_expr(&def.body, &mut scope, &def.name, &mut problems);
            if def.body == Expr::Lit(Value::Unit) && def.params.is_empty() {
                // A declared-but-never-defined function is almost certainly a
                // bug in program construction.
                let id = FnId(i as u32);
                if !self.defs.iter().any(|d| d.body.call_sites().contains(&id)) {
                    continue;
                }
                problems.push(format!(
                    "function `{}` declared but never defined",
                    def.name
                ));
            }
        }
        problems
    }

    fn validate_expr(
        &self,
        e: &Expr,
        scope: &mut Vec<Arc<str>>,
        fun: &str,
        problems: &mut Vec<String>,
    ) {
        match e {
            Expr::Lit(_) => {}
            Expr::Var(name) => {
                if !scope.iter().any(|s| s == name) {
                    problems.push(format!("in `{fun}`: unbound variable `{name}`"));
                }
            }
            Expr::Prim(_, args) => {
                for a in args {
                    self.validate_expr(a, scope, fun, problems);
                }
            }
            Expr::If(c, t, els) => {
                self.validate_expr(c, scope, fun, problems);
                self.validate_expr(t, scope, fun, problems);
                self.validate_expr(els, scope, fun, problems);
            }
            Expr::Call(f, args) => {
                match self.defs.get(f.0 as usize) {
                    None => problems.push(format!("in `{fun}`: call to unknown {f}")),
                    Some(def) => {
                        if def.params.len() != args.len() {
                            problems.push(format!(
                                "in `{fun}`: `{}` expects {} args, got {}",
                                def.name,
                                def.params.len(),
                                args.len()
                            ));
                        }
                    }
                }
                for a in args {
                    self.validate_expr(a, scope, fun, problems);
                }
            }
            Expr::Let(name, bound, body) => {
                self.validate_expr(bound, scope, fun, problems);
                scope.push(name.clone());
                self.validate_expr(body, scope, fun, problems);
                scope.pop();
            }
        }
    }
}

/// Builder-style helper to call a function by name while constructing ASTs.
pub fn call(id: FnId, args: Vec<Expr>) -> Expr {
    Expr::Call(id, args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prim::PrimOp;

    fn sample() -> (Program, FnId) {
        let mut p = Program::new();
        let fib = p.declare("fib");
        p.define(
            "fib",
            &["n"],
            Expr::if_(
                Expr::Prim(PrimOp::Lt, vec![Expr::var("n"), Expr::int(2)]),
                Expr::var("n"),
                Expr::Prim(
                    PrimOp::Add,
                    vec![
                        Expr::Call(
                            fib,
                            vec![Expr::Prim(PrimOp::Sub, vec![Expr::var("n"), Expr::int(1)])],
                        ),
                        Expr::Call(
                            fib,
                            vec![Expr::Prim(PrimOp::Sub, vec![Expr::var("n"), Expr::int(2)])],
                        ),
                    ],
                ),
            ),
        );
        (p, fib)
    }

    #[test]
    fn define_and_lookup() {
        let (p, fib) = sample();
        assert_eq!(p.lookup("fib"), Some(fib));
        assert_eq!(p.def(fib).params.len(), 1);
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
    }

    #[test]
    fn declare_is_idempotent() {
        let mut p = Program::new();
        let a = p.declare("f");
        let b = p.declare("f");
        assert_eq!(a, b);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn validate_accepts_wellformed() {
        let (p, _) = sample();
        assert!(p.validate().is_empty(), "{:?}", p.validate());
    }

    #[test]
    fn validate_rejects_unbound_var() {
        let mut p = Program::new();
        p.define("f", &["x"], Expr::var("y"));
        let problems = p.validate();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("unbound variable `y`"));
    }

    #[test]
    fn validate_rejects_bad_arity() {
        let mut p = Program::new();
        let f = p.declare("f");
        p.define("f", &["x"], Expr::Call(f, vec![Expr::int(1), Expr::int(2)]));
        let problems = p.validate();
        assert!(problems.iter().any(|s| s.contains("expects 1 args, got 2")));
    }

    #[test]
    fn let_scoping_in_validate() {
        let mut p = Program::new();
        p.define("f", &[], Expr::let_("x", Expr::int(1), Expr::var("x")));
        assert!(p.validate().is_empty());
        // And out-of-scope use is caught:
        let mut q = Program::new();
        q.define(
            "g",
            &[],
            Expr::Prim(
                PrimOp::Add,
                vec![
                    Expr::let_("x", Expr::int(1), Expr::var("x")),
                    Expr::var("x"),
                ],
            ),
        );
        assert!(!q.validate().is_empty());
    }

    #[test]
    fn node_count_and_depth() {
        let (p, fib) = sample();
        let body = &p.def(fib).body;
        assert!(body.node_count() >= 10);
        assert!(body.depth() >= 4);
    }

    #[test]
    fn call_sites_found_in_order() {
        let (p, fib) = sample();
        assert_eq!(p.def(fib).body.call_sites(), vec![fib, fib]);
    }
}
