//! Variable environments.
//!
//! An [`Env`] is a small stack of name/value bindings: function parameters
//! first, then `let` bindings pushed and popped as evaluation walks the body.
//! Lookup scans from the innermost binding outwards, so shadowing behaves
//! lexically. Bodies in this language are small, so linear scan beats any
//! map-based structure (see the "short `Vec`s" advice in the Rust
//! Performance Book).

use crate::error::EvalError;
use crate::value::Value;
use std::sync::Arc;

/// A lexical environment.
#[derive(Clone, Debug, Default)]
pub struct Env {
    bindings: Vec<(Arc<str>, Value)>,
}

impl Env {
    /// Creates an empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Creates an environment binding `params` to `args` positionally, as at
    /// function application.
    pub fn bind_params(params: &[Arc<str>], args: &[Value]) -> Env {
        debug_assert_eq!(params.len(), args.len());
        Env {
            bindings: params.iter().cloned().zip(args.iter().cloned()).collect(),
        }
    }

    /// Rebinds a recycled environment in place: drops every live binding,
    /// then binds `params` to `args` positionally. Equivalent to
    /// [`Env::bind_params`] but reuses the existing allocation — the wave
    /// evaluator's frame pool calls this once per wave.
    pub fn rebind(&mut self, params: &[Arc<str>], args: &[Value]) {
        debug_assert_eq!(params.len(), args.len());
        self.bindings.clear();
        self.bindings
            .extend(params.iter().cloned().zip(args.iter().cloned()));
    }

    /// Pushes a binding (innermost scope).
    pub fn push(&mut self, name: Arc<str>, value: Value) {
        self.bindings.push((name, value));
    }

    /// Pops the innermost binding.
    pub fn pop(&mut self) {
        self.bindings.pop();
    }

    /// Number of live bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// True if no bindings are live.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Looks up a variable, innermost binding first.
    pub fn lookup(&self, name: &str) -> Result<&Value, EvalError> {
        self.bindings
            .iter()
            .rev()
            .find(|(n, _)| &**n == name)
            .map(|(_, v)| v)
            .ok_or_else(|| EvalError::UnboundVar(Arc::from(name)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_params_positionally() {
        let params: Vec<Arc<str>> = vec!["a".into(), "b".into()];
        let env = Env::bind_params(&params, &[1.into(), 2.into()]);
        assert_eq!(env.lookup("a").unwrap(), &Value::Int(1));
        assert_eq!(env.lookup("b").unwrap(), &Value::Int(2));
        assert_eq!(env.len(), 2);
    }

    #[test]
    fn shadowing_resolves_innermost() {
        let mut env = Env::new();
        env.push("x".into(), 1.into());
        env.push("x".into(), 2.into());
        assert_eq!(env.lookup("x").unwrap(), &Value::Int(2));
        env.pop();
        assert_eq!(env.lookup("x").unwrap(), &Value::Int(1));
    }

    #[test]
    fn unbound_is_an_error() {
        let env = Env::new();
        assert!(matches!(env.lookup("zzz"), Err(EvalError::UnboundVar(_))));
        assert!(env.is_empty());
    }
}
