//! A fast, non-cryptographic hasher for the protocol's hot maps.
//!
//! The wave evaluator's call cache and the engine's task/child/checkpoint
//! tables are keyed by small structured values (demands, level stamps,
//! task keys) and live entirely inside one process — there is no untrusted
//! input to defend against, so std's SipHash pays DoS resistance the hot
//! path cannot use. This is the `rustc-hash` (FxHash) multiply-rotate mix:
//! a few arithmetic ops per word, which on demand-sized keys is an order
//! of magnitude cheaper than SipHash.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash word mixer (rotate, xor, multiply per input word).
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_spreading() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_eq!(h(b"splice"), h(b"splice"));
        assert_ne!(h(b"splice"), h(b"splics"));
        // Length is mixed in, so a zero tail is not a collision.
        assert_ne!(h(b"ab"), h(b"ab\0"));
    }

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        for i in 0..100u32 {
            m.insert(format!("k{i}"), i);
        }
        for i in 0..100u32 {
            assert_eq!(m.get(&format!("k{i}")), Some(&i));
        }
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }
}
