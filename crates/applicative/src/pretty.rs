//! Pretty-printer producing parseable surface syntax.
//!
//! `parse(print(p))` reproduces `p` — checked by round-trip property tests.

use crate::ast::{Expr, Program};
use std::fmt::Write;

/// Renders an expression in surface syntax. `prog` supplies function names
/// for call sites.
pub fn expr_to_string(prog: &Program, e: &Expr) -> String {
    let mut s = String::new();
    write_expr(prog, e, &mut s);
    s
}

/// Renders a whole program as a sequence of `def` forms, in definition order.
pub fn program_to_string(prog: &Program) -> String {
    let mut s = String::new();
    for def in prog.defs() {
        let _ = write!(s, "(def {} (", def.name);
        for (i, p) in def.params.iter().enumerate() {
            if i > 0 {
                s.push(' ');
            }
            s.push_str(p);
        }
        s.push_str(") ");
        write_expr(prog, &def.body, &mut s);
        s.push_str(")\n");
    }
    s
}

fn write_expr(prog: &Program, e: &Expr, out: &mut String) {
    match e {
        Expr::Lit(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::Var(name) => out.push_str(name),
        Expr::Prim(op, args) => {
            let _ = write!(out, "({op}");
            for a in args {
                out.push(' ');
                write_expr(prog, a, out);
            }
            out.push(')');
        }
        Expr::If(c, t, els) => {
            out.push_str("(if ");
            write_expr(prog, c, out);
            out.push(' ');
            write_expr(prog, t, out);
            out.push(' ');
            write_expr(prog, els, out);
            out.push(')');
        }
        Expr::Call(f, args) => {
            let _ = write!(out, "({}", prog.def(*f).name);
            for a in args {
                out.push(' ');
                write_expr(prog, a, out);
            }
            out.push(')');
        }
        Expr::Let(name, bound, body) => {
            let _ = write!(out, "(let (({name} ");
            write_expr(prog, bound, out);
            out.push_str(")) ");
            write_expr(prog, body, out);
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const SRC: &str = r#"
        (def fib (n)
          (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
        (def pair (a b) (list a b "x" #t ()))
        (def scoped (x) (let ((y (+ x 1))) (* y y)))
    "#;

    #[test]
    fn round_trip_preserves_programs() {
        let first = parse(SRC).unwrap().program;
        let printed = program_to_string(&first);
        let second = parse(&printed).unwrap().program;
        assert_eq!(first.len(), second.len());
        for (a, b) in first.defs().iter().zip(second.defs()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.params, b.params);
            assert_eq!(a.body, b.body, "{}", a.name);
        }
    }

    #[test]
    fn value_literals_render_parseably() {
        let parsed = parse(r#"(def f () (list 1 -2 #t "s"))"#).unwrap();
        let printed = program_to_string(&parsed.program);
        assert!(printed.contains(r#"(list 1 -2 #t "s")"#));
    }
}
