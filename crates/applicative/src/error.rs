//! Evaluation errors.
//!
//! The language is untyped, so type mismatches surface at run time. The
//! workload programs shipped in [`crate::programs`] are error-free; errors
//! exist so the evaluators are total and so tests can assert on misuse.

use crate::prim::PrimOp;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// An error raised during evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// Reference to a variable that is not in scope.
    UnboundVar(Arc<str>),
    /// A primitive applied to a value of the wrong type.
    TypeError {
        /// The operator involved.
        op: PrimOp,
        /// Expected type name.
        expected: &'static str,
        /// The offending value's type name.
        got: &'static str,
    },
    /// A primitive applied to the wrong number of arguments.
    PrimArity {
        /// The operator involved.
        op: PrimOp,
        /// Expected argument count.
        expected: usize,
        /// Received argument count.
        got: usize,
    },
    /// A user function applied to the wrong number of arguments.
    CallArity {
        /// Function name.
        name: Arc<str>,
        /// Expected argument count.
        expected: usize,
        /// Received argument count.
        got: usize,
    },
    /// Integer division or modulo by zero.
    DivByZero,
    /// `head`/`tail` of an empty list.
    EmptyList(PrimOp),
    /// `nth` out of bounds.
    IndexOutOfBounds {
        /// Requested index.
        index: i64,
        /// List length.
        len: usize,
    },
    /// `range` would materialize an unreasonably large list.
    RangeTooLong {
        /// Lower bound.
        lo: i64,
        /// Upper bound.
        hi: i64,
    },
    /// An `if` condition evaluated to a non-boolean.
    NonBoolCondition(&'static str),
    /// The step budget was exhausted (guards against runaway programs in
    /// tests and experiments).
    FuelExhausted,
    /// The recursion depth limit was exceeded.
    DepthExceeded,
}

impl EvalError {
    /// Helper constructing a [`EvalError::TypeError`].
    pub fn type_error(op: PrimOp, expected: &'static str, got: &Value) -> EvalError {
        EvalError::TypeError {
            op,
            expected,
            got: got.type_name(),
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVar(v) => write!(f, "unbound variable `{v}`"),
            EvalError::TypeError { op, expected, got } => {
                write!(f, "`{op}` expects {expected}, got {got}")
            }
            EvalError::PrimArity { op, expected, got } => {
                write!(f, "`{op}` expects {expected} args, got {got}")
            }
            EvalError::CallArity {
                name,
                expected,
                got,
            } => write!(f, "`{name}` expects {expected} args, got {got}"),
            EvalError::DivByZero => write!(f, "division by zero"),
            EvalError::EmptyList(op) => write!(f, "`{op}` of empty list"),
            EvalError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for list of length {len}")
            }
            EvalError::RangeTooLong { lo, hi } => {
                write!(
                    f,
                    "range {lo}..{hi} exceeds the maximum materializable length"
                )
            }
            EvalError::NonBoolCondition(t) => write!(f, "if-condition must be bool, got {t}"),
            EvalError::FuelExhausted => write!(f, "evaluation step budget exhausted"),
            EvalError::DepthExceeded => write!(f, "recursion depth limit exceeded"),
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            EvalError::UnboundVar("x".into()).to_string(),
            "unbound variable `x`"
        );
        assert_eq!(EvalError::DivByZero.to_string(), "division by zero");
        assert!(EvalError::type_error(PrimOp::Add, "int", &Value::Unit)
            .to_string()
            .contains("expects int, got unit"));
        assert!(EvalError::FuelExhausted.to_string().contains("budget"));
    }
}
