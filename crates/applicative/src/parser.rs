//! S-expression parser for the applicative language.
//!
//! Surface syntax:
//!
//! ```text
//! program := form*
//! form    := (def NAME (PARAM*) EXPR)      ; combinator definition
//!          | (main EXPR)                   ; optional entry expression
//! EXPR    := INT | #t | #f | "string" | NAME
//!          | (if EXPR EXPR EXPR)
//!          | (let ((NAME EXPR)*) EXPR)
//!          | (PRIM EXPR*)                  ; e.g. (+ a b), (head xs)
//!          | (NAME EXPR*)                  ; user-combinator application
//! ```
//!
//! Definitions may be mutually recursive; names are resolved in a first pass.

use crate::ast::{Expr, Program};
use crate::prim::PrimOp;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// A parse failure, with a 1-based line/column of the offending token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Result of parsing a source file: the program and, if a `(main …)` form was
/// present, the entry expression.
#[derive(Clone, Debug)]
pub struct Parsed {
    /// The parsed program.
    pub program: Program,
    /// The `(main …)` expression, if any.
    pub main: Option<Expr>,
}

/// Parses a complete source string.
pub fn parse(src: &str) -> Result<Parsed, ParseError> {
    let tokens = lex(src)?;
    let mut sexprs = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let (sx, next) = parse_sexpr(&tokens, pos)?;
        sexprs.push(sx);
        pos = next;
    }
    build(sexprs)
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Open,
    Close,
    Int(i64),
    Bool(bool),
    Str(String),
    Sym(String),
}

#[derive(Clone, Debug)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

fn err<T>(message: impl Into<String>, line: usize, col: usize) -> Result<T, ParseError> {
    Err(ParseError {
        message: message.into(),
        line,
        col,
    })
}

fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        let (tl, tc) = (line, col);
        let bump = |c: char, line: &mut usize, col: &mut usize| {
            if c == '\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
        };
        match c {
            ';' => {
                // Comment to end of line.
                while let Some(&c) = chars.peek() {
                    chars.next();
                    bump(c, &mut line, &mut col);
                    if c == '\n' {
                        break;
                    }
                }
            }
            c if c.is_whitespace() => {
                chars.next();
                bump(c, &mut line, &mut col);
            }
            '(' => {
                chars.next();
                bump(c, &mut line, &mut col);
                out.push(Spanned {
                    tok: Tok::Open,
                    line: tl,
                    col: tc,
                });
            }
            ')' => {
                chars.next();
                bump(c, &mut line, &mut col);
                out.push(Spanned {
                    tok: Tok::Close,
                    line: tl,
                    col: tc,
                });
            }
            '"' => {
                chars.next();
                bump(c, &mut line, &mut col);
                let mut s = String::new();
                loop {
                    match chars.next() {
                        None => return err("unterminated string", tl, tc),
                        Some('"') => {
                            bump('"', &mut line, &mut col);
                            break;
                        }
                        Some('\\') => {
                            bump('\\', &mut line, &mut col);
                            match chars.next() {
                                Some('n') => {
                                    s.push('\n');
                                    bump('n', &mut line, &mut col);
                                }
                                Some('"') => {
                                    s.push('"');
                                    bump('"', &mut line, &mut col);
                                }
                                Some('\\') => {
                                    s.push('\\');
                                    bump('\\', &mut line, &mut col);
                                }
                                other => return err(format!("bad escape {other:?}"), line, col),
                            }
                        }
                        Some(c) => {
                            s.push(c);
                            bump(c, &mut line, &mut col);
                        }
                    }
                }
                out.push(Spanned {
                    tok: Tok::Str(s),
                    line: tl,
                    col: tc,
                });
            }
            _ => {
                let mut sym = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() || c == '(' || c == ')' || c == ';' || c == '"' {
                        break;
                    }
                    sym.push(c);
                    chars.next();
                    bump(c, &mut line, &mut col);
                }
                let tok = if sym == "#t" {
                    Tok::Bool(true)
                } else if sym == "#f" {
                    Tok::Bool(false)
                } else if let Ok(n) = sym.parse::<i64>() {
                    Tok::Int(n)
                } else {
                    Tok::Sym(sym)
                };
                out.push(Spanned {
                    tok,
                    line: tl,
                    col: tc,
                });
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// S-expressions
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum SExpr {
    Atom(Spanned),
    List(Vec<SExpr>, usize, usize),
}

impl SExpr {
    fn pos(&self) -> (usize, usize) {
        match self {
            SExpr::Atom(s) => (s.line, s.col),
            SExpr::List(_, l, c) => (*l, *c),
        }
    }
}

fn parse_sexpr(tokens: &[Spanned], pos: usize) -> Result<(SExpr, usize), ParseError> {
    match tokens.get(pos) {
        None => err("unexpected end of input", 0, 0),
        Some(t) => match &t.tok {
            Tok::Close => err("unexpected `)`", t.line, t.col),
            Tok::Open => {
                let mut items = Vec::new();
                let mut p = pos + 1;
                loop {
                    match tokens.get(p) {
                        None => return err("unclosed `(`", t.line, t.col),
                        Some(c) if c.tok == Tok::Close => {
                            return Ok((SExpr::List(items, t.line, t.col), p + 1))
                        }
                        Some(_) => {
                            let (sx, next) = parse_sexpr(tokens, p)?;
                            items.push(sx);
                            p = next;
                        }
                    }
                }
            }
            _ => Ok((SExpr::Atom(t.clone()), pos + 1)),
        },
    }
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

fn build(forms: Vec<SExpr>) -> Result<Parsed, ParseError> {
    let mut program = Program::new();
    // First pass: declare every definition so bodies can reference any name.
    for form in &forms {
        if let SExpr::List(items, l, c) = form {
            match items.first() {
                Some(SExpr::Atom(Spanned {
                    tok: Tok::Sym(head),
                    ..
                })) if head == "def" => {
                    let name = match items.get(1) {
                        Some(SExpr::Atom(Spanned {
                            tok: Tok::Sym(n), ..
                        })) => n.clone(),
                        _ => return err("def: expected a name", *l, *c),
                    };
                    if PrimOp::from_name(&name).is_some()
                        || name == "if"
                        || name == "let"
                        || name == "def"
                        || name == "main"
                    {
                        return err(format!("def: `{name}` is reserved"), *l, *c);
                    }
                    program.declare(&name);
                }
                _ => {}
            }
        }
    }
    // Second pass: bodies and main.
    let mut main = None;
    for form in forms {
        let (l, c) = form.pos();
        let SExpr::List(items, ..) = form else {
            return err("top-level forms must be lists", l, c);
        };
        let head = match items.first() {
            Some(SExpr::Atom(Spanned {
                tok: Tok::Sym(h), ..
            })) => h.clone(),
            _ => return err("expected `def` or `main`", l, c),
        };
        match head.as_str() {
            "def" => {
                if items.len() != 4 {
                    return err("def: expected (def name (params) body)", l, c);
                }
                let name = match &items[1] {
                    SExpr::Atom(Spanned {
                        tok: Tok::Sym(n), ..
                    }) => n.clone(),
                    _ => return err("def: expected a name", l, c),
                };
                let params = match &items[2] {
                    SExpr::List(ps, ..) => {
                        let mut out = Vec::new();
                        for p in ps {
                            match p {
                                SExpr::Atom(Spanned {
                                    tok: Tok::Sym(n), ..
                                }) => out.push(n.clone()),
                                other => {
                                    let (l, c) = other.pos();
                                    return err("def: parameters must be names", l, c);
                                }
                            }
                        }
                        out
                    }
                    _ => return err("def: expected a parameter list", l, c),
                };
                let body = build_expr(&items[3], &program)?;
                let param_refs: Vec<&str> = params.iter().map(|s| s.as_str()).collect();
                program.define(&name, &param_refs, body);
            }
            "main" => {
                if items.len() != 2 {
                    return err("main: expected (main expr)", l, c);
                }
                if main.is_some() {
                    return err("duplicate main form", l, c);
                }
                main = Some(build_expr(&items[1], &program)?);
            }
            other => return err(format!("unknown top-level form `{other}`"), l, c),
        }
    }
    Ok(Parsed { program, main })
}

fn build_expr(sx: &SExpr, program: &Program) -> Result<Expr, ParseError> {
    match sx {
        SExpr::Atom(t) => match &t.tok {
            Tok::Int(n) => Ok(Expr::Lit(Value::Int(*n))),
            Tok::Bool(b) => Ok(Expr::Lit(Value::Bool(*b))),
            Tok::Str(s) => Ok(Expr::Lit(Value::Str(Arc::from(s.as_str())))),
            Tok::Sym(s) => Ok(Expr::Var(Arc::from(s.as_str()))),
            Tok::Open | Tok::Close => unreachable!("delimiters are structural"),
        },
        SExpr::List(items, l, c) => {
            if items.is_empty() {
                return Ok(Expr::Lit(Value::Unit));
            }
            let head = match &items[0] {
                SExpr::Atom(Spanned {
                    tok: Tok::Sym(h), ..
                }) => h.clone(),
                other => {
                    let (l, c) = other.pos();
                    return err("application head must be a symbol", l, c);
                }
            };
            match head.as_str() {
                "if" => {
                    if items.len() != 4 {
                        return err("if: expected (if c t e)", *l, *c);
                    }
                    Ok(Expr::If(
                        Box::new(build_expr(&items[1], program)?),
                        Box::new(build_expr(&items[2], program)?),
                        Box::new(build_expr(&items[3], program)?),
                    ))
                }
                "let" => {
                    if items.len() != 3 {
                        return err("let: expected (let ((n e)...) body)", *l, *c);
                    }
                    let SExpr::List(bindings, ..) = &items[1] else {
                        return err("let: expected a binding list", *l, *c);
                    };
                    let body = build_expr(&items[2], program)?;
                    let mut result = body;
                    // Bindings nest left to right: later bindings see earlier
                    // ones, so fold from the right.
                    for b in bindings.iter().rev() {
                        let SExpr::List(pair, bl, bc) = b else {
                            let (l, c) = b.pos();
                            return err("let: each binding must be (name expr)", l, c);
                        };
                        if pair.len() != 2 {
                            return err("let: each binding must be (name expr)", *bl, *bc);
                        }
                        let name = match &pair[0] {
                            SExpr::Atom(Spanned {
                                tok: Tok::Sym(n), ..
                            }) => n.clone(),
                            other => {
                                let (l, c) = other.pos();
                                return err("let: binding name must be a symbol", l, c);
                            }
                        };
                        let bound = build_expr(&pair[1], program)?;
                        result =
                            Expr::Let(Arc::from(name.as_str()), Box::new(bound), Box::new(result));
                    }
                    Ok(result)
                }
                _ => {
                    let args: Result<Vec<Expr>, ParseError> =
                        items[1..].iter().map(|i| build_expr(i, program)).collect();
                    let args = args?;
                    if let Some(op) = PrimOp::from_name(&head) {
                        if let Some(want) = op.arity() {
                            if want != args.len() {
                                return err(
                                    format!("`{head}` expects {want} args, got {}", args.len()),
                                    *l,
                                    *c,
                                );
                            }
                        }
                        Ok(Expr::Prim(op, args))
                    } else if let Some(f) = program.lookup(&head) {
                        Ok(Expr::Call(f, args))
                    } else {
                        err(format!("unknown function `{head}`"), *l, *c)
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_call, eval_expr};

    const FIB: &str = r#"
        ; classic doubly recursive fibonacci
        (def fib (n)
          (if (< n 2) n
              (+ (fib (- n 1)) (fib (- n 2)))))
        (main (fib 10))
    "#;

    #[test]
    fn parses_and_evaluates_fib() {
        let parsed = parse(FIB).unwrap();
        assert!(parsed.program.validate().is_empty());
        let v = eval_expr(&parsed.program, parsed.main.as_ref().unwrap()).unwrap();
        assert_eq!(v, Value::Int(55));
    }

    #[test]
    fn mutual_recursion() {
        let src = r#"
            (def even? (n) (if (= n 0) #t (odd? (- n 1))))
            (def odd?  (n) (if (= n 0) #f (even? (- n 1))))
        "#;
        let parsed = parse(src).unwrap();
        let even = parsed.program.lookup("even?").unwrap();
        assert_eq!(
            eval_call(&parsed.program, even, &[10.into()]).unwrap(),
            true.into()
        );
        assert_eq!(
            eval_call(&parsed.program, even, &[7.into()]).unwrap(),
            false.into()
        );
    }

    #[test]
    fn let_bindings_see_earlier_ones() {
        let src = r#"
            (def f (x)
              (let ((a (+ x 1))
                    (b (* a 2)))
                (+ a b)))
        "#;
        let parsed = parse(src).unwrap();
        let f = parsed.program.lookup("f").unwrap();
        // a = 4, b = 8 → 12
        assert_eq!(
            eval_call(&parsed.program, f, &[3.into()]).unwrap(),
            12.into()
        );
    }

    #[test]
    fn strings_and_bools() {
        let src = r#"(def f () (list #t #f "hi\n" ()))"#;
        let parsed = parse(src).unwrap();
        let f = parsed.program.lookup("f").unwrap();
        let v = eval_call(&parsed.program, f, &[]).unwrap();
        assert_eq!(
            v,
            Value::list([true.into(), false.into(), Value::str("hi\n"), Value::Unit])
        );
    }

    #[test]
    fn errors_carry_positions() {
        let e = parse("(def f (x) (unknown x))").unwrap_err();
        assert!(e.message.contains("unknown function"));
        assert_eq!(e.line, 1);
        let e = parse("(def f (x)").unwrap_err();
        assert!(e.message.contains("unclosed"));
        let e = parse(")").unwrap_err();
        assert!(e.message.contains("unexpected"));
    }

    #[test]
    fn reserved_names_rejected() {
        let e = parse("(def if (x) x)").unwrap_err();
        assert!(e.message.contains("reserved"));
        let e = parse("(def + (x) x)").unwrap_err();
        assert!(e.message.contains("reserved"));
    }

    #[test]
    fn prim_arity_checked_at_parse_time() {
        let e = parse("(def f (x) (+ x))").unwrap_err();
        assert!(e.message.contains("expects 2 args"));
    }

    #[test]
    fn comments_are_skipped() {
        let parsed = parse("; nothing\n(def f () 1) ; trailing\n").unwrap();
        assert_eq!(parsed.program.len(), 1);
    }

    #[test]
    fn duplicate_main_rejected() {
        let e = parse("(main 1) (main 2)").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn unterminated_string() {
        let e = parse("(def f () \"oops)").unwrap_err();
        assert!(e.message.contains("unterminated"));
    }
}
