//! Property tests for the language substrate.
//!
//! The central law is determinacy (paper §2.1): the wave evaluator — however
//! its demands are satisfied — agrees with the reference evaluator. Here the
//! demands are satisfied by the depth-first local driver; the distributed
//! machines re-check the same law end-to-end in the workspace-level tests.

use proptest::prelude::*;
use splice_applicative::eval::eval_call;
use splice_applicative::parser::parse;
use splice_applicative::pretty::program_to_string;
use splice_applicative::wave::run_local;
use splice_applicative::{Value, Workload};

fn agree(w: &Workload) {
    let reference = eval_call(&w.program, w.entry, &w.args).unwrap();
    let wave = run_local(&w.program, w.entry, &w.args).unwrap();
    assert_eq!(reference, wave, "{}", w.name);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn wave_matches_reference_fib(n in 0i64..15) {
        agree(&Workload::fib(n));
    }

    #[test]
    fn wave_matches_reference_binomial(n in 0i64..11, k in 0i64..11) {
        let k = k.min(n);
        agree(&Workload::binomial(n, k));
    }

    #[test]
    fn wave_matches_reference_dcsum(lo in -20i64..20, len in 0i64..80) {
        agree(&Workload::dcsum(lo, lo + len));
    }

    #[test]
    fn wave_matches_reference_quicksort(len in 0usize..28, seed in any::<u64>()) {
        agree(&Workload::quicksort(len, seed));
    }

    #[test]
    fn wave_matches_reference_tak(x in 0i64..9, y in 0i64..5, z in 0i64..4) {
        agree(&Workload::tak(x, y, z));
    }

    #[test]
    fn wave_matches_reference_poly(deg in 0usize..18, x in -4i64..5, seed in any::<u64>()) {
        agree(&Workload::poly(deg, x, seed));
    }

    #[test]
    fn quicksort_really_sorts(len in 0usize..28, seed in any::<u64>()) {
        let w = Workload::quicksort(len, seed);
        let v = w.reference_result().unwrap();
        let xs: Vec<i64> = v.as_list().unwrap().iter().map(|x| x.as_int().unwrap()).collect();
        let mut sorted = xs.clone();
        sorted.sort();
        prop_assert_eq!(xs, sorted);
    }

    #[test]
    fn dcsum_closed_form(lo in -50i64..50, len in 0i64..100) {
        let hi = lo + len;
        let v = Workload::dcsum(lo, hi).reference_result().unwrap();
        let want: i64 = (lo..hi).sum();
        prop_assert_eq!(v, Value::Int(want));
    }

    #[test]
    fn pretty_parse_round_trip_suite(idx in 0usize..9) {
        let w = &Workload::suite_small()[idx];
        let printed = program_to_string(&w.program);
        let reparsed = parse(&printed).unwrap().program;
        prop_assert_eq!(w.program.len(), reparsed.len());
        for (a, b) in w.program.defs().iter().zip(reparsed.defs()) {
            prop_assert_eq!(&a.body, &b.body, "{}", a.name);
        }
        // The reparsed program still computes the same answer.
        let entry = reparsed.lookup(&w.program.def(w.entry).name).unwrap();
        let v1 = eval_call(&w.program, w.entry, &w.args).unwrap();
        let v2 = eval_call(&reparsed, entry, &w.args).unwrap();
        prop_assert_eq!(v1, v2);
    }
}

#[test]
fn mapreduce_and_nqueens_agree() {
    // Heavier cases kept out of proptest for runtime reasons.
    agree(&Workload::mapreduce(0, 16, 6));
    agree(&Workload::nqueens(5));
    agree(&Workload::ackermann(2, 3));
}
