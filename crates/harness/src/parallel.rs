//! The parallel reactor: one cooperative pump per core.
//!
//! [`ReactorCluster`] runs N [`Pump`]s — each a cooperative reactor in the
//! shape of [`crate::reactor::ReactorSubstrate`], owning a partition of the
//! engines — on N OS threads. Cross-reactor sends travel over per-pair
//! bounded channels (the crossbeam shim) as [`Transfer`] envelopes; the
//! envelope buffers are pooled and recycled between peers, so steady-state
//! cross-reactor traffic does not allocate per send.
//!
//! Execution is organised as *rounds* separated by barriers — a BSP-style
//! virtual-clock barrier protocol. Within a round each pump drains its
//! peers' envelopes, fires due deadlines, and sweeps its ready queue once
//! (bounded turns, [`WAVE_BURST`] waves per turn). Between rounds the
//! coordinator (the front-end driving [`ReactorCluster::round`]) advances
//! the shared virtual clock by the round's summed wave cost divided by the
//! live engine count — the same parallel clock charge the single-thread
//! reactor applies per wave — and applies fault plans, so fault timing and
//! quiescence detection stay deterministic for a fixed thread count, and
//! verdict/value parity with the DES holds at any thread count.
//!
//! Engines are not pinned to their birth pump: the coordinator may ask a
//! loaded pump to *donate* ready engines to an idle one
//! ([`RoundInput::donate`]) — barrier-granular work stealing. A migrating
//! engine travels as a [`Transfer::Engine`] envelope carrying its driver
//! loop, mailbox and pending timers; the shared [`ClusterMap`] location
//! table is updated at the barrier, and pumps forward mid-flight messages
//! for engines they no longer host.
//!
//! Like the reactor module, this file is sans-simulation: fault plans,
//! cost models and run reports live in the front-end (`splice-sim`'s
//! `ParallelReactorMachine`).

use crate::batch::{BatchStats, BatchingSubstrate};
use crate::driver::DriverLoop;
use crate::reactor::Inbound;
use crate::shard::{ShardMap, ShardRouter, ShardStats};
use crate::substrate::{corrupt_value, Substrate};
use crate::timer::TimerWheel;
use crate::trace::TracingSubstrate;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use splice_core::engine::Timer;
use splice_core::ids::ProcId;
use splice_core::packet::Msg;
use splice_core::sink::ActionSink;
use splice_simnet::trace::{TraceMode, Tracer};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Ready waves one scheduling turn runs before the engine goes back to the
/// tail of the ready queue — the same burst the single-thread reactor uses,
/// so per-engine scheduling granularity matches across the two backends.
pub const WAVE_BURST: usize = 4;

/// Cluster-wide shared state: per-engine liveness and corruption flags and
/// the engine→pump location table. All fields are atomics written only by
/// the coordinator *between* rounds (faults, migration commits), so within
/// a round every pump reads a stable snapshot; relaxed ordering suffices
/// because the barrier's channel send/recv pair already orders the writes.
pub struct ClusterMap {
    alive: Vec<AtomicBool>,
    corrupting: Vec<AtomicBool>,
    loc: Vec<AtomicU32>,
    broadcast: bool,
}

impl ClusterMap {
    /// A cluster of `n` live engines, engine `p` initially hosted on pump
    /// `assign(p)`; `broadcast` mirrors `DetectorConfig::broadcast`.
    pub fn new(n: u32, broadcast: bool, mut assign: impl FnMut(u32) -> u32) -> ClusterMap {
        ClusterMap {
            alive: (0..n).map(|_| AtomicBool::new(true)).collect(),
            corrupting: (0..n).map(|_| AtomicBool::new(false)).collect(),
            loc: (0..n).map(|p| AtomicU32::new(assign(p))).collect(),
            broadcast,
        }
    }

    /// Engine count.
    pub fn n(&self) -> u32 {
        self.alive.len() as u32
    }

    /// True while engine `p` has not crashed (out-of-range reads false).
    pub fn is_live(&self, p: ProcId) -> bool {
        self.alive
            .get(p.0 as usize)
            .is_some_and(|a| a.load(Ordering::Relaxed))
    }

    /// True when engine `p` emits corrupted replica results.
    pub fn is_corrupting(&self, p: ProcId) -> bool {
        self.corrupting
            .get(p.0 as usize)
            .is_some_and(|c| c.load(Ordering::Relaxed))
    }

    /// The pump currently hosting engine `p`.
    pub fn pump_of(&self, p: ProcId) -> u32 {
        self.loc[p.0 as usize].load(Ordering::Relaxed)
    }

    /// Marks `p` fail-silent dead (coordinator, at a barrier).
    pub fn set_dead(&self, p: ProcId) {
        self.alive[p.0 as usize].store(false, Ordering::Relaxed);
    }

    /// Marks `p` as corrupting (coordinator, at a barrier).
    pub fn set_corrupting(&self, p: ProcId) {
        self.corrupting[p.0 as usize].store(true, Ordering::Relaxed);
    }

    /// Commits a migration: engine `p` is now hosted on `pump`
    /// (coordinator, at a barrier).
    pub fn set_pump(&self, p: ProcId, pump: u32) {
        self.loc[p.0 as usize].store(pump, Ordering::Relaxed);
    }

    /// True when deaths produce failure notices.
    pub fn broadcast(&self) -> bool {
        self.broadcast
    }
}

/// An engine migrating between pumps: its driver loop, the mailbox it had
/// accumulated, and its pending timers (absolute deadlines — the virtual
/// clock is cluster-global, so they transfer unchanged).
pub struct Migration {
    /// The migrating engine.
    pub proc: ProcId,
    /// Its driver loop (engine, sink, placer).
    pub node: DriverLoop,
    /// Stimuli it had not consumed yet.
    pub mail: VecDeque<Inbound>,
    /// Pending timers in `(deadline, arming-order)` order.
    pub timers: Vec<(u64, Timer)>,
}

/// One item of an inter-reactor envelope.
pub enum Transfer {
    /// A message for an engine hosted on the receiving pump (or forwarded
    /// onward if it migrated again meanwhile).
    Deliver {
        /// Sending engine (or the super-root).
        from: ProcId,
        /// Destination engine.
        to: ProcId,
        /// The message.
        msg: Msg,
    },
    /// A bounced send returning to its sender on the receiving pump.
    Bounce {
        /// The live sender the message returns to.
        sender: ProcId,
        /// The unreachable destination.
        dead: ProcId,
        /// The undeliverable message.
        msg: Msg,
    },
    /// A migrating engine (work stealing).
    Engine(Box<Migration>),
}

/// A send parked for later release (router surcharges, batching windows).
struct DelayedSend {
    from: ProcId,
    to: ProcId,
    msg: Msg,
}

/// The per-pump [`Substrate`]: local mailboxes and ready queue for hosted
/// engines, timer and delayed-send wheels, and per-peer outboxes for
/// cross-reactor traffic. The decorator stack over it is the same shape as
/// every other backend: `ShardRouter<BatchingSubstrate<PumpSubstrate>>`.
pub struct PumpSubstrate {
    cluster: Arc<ClusterMap>,
    now: u64,
    /// Mailboxes, indexed by engine id over the full roster (only hosted
    /// slots are used; direct indexing keeps per-message routing O(1),
    /// like the single-thread reactor). Roster-order iteration over the
    /// index keeps whole-roster walks deterministic.
    mail: Vec<VecDeque<Inbound>>,
    /// True at the slots of engines this pump currently hosts — the
    /// local-vs-cross routing test.
    hosted: Vec<bool>,
    /// Stimuli waiting across all hosted mailboxes (kept incrementally;
    /// summing 25k mailboxes per round would dominate large runs).
    backlog: u64,
    /// Hosted engines with pending work, in wake order.
    ready: VecDeque<u32>,
    /// Waker flags, indexed by engine id (true while in `ready`).
    queued: Vec<bool>,
    timers: TimerWheel<u64, (ProcId, Timer)>,
    delayed: TimerWheel<u64, DelayedSend>,
    /// Per-peer cross-reactor buffers, flushed once per round.
    outbox: Vec<Vec<Transfer>>,
    /// Recycled envelope buffers (drained peer envelopes land here).
    pool: Vec<Vec<Transfer>>,
    sr_mail: VecDeque<Msg>,
    pending_sr_delayed: u64,
    work_pending: u64,
    delivered: u64,
    dropped_to_dead: u64,
    bounces: u64,
    msgs_cross: u64,
}

impl PumpSubstrate {
    fn new(cluster: Arc<ClusterMap>, n_pumps: u32) -> PumpSubstrate {
        let n = cluster.n() as usize;
        PumpSubstrate {
            cluster,
            now: 0,
            mail: (0..n).map(|_| VecDeque::new()).collect(),
            hosted: vec![false; n],
            backlog: 0,
            ready: VecDeque::new(),
            queued: vec![false; n],
            timers: TimerWheel::new(),
            delayed: TimerWheel::new(),
            outbox: (0..n_pumps).map(|_| Vec::new()).collect(),
            // Prime one envelope buffer per peer so round 1 flushes
            // without allocating; afterwards drained peer envelopes keep
            // the pool in circulation.
            pool: (1..n_pumps).map(|_| Vec::new()).collect(),
            sr_mail: VecDeque::new(),
            pending_sr_delayed: 0,
            work_pending: 0,
            delivered: 0,
            dropped_to_dead: 0,
            bounces: 0,
            msgs_cross: 0,
        }
    }

    /// Queues hosted engine `p` for a turn if live and not already queued.
    fn wake(&mut self, p: ProcId) {
        let i = p.0 as usize;
        if self.cluster.is_live(p) && !self.queued[i] {
            self.queued[i] = true;
            self.ready.push_back(p.0);
        }
    }

    /// The next hosted engine to pump, in wake order, skipping engines
    /// that died after they were woken.
    fn pop_ready(&mut self) -> Option<ProcId> {
        while let Some(p) = self.ready.pop_front() {
            self.queued[p as usize] = false;
            if self.cluster.is_live(ProcId(p)) {
                return Some(ProcId(p));
            }
        }
        None
    }

    /// The most recently woken live engine — the donation pick (stealing
    /// from the tail keeps the head of the queue, already next in line,
    /// where it is).
    fn pop_ready_back(&mut self) -> Option<ProcId> {
        while let Some(p) = self.ready.pop_back() {
            self.queued[p as usize] = false;
            if self.cluster.is_live(ProcId(p)) {
                return Some(ProcId(p));
            }
        }
        None
    }

    fn pop_inbound(&mut self, p: ProcId) -> Option<Inbound> {
        let ib = self.mail[p.0 as usize].pop_front()?;
        self.backlog -= 1;
        if matches!(ib, Inbound::Msg(_)) {
            self.delivered += 1;
        }
        Some(ib)
    }

    fn mail_len(&self, p: ProcId) -> usize {
        self.mail[p.0 as usize].len()
    }

    /// Kills hosted `victim`: drops its mailbox (fail silent cuts both
    /// ways) and clears its waker flag. The cluster-wide alive flag is the
    /// coordinator's to flip.
    fn kill_local(&mut self, victim: ProcId) {
        let i = victim.0 as usize;
        self.queued[i] = false;
        let q = &mut self.mail[i];
        self.backlog -= q.len() as u64;
        let dropped = q
            .drain(..)
            .filter(|ib| matches!(ib, Inbound::Msg(_)))
            .count();
        self.dropped_to_dead += dropped as u64;
    }

    /// This pump's share of a death broadcast: failure notices to every
    /// live hosted engine except the victim. The super-root notice is the
    /// coordinator's (delivered exactly once, not once per pump).
    fn announce_death(&mut self, dead: ProcId) {
        if !self.cluster.broadcast() {
            return;
        }
        for p in 0..self.hosted.len() as u32 {
            if self.hosted[p as usize] && p != dead.0 && self.cluster.is_live(ProcId(p)) {
                self.mail[p as usize].push_back(Inbound::Msg(Msg::FailureNotice { dead }));
                self.backlog += 1;
                if !self.queued[p as usize] {
                    self.queued[p as usize] = true;
                    self.ready.push_back(p);
                }
            }
        }
    }

    fn pop_due_timer(&mut self) -> Option<(ProcId, Timer)> {
        self.timers.pop_due(&self.now)
    }

    fn release_delayed_due(&mut self) {
        while let Some(d) = self.delayed.pop_due(&self.now) {
            if d.to.is_super_root() {
                self.pending_sr_delayed -= 1;
            }
            self.route_now(d.from, d.to, d.msg);
        }
    }

    fn next_deadline(&self) -> Option<u64> {
        match (
            self.timers.next_deadline().copied(),
            self.delayed.next_deadline().copied(),
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Returns a bounced message to its sender, wherever that engine is
    /// hosted. The bounce was already counted at the routing point.
    fn deliver_bounce(&mut self, sender: ProcId, dead: ProcId, msg: Msg) {
        if !self.cluster.is_live(sender) {
            self.dropped_to_dead += 1;
            return;
        }
        if self.hosted[sender.0 as usize] {
            self.mail[sender.0 as usize].push_back(Inbound::Bounce { dead, msg });
            self.backlog += 1;
            self.wake(sender);
        } else {
            let dest = self.cluster.pump_of(sender);
            self.outbox[dest as usize].push(Transfer::Bounce { sender, dead, msg });
        }
    }

    /// Routes `msg` with the liveness known now: local mailbox for hosted
    /// destinations, the per-peer outbox for everyone else.
    fn route_now(&mut self, from: ProcId, to: ProcId, msg: Msg) {
        if to.is_super_root() {
            // The driver link is reliable.
            self.sr_mail.push_back(msg);
            return;
        }
        if !self.cluster.is_live(to) {
            let sender_live = !from.is_super_root() && self.cluster.is_live(from);
            if sender_live {
                self.bounces += 1;
                self.deliver_bounce(from, to, msg);
            } else {
                self.dropped_to_dead += 1;
            }
            return;
        }
        if self.hosted[to.0 as usize] {
            self.mail[to.0 as usize].push_back(Inbound::Msg(msg));
            self.backlog += 1;
            self.wake(to);
            return;
        }
        // Cross-reactor (or mid-migration: the location table may still
        // point at a pump the engine just left, in which case that pump
        // forwards — each forward costs one round and the table catches up
        // at the next barrier).
        let dest = self.cluster.pump_of(to);
        self.msgs_cross += 1;
        self.outbox[dest as usize].push(Transfer::Deliver { from, to, msg });
    }

    /// Applies one received transfer (envelope item or coordinator
    /// injection). `Engine` transfers are handled by the pump, which owns
    /// the driver loops.
    fn apply_transfer(&mut self, t: Transfer) -> Option<Box<Migration>> {
        match t {
            Transfer::Deliver { from, to, msg } => {
                self.route_now(from, to, msg);
                None
            }
            Transfer::Bounce { sender, dead, msg } => {
                self.deliver_bounce(sender, dead, msg);
                None
            }
            Transfer::Engine(m) => Some(m),
        }
    }
}

impl Substrate for PumpSubstrate {
    fn n_procs(&self) -> u32 {
        self.cluster.n()
    }

    fn is_live(&self, p: ProcId) -> bool {
        self.cluster.is_live(p)
    }

    fn now_units(&self) -> u64 {
        self.now
    }

    fn send(&mut self, from: ProcId, to: ProcId, msg: Msg) {
        self.send_delayed(from, to, msg, 0);
    }

    fn send_delayed(&mut self, from: ProcId, to: ProcId, mut msg: Msg, extra: u64) {
        // Send-side corruption, identical to the other substrates.
        if !from.is_super_root() && self.cluster.is_corrupting(from) {
            if let Msg::Result(rp) = &mut msg {
                if rp.replica.is_some() {
                    rp.value = corrupt_value(&rp.value);
                }
            }
        }
        if extra == 0 {
            return self.route_now(from, to, msg);
        }
        if to.is_super_root() {
            self.pending_sr_delayed += 1;
        }
        self.delayed
            .arm(self.now + extra, DelayedSend { from, to, msg });
    }

    fn arm_timer(&mut self, owner: ProcId, timer: Timer, delay: u64) {
        self.timers.arm(self.now + delay, (owner, timer));
    }

    fn report_death(&mut self, dead: ProcId) {
        self.announce_death(dead);
    }

    fn complete_wave(&mut self, _proc: ProcId, _sink: &mut ActionSink, work: u64) {
        // Non-deferring, like the single-thread reactor: the driver loop
        // dispatches the sink against the top of the decorator stack; only
        // the work is recorded for the coordinator's clock charge.
        self.work_pending += work;
    }
}

/// The per-pump decorator stack — the same shape as every other backend,
/// canonical tracer innermost so events carry the barrier clock.
pub type PumpStack = ShardRouter<BatchingSubstrate<TracingSubstrate<PumpSubstrate>>>;

/// What the coordinator hands a pump at the top of a round.
pub struct RoundInput {
    /// The cluster virtual clock for this round (advanced at barriers
    /// only, so every pump computes against the same instant).
    pub now: u64,
    /// Engines that crashed at this barrier, in fault-plan order. Every
    /// pump receives the full list: the hosting pump drops the victim's
    /// mailbox, every pump notifies its own live engines.
    pub kills: Vec<ProcId>,
    /// Coordinator-originated traffic (super-root sends).
    pub inject: Vec<Transfer>,
    /// Work stealing: donate up to `.0` ready engines to pump `.1`.
    pub donate: Option<(u32, u32)>,
    /// Recycled buffer the round's super-root mail returns in.
    pub sr_mail_buf: Vec<Msg>,
    /// Recycled buffer the round's donated-engine list returns in.
    pub donated_buf: Vec<ProcId>,
}

/// What a pump reports back at the barrier.
pub struct RoundOutput {
    /// Scheduling turns taken this round.
    pub turns: u64,
    /// Waves executed this round.
    pub waves: u64,
    /// Work units those waves performed.
    pub work: u64,
    /// Ready-queue length at the end of the round.
    pub ready: usize,
    /// Stimuli still waiting across hosted mailboxes.
    pub backlog: u64,
    /// Earliest pending local deadline (timer or parked delayed send).
    pub next_deadline: Option<u64>,
    /// Parked delayed sends addressed to the super-root (quiescence must
    /// wait for them — one can be the result).
    pub pending_sr_delayed: u64,
    /// True when this round flushed at least one non-empty envelope.
    pub sent_cross: bool,
    /// Messages addressed to the super-root this round.
    pub sr_mail: Vec<Msg>,
    /// Engines donated this round (the coordinator commits them to the
    /// location table at the barrier).
    pub donated: Vec<ProcId>,
    /// The drained injection buffer, returned for reuse.
    pub spent_inject: Vec<Transfer>,
}

/// Aggregate a pump returns when the run finishes.
pub struct PumpHarvest {
    /// Hosted engines (id ascending) for report assembly. Boxed — a
    /// 16k-engine harvest hands over pointers, not kilobyte moves.
    pub engines: Vec<(u32, Box<DriverLoop>)>,
    /// Messages consumed from hosted mailboxes.
    pub delivered: u64,
    /// Messages dropped at (or en route to) dead destinations.
    pub dropped_to_dead: u64,
    /// Sends returned to their senders because the destination was dead.
    pub bounces: u64,
    /// Worker messages that crossed a pump boundary (forwards included —
    /// every hop is one inter-reactor message).
    pub msgs_cross: u64,
    /// This pump's shard-router accounting.
    pub shard_stats: ShardStats,
    /// This pump's batching-bus accounting.
    pub batch_stats: BatchStats,
    /// This pump's canonical-trace head (events, checksums), for the
    /// coordinator to fold in pump order.
    pub tracer: Tracer,
}

/// One reactor pump: a partition of the engines, their substrate stack,
/// and the per-pair links to every peer pump.
pub struct Pump {
    id: u32,
    /// Hosted driver loops, indexed by engine id over the full roster
    /// (`None` at slots other pumps host). Boxed so a slot is one pointer
    /// and migrations move the box, not the engine state.
    cells: Vec<Option<Box<DriverLoop>>>,
    sub: PumpStack,
    /// Envelope senders, index = peer pump (own slot unused).
    links_tx: Vec<Option<Sender<Vec<Transfer>>>>,
    /// Envelope receivers, index = peer pump (own slot unused).
    links_rx: Vec<Option<Receiver<Vec<Transfer>>>>,
    /// Envelopes from the previous round that arrived bundled with this
    /// round's recv (can happen when a fast peer flushes before a slow
    /// peer drains); applied first next round, one slot per peer.
    started: bool,
    rounds: u64,
}

impl Pump {
    /// Builds pump `id` of `n_pumps` hosting `engines`, with the standard
    /// decorator stack (`map`/`router_latency` for the shard router,
    /// `batch_window` for the bus) over the pump substrate.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: u32,
        n_pumps: u32,
        cluster: Arc<ClusterMap>,
        engines: Vec<(ProcId, Box<DriverLoop>)>,
        map: ShardMap,
        router_latency: u64,
        batch_window: u64,
        trace: TraceMode,
    ) -> Pump {
        let n = cluster.n() as usize;
        let mut core = PumpSubstrate::new(cluster, n_pumps);
        let mut cells: Vec<Option<Box<DriverLoop>>> = (0..n).map(|_| None).collect();
        for (p, node) in engines {
            core.hosted[p.0 as usize] = true;
            cells[p.0 as usize] = Some(node);
        }
        Pump {
            id,
            cells,
            sub: ShardRouter::new(
                BatchingSubstrate::new(
                    TracingSubstrate::new(core, Tracer::new(trace)),
                    batch_window,
                ),
                map,
                router_latency,
            ),
            links_tx: (0..n_pumps).map(|_| None).collect(),
            links_rx: (0..n_pumps).map(|_| None).collect(),
            started: false,
            rounds: 0,
        }
    }

    /// This pump's index.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Installs a migrated-in engine.
    fn install(&mut self, m: Migration) {
        let Migration {
            proc,
            node,
            mail,
            timers,
        } = m;
        self.sub.backlog += mail.len() as u64;
        for (at, timer) in timers {
            self.sub.timers.arm(at, (proc, timer));
        }
        self.sub.mail[proc.0 as usize] = mail;
        self.sub.hosted[proc.0 as usize] = true;
        if node.has_ready() || self.sub.mail_len(proc) > 0 {
            self.sub.wake(proc);
        }
        self.cells[proc.0 as usize] = Some(Box::new(node));
    }

    /// Extracts up to `count` ready engines and ships them to `dest`,
    /// recording them in `donated`.
    fn donate(&mut self, count: u32, dest: u32, donated: &mut Vec<ProcId>) {
        for _ in 0..count {
            let Some(p) = self.sub.pop_ready_back() else {
                break;
            };
            let Some(node) = self.cells[p.0 as usize].take() else {
                continue;
            };
            self.sub.hosted[p.0 as usize] = false;
            let mail = std::mem::take(&mut self.sub.mail[p.0 as usize]);
            self.sub.backlog -= mail.len() as u64;
            let timers = self
                .sub
                .timers
                .extract_if(|(owner, _)| *owner == p)
                .into_iter()
                .map(|(at, (_, t))| (at, t))
                .collect();
            self.sub.outbox[dest as usize].push(Transfer::Engine(Box::new(Migration {
                proc: p,
                node: *node,
                mail,
                timers,
            })));
            donated.push(p);
        }
    }

    /// Runs one round: drain peer envelopes and coordinator injections,
    /// apply barrier faults, fire due deadlines, sweep the ready queue
    /// once, honour a donation request, flush envelopes to every peer.
    pub fn run_round(&mut self, inp: RoundInput) -> RoundOutput {
        self.rounds += 1;
        self.sub.now = inp.now;
        let RoundInput {
            now: _,
            kills,
            mut inject,
            donate,
            mut sr_mail_buf,
            mut donated_buf,
        } = inp;
        if !self.started {
            self.started = true;
            for p in 0..self.cells.len() {
                let Some(node) = self.cells[p].as_deref_mut() else {
                    continue;
                };
                node.start(&mut self.sub);
                if node.has_ready() || self.sub.mail_len(ProcId(p as u32)) > 0 {
                    self.sub.wake(ProcId(p as u32));
                }
            }
        }
        // Peer envelopes from the previous round: exactly one per peer per
        // round (the barrier guarantees they were all sent), drained in
        // peer order so application order is deterministic.
        if self.rounds > 1 {
            for peer in 0..self.links_rx.len() {
                let Some(rx) = &self.links_rx[peer] else {
                    continue;
                };
                let mut env = rx.recv().expect("peer pump hung up mid-run");
                for t in env.drain(..) {
                    if let Some(m) = self.sub.apply_transfer(t) {
                        self.install(*m);
                    }
                }
                self.sub.pool.push(env);
            }
        }
        // Coordinator injections (super-root sends).
        for t in inject.drain(..) {
            if let Some(m) = self.sub.apply_transfer(t) {
                self.install(*m);
            }
        }
        // Barrier faults, one victim at a time in plan order: the hosting
        // pump drops the mailbox, then the death is announced to this
        // pump's own live engines (the coordinator notifies the
        // super-root once, on its side of the barrier).
        for &v in &kills {
            if self.cells[v.0 as usize].is_some() {
                self.sub.kill_local(v);
            }
            self.sub.announce_death(v);
        }
        self.sub.inner_mut().flush();
        // Due deadlines: parked delayed sends, then engine timers.
        self.sub.release_delayed_due();
        while let Some((owner, timer)) = self.sub.pop_due_timer() {
            if !self.sub.cluster.is_live(owner) {
                continue;
            }
            let Some(node) = self.cells[owner.0 as usize].as_deref_mut() else {
                continue;
            };
            node.on_timer(timer, &mut self.sub);
            if node.has_ready() || self.sub.mail_len(owner) > 0 {
                self.sub.wake(owner);
            }
        }
        self.sub.inner_mut().flush();
        // Sweep: every engine ready at the top of the round gets one
        // cooperative turn (bounded mailbox drain + a bounded wave burst —
        // identical to the single-thread reactor's turn). Engines woken
        // during the sweep wait for the next round, which is what bounds a
        // round's clock charge to a few waves per live engine.
        let mut turns: u64 = 0;
        let mut waves: u64 = 0;
        for _ in 0..self.sub.ready.len() {
            let Some(p) = self.sub.pop_ready() else {
                break;
            };
            turns += 1;
            let node = self.cells[p.0 as usize]
                .as_deref_mut()
                .expect("ready engine is hosted");
            for _ in 0..self.sub.mail_len(p) {
                let Some(ib) = self.sub.pop_inbound(p) else {
                    break;
                };
                match ib {
                    Inbound::Msg(msg) => node.on_message(msg, &mut self.sub),
                    Inbound::Bounce { dead, msg } => node.on_send_failed(dead, msg, &mut self.sub),
                }
            }
            for _ in 0..WAVE_BURST {
                if !node.run_ready_wave(&mut self.sub) {
                    break;
                }
                waves += 1;
            }
            if node.has_ready() || self.sub.mail_len(p) > 0 {
                self.sub.wake(p);
            }
            // One turn, one batch — the bus flushes per turn, as on the
            // single-thread reactor.
            self.sub.inner_mut().flush();
        }
        // Donation, after the sweep so stolen engines carry fresh state.
        if let Some((count, dest)) = donate {
            self.donate(count, dest, &mut donated_buf);
        }
        // Flush exactly one envelope per peer (empty ones included — the
        // fixed one-envelope-per-link-per-round cadence is what makes the
        // drain above deterministic without sequence numbers).
        let mut sent_cross = false;
        for peer in 0..self.links_tx.len() {
            let Some(tx) = &self.links_tx[peer] else {
                continue;
            };
            let fresh = self.sub.pool.pop().unwrap_or_default();
            let buf = std::mem::replace(&mut self.sub.outbox[peer], fresh);
            sent_cross |= !buf.is_empty();
            tx.send(buf).expect("peer pump hung up mid-run");
        }
        sr_mail_buf.extend(self.sub.sr_mail.drain(..));
        RoundOutput {
            turns,
            waves,
            work: std::mem::take(&mut self.sub.work_pending),
            ready: self.sub.ready.len(),
            backlog: self.sub.backlog,
            next_deadline: self.sub.next_deadline(),
            pending_sr_delayed: self.sub.pending_sr_delayed,
            sent_cross,
            sr_mail: sr_mail_buf,
            donated: donated_buf,
            spent_inject: inject,
        }
    }

    /// Dismantles the pump into its harvest.
    pub fn harvest(self) -> PumpHarvest {
        let Pump { cells, mut sub, .. } = self;
        let shard_stats = sub.stats().clone();
        let batch_stats = *sub.inner().batch_stats();
        let tracer = std::mem::take(sub.inner_mut().inner_mut().tracer_mut());
        // Dropping the stack flushes the (empty) bus into the core.
        let core: &PumpSubstrate = &sub;
        let (delivered, dropped_to_dead, bounces, msgs_cross) = (
            core.delivered,
            core.dropped_to_dead,
            core.bounces,
            core.msgs_cross,
        );
        PumpHarvest {
            engines: cells
                .into_iter()
                .enumerate()
                .filter_map(|(p, slot)| slot.map(|node| (p as u32, node)))
                .collect(),
            delivered,
            dropped_to_dead,
            bounces,
            msgs_cross,
            shard_stats,
            batch_stats,
            tracer,
        }
    }
}

enum Cmd {
    Round(RoundInput),
    Finish,
}

enum Rsp {
    Round(RoundOutput),
    Finished(Box<PumpHarvest>),
}

enum Fleet {
    /// One pump, driven inline on the coordinator thread: no channels, no
    /// context switches — the no-coordination-regression configuration.
    Inline(Box<Pump>),
    Threads {
        cmd_tx: Vec<Sender<Cmd>>,
        rsp_rx: Vec<Receiver<Rsp>>,
        handles: Vec<JoinHandle<()>>,
    },
}

/// N pumps on N OS threads (or one pump inline), driven in rounds by a
/// coordinator front-end.
pub struct ReactorCluster {
    cluster: Arc<ClusterMap>,
    fleet: Fleet,
    threads: u32,
}

impl ReactorCluster {
    /// Wires per-pair envelope links between `pumps` and spawns one OS
    /// thread per pump — unless there is exactly one, which runs inline on
    /// the caller's thread.
    pub fn new(mut pumps: Vec<Pump>, cluster: Arc<ClusterMap>) -> ReactorCluster {
        let t = pumps.len() as u32;
        assert!(t >= 1, "need at least one pump");
        if t == 1 {
            return ReactorCluster {
                cluster,
                fleet: Fleet::Inline(Box::new(pumps.pop().expect("one pump"))),
                threads: 1,
            };
        }
        for i in 0..pumps.len() {
            for j in (i + 1)..pumps.len() {
                // Capacity 2 is the protocol bound: at most one undrained
                // envelope from the previous round plus this round's.
                let (tx_ij, rx_ij) = bounded::<Vec<Transfer>>(2);
                let (tx_ji, rx_ji) = bounded::<Vec<Transfer>>(2);
                pumps[i].links_tx[j] = Some(tx_ij);
                pumps[j].links_rx[i] = Some(rx_ij);
                pumps[j].links_tx[i] = Some(tx_ji);
                pumps[i].links_rx[j] = Some(rx_ji);
            }
        }
        let mut cmd_tx = Vec::with_capacity(pumps.len());
        let mut rsp_rx = Vec::with_capacity(pumps.len());
        let mut handles = Vec::with_capacity(pumps.len());
        for mut pump in pumps {
            let (ctx, crx) = unbounded::<Cmd>();
            let (rtx, rrx) = unbounded::<Rsp>();
            cmd_tx.push(ctx);
            rsp_rx.push(rrx);
            handles.push(std::thread::spawn(move || {
                while let Ok(cmd) = crx.recv() {
                    match cmd {
                        Cmd::Round(inp) => {
                            if rtx.send(Rsp::Round(pump.run_round(inp))).is_err() {
                                return;
                            }
                        }
                        Cmd::Finish => {
                            let _ = rtx.send(Rsp::Finished(Box::new(pump.harvest())));
                            return;
                        }
                    }
                }
            }));
        }
        ReactorCluster {
            cluster,
            fleet: Fleet::Threads {
                cmd_tx,
                rsp_rx,
                handles,
            },
            threads: t,
        }
    }

    /// Pump count.
    pub fn threads(&self) -> u32 {
        self.threads
    }

    /// The shared liveness/location table.
    pub fn cluster(&self) -> &Arc<ClusterMap> {
        &self.cluster
    }

    /// Runs one round on every pump: drains `inputs` (one per pump, in
    /// pump order) and appends one [`RoundOutput`] per pump to `outs` in
    /// the same order — the barrier. Both vectors are caller-owned so
    /// round-trip buffers recycle instead of reallocating.
    pub fn round(&mut self, inputs: &mut Vec<RoundInput>, outs: &mut Vec<RoundOutput>) {
        match &mut self.fleet {
            Fleet::Inline(pump) => {
                debug_assert_eq!(inputs.len(), 1);
                let inp = inputs.pop().expect("one input for the inline pump");
                outs.push(pump.run_round(inp));
            }
            Fleet::Threads { cmd_tx, rsp_rx, .. } => {
                debug_assert_eq!(inputs.len(), cmd_tx.len());
                for (tx, inp) in cmd_tx.iter().zip(inputs.drain(..)) {
                    tx.send(Cmd::Round(inp)).expect("pump thread died");
                }
                for rx in rsp_rx.iter() {
                    match rx.recv().expect("pump thread died") {
                        Rsp::Round(out) => outs.push(out),
                        Rsp::Finished(_) => unreachable!("finish before round end"),
                    }
                }
            }
        }
    }

    /// Stops every pump and collects the harvests, in pump order.
    pub fn finish(self) -> Vec<PumpHarvest> {
        match self.fleet {
            Fleet::Inline(pump) => vec![pump.harvest()],
            Fleet::Threads {
                cmd_tx,
                rsp_rx,
                handles,
            } => {
                for tx in &cmd_tx {
                    tx.send(Cmd::Finish).expect("pump thread died");
                }
                let mut harvests = Vec::with_capacity(rsp_rx.len());
                for rx in &rsp_rx {
                    match rx.recv().expect("pump thread died") {
                        Rsp::Finished(h) => harvests.push(*h),
                        Rsp::Round(_) => unreachable!("round reply after finish"),
                    }
                }
                for h in handles {
                    h.join().expect("pump thread panicked");
                }
                harvests
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_map_tracks_liveness_corruption_and_location() {
        let c = ClusterMap::new(6, true, |p| p / 3);
        assert_eq!(c.n(), 6);
        assert!(c.is_live(ProcId(5)));
        assert!(!c.is_live(ProcId(9)), "out of range reads dead");
        assert_eq!(c.pump_of(ProcId(2)), 0);
        assert_eq!(c.pump_of(ProcId(3)), 1);
        c.set_dead(ProcId(4));
        assert!(!c.is_live(ProcId(4)));
        assert!(!c.is_corrupting(ProcId(1)));
        c.set_corrupting(ProcId(1));
        assert!(c.is_corrupting(ProcId(1)));
        c.set_pump(ProcId(2), 1);
        assert_eq!(c.pump_of(ProcId(2)), 1);
        assert!(c.broadcast());
    }

    fn msg(tag: u32) -> Msg {
        Msg::ack(
            splice_core::stamp::LevelStamp::from_digits(&[1]),
            splice_core::ids::TaskAddr::new(ProcId(tag), splice_core::ids::TaskKey(u64::from(tag))),
            splice_core::ids::TaskAddr::super_root(),
            tag,
        )
    }

    fn sub_pair() -> (Arc<ClusterMap>, PumpSubstrate) {
        // 4 engines, engines 0-1 on pump 0, engines 2-3 on pump 1; the
        // substrate under test is pump 0's.
        let cluster = Arc::new(ClusterMap::new(4, true, |p| p / 2));
        let mut sub = PumpSubstrate::new(cluster.clone(), 2);
        sub.hosted[0] = true;
        sub.hosted[1] = true;
        (cluster, sub)
    }

    #[test]
    fn local_sends_stay_local_and_remote_sends_fill_the_outbox() {
        let (_cluster, mut sub) = sub_pair();
        sub.send(ProcId(0), ProcId(1), msg(7));
        assert_eq!(sub.backlog, 1);
        assert_eq!(sub.msgs_cross, 0);
        assert_eq!(sub.pop_ready(), Some(ProcId(1)));
        sub.send(ProcId(0), ProcId(2), msg(8));
        assert_eq!(sub.msgs_cross, 1);
        assert_eq!(sub.outbox[1].len(), 1, "parked for pump 1");
        assert!(
            matches!(sub.outbox[1][0], Transfer::Deliver { to: ProcId(2), .. }),
            "cross-reactor deliver"
        );
    }

    #[test]
    fn send_to_dead_engine_bounces_to_the_live_sender_wherever_hosted() {
        let (cluster, mut sub) = sub_pair();
        cluster.set_dead(ProcId(1));
        // Hosted sender: local bounce.
        sub.send(ProcId(0), ProcId(1), msg(1));
        assert_eq!(sub.bounces, 1);
        assert!(matches!(
            sub.pop_inbound(ProcId(0)),
            Some(Inbound::Bounce {
                dead: ProcId(1),
                ..
            })
        ));
        // Remote sender: the bounce crosses back to its pump.
        sub.send(ProcId(2), ProcId(1), msg(2));
        assert_eq!(sub.bounces, 2);
        assert!(matches!(
            sub.outbox[1].last(),
            Some(Transfer::Bounce {
                sender: ProcId(2),
                dead: ProcId(1),
                ..
            })
        ));
        // Dead sender: dropped.
        cluster.set_dead(ProcId(3));
        sub.send(ProcId(3), ProcId(1), msg(3));
        assert_eq!(sub.dropped_to_dead, 1);
    }

    #[test]
    fn delayed_sends_release_against_current_liveness_and_location() {
        let (cluster, mut sub) = sub_pair();
        sub.send_delayed(ProcId(0), ProcId(1), msg(5), 10);
        sub.send_delayed(ProcId(1), ProcId::SUPER_ROOT, msg(6), 20);
        assert_eq!(sub.pending_sr_delayed, 1);
        assert_eq!(sub.next_deadline(), Some(10));
        // Engine 1 migrates away while the send is parked: release must
        // forward it cross-reactor.
        sub.hosted[1] = false;
        cluster.set_pump(ProcId(1), 1);
        sub.now = 25;
        sub.release_delayed_due();
        assert_eq!(sub.pending_sr_delayed, 0);
        assert_eq!(sub.sr_mail.len(), 1, "super-root link is reliable");
        assert!(matches!(
            sub.outbox[1].last(),
            Some(Transfer::Deliver { to: ProcId(1), .. })
        ));
    }

    #[test]
    fn kill_drops_the_local_mailbox_and_announce_notifies_hosted_peers() {
        let (cluster, mut sub) = sub_pair();
        sub.send(ProcId(0), ProcId(1), msg(1));
        sub.send(ProcId(0), ProcId(1), msg(2));
        cluster.set_dead(ProcId(1));
        sub.kill_local(ProcId(1));
        assert_eq!(sub.dropped_to_dead, 2);
        assert_eq!(sub.backlog, 0);
        sub.announce_death(ProcId(1));
        assert!(matches!(
            sub.pop_inbound(ProcId(0)),
            Some(Inbound::Msg(Msg::FailureNotice { dead: ProcId(1) }))
        ));
        assert!(sub.pop_inbound(ProcId(1)).is_none(), "victim hears nothing");
    }

    #[test]
    fn corrupting_senders_flip_replica_results_cross_reactor_too() {
        use splice_applicative::wave::Demand;
        use splice_applicative::{FnId, Value};
        use splice_core::packet::{ReplicaInfo, ResultPacket};
        let (cluster, mut sub) = sub_pair();
        cluster.set_corrupting(ProcId(0));
        let rp = ResultPacket {
            from_stamp: splice_core::stamp::LevelStamp::from_digits(&[1]),
            demand: Demand::new(FnId(0), vec![Value::Int(1)]),
            value: Value::Int(7),
            to: splice_core::ids::TaskAddr::new(ProcId(2), splice_core::ids::TaskKey(0)),
            to_stamp: splice_core::stamp::LevelStamp::root(),
            relay_chain: vec![],
            replica: Some(ReplicaInfo { index: 0, total: 3 }),
        };
        sub.send(ProcId(0), ProcId(2), Msg::result(rp));
        let Some(Transfer::Deliver {
            msg: Msg::Result(got),
            ..
        }) = sub.outbox[1].pop()
        else {
            panic!("cross-reactor result expected");
        };
        assert_ne!(got.value, Value::Int(7), "replica result corrupted");
    }
}
