//! Sharded placement: the inter-shard router decorator.
//!
//! A sharded machine partitions its processors into `shards` groups of
//! `per_shard` each. Intra-shard traffic uses the backend's ordinary
//! delivery; traffic that crosses a shard boundary goes through the
//! router, which charges a fixed `inter_latency` surcharge (via
//! [`Substrate::send_delayed`]) and is accounted separately — recovery
//! across a partition boundary is exactly the cost the flat substrates
//! cannot see. [`ShardRouter`] is a [`Substrate`] decorator, so any
//! backend (the DES simulator, the threaded runtime, future multi-process
//! transports) becomes shard-aware by wrapping, not by reimplementation.

use crate::substrate::Substrate;
use splice_core::engine::Timer;
use splice_core::ids::ProcId;
use splice_core::packet::Msg;
use splice_core::ActionSink;
use splice_simnet::trace::TraceKind;

/// The processor-to-shard partition: `shards` shards of `per_shard`
/// processors, processor `p` in shard `p / per_shard`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMap {
    /// Number of shards.
    pub shards: u32,
    /// Processors per shard.
    pub per_shard: u32,
}

impl ShardMap {
    /// A map of `shards` shards with `per_shard` processors each.
    pub fn new(shards: u32, per_shard: u32) -> ShardMap {
        ShardMap { shards, per_shard }
    }

    /// The trivial partition: one shard holding all `n` processors (the
    /// router degenerates to a transparent pass-through).
    pub fn single(n: u32) -> ShardMap {
        ShardMap {
            shards: 1,
            per_shard: n,
        }
    }

    /// Total processor count.
    pub fn len(&self) -> u32 {
        self.shards * self.per_shard
    }

    /// True when the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shard hosting processor `p`.
    pub fn shard_of(&self, p: ProcId) -> u32 {
        p.0 / self.per_shard.max(1)
    }

    /// True when `a` and `b` live in the same shard.
    pub fn same_shard(&self, a: ProcId, b: ProcId) -> bool {
        self.shard_of(a) == self.shard_of(b)
    }
}

/// Per-run router accounting: how much traffic stayed inside a shard and
/// how much crossed the router, by shard pair.
#[derive(Clone, Debug, Default)]
pub struct ShardStats {
    /// Shard count the `per_link` matrix is sized for.
    shards: u32,
    /// Worker-to-worker messages that stayed inside one shard.
    pub intra_msgs: u64,
    /// Worker-to-worker messages that crossed a shard boundary.
    pub inter_msgs: u64,
    /// Payload units carried across shard boundaries.
    pub inter_units: u64,
    /// Cross-shard messages per directed `(from_shard, to_shard)` link,
    /// stored row-major (`from * shards + to`).
    pub per_link: Vec<u64>,
}

impl ShardStats {
    fn for_map(map: &ShardMap) -> ShardStats {
        ShardStats {
            shards: map.shards,
            // A single-shard router never crosses a boundary, so the link
            // matrix stays unallocated — the threaded runtime builds a
            // transient router per pump and must not pay a heap allocation
            // for the flat-topology common case.
            per_link: if map.shards > 1 {
                vec![0; (map.shards as usize).pow(2)]
            } else {
                Vec::new()
            },
            ..ShardStats::default()
        }
    }

    /// Folds `other` into `self` — used by the parallel reactor, where
    /// each pump runs its own router and the run report wants the
    /// cluster-wide totals. Link matrices merge when the shard counts
    /// agree; a single-shard (unallocated) side adopts the other's.
    pub fn absorb(&mut self, other: &ShardStats) {
        self.intra_msgs += other.intra_msgs;
        self.inter_msgs += other.inter_msgs;
        self.inter_units += other.inter_units;
        if self.shards <= 1 && other.shards > 1 {
            self.shards = other.shards;
            self.per_link = other.per_link.clone();
        } else if self.shards == other.shards {
            for (a, b) in self.per_link.iter_mut().zip(&other.per_link) {
                *a += b;
            }
        }
    }

    /// Messages sent from `from` shard to `to` shard across the router.
    pub fn link(&self, from: u32, to: u32) -> u64 {
        if from >= self.shards || to >= self.shards {
            return 0;
        }
        self.per_link
            .get((from * self.shards + to) as usize)
            .copied()
            .unwrap_or(0)
    }
}

/// A [`Substrate`] decorator that makes `send` shard-aware.
///
/// Everything except `send` forwards to the wrapped backend. Sends between
/// workers in different shards pay `inter_latency` extra units (through
/// [`Substrate::send_delayed`], which latency-modelling backends override)
/// and are counted in [`ShardStats`]. Driver-link traffic (to or from the
/// super-root) is the reliable out-of-band channel and bypasses the router
/// untouched. With [`ShardMap::single`] the router is a transparent
/// pass-through, so a machine can be built around it unconditionally.
///
/// `complete_wave` forwards to the wrapped substrate so a deferring core
/// (the simulator) can consume the wave's effects at the bottom of the
/// stack; a non-deferring core leaves the sink untouched and the driver
/// loop dispatches it against the stack *top*, so wave-produced sends are
/// routed exactly like handler-produced ones.
pub struct ShardRouter<S> {
    inner: S,
    map: ShardMap,
    inter_latency: u64,
    stats: ShardStats,
}

impl<S> ShardRouter<S> {
    /// Wraps `inner` with the `map` partition; cross-shard sends pay
    /// `inter_latency` extra driver units.
    pub fn new(inner: S, map: ShardMap, inter_latency: u64) -> ShardRouter<S> {
        ShardRouter {
            inner,
            map,
            inter_latency,
            stats: ShardStats::for_map(&map),
        }
    }

    /// The partition this router enforces.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Router accounting so far.
    pub fn stats(&self) -> &ShardStats {
        &self.stats
    }

    /// The wrapped substrate.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The wrapped substrate, mutably.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }
}

// The machine event loops address the backend's own state (queues, clocks,
// liveness flags) through the router constantly; deref keeps that access
// direct while `Substrate` calls still resolve to the router first.
impl<S> std::ops::Deref for ShardRouter<S> {
    type Target = S;
    fn deref(&self) -> &S {
        &self.inner
    }
}

impl<S> std::ops::DerefMut for ShardRouter<S> {
    fn deref_mut(&mut self) -> &mut S {
        &mut self.inner
    }
}

impl<S: Substrate> Substrate for ShardRouter<S> {
    fn n_procs(&self) -> u32 {
        self.inner.n_procs()
    }

    fn is_live(&self, p: ProcId) -> bool {
        self.inner.is_live(p)
    }

    fn now_units(&self) -> u64 {
        self.inner.now_units()
    }

    fn send(&mut self, from: ProcId, to: ProcId, msg: Msg) {
        self.send_delayed(from, to, msg, 0);
    }

    // Decorators above this router (a batching bus, a second router tier)
    // may carry their own surcharge; it composes with the router's rather
    // than being dropped by the trait default.
    fn send_delayed(&mut self, from: ProcId, to: ProcId, msg: Msg, extra: u64) {
        // The driver link is out-of-band: reliable, unrouted.
        if from.is_super_root() || to.is_super_root() {
            return self.inner.send_delayed(from, to, msg, extra);
        }
        if self.map.same_shard(from, to) {
            self.stats.intra_msgs += 1;
            self.inner.send_delayed(from, to, msg, extra);
        } else {
            let (a, b) = (self.map.shard_of(from), self.map.shard_of(to));
            self.stats.inter_msgs += 1;
            self.stats.inter_units += msg.size() as u64;
            if let Some(slot) = self
                .stats
                .per_link
                .get_mut((a * self.map.shards + b) as usize)
            {
                *slot += 1;
            }
            self.inner
                .send_delayed(from, to, msg, extra + self.inter_latency);
        }
    }

    fn arm_timer(&mut self, owner: ProcId, timer: Timer, delay: u64) {
        self.inner.arm_timer(owner, timer, delay);
    }

    fn report_death(&mut self, dead: ProcId) {
        self.inner.report_death(dead);
    }

    fn complete_wave(&mut self, proc: ProcId, sink: &mut ActionSink, work: u64) {
        self.inner.complete_wave(proc, sink, work);
    }

    fn trace(&mut self, kind: TraceKind) {
        self.inner.trace(kind);
    }

    fn trace_enabled(&self) -> bool {
        self.inner.trace_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_core::ids::TaskAddr;

    fn msg() -> Msg {
        Msg::ack(
            splice_core::stamp::LevelStamp::from_digits(&[1]),
            TaskAddr::new(ProcId(0), splice_core::ids::TaskKey(0)),
            TaskAddr::super_root(),
            0,
        )
    }

    /// Records sends with the extra delay the router asked for.
    #[derive(Default)]
    struct Probe {
        sent: Vec<(ProcId, ProcId, u64)>,
    }

    impl Substrate for Probe {
        fn n_procs(&self) -> u32 {
            8
        }
        fn is_live(&self, _p: ProcId) -> bool {
            true
        }
        fn now_units(&self) -> u64 {
            0
        }
        fn send(&mut self, from: ProcId, to: ProcId, _msg: Msg) {
            self.sent.push((from, to, 0));
        }
        fn send_delayed(&mut self, from: ProcId, to: ProcId, _msg: Msg, extra: u64) {
            self.sent.push((from, to, extra));
        }
        fn arm_timer(&mut self, _owner: ProcId, _timer: Timer, _delay: u64) {}
        fn report_death(&mut self, _dead: ProcId) {}
    }

    #[test]
    fn shard_map_partition() {
        let m = ShardMap::new(4, 4);
        assert_eq!(m.len(), 16);
        assert_eq!(m.shard_of(ProcId(0)), 0);
        assert_eq!(m.shard_of(ProcId(7)), 1);
        assert_eq!(m.shard_of(ProcId(15)), 3);
        assert!(m.same_shard(ProcId(4), ProcId(7)));
        assert!(!m.same_shard(ProcId(3), ProcId(4)));
        assert!(ShardMap::single(6).same_shard(ProcId(0), ProcId(5)));
    }

    #[test]
    fn router_counts_and_charges_cross_shard_only() {
        let mut r = ShardRouter::new(Probe::default(), ShardMap::new(2, 4), 250);
        r.send(ProcId(0), ProcId(3), msg()); // intra
        r.send(ProcId(1), ProcId(5), msg()); // inter 0→1
        r.send(ProcId(6), ProcId(2), msg()); // inter 1→0
        assert_eq!(r.stats().intra_msgs, 1);
        assert_eq!(r.stats().inter_msgs, 2);
        assert!(r.stats().inter_units > 0);
        assert_eq!(r.stats().link(0, 1), 1);
        assert_eq!(r.stats().link(1, 0), 1);
        assert_eq!(r.stats().link(0, 0), 0);
        assert_eq!(r.stats().link(5, 0), 0, "out-of-range shard reads 0");
        assert_eq!(
            r.inner().sent,
            vec![
                (ProcId(0), ProcId(3), 0),
                (ProcId(1), ProcId(5), 250),
                (ProcId(6), ProcId(2), 250),
            ]
        );
    }

    #[test]
    fn driver_link_bypasses_the_router() {
        let mut r = ShardRouter::new(Probe::default(), ShardMap::new(2, 2), 99);
        r.send(ProcId::SUPER_ROOT, ProcId(3), msg());
        r.send(ProcId(3), ProcId::SUPER_ROOT, msg());
        assert_eq!(r.stats().intra_msgs + r.stats().inter_msgs, 0);
        assert_eq!(r.inner().sent.len(), 2);
        assert!(r.inner().sent.iter().all(|(_, _, extra)| *extra == 0));
    }

    #[test]
    fn stacked_decorators_compose_their_surcharges() {
        // An outer decorator's extra delay must reach the backend summed
        // with the router's own surcharge, not be dropped.
        let mut r = ShardRouter::new(Probe::default(), ShardMap::new(2, 4), 250);
        r.send_delayed(ProcId(1), ProcId(5), msg(), 100); // inter: 100 + 250
        r.send_delayed(ProcId(0), ProcId(3), msg(), 100); // intra: 100
        r.send_delayed(ProcId(0), ProcId::SUPER_ROOT, msg(), 100); // driver link
        assert_eq!(
            r.inner().sent,
            vec![
                (ProcId(1), ProcId(5), 350),
                (ProcId(0), ProcId(3), 100),
                (ProcId(0), ProcId::SUPER_ROOT, 100),
            ]
        );
        assert_eq!(r.stats().inter_msgs, 1);
        assert_eq!(r.stats().intra_msgs, 1);
    }

    #[test]
    fn single_shard_is_a_transparent_pass_through() {
        let mut r = ShardRouter::new(Probe::default(), ShardMap::single(4), 1_000);
        r.send(ProcId(0), ProcId(3), msg());
        assert_eq!(r.stats().intra_msgs, 1);
        assert_eq!(r.stats().inter_msgs, 0);
        assert_eq!(r.inner().sent, vec![(ProcId(0), ProcId(3), 0)]);
    }

    #[test]
    fn default_send_delayed_falls_back_to_send() {
        /// A substrate that never overrides `send_delayed`.
        #[derive(Default)]
        struct Plain {
            sent: Vec<(ProcId, ProcId)>,
        }
        impl Substrate for Plain {
            fn n_procs(&self) -> u32 {
                4
            }
            fn is_live(&self, _p: ProcId) -> bool {
                true
            }
            fn now_units(&self) -> u64 {
                0
            }
            fn send(&mut self, from: ProcId, to: ProcId, _msg: Msg) {
                self.sent.push((from, to));
            }
            fn arm_timer(&mut self, _owner: ProcId, _timer: Timer, _delay: u64) {}
            fn report_death(&mut self, _dead: ProcId) {}
        }
        let mut r = ShardRouter::new(Plain::default(), ShardMap::new(2, 2), 500);
        r.send(ProcId(0), ProcId(2), msg());
        assert_eq!(r.stats().inter_msgs, 1, "still counted");
        assert_eq!(r.inner().sent, vec![(ProcId(0), ProcId(2))], "delivered");
    }
}
