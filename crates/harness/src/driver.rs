//! The shared driver loop: one [`DriverLoop`] per processor engine, one
//! [`SuperRootDriver`] per machine. Every entry point pumps the engine (or
//! the super-root) and fans its actions out through [`dispatch`] — no
//! backend carries protocol plumbing of its own.

use crate::substrate::{dispatch, Substrate};
use crate::trace::{kind_tag, msg_digest, timer_digest};
use splice_applicative::{Program, Value, Workload};
use splice_core::config::Config;
use splice_core::engine::{Engine, Timer};
use splice_core::ids::ProcId;
use splice_core::packet::Msg;
use splice_core::place::Placer;
use splice_core::policy::PolicySpec;
use splice_core::sink::ActionSink;
use splice_core::superroot::{RootInput, RootQuorum, SuperRoot};
use std::sync::Arc;

/// The per-processor driver loop: owns one protocol [`Engine`] plus the
/// engine's reusable [`ActionSink`], and feeds every stimulus (messages,
/// timers, send failures, ready waves) through it, draining the sink onto
/// the substrate. One buffer per engine pump: the steady-state loop
/// allocates nothing.
pub struct DriverLoop {
    engine: Engine,
    sink: ActionSink,
}

impl DriverLoop {
    /// A driver loop for processor `id` running `program`.
    pub fn new(
        id: ProcId,
        program: Arc<Program>,
        config: Config,
        placer: Box<dyn Placer>,
    ) -> DriverLoop {
        DriverLoop {
            engine: Engine::new(id, program, config, placer),
            sink: ActionSink::new(),
        }
    }

    /// The wrapped engine (measurements, checkpoint table, task counts).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable engine access (spawn-log draining and other driver-side
    /// instrumentation).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Starts the engine (arms load beacons).
    pub fn start<S: Substrate + ?Sized>(&mut self, sub: &mut S) {
        self.engine.on_start(&mut self.sink);
        dispatch(sub, self.engine.id(), &mut self.sink);
    }

    /// Delivers `msg` to the engine.
    pub fn on_message<S: Substrate + ?Sized>(&mut self, msg: Msg, sub: &mut S) {
        if sub.trace_enabled() {
            sub.trace(splice_simnet::trace::TraceKind::Deliver {
                to: self.engine.id().0,
                kind: kind_tag(msg.kind()),
                digest: msg_digest(&msg),
            });
        }
        self.engine.on_message(msg, &mut self.sink);
        dispatch(sub, self.engine.id(), &mut self.sink);
    }

    /// Fires `timer` on the engine.
    pub fn on_timer<S: Substrate + ?Sized>(&mut self, timer: Timer, sub: &mut S) {
        if sub.trace_enabled() {
            sub.trace(splice_simnet::trace::TraceKind::TimerFire {
                owner: self.engine.id().0,
                digest: timer_digest(&timer),
            });
        }
        self.engine.on_timer(timer, &mut self.sink);
        dispatch(sub, self.engine.id(), &mut self.sink);
    }

    /// Reports that a best-effort send to `dead` bounced.
    pub fn on_send_failed<S: Substrate + ?Sized>(&mut self, dead: ProcId, msg: Msg, sub: &mut S) {
        if sub.trace_enabled() {
            sub.trace(splice_simnet::trace::TraceKind::Bounce {
                sender: self.engine.id().0,
                dead: dead.0,
                kind: kind_tag(msg.kind()),
            });
        }
        self.engine.on_send_failed(dead, msg, &mut self.sink);
        dispatch(sub, self.engine.id(), &mut self.sink);
    }

    /// Runs one ready wave, if any, releasing its effects through
    /// [`Substrate::complete_wave`]. A deferring backend (the simulator)
    /// consumes the sink there; otherwise the effects dispatch immediately
    /// — against the *top* of the substrate stack, so routers and batching
    /// buses see wave-produced sends exactly like handler-produced ones.
    /// Returns false when nothing was ready.
    pub fn run_ready_wave<S: Substrate + ?Sized>(&mut self, sub: &mut S) -> bool {
        let Some(key) = self.engine.pop_ready() else {
            return false;
        };
        let work = self.engine.run_wave(key, &mut self.sink);
        if sub.trace_enabled() {
            sub.trace(splice_simnet::trace::TraceKind::Wave {
                owner: self.engine.id().0,
                work,
            });
        }
        sub.complete_wave(self.engine.id(), &mut self.sink, work);
        if !self.sink.is_empty() {
            dispatch(sub, self.engine.id(), &mut self.sink);
        }
        true
    }

    /// True while the engine has runnable waves queued.
    pub fn has_ready(&self) -> bool {
        self.engine.has_ready()
    }
}

/// The replicated super-root role and its live-placement rotor: launches
/// the program, survives root-processor failures *and root-replica
/// crashes*, and collects the answer. Lives on the driver side of every
/// backend (the simulator's event loop, the runtime's coordinator
/// thread, the process coordinator).
///
/// Internally a [`RootQuorum`] of `config.root_replicas` ranks: dispatch
/// routes `TaskAddr::super_root()` traffic to the acting primary (the
/// lowest live rank), and when a fault plan crashes the primary the next
/// rank takes over from the replicated checkpoint, reissuing the root
/// wave. With one replica this is bit-identical to the old reliable
/// singleton.
pub struct SuperRootDriver {
    quorum: RootQuorum,
    sink: ActionSink,
    rotor: u32,
    policy: PolicySpec,
}

impl SuperRootDriver {
    /// A super-root quorum for `workload` under `config`'s timing and
    /// replica count.
    pub fn new(workload: &Workload, config: &Config) -> SuperRootDriver {
        SuperRootDriver {
            quorum: RootQuorum::new(
                SuperRoot::new(
                    workload.entry,
                    workload.args.clone(),
                    config.ancestor_depth,
                    config.ack_timeout,
                ),
                config.root_replicas,
            ),
            sink: ActionSink::new(),
            rotor: 0,
            policy: config.policy,
        }
    }

    /// The program's answer, once the root reported it.
    pub fn result(&self) -> Option<&Value> {
        self.quorum.result()
    }

    /// Times the root was reissued.
    pub fn reissues(&self) -> u64 {
        self.quorum.reissues()
    }

    /// The configured root-replica count.
    pub fn replicas(&self) -> u32 {
        self.quorum.replicas()
    }

    /// How many acting primaries died and were succeeded.
    pub fn failovers(&self) -> u64 {
        self.quorum.failovers()
    }

    /// True while replica `rank` is live (false for out-of-range ranks).
    pub fn replica_live(&self, rank: u32) -> bool {
        self.quorum.replica_live(rank)
    }

    /// Rank of the acting primary, if any replica survives.
    pub fn primary(&self) -> Option<u32> {
        self.quorum.primary()
    }

    /// True while at least one root replica survives. Once this is
    /// false the super-root role is gone: no input can be processed, so
    /// a result can never arrive and the run must be reported stalled.
    pub fn has_live_replica(&self) -> bool {
        self.quorum.has_live_replica()
    }

    /// Crashes root replica `rank` (fault-plan injection). Returns true
    /// when the crash deposed the acting primary and a successor took
    /// over — the takeover's reissue dispatches like any other
    /// super-root output.
    pub fn crash_replica<S: Substrate + ?Sized>(&mut self, rank: u32, sub: &mut S) -> bool {
        let fallback = self.pick_live(sub);
        let failed_over = self.quorum.crash_replica(rank, fallback, &mut self.sink);
        dispatch(sub, ProcId::SUPER_ROOT, &mut self.sink);
        failed_over
    }

    /// The next live processor under the launch rotor (falls back to
    /// processor 0 when everything is dead). Advances the rotor on every
    /// probe, round-robining placements across live processors.
    pub fn pick_live<S: Substrate + ?Sized>(&mut self, sub: &S) -> ProcId {
        let n = sub.n_procs();
        for _ in 0..n {
            let candidate = ProcId(self.rotor % n);
            self.rotor = self.rotor.wrapping_add(1);
            if sub.is_live(candidate) {
                return candidate;
            }
        }
        ProcId(0)
    }

    /// Launches the program on the next live processor. A non-default
    /// recovery policy stamps the trace stream first — Eager launches emit
    /// nothing, keeping their streams bit-identical to pre-policy runs.
    pub fn launch<S: Substrate + ?Sized>(&mut self, sub: &mut S) {
        if self.policy != PolicySpec::eager() && sub.trace_enabled() {
            sub.trace(splice_simnet::trace::TraceKind::Policy {
                kind: self.policy.kind.tag(),
                tier: self.policy.tier.tag(),
                every: self.policy.recheckpoint_every,
            });
        }
        let dest = self.pick_live(sub);
        self.quorum
            .apply(RootInput::Launch { dest }, &mut self.sink);
        dispatch(sub, ProcId::SUPER_ROOT, &mut self.sink);
    }

    /// Delivers a message addressed to the super-root — routed to the
    /// acting primary; discarded once every replica is dead.
    pub fn on_message<S: Substrate + ?Sized>(&mut self, msg: Msg, sub: &mut S) {
        let fallback = self.pick_live(sub);
        self.quorum
            .apply(RootInput::Message { msg, fallback }, &mut self.sink);
        dispatch(sub, ProcId::SUPER_ROOT, &mut self.sink);
    }

    /// Handles a failure notice (reissues the root if it lived on `dead`).
    pub fn on_failure<S: Substrate + ?Sized>(&mut self, dead: ProcId, sub: &mut S) {
        let fallback = self.pick_live(sub);
        self.quorum
            .apply(RootInput::Failure { dead, fallback }, &mut self.sink);
        dispatch(sub, ProcId::SUPER_ROOT, &mut self.sink);
    }

    /// Fires a super-root timer (the root spawn's ack timeout).
    pub fn on_timer<S: Substrate + ?Sized>(&mut self, timer: Timer, sub: &mut S) {
        let fallback = self.pick_live(sub);
        self.quorum
            .apply(RootInput::Timer { timer, fallback }, &mut self.sink);
        dispatch(sub, ProcId::SUPER_ROOT, &mut self.sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A loopback substrate: messages land in a queue, timers in a list.
    #[derive(Default)]
    struct Loopback {
        n: u32,
        dead: Vec<ProcId>,
        inbox: Vec<(ProcId, ProcId, Msg)>,
        timers: Vec<(ProcId, u64)>,
    }

    impl Substrate for Loopback {
        fn n_procs(&self) -> u32 {
            self.n
        }
        fn is_live(&self, p: ProcId) -> bool {
            !self.dead.contains(&p)
        }
        fn now_units(&self) -> u64 {
            0
        }
        fn send(&mut self, from: ProcId, to: ProcId, msg: Msg) {
            self.inbox.push((from, to, msg));
        }
        fn arm_timer(&mut self, owner: ProcId, _timer: Timer, delay: u64) {
            self.timers.push((owner, delay));
        }
        fn report_death(&mut self, _dead: ProcId) {}
        // No `complete_wave` override: the driver loop's post-call
        // dispatch releases wave effects (the non-deferring default).
    }

    #[test]
    fn rotor_skips_dead_processors() {
        let mut sub = Loopback {
            n: 4,
            dead: vec![ProcId(0), ProcId(1)],
            ..Loopback::default()
        };
        let w = Workload::fib(1);
        let mut sr = SuperRootDriver::new(&w, &Config::default());
        assert_eq!(sr.pick_live(&sub), ProcId(2));
        assert_eq!(sr.pick_live(&sub), ProcId(3));
        assert_eq!(sr.pick_live(&sub), ProcId(2), "wraps around the dead");
        sub.dead = (0..4).map(ProcId).collect();
        assert_eq!(sr.pick_live(&sub), ProcId(0), "all dead falls back to 0");
    }

    #[test]
    fn launch_spawns_onto_substrate_and_arms_ack_timer() {
        let mut sub = Loopback {
            n: 2,
            ..Loopback::default()
        };
        let w = Workload::fib(1);
        let mut sr = SuperRootDriver::new(&w, &Config::default());
        sr.launch(&mut sub);
        assert_eq!(sub.timers.len(), 1, "ack timeout armed");
        assert_eq!(sub.timers[0].0, ProcId::SUPER_ROOT);
        assert_eq!(sub.inbox.len(), 1, "root spawn sent");
        let (from, to, msg) = &sub.inbox[0];
        assert_eq!(*from, ProcId::SUPER_ROOT);
        assert_eq!(*to, ProcId(0));
        assert!(matches!(msg, Msg::Spawn(_)));
        assert!(sr.result().is_none());
        assert_eq!(sr.reissues(), 0);
    }

    #[test]
    fn crash_primary_replica_reissues_through_dispatch() {
        let mut sub = Loopback {
            n: 2,
            ..Loopback::default()
        };
        let w = Workload::fib(1);
        let mut sr = SuperRootDriver::new(&w, &Config::default());
        assert_eq!(sr.replicas(), 3, "paper-default quorum");
        sr.launch(&mut sub);
        sub.inbox.clear();
        // An idle successor dying changes nothing.
        assert!(!sr.crash_replica(2, &mut sub));
        assert!(sub.inbox.is_empty());
        assert_eq!(sr.failovers(), 0);
        // The acting primary dying promotes rank 1, which reissues the
        // root wave through the same dispatch path as every other output.
        assert!(sr.crash_replica(0, &mut sub));
        assert_eq!(sr.failovers(), 1);
        assert_eq!(sr.reissues(), 1);
        assert!(
            sub.inbox
                .iter()
                .any(|(from, _, msg)| *from == ProcId::SUPER_ROOT
                    && matches!(msg, Msg::Spawn(p) if p.incarnation == 1)),
            "takeover must respawn the root: {:?}",
            sub.inbox
        );
        assert!(sr.has_live_replica());
        // Kill the rest: the role is gone.
        sr.crash_replica(1, &mut sub);
        sr.crash_replica(2, &mut sub);
        assert!(!sr.has_live_replica());
    }

    #[test]
    fn wave_effects_pass_through_the_decorator_stack() {
        // Regression: wave-produced sends must be released against the
        // *top* of the substrate stack. The old `complete_wave` default
        // dispatched against the innermost substrate, so child spawns and
        // results — the bulk of all traffic — bypassed every decorator
        // (no batching, no router surcharge) on non-deferring backends.
        let inner = Loopback {
            n: 1,
            ..Loopback::default()
        };
        let mut sub = crate::batch::BatchingSubstrate::new(inner, 10);
        let w = Workload::fib(2);
        let cfg = Config {
            load_beacon_period: 0,
            ..Config::default()
        };
        let mut node = DriverLoop::new(
            ProcId(0),
            Arc::new(w.program.clone()),
            cfg,
            Box::new(splice_core::place::RoundRobinPlacer::new(vec![ProcId(0)])),
        );
        // Deliver the root task directly; its placement ack targets the
        // super-root and legitimately bypasses the bus.
        node.on_message(
            Msg::spawn(splice_core::packet::TaskPacket {
                stamp: splice_core::stamp::LevelStamp::root().child(1),
                demand: splice_applicative::wave::Demand::new(w.entry, w.args.clone()),
                parent: splice_core::packet::TaskLink::super_root(),
                ancestors: vec![splice_core::packet::TaskLink::super_root()],
                incarnation: 0,
                hops: 0,
                replica: None,
                under_replica: false,
            }),
            &mut sub,
        );
        assert!(node.run_ready_wave(&mut sub), "root wave must run");
        assert!(
            sub.pending_len() > 0,
            "wave-spawned children must land in the batching buffer"
        );
        // Only the ack on the (unbatched) driver link may have gone out.
        assert!(
            sub.inner()
                .inbox
                .iter()
                .all(|(_, to, _)| to.is_super_root()),
            "a worker-bound wave effect bypassed the bus"
        );
        sub.flush();
        assert!(
            sub.inner()
                .inbox
                .iter()
                .any(|(_, to, _)| !to.is_super_root()),
            "flush delivers the spawns"
        );
    }

    #[test]
    fn driver_loop_pumps_an_engine_end_to_end() {
        // One processor, loopback transport: spawn the root task into the
        // engine, run waves to completion, and watch the result reach the
        // super-root through the shared dispatch path alone.
        let mut sub = Loopback {
            n: 1,
            ..Loopback::default()
        };
        let w = Workload::fib(5);
        let cfg = Config {
            load_beacon_period: 0,
            ..Config::default()
        };
        let program = Arc::new(w.program.clone());
        let mut node = DriverLoop::new(
            ProcId(0),
            program,
            cfg.clone(),
            Box::new(splice_core::place::RoundRobinPlacer::new(vec![ProcId(0)])),
        );
        let mut sr = SuperRootDriver::new(&w, &cfg);
        node.start(&mut sub);
        sr.launch(&mut sub);
        for _ in 0..100_000 {
            if sr.result().is_some() {
                break;
            }
            while let Some((_, to, msg)) = (!sub.inbox.is_empty()).then(|| sub.inbox.remove(0)) {
                if to.is_super_root() {
                    sr.on_message(msg, &mut sub);
                } else {
                    node.on_message(msg, &mut sub);
                }
            }
            if !node.run_ready_wave(&mut sub) && sub.inbox.is_empty() {
                break;
            }
        }
        assert_eq!(
            sr.result(),
            Some(&w.reference_result().unwrap()),
            "fib(5) through the shared driver loop"
        );
        assert!(node.engine().stats().tasks_completed > 0);
        assert!(!node.has_ready());
    }
}
