//! The tracing decorator and the stable payload digests.
//!
//! [`TracingSubstrate`] sits *innermost* in a substrate stack (closest to
//! the backend core): the driver loop narrates deliveries, timer fires and
//! waves through the [`Substrate::trace`] hook, outer decorators forward
//! the hook inward, and this layer timestamps each event with the core's
//! clock and feeds the configured
//! [`Tracer`](splice_simnet::trace::Tracer). It also watches the send path
//! and emits a [`TraceKind::Complete`] event for every result packet — the
//! payload digests that make two runs' streams comparable byte-for-byte.
//!
//! Digests are deterministic FNV-1a walks over the actual packet contents
//! (stamps via [`LevelStamp::iter`], values structurally), never pointer
//! or formatting based, and never allocate — checksum-mode tracing adds
//! zero heap traffic to a run (pinned by the alloc-regression test).

use crate::substrate::Substrate;
use splice_applicative::wave::Demand;
use splice_applicative::Value;
use splice_core::engine::Timer;
use splice_core::ids::{ProcId, TaskAddr};
use splice_core::packet::{Msg, MsgKind, ResultPacket, TaskLink};
use splice_core::stamp::LevelStamp;
use splice_core::ActionSink;
use splice_simnet::trace::{fnv_mix, fnv_start, TraceKind, Tracer};
use splice_simnet::VirtualTime;
use std::borrow::BorrowMut;

/// Stable `u8` tag for a message kind (its index in [`MsgKind::ALL`]).
pub fn kind_tag(kind: MsgKind) -> u8 {
    match kind {
        MsgKind::Spawn => 0,
        MsgKind::Ack => 1,
        MsgKind::Result => 2,
        MsgKind::Salvage => 3,
        MsgKind::Abort => 4,
        MsgKind::Load => 5,
        MsgKind::FailureNotice => 6,
        MsgKind::Probe => 7,
        MsgKind::Ckpt => 8,
    }
}

fn fold_stamp(h: u64, s: &LevelStamp) -> u64 {
    let mut h = fnv_mix(h, s.level() as u64);
    for d in s.iter() {
        h = fnv_mix(h, u64::from(d));
    }
    h
}

fn fold_addr(h: u64, a: &TaskAddr) -> u64 {
    fnv_mix(fnv_mix(h, u64::from(a.proc.0)), a.key.0)
}

fn fold_link(h: u64, l: &TaskLink) -> u64 {
    fold_stamp(fold_addr(h, &l.addr), &l.stamp)
}

fn fold_value(h: u64, v: &Value) -> u64 {
    match v {
        Value::Unit => fnv_mix(h, 1),
        Value::Bool(b) => fnv_mix(fnv_mix(h, 2), u64::from(*b)),
        Value::Int(n) => fnv_mix(fnv_mix(h, 3), *n as u64),
        Value::Str(s) => {
            let mut h = fnv_mix(h, 4);
            for b in s.bytes() {
                h = fnv_mix(h, u64::from(b));
            }
            h
        }
        Value::List(xs) => {
            let mut h = fnv_mix(fnv_mix(h, 5), xs.len() as u64);
            for x in xs.iter() {
                h = fold_value(h, x);
            }
            h
        }
    }
}

fn fold_demand(h: u64, d: &Demand) -> u64 {
    let mut h = fnv_mix(fnv_mix(h, u64::from(d.fun.0)), d.args.len() as u64);
    for a in &d.args {
        h = fold_value(h, a);
    }
    h
}

/// Digest of a completed task: its stamp and value (plus the replica index
/// when voting). The commutative sum of these over a run is the
/// backend-invariant "answer fingerprint" — on a fault-free plan every
/// backend completes the same tasks with the same values exactly once.
pub fn complete_digest(r: &ResultPacket) -> u64 {
    let mut h = fold_value(fold_stamp(fnv_start(), &r.from_stamp), &r.value);
    if let Some(rep) = &r.replica {
        h = fnv_mix(h, u64::from(rep.index));
    }
    h
}

/// Stable structural digest of a full message payload.
pub fn msg_digest(msg: &Msg) -> u64 {
    let h = fnv_mix(fnv_start(), u64::from(kind_tag(msg.kind())));
    match msg {
        Msg::Spawn(p) => {
            let mut h = fold_demand(fold_stamp(h, &p.stamp), &p.demand);
            h = fold_link(h, &p.parent);
            for l in &p.ancestors {
                h = fold_link(h, l);
            }
            h = fnv_mix(fnv_mix(h, u64::from(p.incarnation)), u64::from(p.hops));
            if let Some(rep) = &p.replica {
                h = fnv_mix(fnv_mix(h, u64::from(rep.index)), u64::from(rep.total));
            }
            fnv_mix(h, u64::from(p.under_replica))
        }
        Msg::Ack(a) => {
            let h = fold_addr(fold_stamp(h, &a.child_stamp), &a.child_addr);
            fnv_mix(fold_addr(h, &a.parent), u64::from(a.incarnation))
        }
        Msg::Result(r) => {
            let mut h = fold_demand(fold_stamp(h, &r.from_stamp), &r.demand);
            h = fold_value(h, &r.value);
            h = fold_stamp(fold_addr(h, &r.to), &r.to_stamp);
            for l in &r.relay_chain {
                h = fold_link(h, l);
            }
            if let Some(rep) = &r.replica {
                h = fnv_mix(h, u64::from(rep.index));
            }
            h
        }
        Msg::Salvage(s) => {
            let mut h = fold_stamp(fold_addr(h, &s.to), &s.dead_stamp);
            h = fold_addr(h, &s.dead_addr);
            h = fold_value(fold_demand(h, &s.demand), &s.value);
            fold_stamp(h, &s.from_stamp)
        }
        Msg::Abort { to } => fold_addr(h, to),
        Msg::Load { from, pressure } => {
            fnv_mix(fnv_mix(h, u64::from(from.0)), u64::from(*pressure))
        }
        Msg::FailureNotice { dead } => fnv_mix(h, u64::from(dead.0)),
        Msg::Probe => h,
        Msg::Ckpt(c) => {
            let mut h = fold_stamp(fold_addr(h, &c.owner), &c.from_stamp);
            h = fnv_mix(h, c.entries.len() as u64);
            for (d, v) in &c.entries {
                h = fold_value(fold_demand(h, d), v);
            }
            h
        }
    }
}

/// Stable structural digest of a timer payload.
pub fn timer_digest(timer: &Timer) -> u64 {
    match timer {
        Timer::AckTimeout(t) => {
            let h = fold_stamp(fnv_mix(fnv_start(), 1), &t.stamp);
            fnv_mix(fnv_mix(h, t.owner.0), u64::from(t.incarnation))
        }
        Timer::LoadBeacon => fnv_mix(fnv_start(), 2),
        Timer::GraceReissue(t) => {
            let h = fold_stamp(fnv_mix(fnv_start(), 3), &t.stamp);
            fnv_mix(h, t.owner.0)
        }
    }
}

/// A [`Substrate`] decorator that records the canonical event stream.
///
/// Placed innermost — between the backend core and the batching/routing
/// decorators — so events are timestamped with the core's clock at the
/// instant traffic actually reaches it. The tracer slot is generic over
/// ownership: machines own their `Tracer` directly, while the threaded
/// runtime's transient per-pump stacks borrow a worker-local one
/// (`TracingSubstrate<_, &mut Tracer>`).
pub struct TracingSubstrate<S, T = Tracer> {
    inner: S,
    tracer: T,
}

impl<S, T: BorrowMut<Tracer>> TracingSubstrate<S, T> {
    /// Wraps `inner`, recording into `tracer`.
    pub fn new(inner: S, tracer: T) -> TracingSubstrate<S, T> {
        TracingSubstrate { inner, tracer }
    }

    /// The tracer.
    pub fn tracer(&self) -> &Tracer {
        self.tracer.borrow()
    }

    /// The tracer, mutably (harvesting summaries and recorded events).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        self.tracer.borrow_mut()
    }

    /// The wrapped substrate.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The wrapped substrate, mutably.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }
}

impl<S, T> std::ops::Deref for TracingSubstrate<S, T> {
    type Target = S;
    fn deref(&self) -> &S {
        &self.inner
    }
}

impl<S, T> std::ops::DerefMut for TracingSubstrate<S, T> {
    fn deref_mut(&mut self) -> &mut S {
        &mut self.inner
    }
}

impl<S: Substrate, T: BorrowMut<Tracer>> TracingSubstrate<S, T> {
    fn observe_send(&mut self, from: ProcId, msg: &Msg) {
        if !self.tracer.borrow().enabled() {
            return;
        }
        if let Msg::Result(r) = msg {
            let kind = TraceKind::Complete {
                owner: from.0,
                digest: complete_digest(r),
            };
            let at = VirtualTime(self.inner.now_units());
            self.tracer.borrow_mut().emit(at, kind);
        }
    }
}

impl<S: Substrate, T: BorrowMut<Tracer>> Substrate for TracingSubstrate<S, T> {
    fn n_procs(&self) -> u32 {
        self.inner.n_procs()
    }

    fn is_live(&self, p: ProcId) -> bool {
        self.inner.is_live(p)
    }

    fn now_units(&self) -> u64 {
        self.inner.now_units()
    }

    fn send(&mut self, from: ProcId, to: ProcId, msg: Msg) {
        self.observe_send(from, &msg);
        self.inner.send(from, to, msg);
    }

    fn send_delayed(&mut self, from: ProcId, to: ProcId, msg: Msg, extra: u64) {
        self.observe_send(from, &msg);
        self.inner.send_delayed(from, to, msg, extra);
    }

    fn arm_timer(&mut self, owner: ProcId, timer: Timer, delay: u64) {
        self.inner.arm_timer(owner, timer, delay);
    }

    fn report_death(&mut self, dead: ProcId) {
        self.inner.report_death(dead);
    }

    fn complete_wave(&mut self, proc: ProcId, sink: &mut ActionSink, work: u64) {
        self.inner.complete_wave(proc, sink, work);
    }

    fn trace(&mut self, kind: TraceKind) {
        let at = VirtualTime(self.inner.now_units());
        self.tracer.borrow_mut().emit(at, kind);
    }

    fn trace_enabled(&self) -> bool {
        self.tracer.borrow().enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_core::ids::TaskKey;
    use splice_simnet::trace::TraceMode;

    #[derive(Default)]
    struct Probe {
        sent: u64,
        now: u64,
    }

    impl Substrate for Probe {
        fn n_procs(&self) -> u32 {
            4
        }
        fn is_live(&self, _p: ProcId) -> bool {
            true
        }
        fn now_units(&self) -> u64 {
            self.now
        }
        fn send(&mut self, _from: ProcId, _to: ProcId, _msg: Msg) {
            self.sent += 1;
        }
        fn arm_timer(&mut self, _owner: ProcId, _timer: Timer, _delay: u64) {}
        fn report_death(&mut self, _dead: ProcId) {}
    }

    fn result_msg(value: Value) -> Msg {
        Msg::result(ResultPacket {
            from_stamp: LevelStamp::from_digits(&[1, 2]),
            demand: Demand::new(splice_applicative::FnId(0), vec![Value::Int(1)]),
            value,
            to: TaskAddr::new(ProcId(0), TaskKey(1)),
            to_stamp: LevelStamp::from_digits(&[1]),
            relay_chain: vec![],
            replica: None,
        })
    }

    #[test]
    fn digests_are_stable_and_payload_sensitive() {
        let a = result_msg(Value::Int(7));
        let b = result_msg(Value::Int(7));
        let c = result_msg(Value::Int(8));
        assert_eq!(msg_digest(&a), msg_digest(&b));
        assert_ne!(msg_digest(&a), msg_digest(&c));
        assert_ne!(msg_digest(&a), msg_digest(&Msg::Probe));
        assert_ne!(
            timer_digest(&Timer::LoadBeacon),
            timer_digest(&Timer::AckTimeout(Box::new(
                splice_core::engine::AckTimer {
                    owner: TaskKey(0),
                    stamp: LevelStamp::root(),
                    incarnation: 0,
                }
            )))
        );
    }

    #[test]
    fn kind_tags_match_the_all_table() {
        for (i, k) in MsgKind::ALL.iter().enumerate() {
            assert_eq!(kind_tag(*k) as usize, i);
        }
    }

    #[test]
    fn result_sends_emit_complete_events() {
        let mut sub = TracingSubstrate::new(Probe::default(), Tracer::new(TraceMode::Full));
        sub.inner_mut().now = 42;
        sub.send(ProcId(1), ProcId(0), result_msg(Value::Int(7)));
        sub.send(ProcId(1), ProcId(0), Msg::Probe);
        assert_eq!(sub.inner().sent, 2, "both messages forwarded");
        let events = sub.tracer_mut().take_events();
        assert_eq!(events.len(), 1, "only the result traced");
        assert_eq!(events[0].at, VirtualTime(42));
        assert!(matches!(
            events[0].kind,
            TraceKind::Complete { owner: 1, .. }
        ));
    }

    #[test]
    fn trace_hook_reaches_a_borrowed_tracer() {
        let mut tracer = Tracer::new(TraceMode::Checksum);
        {
            let mut sub = TracingSubstrate::new(Probe::default(), &mut tracer);
            assert!(sub.trace_enabled());
            sub.trace(TraceKind::Wave { owner: 2, work: 5 });
        }
        assert_eq!(tracer.summary().events, 1);
    }

    #[test]
    fn off_mode_skips_everything() {
        let mut sub = TracingSubstrate::new(Probe::default(), Tracer::default());
        assert!(!sub.trace_enabled());
        sub.send(ProcId(1), ProcId(0), result_msg(Value::Int(7)));
        assert_eq!(sub.tracer().summary().events, 0);
    }
}
