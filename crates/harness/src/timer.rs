//! [`TimerWheel`]: the earliest-deadline timer store for substrates whose
//! clock is not already an event queue (the threaded runtime's workers and
//! coordinator; the simulator schedules timers straight into its DES
//! queue). Ties fire in arming order, like the DES queue's tie rule, so
//! backends agree on timer semantics.

use splice_core::engine::Timer;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<T> {
    at: T,
    seq: u64,
    timer: Timer,
}

impl<T: Ord> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T: Ord> Eq for Entry<T> {}
impl<T: Ord> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T: Ord> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic earliest-deadline store of engine [`Timer`]s, generic
/// over the deadline type (`Instant` on the runtime, anything `Ord`).
pub struct TimerWheel<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T: Ord> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<T: Ord> TimerWheel<T> {
    /// An empty wheel.
    pub fn new() -> TimerWheel<T> {
        TimerWheel::default()
    }

    /// Arms `timer` to fire at `at`.
    pub fn arm(&mut self, at: T, timer: Timer) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, timer });
    }

    /// Pops the earliest timer due at or before `now`, if any. Call in a
    /// loop to drain everything due.
    pub fn pop_due(&mut self, now: &T) -> Option<Timer> {
        if self.heap.peek().is_some_and(|e| e.at <= *now) {
            self.heap.pop().map(|e| e.timer)
        } else {
            None
        }
    }

    /// Deadline of the earliest armed timer.
    pub fn next_deadline(&self) -> Option<&T> {
        self.heap.peek().map(|e| &e.at)
    }

    /// Number of armed timers.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is armed.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_deadline_order_with_fifo_ties() {
        let mut w = TimerWheel::new();
        w.arm(30u64, Timer::LoadBeacon);
        w.arm(
            10,
            Timer::ack_timeout(
                splice_core::ids::TaskKey(1),
                splice_core::stamp::LevelStamp::root(),
                0,
            ),
        );
        w.arm(10, Timer::LoadBeacon);
        assert_eq!(w.len(), 3);
        assert_eq!(w.next_deadline(), Some(&10));
        assert!(matches!(w.pop_due(&20), Some(Timer::AckTimeout { .. })));
        assert!(matches!(w.pop_due(&20), Some(Timer::LoadBeacon)));
        assert!(w.pop_due(&20).is_none(), "deadline 30 is not yet due");
        assert!(matches!(w.pop_due(&30), Some(Timer::LoadBeacon)));
        assert!(w.is_empty());
    }
}
