//! [`TimerWheel`]: the earliest-deadline store for substrates whose clock
//! is not already an event queue (the threaded runtime's workers and
//! coordinator; the simulator schedules timers straight into its DES
//! queue). Ties fire in arming order, like the DES queue's tie rule, so
//! backends agree on timer semantics.
//!
//! The wheel is generic over both the deadline type (`Instant` on the
//! runtime, plain `u64` units on the reactor) and the payload (engine
//! [`Timer`]s by default; the reactor also parks `(owner, Timer)` pairs
//! and whole delayed messages on it — any deadline-ordered, FIFO-tied
//! release queue is the same structure).

use splice_core::engine::Timer;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<T, P> {
    at: T,
    seq: u64,
    payload: P,
}

impl<T: Ord, P> PartialEq for Entry<T, P> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T: Ord, P> Eq for Entry<T, P> {}
impl<T: Ord, P> PartialOrd for Entry<T, P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T: Ord, P> Ord for Entry<T, P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic earliest-deadline store of payloads `P` (engine
/// [`Timer`]s unless said otherwise), generic over the deadline type
/// (`Instant` on the runtime, anything `Ord`).
pub struct TimerWheel<T, P = Timer> {
    heap: BinaryHeap<Entry<T, P>>,
    next_seq: u64,
}

impl<T: Ord, P> Default for TimerWheel<T, P> {
    fn default() -> Self {
        TimerWheel {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<T: Ord, P> TimerWheel<T, P> {
    /// An empty wheel.
    pub fn new() -> TimerWheel<T, P> {
        TimerWheel::default()
    }

    /// Arms `payload` to fire at `at`.
    pub fn arm(&mut self, at: T, payload: P) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Pops the earliest payload due at or before `now`, if any. Call in
    /// a loop to drain everything due.
    pub fn pop_due(&mut self, now: &T) -> Option<P> {
        if self.heap.peek().is_some_and(|e| e.at <= *now) {
            self.heap.pop().map(|e| e.payload)
        } else {
            None
        }
    }

    /// Deadline of the earliest armed payload.
    pub fn next_deadline(&self) -> Option<&T> {
        self.heap.peek().map(|e| &e.at)
    }

    /// Removes every armed payload matching `pred` and returns them with
    /// their deadlines, ordered by `(deadline, arming order)` — the order
    /// they would have fired in. Entries that stay keep their original
    /// arming sequence, so relative firing order among them is unchanged.
    /// Used when an engine migrates between reactor pumps: its pending
    /// timers travel with it and re-arm on the destination wheel.
    pub fn extract_if(&mut self, mut pred: impl FnMut(&P) -> bool) -> Vec<(T, P)> {
        let mut kept: Vec<Entry<T, P>> = Vec::with_capacity(self.heap.len());
        let mut out: Vec<Entry<T, P>> = Vec::new();
        for e in std::mem::take(&mut self.heap).into_vec() {
            if pred(&e.payload) {
                out.push(e);
            } else {
                kept.push(e);
            }
        }
        self.heap = BinaryHeap::from(kept);
        out.sort_by(|a, b| a.at.cmp(&b.at).then_with(|| a.seq.cmp(&b.seq)));
        out.into_iter().map(|e| (e.at, e.payload)).collect()
    }

    /// Number of armed payloads.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is armed.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_deadline_order_with_fifo_ties() {
        let mut w = TimerWheel::new();
        w.arm(30u64, Timer::LoadBeacon);
        w.arm(
            10,
            Timer::ack_timeout(
                splice_core::ids::TaskKey(1),
                splice_core::stamp::LevelStamp::root(),
                0,
            ),
        );
        w.arm(10, Timer::LoadBeacon);
        assert_eq!(w.len(), 3);
        assert_eq!(w.next_deadline(), Some(&10));
        assert!(matches!(w.pop_due(&20), Some(Timer::AckTimeout { .. })));
        assert!(matches!(w.pop_due(&20), Some(Timer::LoadBeacon)));
        assert!(w.pop_due(&20).is_none(), "deadline 30 is not yet due");
        assert!(matches!(w.pop_due(&30), Some(Timer::LoadBeacon)));
        assert!(w.is_empty());
    }

    #[test]
    fn carries_arbitrary_payloads_with_fifo_ties() {
        // The reactor's usage: deadline-ordered release of any payload,
        // same-deadline entries in arming order.
        let mut w: TimerWheel<u64, &str> = TimerWheel::new();
        w.arm(5, "first");
        w.arm(5, "second");
        w.arm(2, "early");
        assert_eq!(w.pop_due(&10), Some("early"));
        assert_eq!(w.pop_due(&10), Some("first"));
        assert_eq!(w.pop_due(&10), Some("second"));
        assert!(w.pop_due(&10).is_none());
    }

    #[test]
    fn extract_if_takes_matches_in_firing_order_and_keeps_the_rest() {
        let mut w: TimerWheel<u64, (u32, &str)> = TimerWheel::new();
        w.arm(30, (1, "late"));
        w.arm(10, (2, "other-a"));
        w.arm(10, (1, "tie-a"));
        w.arm(10, (1, "tie-b"));
        w.arm(5, (2, "other-b"));
        let taken = w.extract_if(|(owner, _)| *owner == 1);
        assert_eq!(
            taken,
            vec![(10, (1, "tie-a")), (10, (1, "tie-b")), (30, (1, "late"))],
            "matches come out in (deadline, arming) order"
        );
        assert_eq!(w.len(), 2);
        assert_eq!(w.pop_due(&100), Some((2, "other-b")));
        assert_eq!(w.pop_due(&100), Some((2, "other-a")));
        assert!(w.extract_if(|_| true).is_empty(), "wheel fully drained");
    }
}
