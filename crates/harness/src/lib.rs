//! `splice-harness` — the shared sans-IO driver layer.
//!
//! The protocol engine (`splice_core::engine::Engine`) is sans-IO: it owns
//! no clock, no transport and no scheduler, and answers every input with a
//! list of [`Action`](splice_core::Action)s. Historically each machine —
//! the deterministic simulator (`splice-sim`) and the threaded runtime
//! (`splice-runtime`) — hand-rolled the same loop around it: dispatch
//! actions, arm timers, pick live fallbacks for the super-root, broadcast
//! failure notices, and assemble run statistics. This crate is that loop,
//! extracted once:
//!
//! * [`substrate`] — the [`Substrate`] trait: the *only* interface a
//!   backend must implement (deliver a message, read the clock, arm a
//!   timer, report a death), plus the [`dispatch`] fan-out every driver
//!   used to duplicate;
//! * [`driver`] — the shared driver loop: [`DriverLoop`] pumps one engine
//!   (start / message / timer / send-failure / ready waves) and
//!   [`SuperRootDriver`] owns the reliable super-root with its live-fallback
//!   rotor;
//! * [`shard`] — [`ShardRouter`], the inter-shard router decorator: wraps
//!   any substrate, charges cross-shard sends a router surcharge and
//!   accounts intra- vs inter-shard traffic separately;
//! * [`batch`] — [`BatchingSubstrate`], the coalescing-bus decorator:
//!   buffers same-pump sends and delivers them per `(from, to)` envelope
//!   after a configurable flush window (experiment E15);
//! * [`reactor`] — [`ReactorSubstrate`], the cooperative-reactor backend:
//!   per-engine mailboxes, a ready queue with waker flags, timer and
//!   delayed-send wheels, and a virtual-or-wall [`ReactorClock`] — so one
//!   thread pumps thousands of engines with no thread-per-processor limit;
//! * [`parallel`] — [`ReactorCluster`], the multi-core reactor: one
//!   [`Pump`] per core, cross-reactor sends over per-pair bounded links,
//!   barrier-granular work stealing, driven in virtual-clock rounds by a
//!   coordinating front-end;
//! * [`timer`] — [`TimerWheel`], the earliest-deadline store (engine
//!   timers by default, any payload — the reactor parks delayed sends on
//!   it too) used by substrates whose clock is not an event queue;
//! * [`report`] — [`EngineSnapshot`] / [`EngineTotals`], the per-engine
//!   measurement capture both machines aggregate into their run reports;
//! * [`trace`] — [`TracingSubstrate`], the canonical-trace decorator: sits
//!   innermost in any stack and records the typed
//!   [`TraceEvent`](splice_simnet::trace::TraceEvent) stream (deliveries,
//!   timer fires, bounces, waves, completions) the driver loop narrates
//!   through [`Substrate::trace`], with stable payload digests.
//!
//! Adding a backend (an async reactor, a sharded multi-process transport, a
//! batched-delivery bus) means implementing [`Substrate`] and pumping
//! [`DriverLoop`]s — no protocol logic is involved.

#![warn(missing_docs)]

pub mod batch;
pub mod driver;
pub mod parallel;
pub mod reactor;
pub mod report;
pub mod shard;
pub mod substrate;
pub mod timer;
pub mod trace;

pub use batch::{BatchStats, BatchingSubstrate};
pub use driver::{DriverLoop, SuperRootDriver};
pub use parallel::{
    ClusterMap, Migration, Pump, PumpHarvest, PumpSubstrate, ReactorCluster, RoundInput,
    RoundOutput, Transfer,
};
pub use reactor::{Inbound, ReactorClock, ReactorSubstrate};
pub use report::{EngineSnapshot, EngineTotals};
pub use shard::{ShardMap, ShardRouter, ShardStats};
pub use substrate::{corrupt_value, death_notice_targets, dispatch, dispatch_iter, Substrate};
pub use timer::TimerWheel;
pub use trace::{complete_digest, kind_tag, msg_digest, timer_digest, TracingSubstrate};
