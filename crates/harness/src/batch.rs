//! Batched delivery: the coalescing-bus substrate decorator.
//!
//! Real interconnects amortize per-message overhead by coalescing traffic
//! to the same destination into one envelope, at the price of holding
//! messages back for a flush window. [`BatchingSubstrate`] models exactly
//! that trade for the recovery protocol: `send`s made during one driver
//! pump are buffered; [`BatchingSubstrate::flush`] (called by the machine
//! once per pump, or implicitly when the decorator is dropped) groups them
//! by `(from, to)` link, counts one *envelope* per group, and forwards
//! every message with `flush_window` extra delivery delay through
//! [`Substrate::send_delayed`] — so latency-modelling backends (the DES,
//! the threaded runtime's delayed-delivery queue) charge the batching
//! delay, while per-destination FIFO order is preserved verbatim.
//!
//! With `flush_window == 0` the decorator is a transparent pass-through
//! (nothing is buffered, delivery order is bit-identical to the undecorated
//! substrate), so a machine can be built around it unconditionally — the
//! same construction pattern as [`crate::shard::ShardRouter`]. Experiment
//! E15 sweeps the window to measure what delivery batching does to
//! completion and recovery latency.

use crate::substrate::Substrate;
use splice_core::engine::Timer;
use splice_core::ids::ProcId;
use splice_core::packet::Msg;
use splice_core::sink::ActionSink;
use splice_simnet::trace::TraceKind;

/// Per-run batching accounting.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchStats {
    /// Flushes that delivered at least one message.
    pub flushes: u64,
    /// Envelopes (distinct `(from, to)` links per flush) delivered.
    pub envelopes: u64,
    /// Messages delivered through the batching buffer.
    pub messages: u64,
}

impl BatchStats {
    /// Mean messages per envelope (1.0 when batching never coalesced).
    pub fn mean_batch(&self) -> f64 {
        if self.envelopes == 0 {
            0.0
        } else {
            self.messages as f64 / self.envelopes as f64
        }
    }
}

/// A [`Substrate`] decorator that coalesces same-destination sends within
/// a pump into one envelope, delivered after a configurable flush window.
pub struct BatchingSubstrate<S: Substrate> {
    inner: S,
    flush_window: u64,
    /// Buffered sends in arrival order: `(from, to, msg, extra)`.
    pending: Vec<(ProcId, ProcId, Msg, u64)>,
    stats: BatchStats,
}

impl<S: Substrate> BatchingSubstrate<S> {
    /// Wraps `inner`; messages buffered during a pump are delivered with
    /// `flush_window` extra delay units. A window of 0 disables buffering
    /// entirely (transparent pass-through).
    pub fn new(inner: S, flush_window: u64) -> BatchingSubstrate<S> {
        BatchingSubstrate {
            inner,
            flush_window,
            pending: Vec::new(),
            stats: BatchStats::default(),
        }
    }

    /// The configured flush window.
    pub fn flush_window(&self) -> u64 {
        self.flush_window
    }

    /// Batching accounting so far.
    pub fn batch_stats(&self) -> &BatchStats {
        &self.stats
    }

    /// The wrapped substrate.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The wrapped substrate, mutably.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Messages currently held in the batching buffer.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Delivers everything buffered since the last flush. Messages go out
    /// in arrival order (per-destination FIFO is preserved; backends break
    /// same-instant ties by send order), each carrying the flush window as
    /// extra delivery delay. Envelope accounting groups by `(from, to)`.
    pub fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        self.stats.flushes += 1;
        self.stats.messages += self.pending.len() as u64;
        // Count distinct links in this flush — one envelope per link. The
        // per-pump buffer is small, so a quadratic scan beats hashing.
        for i in 0..self.pending.len() {
            let (f, t) = (self.pending[i].0, self.pending[i].1);
            if !self.pending[..i]
                .iter()
                .any(|(pf, pt, ..)| (*pf, *pt) == (f, t))
            {
                self.stats.envelopes += 1;
            }
        }
        let window = self.flush_window;
        for (from, to, msg, extra) in self.pending.drain(..) {
            self.inner.send_delayed(from, to, msg, extra + window);
        }
    }
}

/// Un-flushed messages must never be lost: pumps that build a transient
/// decorator (the threaded runtime wraps its substrate per pump) flush on
/// scope exit.
impl<S: Substrate> Drop for BatchingSubstrate<S> {
    fn drop(&mut self) {
        self.flush();
    }
}

impl<S: Substrate> std::ops::Deref for BatchingSubstrate<S> {
    type Target = S;
    fn deref(&self) -> &S {
        &self.inner
    }
}

impl<S: Substrate> std::ops::DerefMut for BatchingSubstrate<S> {
    fn deref_mut(&mut self) -> &mut S {
        &mut self.inner
    }
}

impl<S: Substrate> Substrate for BatchingSubstrate<S> {
    fn n_procs(&self) -> u32 {
        self.inner.n_procs()
    }

    fn is_live(&self, p: ProcId) -> bool {
        self.inner.is_live(p)
    }

    fn now_units(&self) -> u64 {
        self.inner.now_units()
    }

    fn send(&mut self, from: ProcId, to: ProcId, msg: Msg) {
        self.send_delayed(from, to, msg, 0);
    }

    fn send_delayed(&mut self, from: ProcId, to: ProcId, msg: Msg, extra: u64) {
        // Pass-through mode, and the reliable driver link, bypass the
        // buffer (delaying the final result to batch it with nothing wins
        // nothing and skews completion times).
        if self.flush_window == 0 || from.is_super_root() || to.is_super_root() {
            return self.inner.send_delayed(from, to, msg, extra);
        }
        self.pending.push((from, to, msg, extra));
    }

    fn arm_timer(&mut self, owner: ProcId, timer: Timer, delay: u64) {
        self.inner.arm_timer(owner, timer, delay);
    }

    fn report_death(&mut self, dead: ProcId) {
        self.inner.report_death(dead);
    }

    fn complete_wave(&mut self, proc: ProcId, sink: &mut ActionSink, work: u64) {
        self.inner.complete_wave(proc, sink, work);
    }

    fn trace(&mut self, kind: TraceKind) {
        self.inner.trace(kind);
    }

    fn trace_enabled(&self) -> bool {
        self.inner.trace_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use splice_core::ids::{TaskAddr, TaskKey};
    use splice_core::stamp::LevelStamp;

    fn msg(tag: u32) -> Msg {
        Msg::ack(
            LevelStamp::from_digits(&[1]),
            TaskAddr::new(ProcId(tag), TaskKey(u64::from(tag))),
            TaskAddr::super_root(),
            tag,
        )
    }

    fn msg_tag(m: &Msg) -> u32 {
        match m {
            Msg::Ack(a) => a.incarnation,
            _ => unreachable!(),
        }
    }

    /// Records delivered sends with their extra delay.
    #[derive(Default)]
    struct Probe {
        sent: Vec<(ProcId, ProcId, u32, u64)>,
    }

    impl Substrate for Probe {
        fn n_procs(&self) -> u32 {
            8
        }
        fn is_live(&self, _p: ProcId) -> bool {
            true
        }
        fn now_units(&self) -> u64 {
            0
        }
        fn send(&mut self, from: ProcId, to: ProcId, msg: Msg) {
            self.sent.push((from, to, msg_tag(&msg), 0));
        }
        fn send_delayed(&mut self, from: ProcId, to: ProcId, msg: Msg, extra: u64) {
            self.sent.push((from, to, msg_tag(&msg), extra));
        }
        fn arm_timer(&mut self, _owner: ProcId, _timer: Timer, _delay: u64) {}
        fn report_death(&mut self, _dead: ProcId) {}
    }

    #[test]
    fn zero_window_is_transparent() {
        let mut b = BatchingSubstrate::new(Probe::default(), 0);
        b.send(ProcId(0), ProcId(1), msg(7));
        assert_eq!(b.pending_len(), 0);
        assert_eq!(b.inner().sent, vec![(ProcId(0), ProcId(1), 7, 0)]);
        b.flush();
        assert_eq!(b.batch_stats().flushes, 0);
    }

    #[test]
    fn buffered_until_flush_with_window_surcharge() {
        let mut b = BatchingSubstrate::new(Probe::default(), 50);
        b.send(ProcId(0), ProcId(1), msg(1));
        b.send(ProcId(0), ProcId(1), msg(2));
        b.send_delayed(ProcId(0), ProcId(2), msg(3), 200);
        assert!(b.inner().sent.is_empty(), "held until the flush");
        assert_eq!(b.pending_len(), 3);
        b.flush();
        assert_eq!(
            b.inner().sent,
            vec![
                (ProcId(0), ProcId(1), 1, 50),
                (ProcId(0), ProcId(1), 2, 50),
                (ProcId(0), ProcId(2), 3, 250),
            ],
            "send order kept; window composes with upstream surcharges"
        );
        let stats = *b.batch_stats();
        assert_eq!(stats.flushes, 1);
        assert_eq!(stats.envelopes, 2, "two distinct links in the flush");
        assert_eq!(stats.messages, 3);
        assert!((stats.mean_batch() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn driver_link_bypasses_the_buffer() {
        let mut b = BatchingSubstrate::new(Probe::default(), 50);
        b.send(ProcId(3), ProcId::SUPER_ROOT, msg(1));
        b.send(ProcId::SUPER_ROOT, ProcId(3), msg(2));
        assert_eq!(b.pending_len(), 0);
        assert_eq!(b.inner().sent.len(), 2);
        assert!(b.inner().sent.iter().all(|(_, _, _, extra)| *extra == 0));
    }

    /// splitmix64 — a tiny deterministic stream for the property test.
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Per-destination FIFO order is preserved through arbitrary
        /// interleavings of sends and flushes.
        #[test]
        fn per_link_fifo_is_preserved(seed in any::<u64>(), n in 1usize..80) {
            let mut state = seed;
            let mut b = BatchingSubstrate::new(Probe::default(), 25);
            for i in 0..n {
                let f = (mix(&mut state) % 3) as u32;
                let t = 3 + (mix(&mut state) % 3) as u32;
                b.send(ProcId(f), ProcId(t), msg(i as u32));
                if mix(&mut state).is_multiple_of(4) {
                    b.flush();
                }
            }
            b.flush();
            prop_assert_eq!(b.inner().sent.len(), n);
            // Within each (from, to) link, tags must appear in send order.
            for f in 0..3u32 {
                for t in 3..6u32 {
                    let delivered: Vec<u32> = b.inner().sent.iter()
                        .filter(|(pf, pt, ..)| (*pf, *pt) == (ProcId(f), ProcId(t)))
                        .map(|(_, _, tag, _)| *tag)
                        .collect();
                    let mut sorted = delivered.clone();
                    sorted.sort_unstable();
                    prop_assert_eq!(delivered, sorted);
                }
            }
        }
    }
}
