//! The [`Substrate`] trait — what a machine backend must provide — and the
//! action fan-out shared by every driver.

use splice_applicative::Value;
use splice_core::engine::{Action, Timer};
use splice_core::ids::ProcId;
use splice_core::packet::Msg;
use splice_core::sink::ActionSink;
use splice_simnet::trace::TraceKind;

/// A transport-and-clock backend under the shared driver loop.
///
/// The engine emits [`Action`]s; a substrate turns them into reality:
/// messages onto the interconnect, timers onto a clock. The simulator
/// implements this over a deterministic event queue and virtual time; the
/// threaded runtime over channels and the OS clock. All protocol behaviour
/// (what to send, when to reissue, how to recover) stays in `splice-core`;
/// all policy shared between backends (fan-out, fallback rotors, failure
/// broadcasts) stays in this crate; a substrate contributes *only*
/// delivery, time and liveness.
pub trait Substrate {
    /// Number of worker processors (the super-root pseudo-processor not
    /// included).
    fn n_procs(&self) -> u32;

    /// True while processor `p` has not crashed. `ProcId::SUPER_ROOT` is
    /// never asked.
    fn is_live(&self, p: ProcId) -> bool;

    /// Current driver time, in the same abstract units timer delays use
    /// (virtual ticks on the simulator, `time_unit`s on the runtime).
    fn now_units(&self) -> u64;

    /// Transmits `msg` from `from` to `to`, with whatever latency, loss or
    /// bounce semantics the backend models. `to` may be
    /// `ProcId::SUPER_ROOT`.
    fn send(&mut self, from: ProcId, to: ProcId, msg: Msg);

    /// Transmits like [`Substrate::send`], asking the backend to add
    /// `extra` driver time units of delivery delay — a router or bus
    /// surcharge injected by substrate decorators such as
    /// [`crate::shard::ShardRouter`]. Backends that do not model latency
    /// (the threaded runtime: real time already passes on the wire) keep
    /// this default and deliver like `send`; the simulator folds `extra`
    /// into the scheduled delivery (and bounce) instant.
    fn send_delayed(&mut self, from: ProcId, to: ProcId, msg: Msg, extra: u64) {
        let _ = extra;
        self.send(from, to, msg);
    }

    /// Arms `timer` to fire for `owner` after `delay` driver units.
    fn arm_timer(&mut self, owner: ProcId, timer: Timer, delay: u64);

    /// Announces that `dead` has been observed dead, delivering failure
    /// notices to the peers and the super-root with backend-appropriate
    /// timing (see [`death_notice_targets`] for the canonical recipients).
    fn report_death(&mut self, dead: ProcId);

    /// Completes a wave that performed `work` units. A backend that
    /// *defers* wave effects (the simulator: effects materialize at the
    /// wave's completion instant and die with a mid-wave crash) consumes
    /// the sink here; decorators forward the call inward so the deferral
    /// happens at the core. Anything left in the sink is dispatched by the
    /// driver loop **through the whole decorator stack** — which is why
    /// the default does nothing: if it dispatched against `self`, an
    /// undecorated inner substrate would bypass the routers and buses
    /// wrapped around it.
    fn complete_wave(&mut self, proc: ProcId, sink: &mut ActionSink, work: u64) {
        let _ = (proc, sink, work);
    }

    /// Records one canonical trace event. The driver loop narrates
    /// deliveries, timer fires and waves through this hook; decorators
    /// forward it inward so it reaches the
    /// [`TracingSubstrate`](crate::trace::TracingSubstrate) (which
    /// timestamps it with the core clock), and untraced stacks keep this
    /// no-op default.
    fn trace(&mut self, kind: TraceKind) {
        let _ = kind;
    }

    /// True when [`Substrate::trace`] events will actually be retained —
    /// callers use this to skip payload digest work on untraced runs.
    fn trace_enabled(&self) -> bool {
        false
    }
}

/// Drains a sink of engine [`Action`]s into a substrate — the fan-out both
/// machines used to hand-roll. `from` is the acting processor (or
/// `ProcId::SUPER_ROOT`). The sink is empty afterwards and ready for the
/// next pump; nothing is allocated.
pub fn dispatch<S: Substrate + ?Sized>(sub: &mut S, from: ProcId, sink: &mut ActionSink) {
    dispatch_iter(sub, from, sink.drain());
}

/// Performs an owned sequence of engine [`Action`]s against a substrate
/// (deferred wave effects, scripted scenarios).
pub fn dispatch_iter<S: Substrate + ?Sized>(
    sub: &mut S,
    from: ProcId,
    actions: impl IntoIterator<Item = Action>,
) {
    for action in actions {
        match action {
            Action::Send { to, msg } => sub.send(from, to, msg),
            Action::SetTimer { timer, delay } => sub.arm_timer(from, timer, delay),
        }
    }
}

/// The canonical recipients of a failure notice for `dead`: every live peer
/// (in processor order), then the super-root. Backends decide the timing
/// (staggered detector delays on the simulator, immediate broadcast on the
/// runtime); this fixes *who* hears, so detection plumbing cannot drift
/// between backends.
pub fn death_notice_targets(
    n_procs: u32,
    mut is_live: impl FnMut(ProcId) -> bool,
    dead: ProcId,
) -> Vec<ProcId> {
    let mut targets = Vec::new();
    for i in 0..n_procs {
        let p = ProcId(i);
        if p != dead && is_live(p) {
            targets.push(p);
        }
    }
    targets.push(ProcId::SUPER_ROOT);
    targets
}

/// Deterministic, detectable corruption of a value — the §5.3 faulty-
/// processor model shared by every backend's corrupt-fault injection (the
/// corruption must be identical so replicated-voting runs agree across
/// backends).
pub fn corrupt_value(v: &Value) -> Value {
    match v {
        Value::Int(n) => Value::Int(n.wrapping_mul(31).wrapping_add(7)),
        Value::Bool(b) => Value::Bool(!b),
        other => Value::list([other.clone(), Value::str("corrupt")]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_core::engine::Timer;
    use splice_core::packet::Msg;

    #[derive(Default)]
    struct Probe {
        sent: Vec<(ProcId, ProcId)>,
        timers: Vec<(ProcId, u64)>,
        deaths: Vec<ProcId>,
        waves: Vec<(ProcId, u64)>,
    }

    impl Substrate for Probe {
        fn n_procs(&self) -> u32 {
            4
        }
        fn is_live(&self, p: ProcId) -> bool {
            p != ProcId(2)
        }
        fn now_units(&self) -> u64 {
            0
        }
        fn send(&mut self, from: ProcId, to: ProcId, _msg: Msg) {
            self.sent.push((from, to));
        }
        fn arm_timer(&mut self, owner: ProcId, _timer: Timer, delay: u64) {
            self.timers.push((owner, delay));
        }
        fn report_death(&mut self, dead: ProcId) {
            self.deaths.push(dead);
        }
        fn complete_wave(&mut self, proc: ProcId, sink: &mut ActionSink, work: u64) {
            self.waves.push((proc, work));
            dispatch(self, proc, sink);
        }
    }

    #[test]
    fn dispatch_routes_sends_and_timers() {
        let mut probe = Probe::default();
        let mut sink = ActionSink::new();
        sink.push(Action::SetTimer {
            timer: Timer::LoadBeacon,
            delay: 9,
        });
        sink.push(Action::Send {
            to: ProcId(3),
            msg: Msg::FailureNotice { dead: ProcId(0) },
        });
        dispatch(&mut probe, ProcId(1), &mut sink);
        assert!(sink.is_empty(), "dispatch drains the sink");
        assert_eq!(probe.timers, vec![(ProcId(1), 9)]);
        assert_eq!(probe.sent, vec![(ProcId(1), ProcId(3))]);
    }

    #[test]
    fn notice_targets_are_live_peers_then_super_root() {
        let probe = Probe::default();
        let targets = death_notice_targets(probe.n_procs(), |p| probe.is_live(p), ProcId(1));
        assert_eq!(
            targets,
            vec![ProcId(0), ProcId(3), ProcId::SUPER_ROOT],
            "dead victim and dead peer 2 excluded, super-root last"
        );
    }

    #[test]
    fn corruption_is_deterministic_and_visible() {
        assert_eq!(corrupt_value(&Value::Int(1)), corrupt_value(&Value::Int(1)));
        assert_ne!(corrupt_value(&Value::Int(1)), Value::Int(1));
        assert_ne!(corrupt_value(&Value::Bool(true)), Value::Bool(true));
    }
}
