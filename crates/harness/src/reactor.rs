//! The cooperative reactor: thousands of engines on one thread.
//!
//! [`ReactorSubstrate`] is the third machine backend, between the
//! simulator and the threaded runtime: like the runtime it delivers
//! messages promptly (no latency model), like the simulator it runs on a
//! single thread and can be driven deterministically — but its scheduler
//! is neither a globally time-ordered event queue nor the OS: it is a
//! hand-rolled, dependency-free reactor. Each engine owns a mailbox; a
//! ready queue with waker flags decides who is pumped next; deadlines
//! (engine timers *and* delayed sends: router surcharges, batching
//! windows) ride two [`TimerWheel`]s; the clock is pluggable between
//! virtual units (advanced by the front-end as waves execute — the E16
//! experiments) and the wall clock (a real single-threaded server loop).
//!
//! Because there is no thread per processor, the engine count is bounded
//! by memory, not by the OS — the first backend shaped like "one machine,
//! thousands of users". And because the scheduling discipline is genuinely
//! different from both other backends, it is the third independent
//! scheduler the differential fault-plan fuzz suite runs plans through:
//! the recovery protocol claims its outcome is scheduler-independent, and
//! three schedulers disagreeing is how that claim gets tested.
//!
//! This file is sans-simulation: it knows nothing about fault plans, cost
//! models or run reports. A front-end (`splice-sim`'s `ReactorMachine`)
//! applies faults through [`ReactorSubstrate::kill`] /
//! [`ReactorSubstrate::set_corrupting`], pumps the drained stimuli into
//! its `DriverLoop`s, and charges wave work to the virtual clock.

use crate::substrate::{corrupt_value, death_notice_targets, Substrate};
use crate::timer::TimerWheel;
use splice_core::engine::Timer;
use splice_core::ids::ProcId;
use splice_core::packet::Msg;
use splice_core::sink::ActionSink;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// The reactor's notion of time: virtual units advanced by the front-end,
/// or the wall clock mapped through a time unit.
#[derive(Clone, Copy, Debug)]
pub enum ReactorClock {
    /// Deterministic units; [`ReactorClock::advance_to`] moves the clock
    /// forward explicitly (wave costs, idle skips to the next deadline).
    Virtual {
        /// Current time in units.
        now: u64,
    },
    /// Real time: `now` is the wall-clock duration since `epoch` divided
    /// by `time_unit`; advancing sleeps until the target instant.
    Wall {
        /// When the run started.
        epoch: Instant,
        /// Wall-clock length of one unit.
        time_unit: Duration,
    },
}

impl ReactorClock {
    /// A virtual clock starting at 0.
    pub fn virtual_units() -> ReactorClock {
        ReactorClock::Virtual { now: 0 }
    }

    /// A wall clock whose unit is `time_unit`, starting now.
    pub fn wall(time_unit: Duration) -> ReactorClock {
        ReactorClock::Wall {
            epoch: Instant::now(),
            time_unit,
        }
    }

    /// Current time in units.
    pub fn now_units(&self) -> u64 {
        match self {
            ReactorClock::Virtual { now } => *now,
            ReactorClock::Wall { epoch, time_unit } => {
                (epoch.elapsed().as_nanos() / time_unit.as_nanos().max(1)) as u64
            }
        }
    }

    /// Moves the clock to at least `t` units: instantly on the virtual
    /// clock, by sleeping on the wall clock. Never moves backwards.
    pub fn advance_to(&mut self, t: u64) {
        match self {
            ReactorClock::Virtual { now } => *now = (*now).max(t),
            ReactorClock::Wall { epoch, time_unit } => {
                let target = *epoch + Duration::from_nanos(time_unit.as_nanos() as u64 * t);
                let now = Instant::now();
                if target > now {
                    std::thread::sleep(target - now);
                }
            }
        }
    }

    /// Advances by `delta` units from the current reading.
    pub fn advance_by(&mut self, delta: u64) {
        let t = self.now_units().saturating_add(delta);
        self.advance_to(t);
    }
}

/// One stimulus waiting in an engine's mailbox.
#[derive(Debug)]
pub enum Inbound {
    /// A delivered message.
    Msg(Msg),
    /// A best-effort send that failed: the transport knew `dead` was
    /// unreachable and returned the message to its sender (the simulator's
    /// bounce, without the bounce delay).
    Bounce {
        /// The unreachable destination.
        dead: ProcId,
        /// The undeliverable message.
        msg: Msg,
    },
}

/// A send parked for later release (router surcharges, batching windows).
struct DelayedSend {
    from: ProcId,
    to: ProcId,
    msg: Msg,
}

/// The cooperative-reactor [`Substrate`]: per-engine mailboxes, a ready
/// queue with waker flags, [`TimerWheel`]s for engine timers and delayed
/// sends, and a pluggable [`ReactorClock`].
pub struct ReactorSubstrate {
    clock: ReactorClock,
    alive: Vec<bool>,
    live_count: u32,
    corrupting: Vec<bool>,
    /// Per-engine stimulus queues.
    mail: Vec<VecDeque<Inbound>>,
    /// The reliable driver link: messages addressed to the super-root.
    sr_mail: VecDeque<Msg>,
    /// Failure notices addressed to the super-root driver.
    sr_notices: VecDeque<ProcId>,
    /// Engines with pending work, in wake order.
    ready: VecDeque<u32>,
    /// Waker flags: true while the engine sits in `ready` (dedup).
    queued: Vec<bool>,
    /// Armed engine timers, tagged with their owner.
    timers: TimerWheel<u64, (ProcId, Timer)>,
    /// Parked delayed sends. Same-deadline entries release in send order,
    /// so per-link FIFO survives (same-link messages carry the same extra
    /// and therefore non-decreasing deadlines).
    delayed: TimerWheel<u64, DelayedSend>,
    /// Parked delayed sends addressed to the super-root: even with every
    /// worker dead these must land before the run may be declared stalled
    /// — one of them can be the result.
    pending_sr_delayed: u64,
    /// When false, deaths produce no failure notices at all (the
    /// detector-disabled regime of `DetectorConfig::broadcast = false`):
    /// failures are discovered exclusively through bounces, salvage
    /// arrivals and ack timeouts.
    broadcast: bool,
    /// Work units completed since the last [`ReactorSubstrate::take_work`]
    /// (the front-end charges them to the virtual clock).
    work_pending: u64,
    delivered: u64,
    dropped_to_dead: u64,
    bounces: u64,
}

impl ReactorSubstrate {
    /// A reactor of `n` live engines on `clock`, broadcast detection on.
    pub fn new(n: u32, clock: ReactorClock) -> ReactorSubstrate {
        ReactorSubstrate {
            clock,
            alive: vec![true; n as usize],
            live_count: n,
            corrupting: vec![false; n as usize],
            mail: (0..n).map(|_| VecDeque::new()).collect(),
            sr_mail: VecDeque::new(),
            sr_notices: VecDeque::new(),
            ready: VecDeque::new(),
            queued: vec![false; n as usize],
            timers: TimerWheel::new(),
            delayed: TimerWheel::new(),
            pending_sr_delayed: 0,
            broadcast: true,
            work_pending: 0,
            delivered: 0,
            dropped_to_dead: 0,
            bounces: 0,
        }
    }

    /// Enables or disables broadcast failure notices (mirrors
    /// `DetectorConfig::broadcast`).
    pub fn set_broadcast(&mut self, on: bool) {
        self.broadcast = on;
    }

    /// The clock, for front-ends that advance it.
    pub fn clock_mut(&mut self) -> &mut ReactorClock {
        &mut self.clock
    }

    /// Engines still live.
    pub fn live_count(&self) -> u32 {
        self.live_count
    }

    /// Messages consumed from mailboxes (worker and super-root).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Messages dropped at (or en route to) dead destinations.
    pub fn dropped_to_dead(&self) -> u64 {
        self.dropped_to_dead
    }

    /// Sends returned to their senders because the destination was dead.
    pub fn bounces(&self) -> u64 {
        self.bounces
    }

    /// Marks `victim` fail-silent dead: its mailbox is dropped (fail
    /// silent cuts both ways — a dead processor consumes nothing) and it
    /// leaves the ready queue. Returns false when it was already dead.
    /// The caller decides whether the death is announced
    /// ([`Substrate::report_death`]).
    pub fn kill(&mut self, victim: ProcId) -> bool {
        let i = victim.0 as usize;
        if !self.alive.get(i).copied().unwrap_or(false) {
            return false;
        }
        self.alive[i] = false;
        self.live_count -= 1;
        self.queued[i] = false;
        let dropped = self.mail[i]
            .drain(..)
            .filter(|ib| matches!(ib, Inbound::Msg(_)))
            .count();
        self.dropped_to_dead += dropped as u64;
        true
    }

    /// Marks `victim` as emitting corrupted replica results (no-op when it
    /// is already dead — fail-silent processors emit nothing at all).
    pub fn set_corrupting(&mut self, victim: ProcId) {
        let i = victim.0 as usize;
        if self.alive.get(i).copied().unwrap_or(false) {
            self.corrupting[i] = true;
        }
    }

    /// Queues `p` for pumping if it is live and not already queued.
    pub fn wake(&mut self, p: ProcId) {
        let i = p.0 as usize;
        if self.alive[i] && !self.queued[i] {
            self.queued[i] = true;
            self.ready.push_back(p.0);
        }
    }

    /// The next engine to pump, in wake order. Entries whose engine died
    /// *after* it was woken are discarded here — a fail-silent processor
    /// must not get a post-mortem turn (its queued waves would execute
    /// and their sends escape).
    pub fn pop_ready(&mut self) -> Option<ProcId> {
        while let Some(p) = self.ready.pop_front() {
            self.queued[p as usize] = false;
            if self.alive[p as usize] {
                return Some(ProcId(p));
            }
        }
        None
    }

    /// The next stimulus waiting for engine `p`.
    pub fn pop_inbound(&mut self, p: ProcId) -> Option<Inbound> {
        let ib = self.mail[p.0 as usize].pop_front()?;
        if matches!(ib, Inbound::Msg(_)) {
            self.delivered += 1;
        }
        Some(ib)
    }

    /// True while engine `p` has stimuli waiting.
    pub fn has_inbound(&self, p: ProcId) -> bool {
        !self.mail[p.0 as usize].is_empty()
    }

    /// Stimuli currently waiting for engine `p`. Pumps drain at most this
    /// many per turn: stimuli produced *during* the turn (self-sends,
    /// bounces of this turn's own sends) wait for the next turn, so a
    /// send/bounce cycle cannot starve the rest of the reactor.
    pub fn mail_len(&self, p: ProcId) -> usize {
        self.mail[p.0 as usize].len()
    }

    /// The next message addressed to the super-root.
    pub fn pop_sr_mail(&mut self) -> Option<Msg> {
        let msg = self.sr_mail.pop_front()?;
        self.delivered += 1;
        Some(msg)
    }

    /// The next failure notice addressed to the super-root driver.
    pub fn pop_sr_notice(&mut self) -> Option<ProcId> {
        self.sr_notices.pop_front()
    }

    /// True while nothing is queued for the super-root (mail, notices, or
    /// delayed sends still parked on the wheel). With every engine dead,
    /// this draining is the only thing that can still finish the run.
    pub fn sr_quiet(&self) -> bool {
        self.sr_mail.is_empty() && self.sr_notices.is_empty() && self.pending_sr_delayed == 0
    }

    /// Pops the next engine timer due at or before the current clock.
    pub fn pop_due_timer(&mut self) -> Option<(ProcId, Timer)> {
        let now = self.clock.now_units();
        self.timers.pop_due(&now)
    }

    /// Releases every delayed send whose deadline has passed, routing each
    /// with the liveness known *now* (a destination that died while the
    /// message was parked bounces it back to its sender, matching the
    /// in-flight semantics of the other backends).
    pub fn release_delayed_due(&mut self) {
        let now = self.clock.now_units();
        while let Some(d) = self.delayed.pop_due(&now) {
            if d.to.is_super_root() {
                self.pending_sr_delayed -= 1;
            }
            self.route_now(d.from, d.to, d.msg);
        }
    }

    /// The earliest pending deadline: an engine timer or a parked delayed
    /// send. `None` means nothing in the reactor will ever fire again.
    pub fn next_deadline(&self) -> Option<u64> {
        match (
            self.timers.next_deadline().copied(),
            self.delayed.next_deadline().copied(),
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Work units completed since the last call (the front-end charges
    /// them to the virtual clock through its cost model).
    pub fn take_work(&mut self) -> u64 {
        std::mem::take(&mut self.work_pending)
    }

    /// Routes `msg` with the liveness known now.
    fn route_now(&mut self, from: ProcId, to: ProcId, msg: Msg) {
        if to.is_super_root() {
            // The driver link is reliable.
            self.sr_mail.push_back(msg);
            return;
        }
        let dest = to.0 as usize;
        if !self.alive.get(dest).copied().unwrap_or(false) {
            // Dead destination known to the transport: a live worker
            // sender gets the message bounced back (and learns the
            // destination is unreachable); super-root sends and sends
            // whose sender died meanwhile vanish.
            let sender_live =
                !from.is_super_root() && self.alive.get(from.0 as usize).copied().unwrap_or(false);
            if sender_live {
                self.bounces += 1;
                self.mail[from.0 as usize].push_back(Inbound::Bounce { dead: to, msg });
                self.wake(from);
            } else {
                self.dropped_to_dead += 1;
            }
            return;
        }
        self.mail[dest].push_back(Inbound::Msg(msg));
        self.wake(to);
    }
}

impl Substrate for ReactorSubstrate {
    fn n_procs(&self) -> u32 {
        self.alive.len() as u32
    }

    fn is_live(&self, p: ProcId) -> bool {
        self.alive.get(p.0 as usize).copied().unwrap_or(false)
    }

    fn now_units(&self) -> u64 {
        self.clock.now_units()
    }

    fn send(&mut self, from: ProcId, to: ProcId, msg: Msg) {
        self.send_delayed(from, to, msg, 0);
    }

    fn send_delayed(&mut self, from: ProcId, to: ProcId, mut msg: Msg, extra: u64) {
        // Send-side corruption, identical to the other substrates so
        // replicated-voting runs agree across backends.
        if !from.is_super_root() && self.corrupting[from.0 as usize] {
            if let Msg::Result(rp) = &mut msg {
                if rp.replica.is_some() {
                    rp.value = corrupt_value(&rp.value);
                }
            }
        }
        if extra == 0 {
            return self.route_now(from, to, msg);
        }
        if to.is_super_root() {
            self.pending_sr_delayed += 1;
        }
        let due = self.clock.now_units() + extra;
        self.delayed.arm(due, DelayedSend { from, to, msg });
    }

    fn arm_timer(&mut self, owner: ProcId, timer: Timer, delay: u64) {
        let at = self.clock.now_units() + delay;
        self.timers.arm(at, (owner, timer));
    }

    fn report_death(&mut self, dead: ProcId) {
        if !self.broadcast {
            return;
        }
        for to in death_notice_targets(self.n_procs(), |p| self.is_live(p), dead) {
            if to.is_super_root() {
                self.sr_notices.push_back(dead);
            } else {
                self.mail[to.0 as usize].push_back(Inbound::Msg(Msg::FailureNotice { dead }));
                self.wake(to);
            }
        }
    }

    fn complete_wave(&mut self, _proc: ProcId, _sink: &mut ActionSink, work: u64) {
        // Non-deferring: the driver loop dispatches the sink against the
        // top of the decorator stack. The reactor only records the work so
        // its front-end can charge the virtual clock.
        self.work_pending += work;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_core::ids::{TaskAddr, TaskKey};
    use splice_core::stamp::LevelStamp;

    fn msg(tag: u32) -> Msg {
        Msg::ack(
            LevelStamp::from_digits(&[1]),
            TaskAddr::new(ProcId(tag), TaskKey(u64::from(tag))),
            TaskAddr::super_root(),
            tag,
        )
    }

    fn tag(ib: &Inbound) -> u32 {
        match ib {
            Inbound::Msg(Msg::Ack(a)) => a.incarnation,
            _ => panic!("expected an ack"),
        }
    }

    #[test]
    fn wake_deduplicates_and_skips_the_dead() {
        let mut r = ReactorSubstrate::new(3, ReactorClock::virtual_units());
        r.wake(ProcId(1));
        r.wake(ProcId(1));
        r.wake(ProcId(2));
        assert!(r.kill(ProcId(0)));
        assert!(!r.kill(ProcId(0)), "second kill is a no-op");
        r.wake(ProcId(0));
        assert_eq!(r.pop_ready(), Some(ProcId(1)));
        assert_eq!(r.pop_ready(), Some(ProcId(2)));
        assert_eq!(r.pop_ready(), None, "dead engines never queue");
        assert_eq!(r.live_count(), 2);
    }

    #[test]
    fn engine_killed_after_wake_gets_no_post_mortem_turn() {
        // Fail-silence: a crash landing between an engine's wake and its
        // scheduling turn must cancel the turn — otherwise its queued
        // waves would run and their sends escape a dead processor.
        let mut r = ReactorSubstrate::new(2, ReactorClock::virtual_units());
        r.wake(ProcId(1));
        r.wake(ProcId(0));
        assert!(r.kill(ProcId(1)));
        assert_eq!(r.pop_ready(), Some(ProcId(0)), "stale dead entry skipped");
        assert_eq!(r.pop_ready(), None);
    }

    #[test]
    fn sends_land_in_mailboxes_and_wake_the_destination() {
        let mut r = ReactorSubstrate::new(2, ReactorClock::virtual_units());
        r.send(ProcId(0), ProcId(1), msg(7));
        assert_eq!(r.pop_ready(), Some(ProcId(1)));
        let ib = r.pop_inbound(ProcId(1)).unwrap();
        assert_eq!(tag(&ib), 7);
        assert_eq!(r.delivered(), 1);
        assert!(r.pop_inbound(ProcId(1)).is_none());
    }

    #[test]
    fn dead_destination_bounces_to_a_live_sender() {
        let mut r = ReactorSubstrate::new(2, ReactorClock::virtual_units());
        r.kill(ProcId(1));
        r.send(ProcId(0), ProcId(1), msg(3));
        assert_eq!(r.bounces(), 1);
        assert_eq!(
            r.pop_ready(),
            Some(ProcId(0)),
            "sender woken for the bounce"
        );
        assert!(matches!(
            r.pop_inbound(ProcId(0)),
            Some(Inbound::Bounce {
                dead: ProcId(1),
                ..
            })
        ));
        // Super-root sends to the dead vanish instead.
        r.send(ProcId::SUPER_ROOT, ProcId(1), msg(4));
        assert_eq!(r.dropped_to_dead(), 1);
    }

    #[test]
    fn kill_drops_the_mailbox() {
        let mut r = ReactorSubstrate::new(2, ReactorClock::virtual_units());
        r.send(ProcId(0), ProcId(1), msg(1));
        r.send(ProcId(0), ProcId(1), msg(2));
        r.kill(ProcId(1));
        assert_eq!(r.dropped_to_dead(), 2);
        assert!(r.pop_inbound(ProcId(1)).is_none());
    }

    #[test]
    fn delayed_sends_release_at_their_deadline_in_fifo_order() {
        let mut r = ReactorSubstrate::new(2, ReactorClock::virtual_units());
        r.send_delayed(ProcId(0), ProcId(1), msg(1), 50);
        r.send_delayed(ProcId(0), ProcId(1), msg(2), 50);
        r.release_delayed_due();
        assert!(!r.has_inbound(ProcId(1)), "not due yet");
        assert_eq!(r.next_deadline(), Some(50));
        r.clock_mut().advance_to(50);
        r.release_delayed_due();
        let a = r.pop_inbound(ProcId(1)).unwrap();
        let b = r.pop_inbound(ProcId(1)).unwrap();
        assert_eq!((tag(&a), tag(&b)), (1, 2), "per-link FIFO");
    }

    #[test]
    fn delayed_send_to_a_meanwhile_dead_destination_bounces() {
        let mut r = ReactorSubstrate::new(2, ReactorClock::virtual_units());
        r.send_delayed(ProcId(0), ProcId(1), msg(9), 10);
        r.kill(ProcId(1));
        r.clock_mut().advance_to(10);
        r.release_delayed_due();
        assert_eq!(r.bounces(), 1);
        assert!(matches!(
            r.pop_inbound(ProcId(0)),
            Some(Inbound::Bounce {
                dead: ProcId(1),
                ..
            })
        ));
    }

    #[test]
    fn super_root_link_is_reliable_and_tracked_while_delayed() {
        let mut r = ReactorSubstrate::new(2, ReactorClock::virtual_units());
        assert!(r.sr_quiet());
        r.send_delayed(ProcId(0), ProcId::SUPER_ROOT, msg(5), 30);
        assert!(!r.sr_quiet(), "a parked result must block quiescence");
        r.clock_mut().advance_to(30);
        r.release_delayed_due();
        assert!(!r.sr_quiet());
        assert!(r.pop_sr_mail().is_some());
        assert!(r.sr_quiet());
    }

    #[test]
    fn report_death_notifies_live_peers_then_super_root_unless_disabled() {
        let mut r = ReactorSubstrate::new(3, ReactorClock::virtual_units());
        r.kill(ProcId(1));
        r.report_death(ProcId(1));
        assert!(matches!(
            r.pop_inbound(ProcId(0)),
            Some(Inbound::Msg(Msg::FailureNotice { dead: ProcId(1) }))
        ));
        assert!(matches!(
            r.pop_inbound(ProcId(2)),
            Some(Inbound::Msg(Msg::FailureNotice { dead: ProcId(1) }))
        ));
        assert_eq!(r.pop_sr_notice(), Some(ProcId(1)));
        // Broadcast disabled: deaths are silent.
        let mut q = ReactorSubstrate::new(3, ReactorClock::virtual_units());
        q.set_broadcast(false);
        q.kill(ProcId(1));
        q.report_death(ProcId(1));
        assert!(q.pop_inbound(ProcId(0)).is_none());
        assert!(q.pop_sr_notice().is_none());
    }

    #[test]
    fn timers_fire_per_owner_in_deadline_order() {
        let mut r = ReactorSubstrate::new(2, ReactorClock::virtual_units());
        r.arm_timer(ProcId(1), Timer::LoadBeacon, 20);
        r.arm_timer(ProcId::SUPER_ROOT, Timer::LoadBeacon, 10);
        assert!(r.pop_due_timer().is_none());
        r.clock_mut().advance_to(25);
        assert_eq!(r.pop_due_timer().map(|(p, _)| p), Some(ProcId::SUPER_ROOT));
        assert_eq!(r.pop_due_timer().map(|(p, _)| p), Some(ProcId(1)));
        assert!(r.pop_due_timer().is_none());
    }

    #[test]
    fn wall_clock_advances_with_real_time() {
        let mut c = ReactorClock::wall(Duration::from_micros(100));
        let t0 = c.now_units();
        c.advance_by(20); // 2ms
        assert!(c.now_units() >= t0 + 20, "sleep must cover the target");
    }

    #[test]
    fn corrupting_engines_flip_replica_results_only() {
        use splice_applicative::wave::Demand;
        use splice_applicative::{FnId, Value};
        use splice_core::packet::{ReplicaInfo, ResultPacket};
        let mut r = ReactorSubstrate::new(2, ReactorClock::virtual_units());
        r.set_corrupting(ProcId(0));
        let rp = ResultPacket {
            from_stamp: LevelStamp::from_digits(&[1]),
            demand: Demand::new(FnId(0), vec![Value::Int(1)]),
            value: Value::Int(7),
            to: TaskAddr::new(ProcId(1), TaskKey(0)),
            to_stamp: LevelStamp::root(),
            relay_chain: vec![],
            replica: Some(ReplicaInfo { index: 0, total: 3 }),
        };
        r.send(ProcId(0), ProcId(1), Msg::result(rp.clone()));
        let Some(Inbound::Msg(Msg::Result(got))) = r.pop_inbound(ProcId(1)) else {
            panic!("result expected");
        };
        assert_ne!(got.value, Value::Int(7), "replica result corrupted");
        // Non-replica results pass untouched.
        let plain = ResultPacket {
            replica: None,
            ..rp
        };
        r.send(ProcId(0), ProcId(1), Msg::result(plain));
        let Some(Inbound::Msg(Msg::Result(got))) = r.pop_inbound(ProcId(1)) else {
            panic!("result expected");
        };
        assert_eq!(got.value, Value::Int(7));
    }
}
