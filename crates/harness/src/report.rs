//! Run-report assembly: per-engine measurement capture and aggregation,
//! shared by both machines so their reports cannot drift apart.

use splice_core::engine::Engine;
use splice_core::stats::ProcStats;

/// Everything one engine contributes to a run report, captured at (or
/// after) shutdown. The runtime's workers produce these across threads;
/// the simulator reads its engines in place.
#[derive(Clone, Debug, Default)]
pub struct EngineSnapshot {
    /// Protocol statistics.
    pub stats: ProcStats,
    /// Peak live checkpoint entries.
    pub ckpt_peak_entries: usize,
    /// Peak live checkpoint bytes.
    pub ckpt_peak_bytes: usize,
    /// Checkpoints ever stored.
    pub ckpt_stored: u64,
}

impl EngineSnapshot {
    /// Captures `engine`'s current measurements.
    pub fn of(engine: &Engine) -> EngineSnapshot {
        EngineSnapshot {
            stats: engine.stats().clone(),
            ckpt_peak_entries: engine.checkpoints().peak_entries(),
            ckpt_peak_bytes: engine.checkpoints().peak_bytes(),
            ckpt_stored: engine.checkpoints().stored_total(),
        }
    }
}

/// Aggregate of every engine's snapshot — the common core of both
/// machines' run reports.
#[derive(Clone, Debug, Default)]
pub struct EngineTotals {
    /// Sum of all processors' statistics.
    pub stats: ProcStats,
    /// Per-processor statistics, in processor order.
    pub per_proc: Vec<ProcStats>,
    /// Sum of per-processor checkpoint-entry peaks.
    pub ckpt_peak_entries: usize,
    /// Sum of per-processor checkpoint-byte peaks.
    pub ckpt_peak_bytes: usize,
    /// Total checkpoints ever stored.
    pub ckpt_stored: u64,
}

impl EngineTotals {
    /// Aggregates snapshots in processor order.
    pub fn collect<I: IntoIterator<Item = EngineSnapshot>>(snapshots: I) -> EngineTotals {
        let mut totals = EngineTotals::default();
        for snap in snapshots {
            totals.stats += &snap.stats;
            totals.per_proc.push(snap.stats);
            totals.ckpt_peak_entries += snap.ckpt_peak_entries;
            totals.ckpt_peak_bytes += snap.ckpt_peak_bytes;
            totals.ckpt_stored += snap.ckpt_stored;
        }
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_across_snapshots() {
        let mut a = EngineSnapshot::default();
        a.stats.tasks_completed = 3;
        a.ckpt_peak_entries = 2;
        a.ckpt_stored = 5;
        let mut b = EngineSnapshot::default();
        b.stats.tasks_completed = 4;
        b.ckpt_peak_bytes = 7;
        let t = EngineTotals::collect([a, b]);
        assert_eq!(t.stats.tasks_completed, 7);
        assert_eq!(t.per_proc.len(), 2);
        assert_eq!(t.per_proc[1].tasks_completed, 4);
        assert_eq!(t.ckpt_peak_entries, 2);
        assert_eq!(t.ckpt_peak_bytes, 7);
        assert_eq!(t.ckpt_stored, 5);
    }
}
