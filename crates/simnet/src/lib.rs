//! `splice-simnet` — a deterministic discrete-event substrate for a
//! partitioned-memory multiprocessor.
//!
//! This crate stands in for the Rediflow hardware the paper assumes: a
//! network of processors exchanging messages with topology-dependent
//! latency, subject to fail-silent crashes that peers eventually detect.
//! It knows nothing about tasks or recovery — `splice-sim` composes these
//! pieces with the protocol engine from `splice-core`.
//!
//! * [`time`] / [`queue`] — virtual time and a deterministic event queue
//!   (ties broken by insertion order; simulations replay bit-for-bit);
//! * [`topology`] — complete graph, ring, line, star, mesh/torus,
//!   hypercube, with closed-form hop distances validated against BFS;
//! * [`link`] — latency model (base + per-hop + per-unit, deterministic
//!   jitter);
//! * [`fault`] — crash/corrupt fault plans, scripted or seeded-random,
//!   plus the process-level plan the multi-process backend executes for
//!   real (SIGKILL, socket partition, frame delay/garble);
//! * [`codec`] — the compact binary wire format for
//!   [`Msg`](splice_core::packet::Msg) frames that
//!   the multi-process backend speaks over Unix domain sockets
//!   (length-prefixed, varint stamps, version byte, per-frame checksum);
//! * [`detect`] — failure-notice and send-bounce timing;
//! * [`trace`] — canonical typed event tracing: every backend narrates a
//!   run as one diffable [`TraceEvent`] stream with stream/semantic
//!   checksums;
//! * [`shrink`] — delta-debugging [`FaultPlan`] reduction to minimal
//!   reproducers.

#![warn(missing_docs)]

pub mod codec;
pub mod detect;
pub mod fault;
pub mod link;
pub mod queue;
pub mod shrink;
pub mod time;
pub mod topology;
pub mod trace;

pub use codec::{decode_msg, encode_msg, encode_msg_frame, CodecError, FrameBuf};
pub use detect::DetectorConfig;
pub use fault::{
    FaultEvent, FaultKind, FaultOutcome, FaultPlan, FaultState, PlanRun, ProcFaultEvent,
    ProcFaultKind, ProcPlanError, ProcessFaultPlan,
};
pub use link::LinkModel;
pub use queue::EventQueue;
pub use shrink::{plan_literal, regression_test_literal, shrink, ShrinkReport};
pub use time::VirtualTime;
pub use topology::Topology;
pub use trace::{
    first_divergence, Divergence, TraceEvent, TraceKind, TraceMode, TraceSink, TraceSummary, Tracer,
};
