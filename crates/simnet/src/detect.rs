//! Failure detection substrate.
//!
//! The paper assumes faults are eventually identified: "A faulty processor
//! must voluntarily declare itself faulty, or otherwise be identified as
//! faulty by other processors" — via passive node diagnosis, coding or
//! timeout mechanisms. The simulator abstracts those mechanisms into a
//! detector that delivers `FailureNotice`s with a configurable delay, and
//! independently surfaces unreachability on sends ("best effort ... the
//! unreachable node is considered faulty").

use crate::time::VirtualTime;

/// Detector configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Delay from a crash to the `FailureNotice` reaching each peer.
    /// Models the passive-diagnosis / timeout machinery.
    pub notice_delay: u64,
    /// Extra per-peer skew: peer `i` learns at
    /// `crash + notice_delay + i·notice_skew` — staggered detection
    /// exercises the protocol's tolerance to partial knowledge.
    pub notice_skew: u64,
    /// Delay from attempting a send to a dead processor to the sender
    /// learning the destination is unreachable (0 = synchronous bounce).
    pub bounce_delay: u64,
    /// If false, no broadcast notices are generated at all and failures are
    /// discovered exclusively through unreachable sends and salvage arrivals
    /// — the most pessimistic detection regime.
    pub broadcast: bool,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            notice_delay: 200,
            notice_skew: 3,
            bounce_delay: 24,
            broadcast: true,
        }
    }
}

impl DetectorConfig {
    /// When peer `i` (0-based among live peers) learns of a crash at
    /// `crash_time`, or `None` when broadcast detection is disabled.
    pub fn notice_time(&self, crash_time: VirtualTime, peer_index: u32) -> Option<VirtualTime> {
        if !self.broadcast {
            return None;
        }
        Some(crash_time + self.notice_delay + self.notice_skew * peer_index as u64)
    }

    /// When a bounced send is reported back to the sender.
    pub fn bounce_time(&self, send_time: VirtualTime) -> VirtualTime {
        send_time + self.bounce_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staggered_notices() {
        let d = DetectorConfig {
            notice_delay: 100,
            notice_skew: 5,
            bounce_delay: 10,
            broadcast: true,
        };
        let t0 = VirtualTime(1000);
        assert_eq!(d.notice_time(t0, 0), Some(VirtualTime(1100)));
        assert_eq!(d.notice_time(t0, 3), Some(VirtualTime(1115)));
        assert_eq!(d.bounce_time(t0), VirtualTime(1010));
    }

    #[test]
    fn broadcast_can_be_disabled() {
        let d = DetectorConfig {
            broadcast: false,
            ..DetectorConfig::default()
        };
        assert_eq!(d.notice_time(VirtualTime(5), 0), None);
    }
}
