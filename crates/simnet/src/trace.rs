//! Bounded event tracing.
//!
//! A ring buffer of annotated simulation events, cheap enough to leave on
//! during tests and detailed enough to reconstruct a recovery episode when
//! one fails.

use crate::time::VirtualTime;
use std::collections::VecDeque;
use std::fmt;

/// One trace record.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub at: VirtualTime,
    /// Free-form category tag (e.g. `deliver`, `crash`, `wave`).
    pub tag: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.at, self.tag, self.detail)
    }
}

/// A bounded trace buffer.
#[derive(Debug)]
pub struct Trace {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl Trace {
    /// A trace keeping at most `capacity` events.
    pub fn new(capacity: usize) -> Trace {
        Trace {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            enabled: capacity > 0,
            dropped: 0,
        }
    }

    /// A disabled trace (records nothing).
    pub fn disabled() -> Trace {
        Trace::new(0)
    }

    /// True when recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (cheap no-op when disabled).
    pub fn record(&mut self, at: VirtualTime, tag: &'static str, detail: impl FnOnce() -> String) {
        if !self.enabled {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(TraceEvent {
            at,
            tag,
            detail: detail(),
        });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the retained tail as text.
    pub fn dump(&self) -> String {
        let mut s = String::new();
        for e in &self.buf {
            s.push_str(&e.to_string());
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_bounds() {
        let mut t = Trace::new(3);
        for i in 0..5u64 {
            t.record(VirtualTime(i), "x", || format!("e{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let details: Vec<&str> = t.events().map(|e| e.detail.as_str()).collect();
        assert_eq!(details, vec!["e2", "e3", "e4"]);
        assert!(t.dump().contains("[t=4] x: e4"));
    }

    #[test]
    fn disabled_trace_skips_closure() {
        let mut t = Trace::disabled();
        assert!(!t.is_enabled());
        t.record(VirtualTime(0), "x", || panic!("must not be called"));
        assert!(t.is_empty());
    }
}
