//! Canonical typed event tracing.
//!
//! Every backend narrates a run as one stream of [`TraceEvent`]s — compact,
//! `Copy`, and diffable. The stream is what makes backends comparable: two
//! runs of the same plan can be checksummed, diffed event-by-event with
//! [`first_divergence`], or recorded in full and replayed as a cross-check.
//!
//! Two checksums summarize a stream:
//!
//! * **stream** — an order-sensitive FNV-1a chain over every event. Equal
//!   stream checksums mean byte-identical event streams; each backend's
//!   stream is deterministic per (seed, plan) but *differs between*
//!   backends, whose schedulers interleave work differently.
//! * **semantic** — a commutative (wrapping-add) digest over the payloads
//!   of [`TraceKind::Complete`] events only. On a fault-free plan every
//!   task completes exactly once with the same value on every backend, so
//!   the semantic checksum is invariant across backends and pump counts.

use crate::time::VirtualTime;
use std::collections::VecDeque;
use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Starts an FNV-1a digest chain.
pub fn fnv_start() -> u64 {
    FNV_OFFSET
}

/// Mixes one word into an FNV-1a digest chain.
pub fn fnv_mix(hash: u64, word: u64) -> u64 {
    let mut h = hash;
    for byte in word.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// What happened. Processor ids are raw `u32`s (this crate sits below the
/// protocol layer and never sees `ProcId`); message/timer payloads are
/// reduced to a stable `u64` digest by the layer that can inspect them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A message reached a live processor and was handed to its engine.
    Deliver {
        /// Receiving processor.
        to: u32,
        /// Message kind tag (index into the protocol's kind table).
        kind: u8,
        /// Stable digest of the full message payload.
        digest: u64,
    },
    /// A reliable send bounced off a dead destination back to its sender.
    Bounce {
        /// The sender the bounce returns to.
        sender: u32,
        /// The dead destination.
        dead: u32,
        /// Message kind tag of the bounced message.
        kind: u8,
    },
    /// A timer fired on a live processor.
    TimerFire {
        /// The processor whose timer fired.
        owner: u32,
        /// Stable digest of the timer payload.
        digest: u64,
    },
    /// A fault-plan event landed.
    Fault {
        /// The victim: a processor for kinds 0/1, a super-root replica
        /// *rank* for kind 2.
        victim: u32,
        /// 0 = crash, 1 = corrupt (mirrors [`crate::fault::FaultKind`]);
        /// 2 = root-replica crash ([`crate::fault::RootFaultEvent`]).
        kind: u8,
        /// False when the fault was a no-op (victim already dead).
        applied: bool,
    },
    /// An engine ran a wave of ready tasks.
    Wave {
        /// The processor that ran the wave.
        owner: u32,
        /// Abstract work units the wave charged.
        work: u64,
    },
    /// An engine completed a task and emitted its result. The digest
    /// covers the completed stamp and value, so the commutative sum of
    /// `Complete` digests is a backend-invariant answer fingerprint.
    Complete {
        /// The processor that completed the task.
        owner: u32,
        /// Stable digest of (stamp, value) of the completed task.
        digest: u64,
    },
    /// The acting super-root primary died and a successor replica took
    /// the role over (reissuing the root wave unless the answer was
    /// already in). Replica crashes that depose nobody — idle
    /// successors, the last replica — emit only their `Fault` event.
    RootFailover {
        /// The successor rank that now leads.
        rank: u32,
    },
    /// The run launched under a non-default recovery policy. Emitted once
    /// at launch, and only when the policy differs from the Eager
    /// default — so Eager streams stay bit-identical to pre-policy
    /// recordings.
    Policy {
        /// The policy's stable tag (`PolicyKind::tag`).
        kind: u8,
        /// The persistence tier's stable tag (`PersistenceTier::tag`).
        tier: u8,
        /// Incremental re-checkpoint period (0 = off).
        every: u32,
    },
}

impl TraceKind {
    fn fold(self, h: u64) -> u64 {
        match self {
            TraceKind::Deliver { to, kind, digest } => fnv_mix(
                fnv_mix(fnv_mix(fnv_mix(h, 1), u64::from(to)), u64::from(kind)),
                digest,
            ),
            TraceKind::Bounce { sender, dead, kind } => fnv_mix(
                fnv_mix(fnv_mix(fnv_mix(h, 2), u64::from(sender)), u64::from(dead)),
                u64::from(kind),
            ),
            TraceKind::TimerFire { owner, digest } => {
                fnv_mix(fnv_mix(fnv_mix(h, 3), u64::from(owner)), digest)
            }
            TraceKind::Fault {
                victim,
                kind,
                applied,
            } => fnv_mix(
                fnv_mix(fnv_mix(fnv_mix(h, 4), u64::from(victim)), u64::from(kind)),
                u64::from(applied),
            ),
            TraceKind::Wave { owner, work } => {
                fnv_mix(fnv_mix(fnv_mix(h, 5), u64::from(owner)), work)
            }
            TraceKind::Complete { owner, digest } => {
                fnv_mix(fnv_mix(fnv_mix(h, 6), u64::from(owner)), digest)
            }
            TraceKind::RootFailover { rank } => fnv_mix(fnv_mix(h, 7), u64::from(rank)),
            TraceKind::Policy { kind, tier, every } => fnv_mix(
                fnv_mix(fnv_mix(fnv_mix(h, 8), u64::from(kind)), u64::from(tier)),
                u64::from(every),
            ),
        }
    }
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceKind::Deliver { to, kind, digest } => {
                write!(f, "deliver to=p{to} kind={kind} digest={digest:#018x}")
            }
            TraceKind::Bounce { sender, dead, kind } => {
                write!(f, "bounce sender=p{sender} dead=p{dead} kind={kind}")
            }
            TraceKind::TimerFire { owner, digest } => {
                write!(f, "timer owner=p{owner} digest={digest:#018x}")
            }
            TraceKind::Fault {
                victim,
                kind,
                applied,
            } => match kind {
                0 => write!(f, "fault victim=p{victim} kind=crash applied={applied}"),
                1 => write!(f, "fault victim=p{victim} kind=corrupt applied={applied}"),
                _ => write!(f, "fault victim=root#{victim} kind=crash applied={applied}"),
            },
            TraceKind::Wave { owner, work } => write!(f, "wave owner=p{owner} work={work}"),
            TraceKind::Complete { owner, digest } => {
                write!(f, "complete owner=p{owner} digest={digest:#018x}")
            }
            TraceKind::RootFailover { rank } => {
                write!(f, "root-failover new-primary=root#{rank}")
            }
            TraceKind::Policy { kind, tier, every } => {
                write!(f, "policy kind={kind} tier={tier} every={every}")
            }
        }
    }
}

/// One trace record: when, in what order, and what.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub at: VirtualTime,
    /// Position in this tracer's stream (0-based, gapless).
    pub seq: u64,
    /// What happened.
    pub kind: TraceKind,
}

impl TraceEvent {
    fn fold(self, h: u64) -> u64 {
        self.kind.fold(fnv_mix(h, self.at.0))
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} #{}] {}", self.at, self.seq, self.kind)
    }
}

/// Where recorded events go. The [`Tracer`] owns sequencing and checksums;
/// sinks only decide what (if anything) to retain.
pub trait TraceSink {
    /// Accepts one event.
    fn record(&mut self, ev: TraceEvent);
    /// Events evicted or never retained because of a capacity bound.
    fn dropped(&self) -> u64 {
        0
    }
    /// Removes and returns the retained events, oldest first.
    fn drain(&mut self) -> Vec<TraceEvent> {
        Vec::new()
    }
}

/// Keeps the newest `capacity` events, counting evictions.
#[derive(Debug, Default)]
pub struct RingSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// A ring keeping at most `capacity` events.
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn drain(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }
}

/// Retains every event — the recording sink behind record/replay.
#[derive(Debug, Default)]
pub struct FullSink {
    events: Vec<TraceEvent>,
}

impl FullSink {
    /// An empty recording.
    pub fn new() -> FullSink {
        FullSink::default()
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }
}

impl TraceSink for FullSink {
    fn record(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    fn drain(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

/// Retains nothing: the [`Tracer`] already folds every event into its
/// running checksums, so checksum-only tracing allocates nothing at all.
#[derive(Debug, Default)]
pub struct ChecksumSink;

impl TraceSink for ChecksumSink {
    fn record(&mut self, _ev: TraceEvent) {}
}

/// How much of the stream to keep (all modes maintain both checksums).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceMode {
    /// Tracing entirely off: no events, no checksums, zero cost.
    #[default]
    Off,
    /// Keep the newest N events (post-mortem tail).
    Ring(usize),
    /// Keep every event (recording for replay).
    Full,
    /// Keep no events, only the running checksums.
    Checksum,
}

/// Fixed-size fingerprint of a traced run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Events emitted (whether or not retained).
    pub events: u64,
    /// Events the sink evicted or declined to retain.
    pub dropped: u64,
    /// Order-sensitive FNV chain over the whole stream.
    pub stream: u64,
    /// Commutative digest over `Complete` payloads (backend-invariant).
    pub semantic: u64,
}

impl TraceSummary {
    /// Folds another tracer's summary into this one, in call order.
    /// `events`/`dropped` add, `semantic` is commutative by construction,
    /// and the combined `stream` chains the parts in the order given — so
    /// merging per-pump summaries in pump order is deterministic.
    pub fn absorb(&mut self, other: TraceSummary) {
        self.events += other.events;
        self.dropped += other.dropped;
        self.semantic = self.semantic.wrapping_add(other.semantic);
        if other.events > 0 {
            self.stream = fnv_mix(self.stream, other.stream);
        }
    }
}

enum Sink {
    Off,
    Ring(RingSink),
    Full(FullSink),
    Checksum(ChecksumSink),
}

/// The per-backend trace head: assigns sequence numbers, folds checksums,
/// and forwards each event to the configured sink.
pub struct Tracer {
    sink: Sink,
    next_seq: u64,
    dropped_base: u64,
    stream: u64,
    semantic: u64,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new(TraceMode::Off)
    }
}

impl Tracer {
    /// A tracer in the given mode.
    pub fn new(mode: TraceMode) -> Tracer {
        let sink = match mode {
            TraceMode::Off => Sink::Off,
            TraceMode::Ring(cap) => Sink::Ring(RingSink::new(cap)),
            TraceMode::Full => Sink::Full(FullSink::new()),
            TraceMode::Checksum => Sink::Checksum(ChecksumSink),
        };
        Tracer {
            sink,
            next_seq: 0,
            dropped_base: 0,
            stream: 0,
            semantic: 0,
        }
    }

    /// True when events should be emitted (lets callers skip digest work).
    pub fn enabled(&self) -> bool {
        !matches!(self.sink, Sink::Off)
    }

    /// Records one event (no-op when the tracer is off).
    pub fn emit(&mut self, at: VirtualTime, kind: TraceKind) {
        if !self.enabled() {
            return;
        }
        let ev = TraceEvent {
            at,
            seq: self.next_seq,
            kind,
        };
        self.next_seq += 1;
        self.stream = ev.fold(if self.stream == 0 {
            fnv_start()
        } else {
            self.stream
        });
        if let TraceKind::Complete { digest, .. } = kind {
            self.semantic = self.semantic.wrapping_add(digest);
        }
        match &mut self.sink {
            Sink::Off => {}
            Sink::Ring(s) => s.record(ev),
            Sink::Full(s) => s.record(ev),
            Sink::Checksum(s) => s.record(ev),
        }
    }

    /// The fixed-size fingerprint of everything emitted so far.
    pub fn summary(&self) -> TraceSummary {
        let dropped = match &self.sink {
            Sink::Off => 0,
            Sink::Ring(s) => s.dropped(),
            Sink::Full(s) => s.dropped(),
            Sink::Checksum(s) => s.dropped(),
        };
        TraceSummary {
            events: self.next_seq,
            dropped: self.dropped_base + dropped,
            stream: self.stream,
            semantic: self.semantic,
        }
    }

    /// Removes and returns the retained events, oldest first (empty for
    /// off/checksum modes). Checksums and counts are unaffected.
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        match &mut self.sink {
            Sink::Off => Vec::new(),
            Sink::Ring(s) => s.drain(),
            Sink::Full(s) => s.drain(),
            Sink::Checksum(s) => s.drain(),
        }
    }

    /// Folds a harvested child tracer into this one (used by the parallel
    /// backend to merge per-pump tracers in pump order).
    pub fn absorb(&mut self, mut child: Tracer) -> Vec<TraceEvent> {
        let s = child.summary();
        self.next_seq += s.events;
        self.dropped_base += s.dropped;
        self.semantic = self.semantic.wrapping_add(s.semantic);
        if s.events > 0 {
            self.stream = fnv_mix(self.stream, s.stream);
        }
        child.take_events()
    }
}

/// The first position where two event streams disagree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Index into both streams (events before it are identical).
    pub index: usize,
    /// Left stream's event at `index` (`None` = left ended early).
    pub left: Option<TraceEvent>,
    /// Right stream's event at `index` (`None` = right ended early).
    pub right: Option<TraceEvent>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "first divergence at event #{}:", self.index)?;
        match &self.left {
            Some(e) => writeln!(f, "  left:  {e}")?,
            None => writeln!(f, "  left:  <stream ended>")?,
        }
        match &self.right {
            Some(e) => write!(f, "  right: {e}"),
            None => write!(f, "  right: <stream ended>"),
        }
    }
}

/// Pinpoints the first event where `left` and `right` differ, or `None`
/// when the streams are identical.
pub fn first_divergence(left: &[TraceEvent], right: &[TraceEvent]) -> Option<Divergence> {
    let n = left.len().min(right.len());
    for i in 0..n {
        if left[i] != right[i] {
            return Some(Divergence {
                index: i,
                left: Some(left[i]),
                right: Some(right[i]),
            });
        }
    }
    if left.len() != right.len() {
        return Some(Divergence {
            index: n,
            left: left.get(n).copied(),
            right: right.get(n).copied(),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_bounds_and_counts_drops() {
        let mut t = Tracer::new(TraceMode::Ring(3));
        for i in 0..5u64 {
            t.emit(VirtualTime(i), TraceKind::Wave { owner: 0, work: i });
        }
        let s = t.summary();
        assert_eq!(s.events, 5);
        assert_eq!(s.dropped, 2);
        let kept = t.take_events();
        assert_eq!(kept.len(), 3);
        assert_eq!(kept[0].seq, 2);
        assert_eq!(kept[2].seq, 4);
    }

    #[test]
    fn checksum_mode_matches_full_mode() {
        let mut a = Tracer::new(TraceMode::Checksum);
        let mut b = Tracer::new(TraceMode::Full);
        for i in 0..10u64 {
            let k = TraceKind::Complete {
                owner: (i % 3) as u32,
                digest: i.wrapping_mul(0x9e37_79b9),
            };
            a.emit(VirtualTime(i), k);
            b.emit(VirtualTime(i), k);
        }
        assert_eq!(a.summary().stream, b.summary().stream);
        assert_eq!(a.summary().semantic, b.summary().semantic);
        assert!(a.take_events().is_empty());
        assert_eq!(b.take_events().len(), 10);
    }

    #[test]
    fn semantic_is_order_insensitive_stream_is_not() {
        let x = TraceKind::Complete {
            owner: 1,
            digest: 11,
        };
        let y = TraceKind::Complete {
            owner: 2,
            digest: 22,
        };
        let mut fwd = Tracer::new(TraceMode::Checksum);
        fwd.emit(VirtualTime(1), x);
        fwd.emit(VirtualTime(2), y);
        let mut rev = Tracer::new(TraceMode::Checksum);
        rev.emit(VirtualTime(1), y);
        rev.emit(VirtualTime(2), x);
        assert_eq!(fwd.summary().semantic, rev.summary().semantic);
        assert_ne!(fwd.summary().stream, rev.summary().stream);
    }

    #[test]
    fn off_tracer_is_free_and_silent() {
        let mut t = Tracer::new(TraceMode::Off);
        assert!(!t.enabled());
        t.emit(VirtualTime(0), TraceKind::Wave { owner: 0, work: 1 });
        assert_eq!(t.summary(), TraceSummary::default());
        assert!(t.take_events().is_empty());
    }

    #[test]
    fn divergence_pinpoints_first_difference() {
        let mk = |work: &[u64]| -> Vec<TraceEvent> {
            work.iter()
                .enumerate()
                .map(|(i, w)| TraceEvent {
                    at: VirtualTime(i as u64),
                    seq: i as u64,
                    kind: TraceKind::Wave { owner: 0, work: *w },
                })
                .collect()
        };
        let a = mk(&[1, 2, 3]);
        let b = mk(&[1, 9, 3]);
        let d = first_divergence(&a, &b).unwrap();
        assert_eq!(d.index, 1);
        assert_eq!(d.left.unwrap().kind, TraceKind::Wave { owner: 0, work: 2 });
        assert!(first_divergence(&a, &a).is_none());
        let short = mk(&[1, 2]);
        let d = first_divergence(&a, &short).unwrap();
        assert_eq!(d.index, 2);
        assert!(d.right.is_none());
        assert!(format!("{d}").contains("stream ended"));
    }

    #[test]
    fn absorb_merges_in_call_order() {
        let mk = |vals: &[u64]| {
            let mut t = Tracer::new(TraceMode::Checksum);
            for (i, v) in vals.iter().enumerate() {
                t.emit(
                    VirtualTime(i as u64),
                    TraceKind::Complete {
                        owner: 0,
                        digest: *v,
                    },
                );
            }
            t
        };
        let mut root_ab = Tracer::new(TraceMode::Checksum);
        root_ab.absorb(mk(&[1, 2]));
        root_ab.absorb(mk(&[3]));
        let mut root_ba = Tracer::new(TraceMode::Checksum);
        root_ba.absorb(mk(&[3]));
        root_ba.absorb(mk(&[1, 2]));
        let ab = root_ab.summary();
        let ba = root_ba.summary();
        assert_eq!(ab.events, 3);
        assert_eq!(ab.semantic, ba.semantic, "semantic commutes");
        assert_ne!(ab.stream, ba.stream, "stream is order-sensitive");
    }
}
