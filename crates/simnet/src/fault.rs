//! Fault injection plans.
//!
//! The paper's fault model: fail-silent processors ("if a processor fails,
//! it will no longer transmit any valid messages"), single faults in the
//! main development, multiple faults in §5.2, and detectably-invalid
//! messages in the §5.3 replication discussion — modelled here as
//! `Corrupt`, which flips replica result values (used only by the E10
//! voting experiment).

use crate::time::VirtualTime;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::fmt;

/// What happens to the victim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail-silent crash: the processor stops sending and ignores
    /// everything it receives.
    Crash,
    /// The processor keeps running but emits corrupted replica results
    /// (detectable only by voting).
    Corrupt,
}

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault manifests.
    pub at: VirtualTime,
    /// The victim processor (index into the topology).
    pub victim: u32,
    /// Crash or corrupt.
    pub kind: FaultKind,
}

/// One scheduled crash of a super-root replica. Root replicas are a
/// different victim domain than processors — the `rank` indexes the
/// [`RootQuorum`](https://docs.rs/splice-core) liveness vector, not the
/// topology — so these ride in their own list beside
/// [`FaultPlan::events`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RootFaultEvent {
    /// When the replica crashes.
    pub at: VirtualTime,
    /// The replica rank (0 = initial primary).
    pub rank: u32,
}

/// A complete fault plan for one run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Scheduled processor faults, in any order (the simulator sorts by
    /// time).
    pub events: Vec<FaultEvent>,
    /// Scheduled super-root replica crashes, in any order.
    pub root_events: Vec<RootFaultEvent>,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A single crash of `victim` at `at` — the paper's headline scenario.
    pub fn crash_at(victim: u32, at: VirtualTime) -> FaultPlan {
        FaultPlan {
            events: vec![FaultEvent {
                at,
                victim,
                kind: FaultKind::Crash,
            }],
            root_events: Vec::new(),
        }
    }

    /// Adds another fault.
    pub fn and(mut self, victim: u32, at: VirtualTime, kind: FaultKind) -> FaultPlan {
        self.events.push(FaultEvent { at, victim, kind });
        self
    }

    /// Adds a crash of super-root replica `rank` at `at`. Crashing the
    /// acting primary forces a failover to the next live rank; crashing
    /// every replica kills the super-root role and the run can only
    /// stall.
    pub fn crash_root_replica(mut self, rank: u32, at: VirtualTime) -> FaultPlan {
        self.root_events.push(RootFaultEvent { at, rank });
        self
    }

    /// Crashes every processor of `shard` (with `per_shard` processors per
    /// shard) at `at` — whole-shard failure on a sharded machine, e.g. the
    /// loss of one rack or OS process.
    pub fn crash_shard(shard: u32, per_shard: u32, at: VirtualTime) -> FaultPlan {
        FaultPlan {
            events: (shard * per_shard..(shard + 1) * per_shard)
                .map(|victim| FaultEvent {
                    at,
                    victim,
                    kind: FaultKind::Crash,
                })
                .collect(),
            root_events: Vec::new(),
        }
    }

    /// `k` distinct random victims crashing at times drawn uniformly from
    /// `[window.0, window.1)`. Never selects processor ids in `protect`.
    pub fn random_crashes(
        k: usize,
        n_procs: u32,
        window: (VirtualTime, VirtualTime),
        protect: &[u32],
        seed: u64,
    ) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut candidates: Vec<u32> = (0..n_procs).filter(|p| !protect.contains(p)).collect();
        candidates.shuffle(&mut rng);
        let lo = window.0.ticks();
        let hi = window.1.ticks().max(lo + 1);
        let events = candidates
            .into_iter()
            .take(k)
            .map(|victim| FaultEvent {
                at: VirtualTime(rng.gen_range(lo..hi)),
                victim,
                kind: FaultKind::Crash,
            })
            .collect();
        FaultPlan {
            events,
            root_events: Vec::new(),
        }
    }

    /// Victims in time order.
    pub fn sorted(&self) -> Vec<FaultEvent> {
        let mut v = self.events.clone();
        v.sort_by_key(|e| (e.at, e.victim));
        v
    }

    /// Root-replica crashes in time order.
    pub fn sorted_root(&self) -> Vec<RootFaultEvent> {
        let mut v = self.root_events.clone();
        v.sort_by_key(|e| (e.at, e.rank));
        v
    }

    /// True when the plan schedules nothing at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.root_events.is_empty()
    }

    /// Number of crash faults.
    pub fn crashes(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == FaultKind::Crash)
            .count()
    }
}

/// What applying one [`FaultEvent`] actually did to the victim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The victim went from live to fail-silent dead.
    Crashed,
    /// The victim started emitting corrupted replica results.
    Corrupted,
    /// The fault was a no-op: the victim was already dead (a crashed
    /// processor is fail-silent, so neither a second crash nor a later
    /// corruption can change its behaviour).
    Ignored,
}

/// The liveness/corruption state machine every backend drives while a
/// plan's faults are applied. Keeping the transition rules here — in one
/// place — is what guarantees that corrupt-after-crash plans behave
/// identically on the simulator, the threaded runtime and the reactor:
/// each backend owns *when* a fault lands, never *what* it does.
#[derive(Clone, Debug)]
pub struct FaultState {
    alive: Vec<bool>,
    corrupting: Vec<bool>,
    live: u32,
}

impl FaultState {
    /// All `n` processors live and honest.
    pub fn new(n: u32) -> FaultState {
        FaultState {
            alive: vec![true; n as usize],
            corrupting: vec![false; n as usize],
            live: n,
        }
    }

    /// Processor count.
    pub fn n(&self) -> u32 {
        self.alive.len() as u32
    }

    /// True while `victim` has not crashed (out-of-range reads false).
    pub fn is_live(&self, victim: u32) -> bool {
        self.alive.get(victim as usize).copied().unwrap_or(false)
    }

    /// True when `victim` emits corrupted replica results.
    pub fn is_corrupting(&self, victim: u32) -> bool {
        self.corrupting
            .get(victim as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Processors still live.
    pub fn live_count(&self) -> u32 {
        self.live
    }

    /// Applies `kind` to `victim` and reports what happened. Faults on an
    /// already-dead victim are [`FaultOutcome::Ignored`]; out-of-range
    /// victims are ignored too.
    pub fn apply(&mut self, victim: u32, kind: FaultKind) -> FaultOutcome {
        let Some(alive) = self.alive.get_mut(victim as usize) else {
            return FaultOutcome::Ignored;
        };
        if !*alive {
            return FaultOutcome::Ignored;
        }
        match kind {
            FaultKind::Crash => {
                *alive = false;
                self.live -= 1;
                FaultOutcome::Crashed
            }
            FaultKind::Corrupt => {
                self.corrupting[victim as usize] = true;
                FaultOutcome::Corrupted
            }
        }
    }
}

/// A [`FaultPlan`] normalized for execution: events in canonical time
/// order behind a cursor, plus the [`FaultState`] transition rules. All
/// three backends consume their plans through this one path — the
/// simulator and the reactor poll it against virtual time, the threaded
/// runtime's injector thread polls it against wall-clock-derived units —
/// so plan semantics (ordering, dedup, the corrupt-after-crash no-op)
/// cannot drift between schedulers.
#[derive(Clone, Debug)]
pub struct PlanRun {
    events: Vec<FaultEvent>,
    next: usize,
    root_events: Vec<RootFaultEvent>,
    next_root: usize,
    state: FaultState,
}

impl PlanRun {
    /// Normalizes `plan` for a machine of `n` processors.
    pub fn new(plan: &FaultPlan, n: u32) -> PlanRun {
        PlanRun {
            events: plan.sorted(),
            next: 0,
            root_events: plan.sorted_root(),
            next_root: 0,
            state: FaultState::new(n),
        }
    }

    /// The liveness/corruption state as applied so far.
    pub fn state(&self) -> &FaultState {
        &self.state
    }

    /// When the next unapplied fault lands — processor or root-replica —
    /// if any remain. An idle backend skipping its clock forward must
    /// consider both lists, or a scheduled root crash could never land.
    pub fn next_at(&self) -> Option<VirtualTime> {
        let proc_at = self.events.get(self.next).map(|e| e.at);
        let root_at = self.root_events.get(self.next_root).map(|e| e.at);
        match (proc_at, root_at) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// True once every scheduled fault has been applied.
    pub fn exhausted(&self) -> bool {
        self.next >= self.events.len() && self.next_root >= self.root_events.len()
    }

    /// Applies and yields the next processor fault due at or before
    /// `now`, if any. Call in a loop to drain everything due.
    pub fn pop_due(&mut self, now: VirtualTime) -> Option<(FaultEvent, FaultOutcome)> {
        let ev = *self.events.get(self.next)?;
        if ev.at > now {
            return None;
        }
        self.next += 1;
        Some((ev, self.state.apply(ev.victim, ev.kind)))
    }

    /// Yields the next root-replica crash due at or before `now`, if
    /// any. The backend applies it to its `SuperRootDriver` (the quorum
    /// owns the liveness transition — whether the crash deposed the
    /// acting primary is its verdict, not the plan's).
    pub fn pop_due_root(&mut self, now: VirtualTime) -> Option<RootFaultEvent> {
        let ev = *self.root_events.get(self.next_root)?;
        if ev.at > now {
            return None;
        }
        self.next_root += 1;
        Some(ev)
    }
}

/// What the multi-process backend's *real* injector does to a shard's
/// worker process or its sockets — the environment-level analogue of
/// [`FaultKind`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcFaultKind {
    /// SIGKILL the shard's worker process: the literal version of the
    /// paper's fail-silent crash. No drain, no goodbye — the OS reaps it.
    Kill,
    /// Black-hole the victim's *outbound* socket to `peer` for
    /// `for_units` time units: one direction of one link partitions
    /// (frames are silently dropped), the reverse direction keeps
    /// flowing. Heals on its own.
    PartitionOut {
        /// The shard whose inbound frames from the victim vanish.
        peer: u32,
        /// Partition duration in driver time units.
        for_units: u64,
    },
    /// Delay every outbound frame from the victim to `peer` by
    /// `extra_units` for `for_units` time units — a congested or
    /// flapping link rather than a dead one.
    DelayOut {
        /// The shard whose frames arrive late.
        peer: u32,
        /// Added latency per frame, in driver time units.
        extra_units: u64,
        /// How long the slowdown lasts, in driver time units.
        for_units: u64,
    },
    /// Corrupt the next outbound frame from the victim to `peer` (one
    /// byte is flipped after the checksum is computed). The receiver's
    /// decode rejects the frame and drops the connection — this is the
    /// scripted way to exercise the `decode_errors` + reconnect + resend
    /// path.
    GarbleNext {
        /// The shard that receives the corrupted frame.
        peer: u32,
    },
    /// Black-hole the victim's *inbound* side entirely for `for_units`
    /// time units: every established connection into the victim is
    /// dropped and new inbound data is rejected, while the victim's own
    /// outbound frames keep flowing — the asymmetric half of a real
    /// network partition. Peers with pending traffic exhaust their
    /// reconnect budgets against the blackout, declare the victim's
    /// processors dead and bounce into recovery; the victim only learns
    /// it was partitioned when its stale results are deduped.
    PartitionIn {
        /// Blackout duration in driver time units.
        for_units: u64,
    },
    /// Byte-level noise on the victim → `peer` direction for
    /// `for_units` time units: outbound frames are randomly corrupted in
    /// flight (bit flips, truncations) by a deterministic per-transport
    /// RNG. Unlike [`ProcFaultKind::GarbleNext`]'s single scripted
    /// frame, this models a sustained dirty link; the CRC reject +
    /// reconnect + retained-replay machinery must absorb all of it.
    NoiseOut {
        /// The shard whose inbound frames from the victim arrive dirty.
        peer: u32,
        /// Noise-window duration in driver time units.
        for_units: u64,
    },
}

/// One scheduled process-level fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProcFaultEvent {
    /// When the fault is injected (driver time units since launch).
    pub at: VirtualTime,
    /// The victim *shard* (worker process index, not processor id).
    pub shard: u32,
    /// What happens to it.
    pub kind: ProcFaultKind,
}

/// A fault plan executed for real by the multi-process coordinator:
/// SIGKILLs, socket partitions, frame delays and frame corruption,
/// scheduled in driver time units against worker *processes*.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProcessFaultPlan {
    /// Scheduled faults, in any order (the coordinator sorts by time).
    pub events: Vec<ProcFaultEvent>,
}

/// Why a simulated [`FaultPlan`] cannot be lowered to a process-level
/// plan (see [`ProcessFaultPlan::from_plan`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcPlanError {
    /// A crash event covers only part of a shard. The process backend's
    /// crash unit is the OS process — one whole shard — so partial-shard
    /// crashes have no real-world counterpart here.
    PartialShard {
        /// The shard that was only partially covered.
        shard: u32,
    },
    /// `Corrupt` faults flip replica results inside a live engine; there
    /// is no environment-level equivalent to inject from outside.
    Corrupt,
    /// The plan crashes super-root replicas by rank. On the process
    /// backend a root replica's fate is bound to its host worker
    /// (SIGKILL the host to crash it) — a rank-addressed crash has no
    /// standalone lowering, so plans carrying them are rejected here and
    /// expressed directly with [`ProcessFaultPlan::kill_shard`] instead.
    RootFault,
}

impl fmt::Display for ProcPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcPlanError::PartialShard { shard } => {
                write!(f, "crash covers only part of shard {shard}")
            }
            ProcPlanError::Corrupt => write!(f, "corrupt faults have no process-level analogue"),
            ProcPlanError::RootFault => write!(
                f,
                "root-replica crashes lower to host kills; use kill_shard directly"
            ),
        }
    }
}

impl std::error::Error for ProcPlanError {}

impl ProcessFaultPlan {
    /// No faults.
    pub fn none() -> ProcessFaultPlan {
        ProcessFaultPlan::default()
    }

    /// Adds a SIGKILL of `shard`'s worker at `at`.
    pub fn kill_shard(mut self, shard: u32, at: VirtualTime) -> ProcessFaultPlan {
        self.events.push(ProcFaultEvent {
            at,
            shard,
            kind: ProcFaultKind::Kill,
        });
        self
    }

    /// Adds a one-directional partition: `shard` → `peer` frames vanish
    /// from `at` for `for_units`.
    pub fn partition_out(
        mut self,
        shard: u32,
        peer: u32,
        at: VirtualTime,
        for_units: u64,
    ) -> ProcessFaultPlan {
        self.events.push(ProcFaultEvent {
            at,
            shard,
            kind: ProcFaultKind::PartitionOut { peer, for_units },
        });
        self
    }

    /// Adds a frame-delay window on the `shard` → `peer` direction.
    pub fn delay_out(
        mut self,
        shard: u32,
        peer: u32,
        at: VirtualTime,
        extra_units: u64,
        for_units: u64,
    ) -> ProcessFaultPlan {
        self.events.push(ProcFaultEvent {
            at,
            shard,
            kind: ProcFaultKind::DelayOut {
                peer,
                extra_units,
                for_units,
            },
        });
        self
    }

    /// Adds a one-frame corruption on the `shard` → `peer` direction.
    pub fn garble_next(mut self, shard: u32, peer: u32, at: VirtualTime) -> ProcessFaultPlan {
        self.events.push(ProcFaultEvent {
            at,
            shard,
            kind: ProcFaultKind::GarbleNext { peer },
        });
        self
    }

    /// Adds a whole-host inbound blackout: everything arriving at
    /// `shard` vanishes from `at` for `for_units`, outbound untouched.
    pub fn partition_in(mut self, shard: u32, at: VirtualTime, for_units: u64) -> ProcessFaultPlan {
        self.events.push(ProcFaultEvent {
            at,
            shard,
            kind: ProcFaultKind::PartitionIn { for_units },
        });
        self
    }

    /// Adds a byte-noise window on the `shard` → `peer` direction:
    /// outbound frames are randomly bit-flipped or truncated in flight
    /// from `at` for `for_units`.
    pub fn noise_out(
        mut self,
        shard: u32,
        peer: u32,
        at: VirtualTime,
        for_units: u64,
    ) -> ProcessFaultPlan {
        self.events.push(ProcFaultEvent {
            at,
            shard,
            kind: ProcFaultKind::NoiseOut { peer, for_units },
        });
        self
    }

    /// Events in time order.
    pub fn sorted(&self) -> Vec<ProcFaultEvent> {
        let mut v = self.events.clone();
        v.sort_by_key(|e| (e.at, e.shard));
        v
    }

    /// Number of kill faults.
    pub fn kills(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == ProcFaultKind::Kill)
            .count()
    }

    /// Lowers a simulated [`FaultPlan`] onto process-level faults for a
    /// machine of `shards × per_shard` processors: a crash of *every*
    /// processor in a shard becomes one SIGKILL at the group's earliest
    /// time. Partial-shard crashes and `Corrupt` events have no real
    /// counterpart and are rejected — this is what keeps the differential
    /// fuzzer honest about which plans both worlds can execute.
    pub fn from_plan(
        plan: &FaultPlan,
        shards: u32,
        per_shard: u32,
    ) -> Result<ProcessFaultPlan, ProcPlanError> {
        if !plan.root_events.is_empty() {
            return Err(ProcPlanError::RootFault);
        }
        let mut out = ProcessFaultPlan::none();
        for shard in 0..shards {
            let procs = shard * per_shard..(shard + 1) * per_shard;
            let hits: Vec<&FaultEvent> = plan
                .events
                .iter()
                .filter(|e| procs.contains(&e.victim))
                .collect();
            if hits.iter().any(|e| e.kind == FaultKind::Corrupt) {
                return Err(ProcPlanError::Corrupt);
            }
            let crashed: Vec<u32> = hits.iter().map(|e| e.victim).collect();
            if crashed.is_empty() {
                continue;
            }
            let all = procs.clone().all(|p| crashed.contains(&p));
            if !all {
                return Err(ProcPlanError::PartialShard { shard });
            }
            let at = hits.iter().map(|e| e.at).min().unwrap_or(VirtualTime(0));
            out = out.kill_shard(shard, at);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let p =
            FaultPlan::crash_at(2, VirtualTime(100)).and(5, VirtualTime(50), FaultKind::Corrupt);
        assert_eq!(p.events.len(), 2);
        assert_eq!(p.crashes(), 1);
        let s = p.sorted();
        assert_eq!(s[0].victim, 5);
        assert_eq!(s[1].victim, 2);
    }

    #[test]
    fn random_crashes_are_deterministic_per_seed() {
        let w = (VirtualTime(10), VirtualTime(1000));
        let a = FaultPlan::random_crashes(3, 16, w, &[0], 7);
        let b = FaultPlan::random_crashes(3, 16, w, &[0], 7);
        let c = FaultPlan::random_crashes(3, 16, w, &[0], 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.events.len(), 3);
        let mut victims: Vec<u32> = a.events.iter().map(|e| e.victim).collect();
        victims.dedup();
        assert_eq!(victims.len(), 3, "victims are distinct");
        for e in &a.events {
            assert_ne!(e.victim, 0, "protected");
            assert!(e.at >= w.0 && e.at < w.1);
        }
    }

    #[test]
    fn crash_shard_covers_exactly_the_shard() {
        let p = FaultPlan::crash_shard(2, 4, VirtualTime(500));
        assert_eq!(p.events.len(), 4);
        assert_eq!(p.crashes(), 4);
        let victims: Vec<u32> = p.sorted().iter().map(|e| e.victim).collect();
        assert_eq!(victims, vec![8, 9, 10, 11]);
        assert!(p.events.iter().all(|e| e.at == VirtualTime(500)));
    }

    #[test]
    fn random_crashes_cap_at_available_victims() {
        let p = FaultPlan::random_crashes(10, 4, (VirtualTime(0), VirtualTime(10)), &[0], 1);
        assert_eq!(p.events.len(), 3);
    }

    #[test]
    fn plan_run_applies_in_order_with_the_no_op_rule() {
        let plan = FaultPlan::crash_at(1, VirtualTime(100))
            .and(1, VirtualTime(200), FaultKind::Corrupt)
            .and(2, VirtualTime(150), FaultKind::Corrupt)
            .and(1, VirtualTime(300), FaultKind::Crash);
        let mut run = PlanRun::new(&plan, 4);
        assert_eq!(run.next_at(), Some(VirtualTime(100)));
        assert!(run.pop_due(VirtualTime(50)).is_none(), "nothing due yet");
        let (ev, out) = run.pop_due(VirtualTime(150)).unwrap();
        assert_eq!((ev.victim, out), (1, FaultOutcome::Crashed));
        let (ev, out) = run.pop_due(VirtualTime(150)).unwrap();
        assert_eq!((ev.victim, out), (2, FaultOutcome::Corrupted));
        assert!(run.pop_due(VirtualTime(150)).is_none());
        // Corrupting, then re-crashing, the dead victim is a no-op.
        let (_, out) = run.pop_due(VirtualTime(1_000)).unwrap();
        assert_eq!(out, FaultOutcome::Ignored);
        let (_, out) = run.pop_due(VirtualTime(1_000)).unwrap();
        assert_eq!(out, FaultOutcome::Ignored);
        assert!(run.exhausted());
        assert_eq!(run.next_at(), None);
        assert_eq!(run.state().live_count(), 3);
        assert!(!run.state().is_live(1));
        assert!(run.state().is_corrupting(2));
        assert!(!run.state().is_corrupting(1), "corrupt-after-crash ignored");
    }

    #[test]
    fn fault_state_bounds_checks() {
        let mut s = FaultState::new(2);
        assert_eq!(s.n(), 2);
        assert!(!s.is_live(7));
        assert_eq!(s.apply(7, FaultKind::Crash), FaultOutcome::Ignored);
        assert_eq!(s.apply(0, FaultKind::Corrupt), FaultOutcome::Corrupted);
        assert!(s.is_live(0), "corruption does not kill");
        assert_eq!(s.live_count(), 2);
    }

    #[test]
    fn process_plan_lowers_whole_shard_crashes() {
        // Shards of 2: crashing procs {2,3} is all of shard 1.
        let plan =
            FaultPlan::crash_at(2, VirtualTime(700)).and(3, VirtualTime(500), FaultKind::Crash);
        let lowered = ProcessFaultPlan::from_plan(&plan, 3, 2).unwrap();
        assert_eq!(lowered.kills(), 1);
        assert_eq!(
            lowered.events,
            vec![ProcFaultEvent {
                at: VirtualTime(500),
                shard: 1,
                kind: ProcFaultKind::Kill,
            }]
        );
    }

    #[test]
    fn process_plan_rejects_partial_shards_and_corruption() {
        let partial = FaultPlan::crash_at(2, VirtualTime(700));
        assert_eq!(
            ProcessFaultPlan::from_plan(&partial, 3, 2),
            Err(ProcPlanError::PartialShard { shard: 1 })
        );
        let corrupt = FaultPlan::none().and(0, VirtualTime(10), FaultKind::Corrupt);
        assert_eq!(
            ProcessFaultPlan::from_plan(&corrupt, 1, 1),
            Err(ProcPlanError::Corrupt)
        );
    }

    #[test]
    fn process_plan_builders_sort_and_count() {
        let p = ProcessFaultPlan::none()
            .garble_next(1, 0, VirtualTime(50))
            .kill_shard(2, VirtualTime(25))
            .partition_out(0, 1, VirtualTime(10), 100)
            .delay_out(1, 2, VirtualTime(10), 40, 200)
            .partition_in(1, VirtualTime(5), 300)
            .noise_out(0, 1, VirtualTime(60), 400);
        assert_eq!(p.kills(), 1);
        let at: Vec<u64> = p.sorted().iter().map(|e| e.at.ticks()).collect();
        assert_eq!(at, vec![5, 10, 10, 25, 50, 60]);
    }

    #[test]
    fn root_events_ride_their_own_cursor() {
        let plan = FaultPlan::crash_at(1, VirtualTime(200))
            .crash_root_replica(0, VirtualTime(100))
            .crash_root_replica(1, VirtualTime(300));
        assert!(!plan.is_empty());
        assert_eq!(plan.crashes(), 1, "root crashes are not processor faults");
        let mut run = PlanRun::new(&plan, 4);
        assert_eq!(run.next_at(), Some(VirtualTime(100)), "root event first");
        assert!(run.pop_due(VirtualTime(150)).is_none(), "no proc fault due");
        let r = run.pop_due_root(VirtualTime(150)).unwrap();
        assert_eq!(r.rank, 0);
        assert_eq!(run.next_at(), Some(VirtualTime(200)));
        assert!(!run.exhausted());
        let (ev, _) = run.pop_due(VirtualTime(250)).unwrap();
        assert_eq!(ev.victim, 1);
        assert!(run.pop_due_root(VirtualTime(250)).is_none());
        let r = run.pop_due_root(VirtualTime(300)).unwrap();
        assert_eq!(r.rank, 1);
        assert!(run.exhausted());
        assert_eq!(run.next_at(), None);
    }

    #[test]
    fn root_events_have_no_process_lowering() {
        let plan = FaultPlan::none().crash_root_replica(0, VirtualTime(10));
        assert_eq!(
            ProcessFaultPlan::from_plan(&plan, 2, 1),
            Err(ProcPlanError::RootFault)
        );
    }
}
