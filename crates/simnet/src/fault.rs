//! Fault injection plans.
//!
//! The paper's fault model: fail-silent processors ("if a processor fails,
//! it will no longer transmit any valid messages"), single faults in the
//! main development, multiple faults in §5.2, and detectably-invalid
//! messages in the §5.3 replication discussion — modelled here as
//! `Corrupt`, which flips replica result values (used only by the E10
//! voting experiment).

use crate::time::VirtualTime;
use rand::prelude::*;
use rand::rngs::StdRng;

/// What happens to the victim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail-silent crash: the processor stops sending and ignores
    /// everything it receives.
    Crash,
    /// The processor keeps running but emits corrupted replica results
    /// (detectable only by voting).
    Corrupt,
}

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault manifests.
    pub at: VirtualTime,
    /// The victim processor (index into the topology).
    pub victim: u32,
    /// Crash or corrupt.
    pub kind: FaultKind,
}

/// A complete fault plan for one run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Scheduled faults, in any order (the simulator sorts by time).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A single crash of `victim` at `at` — the paper's headline scenario.
    pub fn crash_at(victim: u32, at: VirtualTime) -> FaultPlan {
        FaultPlan {
            events: vec![FaultEvent {
                at,
                victim,
                kind: FaultKind::Crash,
            }],
        }
    }

    /// Adds another fault.
    pub fn and(mut self, victim: u32, at: VirtualTime, kind: FaultKind) -> FaultPlan {
        self.events.push(FaultEvent { at, victim, kind });
        self
    }

    /// Crashes every processor of `shard` (with `per_shard` processors per
    /// shard) at `at` — whole-shard failure on a sharded machine, e.g. the
    /// loss of one rack or OS process.
    pub fn crash_shard(shard: u32, per_shard: u32, at: VirtualTime) -> FaultPlan {
        FaultPlan {
            events: (shard * per_shard..(shard + 1) * per_shard)
                .map(|victim| FaultEvent {
                    at,
                    victim,
                    kind: FaultKind::Crash,
                })
                .collect(),
        }
    }

    /// `k` distinct random victims crashing at times drawn uniformly from
    /// `[window.0, window.1)`. Never selects processor ids in `protect`.
    pub fn random_crashes(
        k: usize,
        n_procs: u32,
        window: (VirtualTime, VirtualTime),
        protect: &[u32],
        seed: u64,
    ) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut candidates: Vec<u32> = (0..n_procs).filter(|p| !protect.contains(p)).collect();
        candidates.shuffle(&mut rng);
        let lo = window.0.ticks();
        let hi = window.1.ticks().max(lo + 1);
        let events = candidates
            .into_iter()
            .take(k)
            .map(|victim| FaultEvent {
                at: VirtualTime(rng.gen_range(lo..hi)),
                victim,
                kind: FaultKind::Crash,
            })
            .collect();
        FaultPlan { events }
    }

    /// Victims in time order.
    pub fn sorted(&self) -> Vec<FaultEvent> {
        let mut v = self.events.clone();
        v.sort_by_key(|e| (e.at, e.victim));
        v
    }

    /// Number of crash faults.
    pub fn crashes(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == FaultKind::Crash)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let p =
            FaultPlan::crash_at(2, VirtualTime(100)).and(5, VirtualTime(50), FaultKind::Corrupt);
        assert_eq!(p.events.len(), 2);
        assert_eq!(p.crashes(), 1);
        let s = p.sorted();
        assert_eq!(s[0].victim, 5);
        assert_eq!(s[1].victim, 2);
    }

    #[test]
    fn random_crashes_are_deterministic_per_seed() {
        let w = (VirtualTime(10), VirtualTime(1000));
        let a = FaultPlan::random_crashes(3, 16, w, &[0], 7);
        let b = FaultPlan::random_crashes(3, 16, w, &[0], 7);
        let c = FaultPlan::random_crashes(3, 16, w, &[0], 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.events.len(), 3);
        let mut victims: Vec<u32> = a.events.iter().map(|e| e.victim).collect();
        victims.dedup();
        assert_eq!(victims.len(), 3, "victims are distinct");
        for e in &a.events {
            assert_ne!(e.victim, 0, "protected");
            assert!(e.at >= w.0 && e.at < w.1);
        }
    }

    #[test]
    fn crash_shard_covers_exactly_the_shard() {
        let p = FaultPlan::crash_shard(2, 4, VirtualTime(500));
        assert_eq!(p.events.len(), 4);
        assert_eq!(p.crashes(), 4);
        let victims: Vec<u32> = p.sorted().iter().map(|e| e.victim).collect();
        assert_eq!(victims, vec![8, 9, 10, 11]);
        assert!(p.events.iter().all(|e| e.at == VirtualTime(500)));
    }

    #[test]
    fn random_crashes_cap_at_available_victims() {
        let p = FaultPlan::random_crashes(10, 4, (VirtualTime(0), VirtualTime(10)), &[0], 1);
        assert_eq!(p.events.len(), 3);
    }
}
