//! Virtual time.
//!
//! The simulator measures time in abstract *ticks*. Workload cost models map
//! evaluation work and message latency onto ticks; nothing in the system
//! depends on their absolute scale.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VirtualTime(pub u64);

impl VirtualTime {
    /// Time zero.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// A time far beyond any simulation horizon.
    pub const MAX: VirtualTime = VirtualTime(u64::MAX);

    /// Ticks since time zero.
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating difference.
    pub fn since(self, earlier: VirtualTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for VirtualTime {
    type Output = VirtualTime;
    fn add(self, rhs: u64) -> VirtualTime {
        VirtualTime(self.0.saturating_add(rhs))
    }
}

impl AddAssign<u64> for VirtualTime {
    fn add_assign(&mut self, rhs: u64) {
        self.0 = self.0.saturating_add(rhs);
    }
}

impl Sub<VirtualTime> for VirtualTime {
    type Output = u64;
    fn sub(self, rhs: VirtualTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = VirtualTime(10);
        assert_eq!(t + 5, VirtualTime(15));
        assert_eq!(VirtualTime(15) - t, 5);
        assert_eq!(t - VirtualTime(15), 0, "saturating");
        assert_eq!(VirtualTime::MAX + 1, VirtualTime::MAX);
        let mut u = t;
        u += 7;
        assert_eq!(u.ticks(), 17);
        assert_eq!(u.since(t), 7);
        assert_eq!(t.since(u), 0);
    }

    #[test]
    fn ordering() {
        assert!(VirtualTime::ZERO < VirtualTime(1));
        assert!(VirtualTime(1) < VirtualTime::MAX);
    }
}
