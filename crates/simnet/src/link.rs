//! Link latency/cost model.
//!
//! Message delivery time is `base + per_hop·hops + per_unit·size`, with an
//! optional deterministic jitter derived from a seed so repeated runs stay
//! reproducible. On a [`Topology::Sharded`] machine a message that crosses
//! a shard boundary additionally pays `inter_unit` per payload unit — the
//! (lower) bandwidth of the inter-shard router link; the router's fixed
//! latency is charged by the harness-side `ShardRouter`, not here.

use crate::topology::Topology;

/// Latency parameters for the interconnect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkModel {
    /// Fixed software/serialization overhead per message.
    pub base: u64,
    /// Added per topology hop.
    pub per_hop: u64,
    /// Added per abstract payload unit.
    pub per_unit: u64,
    /// Added per abstract payload unit when the message crosses a shard
    /// boundary (router bandwidth; 0 on flat topologies and for messages
    /// that stay inside one shard).
    pub inter_unit: u64,
    /// Maximum extra jitter ticks (0 disables jitter).
    pub jitter: u64,
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel {
            base: 8,
            per_hop: 4,
            per_unit: 1,
            inter_unit: 0,
            jitter: 0,
        }
    }
}

impl LinkModel {
    /// An idealized zero-latency network (useful to isolate protocol
    /// behaviour from timing in tests).
    pub fn instant() -> LinkModel {
        LinkModel {
            base: 0,
            per_hop: 0,
            per_unit: 0,
            inter_unit: 0,
            jitter: 0,
        }
    }

    /// Latency for a message of `size` units from `src` to `dst`.
    /// `stream` decorrelates jitter across messages (pass a message
    /// sequence number).
    pub fn latency(&self, topo: &Topology, src: u32, dst: u32, size: usize, stream: u64) -> u64 {
        let hops = if src == dst {
            0
        } else {
            topo.distance(src, dst) as u64
        };
        let mut per_unit = self.per_unit;
        if src != dst && !topo.same_shard(src, dst) {
            per_unit += self.inter_unit;
        }
        let deterministic = self.base + self.per_hop * hops + per_unit * size as u64;
        if self.jitter == 0 {
            deterministic
        } else {
            deterministic + splitmix(stream) % (self.jitter + 1)
        }
    }
}

/// SplitMix64: cheap, deterministic pseudo-random mixing for jitter.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_composition() {
        let m = LinkModel {
            base: 10,
            per_hop: 5,
            per_unit: 2,
            inter_unit: 0,
            jitter: 0,
        };
        let ring = Topology::Ring { n: 8 };
        // distance(0,3) = 3 hops
        assert_eq!(m.latency(&ring, 0, 3, 4, 0), 10 + 15 + 8);
        // self-send costs only base + payload
        assert_eq!(m.latency(&ring, 2, 2, 4, 0), 10 + 8);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let m = LinkModel {
            base: 1,
            per_hop: 0,
            per_unit: 0,
            inter_unit: 0,
            jitter: 9,
        };
        let t = Topology::Complete { n: 2 };
        let a = m.latency(&t, 0, 1, 0, 42);
        let b = m.latency(&t, 0, 1, 0, 42);
        assert_eq!(a, b);
        for s in 0..200 {
            let l = m.latency(&t, 0, 1, 0, s);
            assert!((1..=10).contains(&l));
        }
        // Different streams eventually differ.
        assert!((0..20).any(|s| m.latency(&t, 0, 1, 0, s) != a));
    }

    #[test]
    fn inter_shard_bandwidth_is_charged_only_across_the_boundary() {
        let m = LinkModel {
            base: 0,
            per_hop: 0,
            per_unit: 1,
            inter_unit: 3,
            jitter: 0,
        };
        let t = Topology::Sharded {
            shards: 2,
            inner: Box::new(Topology::Complete { n: 2 }),
        };
        // Intra-shard: per_unit only.
        assert_eq!(m.latency(&t, 0, 1, 5, 0), 5);
        // Cross-shard: per_unit + inter_unit per payload unit.
        assert_eq!(m.latency(&t, 1, 2, 5, 0), 20);
        // Flat topology: same_shard is always true.
        let flat = Topology::Complete { n: 4 };
        assert_eq!(m.latency(&flat, 0, 3, 5, 0), 5);
    }

    #[test]
    fn instant_network_is_free() {
        let m = LinkModel::instant();
        let t = Topology::Line { n: 4 };
        assert_eq!(m.latency(&t, 0, 3, 100, 7), 0);
    }
}
