//! Interconnection topologies.
//!
//! Rediflow-class machines were conceived as networks of processor/memory/
//! switch nodes; the paper's protocols only require connectivity, but hop
//! distance drives message latency and therefore every timing experiment.
//! The usual suspects are provided: complete graph, ring, line, star, 2-D
//! mesh and torus, and hypercube.

use std::collections::VecDeque;

/// A network topology over `n` processors, identified `0..n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Every pair connected (uniform single-hop latency).
    Complete {
        /// Processor count.
        n: u32,
    },
    /// A cycle.
    Ring {
        /// Processor count.
        n: u32,
    },
    /// A path (ring without the wrap-around link).
    Line {
        /// Processor count.
        n: u32,
    },
    /// Node 0 at the hub, all others leaves.
    Star {
        /// Processor count (hub included).
        n: u32,
    },
    /// A `w × h` grid; `wrap` turns it into a torus.
    Mesh {
        /// Width.
        w: u32,
        /// Height.
        h: u32,
        /// Torus wrap-around.
        wrap: bool,
    },
    /// A `2^dim`-node boolean hypercube.
    Hypercube {
        /// Dimension.
        dim: u32,
    },
}

impl Topology {
    /// Number of processors.
    pub fn len(&self) -> u32 {
        match self {
            Topology::Complete { n }
            | Topology::Ring { n }
            | Topology::Line { n }
            | Topology::Star { n } => *n,
            Topology::Mesh { w, h, .. } => w * h,
            Topology::Hypercube { dim } => 1 << dim,
        }
    }

    /// True when the topology has no processors.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Direct neighbours of `p`.
    pub fn neighbors(&self, p: u32) -> Vec<u32> {
        let n = self.len();
        assert!(p < n, "processor {p} out of range (n={n})");
        match self {
            Topology::Complete { .. } => (0..n).filter(|&q| q != p).collect(),
            Topology::Ring { n } => {
                if *n <= 1 {
                    vec![]
                } else if *n == 2 {
                    vec![1 - p]
                } else {
                    vec![(p + n - 1) % n, (p + 1) % n]
                }
            }
            Topology::Line { n } => {
                let mut v = Vec::new();
                if p > 0 {
                    v.push(p - 1);
                }
                if p + 1 < *n {
                    v.push(p + 1);
                }
                v
            }
            Topology::Star { n } => {
                if p == 0 {
                    (1..*n).collect()
                } else {
                    vec![0]
                }
            }
            Topology::Mesh { w, h, wrap } => {
                let (x, y) = (p % w, p / w);
                let mut v = Vec::new();
                let mut push = |x: u32, y: u32| v.push(y * w + x);
                if x > 0 {
                    push(x - 1, y);
                } else if *wrap && *w > 1 {
                    push(w - 1, y);
                }
                if x + 1 < *w {
                    push(x + 1, y);
                } else if *wrap && *w > 1 {
                    push(0, y);
                }
                if y > 0 {
                    push(x, y - 1);
                } else if *wrap && *h > 1 {
                    push(x, h - 1);
                }
                if y + 1 < *h {
                    push(x, y + 1);
                } else if *wrap && *h > 1 {
                    push(x, 0);
                }
                v.sort_unstable();
                v.dedup();
                v.retain(|&q| q != p);
                v
            }
            Topology::Hypercube { dim } => (0..*dim).map(|d| p ^ (1 << d)).collect(),
        }
    }

    /// Hop distance between two processors (0 for self).
    pub fn distance(&self, a: u32, b: u32) -> u32 {
        if a == b {
            return 0;
        }
        match self {
            Topology::Complete { .. } => 1,
            Topology::Ring { n } => {
                let d = a.abs_diff(b);
                d.min(n - d)
            }
            Topology::Line { .. } => a.abs_diff(b),
            Topology::Star { .. } => {
                if a == 0 || b == 0 {
                    1
                } else {
                    2
                }
            }
            Topology::Mesh { w, h, wrap } => {
                let (ax, ay) = (a % w, a / w);
                let (bx, by) = (b % w, b / w);
                let dx = ax.abs_diff(bx);
                let dy = ay.abs_diff(by);
                if *wrap {
                    dx.min(w - dx) + dy.min(h - dy)
                } else {
                    dx + dy
                }
            }
            Topology::Hypercube { .. } => (a ^ b).count_ones(),
        }
    }

    /// Network diameter (maximum pairwise distance), by definition; used in
    /// reports and to size detection delays.
    pub fn diameter(&self) -> u32 {
        let n = self.len();
        match self {
            Topology::Complete { .. } => 1.min(n.saturating_sub(1)),
            Topology::Ring { n } => n / 2,
            Topology::Line { n } => n.saturating_sub(1),
            Topology::Star { n } => {
                if *n <= 2 {
                    n.saturating_sub(1)
                } else {
                    2
                }
            }
            Topology::Mesh { w, h, wrap } => {
                if *wrap {
                    w / 2 + h / 2
                } else {
                    (w - 1) + (h - 1)
                }
            }
            Topology::Hypercube { dim } => *dim,
        }
    }

    /// Breadth-first distances from `p` (for validating the closed forms
    /// and for routing tables).
    pub fn bfs_distances(&self, p: u32) -> Vec<u32> {
        let n = self.len() as usize;
        let mut dist = vec![u32::MAX; n];
        dist[p as usize] = 0;
        let mut q = VecDeque::new();
        q.push_back(p);
        while let Some(u) = q.pop_front() {
            for v in self.neighbors(u) {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = dist[u as usize] + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_topologies() -> Vec<Topology> {
        vec![
            Topology::Complete { n: 6 },
            Topology::Ring { n: 7 },
            Topology::Line { n: 5 },
            Topology::Star { n: 6 },
            Topology::Mesh {
                w: 3,
                h: 4,
                wrap: false,
            },
            Topology::Mesh {
                w: 4,
                h: 4,
                wrap: true,
            },
            Topology::Hypercube { dim: 4 },
        ]
    }

    #[test]
    fn closed_form_distance_matches_bfs() {
        for t in all_topologies() {
            let n = t.len();
            for a in 0..n {
                let bfs = t.bfs_distances(a);
                for b in 0..n {
                    assert_eq!(t.distance(a, b), bfs[b as usize], "{t:?} distance({a},{b})");
                }
            }
        }
    }

    #[test]
    fn neighbors_are_symmetric() {
        for t in all_topologies() {
            let n = t.len();
            for a in 0..n {
                for b in t.neighbors(a) {
                    assert!(
                        t.neighbors(b).contains(&a),
                        "{t:?}: {b} missing neighbour {a}"
                    );
                    assert_ne!(a, b, "{t:?}: self-loop at {a}");
                }
            }
        }
    }

    #[test]
    fn diameter_is_max_distance() {
        for t in all_topologies() {
            let n = t.len();
            let max = (0..n)
                .flat_map(|a| (0..n).map(move |b| (a, b)))
                .map(|(a, b)| t.distance(a, b))
                .max()
                .unwrap();
            assert_eq!(t.diameter(), max, "{t:?}");
        }
    }

    #[test]
    fn hypercube_structure() {
        let t = Topology::Hypercube { dim: 3 };
        assert_eq!(t.len(), 8);
        assert_eq!(t.neighbors(0), vec![1, 2, 4]);
        assert_eq!(t.distance(0, 7), 3);
    }

    #[test]
    fn ring_of_two_has_single_link() {
        let t = Topology::Ring { n: 2 };
        assert_eq!(t.neighbors(0), vec![1]);
        assert_eq!(t.neighbors(1), vec![0]);
        assert_eq!(t.distance(0, 1), 1);
    }

    #[test]
    fn mesh_corner_and_torus_wrap() {
        let mesh = Topology::Mesh {
            w: 3,
            h: 3,
            wrap: false,
        };
        assert_eq!(mesh.neighbors(0), vec![1, 3]);
        let torus = Topology::Mesh {
            w: 3,
            h: 3,
            wrap: true,
        };
        let nb = torus.neighbors(0);
        assert_eq!(nb.len(), 4);
        assert!(nb.contains(&2) && nb.contains(&6));
    }
}
