//! Interconnection topologies.
//!
//! Rediflow-class machines were conceived as networks of processor/memory/
//! switch nodes; the paper's protocols only require connectivity, but hop
//! distance drives message latency and therefore every timing experiment.
//! The usual suspects are provided: complete graph, ring, line, star, 2-D
//! mesh and torus, and hypercube.

use std::collections::VecDeque;

/// A network topology over `n` processors, identified `0..n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Every pair connected (uniform single-hop latency).
    Complete {
        /// Processor count.
        n: u32,
    },
    /// A cycle.
    Ring {
        /// Processor count.
        n: u32,
    },
    /// A path (ring without the wrap-around link).
    Line {
        /// Processor count.
        n: u32,
    },
    /// Node 0 at the hub, all others leaves.
    Star {
        /// Processor count (hub included).
        n: u32,
    },
    /// A `w × h` grid; `wrap` turns it into a torus.
    Mesh {
        /// Width.
        w: u32,
        /// Height.
        h: u32,
        /// Torus wrap-around.
        wrap: bool,
    },
    /// A `2^dim`-node boolean hypercube.
    Hypercube {
        /// Dimension.
        dim: u32,
    },
    /// `shards` copies of `inner` joined by an inter-shard router.
    ///
    /// Processor `p` lives in shard `p / inner.len()` with local index
    /// `p % inner.len()`. Local index 0 of every shard is its *gateway*;
    /// the gateways form a complete graph (the router fabric), so every
    /// cross-shard path is `a → gateway(a) → gateway(b) → b` and pays one
    /// router hop on top of the intra-shard distances. The extra latency
    /// and bandwidth of the router link itself are modelled by
    /// [`crate::link::LinkModel`] and the harness-side shard router, not
    /// by hop count alone.
    Sharded {
        /// Number of shards.
        shards: u32,
        /// Topology within each shard (defines the per-shard processor
        /// count).
        inner: Box<Topology>,
    },
}

impl Topology {
    /// Number of processors.
    pub fn len(&self) -> u32 {
        match self {
            Topology::Complete { n }
            | Topology::Ring { n }
            | Topology::Line { n }
            | Topology::Star { n } => *n,
            Topology::Mesh { w, h, .. } => w * h,
            Topology::Hypercube { dim } => 1 << dim,
            Topology::Sharded { shards, inner } => shards * inner.len(),
        }
    }

    /// True when the topology has no processors.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards (1 for every flat topology).
    pub fn shard_count(&self) -> u32 {
        match self {
            Topology::Sharded { shards, .. } => *shards,
            _ => 1,
        }
    }

    /// Processors per shard (= `len()` for flat topologies).
    pub fn per_shard(&self) -> u32 {
        match self {
            Topology::Sharded { inner, .. } => inner.len(),
            _ => self.len(),
        }
    }

    /// The shard that hosts processor `p` (0 for flat topologies).
    pub fn shard_of(&self, p: u32) -> u32 {
        match self {
            Topology::Sharded { inner, .. } => p / inner.len().max(1),
            _ => 0,
        }
    }

    /// True when `a` and `b` live in the same shard (always true on flat
    /// topologies).
    pub fn same_shard(&self, a: u32, b: u32) -> bool {
        self.shard_of(a) == self.shard_of(b)
    }

    /// Direct neighbours of `p`.
    pub fn neighbors(&self, p: u32) -> Vec<u32> {
        let n = self.len();
        assert!(p < n, "processor {p} out of range (n={n})");
        match self {
            Topology::Complete { .. } => (0..n).filter(|&q| q != p).collect(),
            Topology::Ring { n } => {
                if *n <= 1 {
                    vec![]
                } else if *n == 2 {
                    vec![1 - p]
                } else {
                    vec![(p + n - 1) % n, (p + 1) % n]
                }
            }
            Topology::Line { n } => {
                let mut v = Vec::new();
                if p > 0 {
                    v.push(p - 1);
                }
                if p + 1 < *n {
                    v.push(p + 1);
                }
                v
            }
            Topology::Star { n } => {
                if p == 0 {
                    (1..*n).collect()
                } else {
                    vec![0]
                }
            }
            Topology::Mesh { w, h, wrap } => {
                let (x, y) = (p % w, p / w);
                let mut v = Vec::new();
                let mut push = |x: u32, y: u32| v.push(y * w + x);
                if x > 0 {
                    push(x - 1, y);
                } else if *wrap && *w > 1 {
                    push(w - 1, y);
                }
                if x + 1 < *w {
                    push(x + 1, y);
                } else if *wrap && *w > 1 {
                    push(0, y);
                }
                if y > 0 {
                    push(x, y - 1);
                } else if *wrap && *h > 1 {
                    push(x, h - 1);
                }
                if y + 1 < *h {
                    push(x, y + 1);
                } else if *wrap && *h > 1 {
                    push(x, 0);
                }
                v.sort_unstable();
                v.dedup();
                v.retain(|&q| q != p);
                v
            }
            Topology::Hypercube { dim } => (0..*dim).map(|d| p ^ (1 << d)).collect(),
            Topology::Sharded { shards, inner } => {
                let per = inner.len();
                let (shard, local) = (p / per, p % per);
                let mut v: Vec<u32> = inner
                    .neighbors(local)
                    .into_iter()
                    .map(|q| shard * per + q)
                    .collect();
                // Gateways reach every other shard's gateway through the
                // router fabric.
                if local == 0 {
                    v.extend((0..*shards).filter(|&t| t != shard).map(|t| t * per));
                }
                v.sort_unstable();
                v
            }
        }
    }

    /// Hop distance between two processors (0 for self).
    pub fn distance(&self, a: u32, b: u32) -> u32 {
        if a == b {
            return 0;
        }
        match self {
            Topology::Complete { .. } => 1,
            Topology::Ring { n } => {
                let d = a.abs_diff(b);
                d.min(n - d)
            }
            Topology::Line { .. } => a.abs_diff(b),
            Topology::Star { .. } => {
                if a == 0 || b == 0 {
                    1
                } else {
                    2
                }
            }
            Topology::Mesh { w, h, wrap } => {
                let (ax, ay) = (a % w, a / w);
                let (bx, by) = (b % w, b / w);
                let dx = ax.abs_diff(bx);
                let dy = ay.abs_diff(by);
                if *wrap {
                    dx.min(w - dx) + dy.min(h - dy)
                } else {
                    dx + dy
                }
            }
            Topology::Hypercube { .. } => (a ^ b).count_ones(),
            Topology::Sharded { inner, .. } => {
                let per = inner.len();
                let (la, lb) = (a % per, b % per);
                if a / per == b / per {
                    // Any path that leaves the shard must cross its own
                    // gateway twice, so the inner distance is never beaten.
                    inner.distance(la, lb)
                } else {
                    inner.distance(la, 0) + 1 + inner.distance(0, lb)
                }
            }
        }
    }

    /// Network diameter (maximum pairwise distance), by definition; used in
    /// reports and to size detection delays.
    pub fn diameter(&self) -> u32 {
        let n = self.len();
        match self {
            Topology::Complete { .. } => 1.min(n.saturating_sub(1)),
            Topology::Ring { n } => n / 2,
            Topology::Line { n } => n.saturating_sub(1),
            Topology::Star { n } => {
                if *n <= 2 {
                    n.saturating_sub(1)
                } else {
                    2
                }
            }
            Topology::Mesh { w, h, wrap } => {
                if *wrap {
                    w / 2 + h / 2
                } else {
                    (w - 1) + (h - 1)
                }
            }
            Topology::Hypercube { dim } => *dim,
            Topology::Sharded { shards, inner } => {
                if *shards <= 1 {
                    return inner.diameter();
                }
                // Worst pair: deepest node of one shard to the deepest node
                // of another, through both gateways and the router. The
                // intra-shard diameter never exceeds 2·ecc(gateway) by the
                // triangle inequality through the gateway.
                let ecc0 = inner.bfs_distances(0).into_iter().max().unwrap_or(0);
                2 * ecc0 + 1
            }
        }
    }

    /// Breadth-first distances from `p` (for validating the closed forms
    /// and for routing tables).
    pub fn bfs_distances(&self, p: u32) -> Vec<u32> {
        let n = self.len() as usize;
        let mut dist = vec![u32::MAX; n];
        dist[p as usize] = 0;
        let mut q = VecDeque::new();
        q.push_back(p);
        while let Some(u) = q.pop_front() {
            for v in self.neighbors(u) {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = dist[u as usize] + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_topologies() -> Vec<Topology> {
        vec![
            Topology::Complete { n: 6 },
            Topology::Ring { n: 7 },
            Topology::Line { n: 5 },
            Topology::Star { n: 6 },
            Topology::Mesh {
                w: 3,
                h: 4,
                wrap: false,
            },
            Topology::Mesh {
                w: 4,
                h: 4,
                wrap: true,
            },
            Topology::Hypercube { dim: 4 },
            Topology::Sharded {
                shards: 3,
                inner: Box::new(Topology::Complete { n: 4 }),
            },
            Topology::Sharded {
                shards: 4,
                inner: Box::new(Topology::Mesh {
                    w: 2,
                    h: 2,
                    wrap: false,
                }),
            },
            Topology::Sharded {
                shards: 2,
                inner: Box::new(Topology::Line { n: 3 }),
            },
        ]
    }

    #[test]
    fn closed_form_distance_matches_bfs() {
        for t in all_topologies() {
            let n = t.len();
            for a in 0..n {
                let bfs = t.bfs_distances(a);
                for b in 0..n {
                    assert_eq!(t.distance(a, b), bfs[b as usize], "{t:?} distance({a},{b})");
                }
            }
        }
    }

    #[test]
    fn neighbors_are_symmetric() {
        for t in all_topologies() {
            let n = t.len();
            for a in 0..n {
                for b in t.neighbors(a) {
                    assert!(
                        t.neighbors(b).contains(&a),
                        "{t:?}: {b} missing neighbour {a}"
                    );
                    assert_ne!(a, b, "{t:?}: self-loop at {a}");
                }
            }
        }
    }

    #[test]
    fn diameter_is_max_distance() {
        for t in all_topologies() {
            let n = t.len();
            let max = (0..n)
                .flat_map(|a| (0..n).map(move |b| (a, b)))
                .map(|(a, b)| t.distance(a, b))
                .max()
                .unwrap();
            assert_eq!(t.diameter(), max, "{t:?}");
        }
    }

    #[test]
    fn hypercube_structure() {
        let t = Topology::Hypercube { dim: 3 };
        assert_eq!(t.len(), 8);
        assert_eq!(t.neighbors(0), vec![1, 2, 4]);
        assert_eq!(t.distance(0, 7), 3);
    }

    #[test]
    fn ring_of_two_has_single_link() {
        let t = Topology::Ring { n: 2 };
        assert_eq!(t.neighbors(0), vec![1]);
        assert_eq!(t.neighbors(1), vec![0]);
        assert_eq!(t.distance(0, 1), 1);
    }

    #[test]
    fn sharded_structure() {
        // 3 shards × 4 processors; gateways are 0, 4, 8.
        let t = Topology::Sharded {
            shards: 3,
            inner: Box::new(Topology::Complete { n: 4 }),
        };
        assert_eq!(t.len(), 12);
        assert_eq!(t.shard_count(), 3);
        assert_eq!(t.per_shard(), 4);
        assert_eq!(t.shard_of(0), 0);
        assert_eq!(t.shard_of(5), 1);
        assert_eq!(t.shard_of(11), 2);
        assert!(t.same_shard(4, 7));
        assert!(!t.same_shard(3, 4));
        // A gateway sees its shard plus the other gateways.
        assert_eq!(t.neighbors(4), vec![0, 5, 6, 7, 8]);
        // A non-gateway sees only its shard.
        assert_eq!(t.neighbors(5), vec![4, 6, 7]);
        // Intra-shard distance is the inner distance; cross-shard pays the
        // walk to both gateways plus one router hop.
        assert_eq!(t.distance(5, 7), 1);
        assert_eq!(t.distance(5, 9), 3);
        assert_eq!(t.distance(0, 4), 1, "gateway to gateway");
        assert_eq!(t.diameter(), 3);
    }

    #[test]
    fn flat_topologies_are_single_shard() {
        let t = Topology::Ring { n: 6 };
        assert_eq!(t.shard_count(), 1);
        assert_eq!(t.per_shard(), 6);
        assert_eq!(t.shard_of(5), 0);
        assert!(t.same_shard(0, 5));
    }

    #[test]
    fn mesh_corner_and_torus_wrap() {
        let mesh = Topology::Mesh {
            w: 3,
            h: 3,
            wrap: false,
        };
        assert_eq!(mesh.neighbors(0), vec![1, 3]);
        let torus = Topology::Mesh {
            w: 3,
            h: 3,
            wrap: true,
        };
        let nb = torus.neighbors(0);
        assert_eq!(nb.len(), 4);
        assert!(nb.contains(&2) && nb.contains(&6));
    }
}
