//! The deterministic event queue.
//!
//! Events fire in `(time, sequence)` order: ties in virtual time are broken
//! by insertion order, making entire simulations reproducible bit-for-bit
//! for a given seed — the property every experiment and property test in
//! this repository leans on.
//!
//! # Calendar design
//!
//! The queue is the DES hot path: every message delivery, bounce, timer,
//! wave effect and step goes through one push and one pop. A binary heap
//! pays `O(log n)` pointer-chasing comparisons on both sides; the calendar
//! layout below gets amortized `O(1)`:
//!
//! * Near-future events land in a ring of [`N_BUCKETS`] *day* buckets of
//!   [`BUCKET_TICKS`] virtual ticks each, covering a sliding window of
//!   `N_BUCKETS × BUCKET_TICKS` ticks from the current day. A push is an
//!   append; the day being drained is sorted once (descending, so pops are
//!   `Vec::pop` from the back) and same-day pushes during the drain are
//!   order-preserving binary insertions.
//! * Far-future events (long timers: ack timeouts on high-latency routers,
//!   heartbeat horizons) overflow into an unordered spill vector and are
//!   migrated into the ring as the window slides over them.
//!
//! Pop order is *identical* to the heap's — the property test in
//! `tests/queue_model.rs` cross-checks random interleaved schedules against
//! a `BinaryHeap` reference model, including same-tick ties and far-future
//! timers. Pushes at or before the current drain point (the simulator never
//! emits them, but the structure is public) clamp into the current day and
//! still pop in exact `(time, seq)` order.

use crate::time::VirtualTime;

/// Ticks covered by one calendar day bucket.
const BUCKET_TICKS: u64 = 16;
/// Days in the ring (power of two; the window is `N_BUCKETS × BUCKET_TICKS`
/// = 16384 ticks, comfortably past default ack timeouts and beacon periods).
const N_BUCKETS: usize = 1024;

struct Entry<E> {
    at: VirtualTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    /// `(time, seq)` packed into one word-pair: a single `u128` compare
    /// replaces the two-field tuple compare in the sort hot loop.
    #[inline]
    fn key(&self) -> u128 {
        (u128::from(self.at.ticks()) << 64) | u128::from(self.seq)
    }
}

/// A deterministic priority queue of timed events.
pub struct EventQueue<E> {
    /// The day ring. Bucket `d & (N_BUCKETS-1)` holds day `d`'s events
    /// while `d` is inside the window `[cur_day, cur_day + N_BUCKETS)`.
    buckets: Vec<Vec<Entry<E>>>,
    /// Events beyond the window, unordered.
    overflow: Vec<Entry<E>>,
    /// Smallest day present in `overflow` (meaningless when empty).
    overflow_min_day: u64,
    /// The day currently being drained.
    cur_day: u64,
    /// Day whose bucket is sorted descending (`u64::MAX` = none).
    sorted_day: u64,
    /// Events in the ring (len - overflow.len()).
    in_window: usize,
    len: usize,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            buckets: (0..N_BUCKETS).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            overflow_min_day: 0,
            cur_day: 0,
            sorted_day: u64::MAX,
            in_window: 0,
            len: 0,
            next_seq: 0,
            scheduled_total: 0,
        }
    }
}

#[inline]
fn day_of(at: VirtualTime) -> u64 {
    at.ticks() / BUCKET_TICKS
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `at`. Returns the event's sequence number.
    pub fn push(&mut self, at: VirtualTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        if self.len == 0 {
            // Empty queue: re-anchor the window at the event so pops never
            // walk stale empty days.
            self.cur_day = day_of(at);
            self.sorted_day = u64::MAX;
        }
        let entry = Entry { at, seq, event };
        // Late pushes (at or before the drain point) clamp into the current
        // day; the in-bucket `(time, seq)` order still pops them first.
        let day = day_of(at).max(self.cur_day);
        if day < self.cur_day + N_BUCKETS as u64 {
            let bucket = &mut self.buckets[(day & (N_BUCKETS as u64 - 1)) as usize];
            if day == self.sorted_day {
                // The day is mid-drain and sorted descending: insert in
                // place so the drain stays ordered.
                let pos = bucket.partition_point(|e| e.key() > entry.key());
                bucket.insert(pos, entry);
            } else {
                if bucket.capacity() == bucket.len() {
                    // Skip the 4→8→16 doubling ramp: one day of a busy
                    // simulation holds tens of events.
                    bucket.reserve(16.max(bucket.len()));
                }
                bucket.push(entry);
            }
            self.in_window += 1;
        } else {
            if self.overflow.is_empty() || day < self.overflow_min_day {
                self.overflow_min_day = day;
            }
            self.overflow.push(entry);
        }
        self.len += 1;
        seq
    }

    /// Moves every overflow event now inside the window into the ring.
    fn migrate_overflow(&mut self) {
        let horizon = self.cur_day + N_BUCKETS as u64;
        let mut next_min = u64::MAX;
        let mut i = 0;
        while i < self.overflow.len() {
            let day = day_of(self.overflow[i].at);
            if day < horizon {
                let entry = self.overflow.swap_remove(i);
                debug_assert!(day >= self.cur_day);
                let bucket = &mut self.buckets[(day & (N_BUCKETS as u64 - 1)) as usize];
                if day == self.sorted_day {
                    let pos = bucket.partition_point(|e| e.key() > entry.key());
                    bucket.insert(pos, entry);
                } else {
                    bucket.push(entry);
                }
                self.in_window += 1;
            } else {
                next_min = next_min.min(day);
                i += 1;
            }
        }
        self.overflow_min_day = next_min;
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(VirtualTime, E)> {
        if self.len == 0 {
            return None;
        }
        loop {
            let idx = (self.cur_day & (N_BUCKETS as u64 - 1)) as usize;
            if !self.buckets[idx].is_empty() {
                if self.sorted_day != self.cur_day {
                    self.buckets[idx].sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
                    self.sorted_day = self.cur_day;
                }
                let e = self.buckets[idx].pop().expect("bucket non-empty");
                self.len -= 1;
                self.in_window -= 1;
                return Some((e.at, e.event));
            }
            // Advance the window one day — or jump it straight to the
            // overflow when nothing nearer remains.
            if self.in_window == 0 {
                debug_assert!(!self.overflow.is_empty());
                self.cur_day = self.overflow_min_day;
            } else {
                self.cur_day += 1;
            }
            if !self.overflow.is_empty() && self.overflow_min_day < self.cur_day + N_BUCKETS as u64
            {
                self.migrate_overflow();
            }
        }
    }

    /// Time of the earliest pending event. (Not on the hot path: scans the
    /// window rather than mutating drain state.)
    pub fn peek_time(&self) -> Option<VirtualTime> {
        if self.len == 0 {
            return None;
        }
        for day in self.cur_day..self.cur_day + N_BUCKETS as u64 {
            let bucket = &self.buckets[(day & (N_BUCKETS as u64 - 1)) as usize];
            if let Some(e) = bucket.iter().min_by_key(|e| e.key()) {
                return Some(e.at);
            }
        }
        self.overflow.iter().map(|e| e.at).min()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(VirtualTime(30), "c");
        q.push(VirtualTime(10), "a");
        q.push(VirtualTime(20), "b");
        assert_eq!(q.peek_time(), Some(VirtualTime(10)));
        assert_eq!(q.pop(), Some((VirtualTime(10), "a")));
        assert_eq!(q.pop(), Some((VirtualTime(20), "b")));
        assert_eq!(q.pop(), Some((VirtualTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(VirtualTime(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_stays_deterministic() {
        let mut q = EventQueue::new();
        q.push(VirtualTime(10), 1);
        q.push(VirtualTime(10), 2);
        assert_eq!(q.pop(), Some((VirtualTime(10), 1)));
        q.push(VirtualTime(10), 3);
        assert_eq!(q.pop(), Some((VirtualTime(10), 2)));
        assert_eq!(q.pop(), Some((VirtualTime(10), 3)));
        assert_eq!(q.scheduled_total(), 3);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn far_future_events_overflow_and_return() {
        let mut q = EventQueue::new();
        let horizon = BUCKET_TICKS * N_BUCKETS as u64;
        q.push(VirtualTime(3 * horizon), "far");
        q.push(VirtualTime(7 * horizon), "farther");
        q.push(VirtualTime(2), "near");
        assert_eq!(q.peek_time(), Some(VirtualTime(2)));
        assert_eq!(q.pop(), Some((VirtualTime(2), "near")));
        assert_eq!(q.peek_time(), Some(VirtualTime(3 * horizon)));
        assert_eq!(q.pop(), Some((VirtualTime(3 * horizon), "far")));
        // Push into the re-anchored window while the second spill is still
        // pending.
        q.push(VirtualTime(3 * horizon + 5), "mid");
        assert_eq!(q.pop(), Some((VirtualTime(3 * horizon + 5), "mid")));
        assert_eq!(q.pop(), Some((VirtualTime(7 * horizon), "farther")));
        assert!(q.is_empty());
    }

    #[test]
    fn same_day_pushes_during_drain_keep_order() {
        let mut q = EventQueue::new();
        // Fill one day, start draining it, then push more of the same day.
        q.push(VirtualTime(4), 0);
        q.push(VirtualTime(6), 1);
        assert_eq!(q.pop(), Some((VirtualTime(4), 0)));
        q.push(VirtualTime(5), 2); // earlier time, later seq — pops first
        q.push(VirtualTime(6), 3); // ties with 1 on time, later seq
        assert_eq!(q.pop(), Some((VirtualTime(5), 2)));
        assert_eq!(q.pop(), Some((VirtualTime(6), 1)));
        assert_eq!(q.pop(), Some((VirtualTime(6), 3)));
    }

    #[test]
    fn late_pushes_clamp_into_the_current_day() {
        let mut q = EventQueue::new();
        q.push(VirtualTime(100), "now");
        q.push(VirtualTime(120), "later");
        assert_eq!(q.pop(), Some((VirtualTime(100), "now")));
        // A push earlier than the drain point (the heap allowed this) must
        // still come out before everything later.
        q.push(VirtualTime(40), "past");
        assert_eq!(q.pop(), Some((VirtualTime(40), "past")));
        assert_eq!(q.pop(), Some((VirtualTime(120), "later")));
    }

    #[test]
    fn empty_queue_reanchors_far_ahead() {
        let mut q = EventQueue::new();
        q.push(VirtualTime(10), 1);
        assert_eq!(q.pop(), Some((VirtualTime(10), 1)));
        // Next event epochs later: no window walk, direct re-anchor.
        let far = 1_000_000_000u64;
        q.push(VirtualTime(far), 2);
        assert_eq!(q.peek_time(), Some(VirtualTime(far)));
        assert_eq!(q.pop(), Some((VirtualTime(far), 2)));
        assert_eq!(q.pop(), None);
    }
}
