//! The deterministic event queue.
//!
//! Events fire in `(time, sequence)` order: ties in virtual time are broken
//! by insertion order, making entire simulations reproducible bit-for-bit
//! for a given seed — the property every experiment and property test in
//! this repository leans on.

use crate::time::VirtualTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: VirtualTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic priority queue of timed events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `at`. Returns the event's sequence number.
    pub fn push(&mut self, at: VirtualTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Entry { at, seq, event });
        seq
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(VirtualTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<VirtualTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(VirtualTime(30), "c");
        q.push(VirtualTime(10), "a");
        q.push(VirtualTime(20), "b");
        assert_eq!(q.peek_time(), Some(VirtualTime(10)));
        assert_eq!(q.pop(), Some((VirtualTime(10), "a")));
        assert_eq!(q.pop(), Some((VirtualTime(20), "b")));
        assert_eq!(q.pop(), Some((VirtualTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(VirtualTime(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_stays_deterministic() {
        let mut q = EventQueue::new();
        q.push(VirtualTime(10), 1);
        q.push(VirtualTime(10), 2);
        assert_eq!(q.pop(), Some((VirtualTime(10), 1)));
        q.push(VirtualTime(10), 3);
        assert_eq!(q.pop(), Some((VirtualTime(10), 2)));
        assert_eq!(q.pop(), Some((VirtualTime(10), 3)));
        assert_eq!(q.scheduled_total(), 3);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }
}
