//! Delta-debugging [`FaultPlan`] shrinker.
//!
//! Given a plan that makes some oracle fail, [`shrink`] reduces it to a
//! locally-minimal failing plan: first delta-debugging the fault set
//! (dropping whole chunks, then single faults), then narrowing each
//! survivor's time toward 1 and victim toward 0. [`plan_literal`] renders
//! any plan as a ready-to-paste Rust expression, and
//! [`regression_test_literal`] wraps it in a full `#[test]` skeleton — the
//! fuzzer prints these when a differential run diverges, so a
//! shrunk reproducer lands in the suite as copy-paste.

use crate::fault::{FaultEvent, FaultKind, FaultPlan, RootFaultEvent};
use crate::time::VirtualTime;
use std::fmt::Write as _;

/// One shrinkable unit: either a processor fault or a root-replica crash.
/// The ddmin pass treats both uniformly so a reproducer keeps only the
/// events (of either kind) that the failure actually needs.
#[derive(Clone, Copy, Debug)]
enum Atom {
    Proc(FaultEvent),
    Root(RootFaultEvent),
}

impl Atom {
    fn at(&self) -> u64 {
        match self {
            Atom::Proc(e) => e.at.0,
            Atom::Root(e) => e.at.0,
        }
    }

    fn set_at(&mut self, t: u64) {
        match self {
            Atom::Proc(e) => e.at = VirtualTime(t),
            Atom::Root(e) => e.at = VirtualTime(t),
        }
    }

    /// The victim index (processor id, or replica rank for root crashes).
    fn victim(&self) -> u32 {
        match self {
            Atom::Proc(e) => e.victim,
            Atom::Root(e) => e.rank,
        }
    }

    fn set_victim(&mut self, v: u32) {
        match self {
            Atom::Proc(e) => e.victim = v,
            Atom::Root(e) => e.rank = v,
        }
    }
}

fn atoms_of(plan: &FaultPlan) -> Vec<Atom> {
    let mut atoms: Vec<Atom> = plan.sorted().into_iter().map(Atom::Proc).collect();
    atoms.extend(plan.sorted_root().into_iter().map(Atom::Root));
    atoms
}

fn plan_of_atoms(atoms: &[Atom]) -> FaultPlan {
    let mut events = Vec::new();
    let mut root_events = Vec::new();
    for a in atoms {
        match a {
            Atom::Proc(e) => events.push(*e),
            Atom::Root(e) => root_events.push(*e),
        }
    }
    FaultPlan {
        events,
        root_events,
    }
}

/// How the oracle judged plans during a shrink, plus the result.
#[derive(Clone, Debug)]
pub struct ShrinkReport {
    /// The locally-minimal failing plan.
    pub plan: FaultPlan,
    /// Oracle invocations spent.
    pub probes: u64,
    /// Faults in the original plan (processor faults + root-replica crashes).
    pub from_faults: usize,
}

/// Reduces `plan` to a locally-minimal plan that still fails.
///
/// `oracle` returns `true` when a candidate plan still exhibits the
/// failure (e.g. "backends diverge on this plan"). The input `plan` must
/// itself fail; if the oracle rejects even the full plan the input is
/// returned unchanged. The oracle is called on candidates only — never
/// gratuitously on the empty plan unless a removal produces it.
pub fn shrink(plan: &FaultPlan, oracle: &mut dyn FnMut(&FaultPlan) -> bool) -> ShrinkReport {
    let mut probes: u64 = 0;
    let mut check = |atoms: &[Atom]| -> Option<FaultPlan> {
        let candidate = plan_of_atoms(atoms);
        probes += 1;
        oracle(&candidate).then_some(candidate)
    };

    // Phase 1: ddmin over the fault set (processor and root faults alike).
    let mut atoms = atoms_of(plan);
    let mut granularity = 2usize;
    while atoms.len() >= 2 {
        let chunk = atoms.len().div_ceil(granularity);
        let mut reduced = None;
        // Try each chunk alone, then each complement.
        for keep_complement in [false, true] {
            for start in (0..atoms.len()).step_by(chunk) {
                let end = (start + chunk).min(atoms.len());
                let candidate: Vec<Atom> = if keep_complement {
                    atoms[..start]
                        .iter()
                        .chain(&atoms[end..])
                        .copied()
                        .collect()
                } else {
                    atoms[start..end].to_vec()
                };
                if candidate.len() == atoms.len() || candidate.is_empty() {
                    continue;
                }
                if check(&candidate).is_some() {
                    reduced = Some(candidate);
                    break;
                }
            }
            if reduced.is_some() {
                break;
            }
        }
        match reduced {
            Some(r) => {
                atoms = r;
                granularity = 2;
            }
            None if granularity >= atoms.len() => break,
            None => granularity = (granularity * 2).min(atoms.len()),
        }
    }

    // Phase 2: narrow each surviving fault's time toward 1, then its
    // victim toward 0 (smaller reproducers read better and run faster).
    for i in 0..atoms.len() {
        loop {
            let t = atoms[i].at();
            if t <= 1 {
                break;
            }
            let mut next = None;
            for cand in [t / 2, t - 1] {
                if cand < 1 || cand >= t {
                    continue;
                }
                let mut trial = atoms.clone();
                trial[i].set_at(cand);
                if check(&trial).is_some() {
                    next = Some(trial);
                    break;
                }
            }
            match next {
                Some(tr) => atoms = tr,
                None => break,
            }
        }
        loop {
            let v = atoms[i].victim();
            let mut next = None;
            for cand in [v / 2, v.wrapping_sub(1)] {
                if v == 0 || cand >= v {
                    continue;
                }
                let mut trial = atoms.clone();
                trial[i].set_victim(cand);
                if check(&trial).is_some() {
                    next = Some(trial);
                    break;
                }
            }
            match next {
                Some(tr) => atoms = tr,
                None => break,
            }
        }
    }

    let reduced = plan_of_atoms(&atoms);
    probes += 1;
    let minimal = if oracle(&reduced) {
        reduced
    } else {
        // Narrowing interactions regressed the plan (oracle is stateful or
        // flaky); fall back to the input, which is known-failing.
        plan.clone()
    };
    ShrinkReport {
        plan: minimal,
        probes,
        from_faults: plan.events.len() + plan.root_events.len(),
    }
}

/// Renders `plan` as a ready-to-paste Rust expression building it.
pub fn plan_literal(plan: &FaultPlan) -> String {
    if plan.is_empty() {
        return "FaultPlan::none()".to_string();
    }
    let mut s = String::from("FaultPlan::none()");
    for e in plan.sorted() {
        let kind = match e.kind {
            FaultKind::Crash => "FaultKind::Crash",
            FaultKind::Corrupt => "FaultKind::Corrupt",
        };
        let _ = write!(
            s,
            "\n    .and({}, VirtualTime({}), {})",
            e.victim, e.at.0, kind
        );
    }
    for e in plan.sorted_root() {
        let _ = write!(
            s,
            "\n    .crash_root_replica({}, VirtualTime({}))",
            e.rank, e.at.0
        );
    }
    s
}

/// Renders a full `#[test]` skeleton reproducing a failure of `plan`.
/// `name` becomes the test fn name; `context` is a one-line comment
/// describing the failing configuration (seed, topology, backend pair).
pub fn regression_test_literal(name: &str, context: &str, plan: &FaultPlan) -> String {
    format!(
        "#[test]\nfn {name}() {{\n    // {context}\n    let plan = {};\n    \
         // Assert the original failure on `plan` here.\n}}\n",
        plan_literal(plan).replace('\n', "\n    ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_of(victims: &[(u32, u64)]) -> FaultPlan {
        let mut p = FaultPlan::none();
        for (v, t) in victims {
            p = p.and(*v, VirtualTime(*t), FaultKind::Crash);
        }
        p
    }

    #[test]
    fn shrinks_to_the_single_culprit() {
        // Failure = "victim 7 crashes at any time".
        let big = plan_of(&[(1, 10), (2, 20), (7, 500), (3, 40), (4, 50), (5, 60)]);
        let mut oracle = |p: &FaultPlan| p.events.iter().any(|e| e.victim == 7 && e.at.0 >= 100);
        let r = shrink(&big, &mut oracle);
        assert_eq!(r.plan.events.len(), 1);
        assert_eq!(r.plan.events[0].victim, 7);
        assert_eq!(r.plan.events[0].at, VirtualTime(100), "time narrowed");
        assert!(r.probes > 0);
    }

    #[test]
    fn keeps_interacting_pairs() {
        // Failure needs both victim 2 and victim 5 to crash.
        let big = plan_of(&[(1, 10), (2, 20), (3, 30), (5, 50), (6, 60)]);
        let mut oracle = |p: &FaultPlan| {
            let has = |v: u32| p.events.iter().any(|e| e.victim == v);
            has(2) && has(5)
        };
        let r = shrink(&big, &mut oracle);
        assert_eq!(r.plan.events.len(), 2);
        let mut victims: Vec<u32> = r.plan.events.iter().map(|e| e.victim).collect();
        victims.sort_unstable();
        assert_eq!(victims, vec![2, 5]);
    }

    #[test]
    fn narrows_victims_toward_zero() {
        let big = plan_of(&[(9, 100)]);
        // Any single crash fails: shrinker should drive victim to 0, time to 1.
        let mut oracle = |p: &FaultPlan| !p.events.is_empty();
        let r = shrink(&big, &mut oracle);
        assert_eq!(r.plan.events.len(), 1);
        assert_eq!(r.plan.events[0].victim, 0);
        assert_eq!(r.plan.events[0].at, VirtualTime(1));
    }

    #[test]
    fn shrinks_root_faults_alongside_processor_faults() {
        // Failure = "some root replica crashes"; processor faults are noise.
        let big = plan_of(&[(1, 10), (2, 20), (3, 30)])
            .crash_root_replica(0, VirtualTime(400))
            .crash_root_replica(2, VirtualTime(800));
        let mut oracle = |p: &FaultPlan| !p.root_events.is_empty();
        let r = shrink(&big, &mut oracle);
        assert!(r.plan.events.is_empty(), "processor noise dropped");
        assert_eq!(r.plan.root_events.len(), 1);
        assert_eq!(r.plan.root_events[0].rank, 0, "rank narrowed");
        assert_eq!(r.plan.root_events[0].at, VirtualTime(1), "time narrowed");
        assert_eq!(r.from_faults, 5);
    }

    #[test]
    fn literal_round_trips_by_eye() {
        let p = plan_of(&[(3, 40)]).and(1, VirtualTime(9), FaultKind::Corrupt);
        let lit = plan_literal(&p);
        assert!(lit.contains(".and(1, VirtualTime(9), FaultKind::Corrupt)"));
        assert!(lit.contains(".and(3, VirtualTime(40), FaultKind::Crash)"));
        assert_eq!(plan_literal(&FaultPlan::none()), "FaultPlan::none()");
        let test = regression_test_literal("repro_x", "seed=1 flat/16", &p);
        assert!(test.starts_with("#[test]\nfn repro_x()"));
        assert!(test.contains("seed=1 flat/16"));

        let rp = FaultPlan::none().crash_root_replica(1, VirtualTime(77));
        assert!(plan_literal(&rp).contains(".crash_root_replica(1, VirtualTime(77))"));
    }
}
