//! The compact binary wire format the multi-process backend speaks over
//! Unix domain sockets.
//!
//! Every in-flight protocol message crosses process boundaries as one
//! *frame*:
//!
//! ```text
//! [ len: u32 LE ][ version: u8 ][ body ... ][ crc: u32 LE ]
//! ```
//!
//! where `len` covers everything after the length word (version byte, body
//! and checksum), `version` pins the codec revision ([`WIRE_VERSION`]), and
//! `crc` is a 32-bit FNV-1a digest of the version byte plus body. Inside
//! the body, integers are LEB128 varints (signed values zigzag-encoded),
//! [`LevelStamp`]s are a varint digit count followed by varint digits —
//! deep or wide stamps past the 24-byte inline form cost exactly their
//! digits, nothing more — and [`Value`] trees are tagged recursively with
//! a decode-side depth and length guard.
//!
//! Decoding is *total*: truncated, corrupted or hostile bytes return a
//! [`CodecError`], never panic and never allocate unbounded memory. The
//! transport turns a decode error into a dropped connection and a
//! `decode_errors` tick; the protocol above is built for lossy links, so
//! at-least-once delivery plus dup-tolerance absorbs the loss.

use splice_applicative::{Demand, FnId, Value};
use splice_core::ids::{ProcId, TaskAddr, TaskKey};
use splice_core::packet::{
    AckInfo, CkptPacket, Msg, ReplicaInfo, ResultPacket, SalvagePacket, TaskLink, TaskPacket,
};
use splice_core::stamp::LevelStamp;
use std::fmt;

/// Codec revision carried in every frame's version byte. Bump on any
/// incompatible layout change; a mismatched peer surfaces as a
/// [`CodecError::Version`] bounce, not silent misparsing.
pub const WIRE_VERSION: u8 = 1;

/// Upper bound on a single frame's `len` word (16 MiB). A corrupted or
/// hostile length prefix fails fast instead of asking the reassembly
/// buffer for gigabytes.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Maximum [`Value`] nesting depth the decoder will follow. Deeper trees
/// error out rather than recursing toward stack exhaustion.
pub const MAX_VALUE_DEPTH: usize = 96;

/// Why a frame or body failed to decode. All variants are recoverable:
/// the caller drops the bytes (and usually the connection) and moves on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the announced structure did.
    Truncated,
    /// The frame's version byte does not match [`WIRE_VERSION`].
    Version(u8),
    /// The frame checksum did not match its payload.
    Checksum,
    /// A frame length word exceeded [`MAX_FRAME_LEN`] or was too short to
    /// hold the mandatory version byte and checksum.
    FrameLen(usize),
    /// An enum tag byte was out of range for the structure being decoded.
    Tag(u8),
    /// A varint ran past 10 bytes (longer than any encoded u64).
    Varint,
    /// A string body was not valid UTF-8.
    Utf8,
    /// A collection announced more elements than the remaining bytes
    /// could possibly hold.
    Oversize,
    /// A [`Value`] tree nested deeper than [`MAX_VALUE_DEPTH`].
    Depth,
    /// Trailing bytes remained after the announced structure ended.
    Trailing,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated input"),
            CodecError::Version(v) => write!(f, "wire version {v} != {WIRE_VERSION}"),
            CodecError::Checksum => write!(f, "frame checksum mismatch"),
            CodecError::FrameLen(n) => write!(f, "bad frame length {n}"),
            CodecError::Tag(t) => write!(f, "unknown tag byte {t}"),
            CodecError::Varint => write!(f, "varint overruns 10 bytes"),
            CodecError::Utf8 => write!(f, "invalid utf-8 in string"),
            CodecError::Oversize => write!(f, "collection longer than remaining bytes"),
            CodecError::Depth => write!(f, "value nesting exceeds {MAX_VALUE_DEPTH}"),
            CodecError::Trailing => write!(f, "trailing bytes after message"),
        }
    }
}

impl std::error::Error for CodecError {}

/// 32-bit FNV-1a over `bytes` — the per-frame checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

/// Byte-sink encoder: appends varint-packed structures to a reusable
/// `Vec<u8>`.
pub struct Enc<'a> {
    out: &'a mut Vec<u8>,
}

impl<'a> Enc<'a> {
    /// An encoder appending to `out` (the buffer is not cleared).
    pub fn new(out: &'a mut Vec<u8>) -> Enc<'a> {
        Enc { out }
    }

    /// One raw byte.
    pub fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    /// LEB128 varint.
    pub fn u64v(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.out.push(byte);
                return;
            }
            self.out.push(byte | 0x80);
        }
    }

    /// LEB128 varint of a u32.
    pub fn u32v(&mut self, v: u32) {
        self.u64v(u64::from(v));
    }

    /// Zigzag-folded signed varint.
    pub fn i64z(&mut self, v: i64) {
        self.u64v(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u64v(s.len() as u64);
        self.out.extend_from_slice(s.as_bytes());
    }

    /// A level stamp: varint digit count, then each digit as a varint.
    /// Heap-spilled stamps (deeper than the inline form, or with digits
    /// past 255) encode identically — the wire has no inline/heap split.
    pub fn stamp(&mut self, s: &LevelStamp) {
        self.u64v(s.level() as u64);
        for d in s.iter() {
            self.u32v(d);
        }
    }

    /// A processor id (varint; the super-root's `u32::MAX` costs 5 bytes).
    pub fn proc(&mut self, p: ProcId) {
        self.u32v(p.0);
    }

    /// A task address.
    pub fn addr(&mut self, a: &TaskAddr) {
        self.proc(a.proc);
        self.u64v(a.key.0);
    }

    /// A task link (address + stamp).
    pub fn link(&mut self, l: &TaskLink) {
        self.addr(&l.addr);
        self.stamp(&l.stamp);
    }

    /// A value tree, tagged recursively.
    pub fn value(&mut self, v: &Value) {
        match v {
            Value::Unit => self.u8(0),
            Value::Bool(b) => {
                self.u8(1);
                self.u8(u8::from(*b));
            }
            Value::Int(i) => {
                self.u8(2);
                self.i64z(*i);
            }
            Value::Str(s) => {
                self.u8(3);
                self.str(s);
            }
            Value::List(xs) => {
                self.u8(4);
                self.u64v(xs.len() as u64);
                for x in xs.iter() {
                    self.value(x);
                }
            }
        }
    }

    /// A demand (combinator id + argument values).
    pub fn demand(&mut self, d: &Demand) {
        self.u32v(d.fun.0);
        self.u64v(d.args.len() as u64);
        for a in &d.args {
            self.value(a);
        }
    }

    /// An optional replica tag.
    pub fn replica(&mut self, r: &Option<ReplicaInfo>) {
        match r {
            None => self.u8(0),
            Some(ri) => {
                self.u8(1);
                self.u32v(ri.index);
                self.u32v(ri.total);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

/// Cursor decoder over a byte slice. Every read is bounds-checked; all
/// failures surface as [`CodecError`].
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder over `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// One raw byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        let b = *self.buf.get(self.pos).ok_or(CodecError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// LEB128 varint.
    pub fn u64v(&mut self) -> Result<u64, CodecError> {
        let mut v: u64 = 0;
        for shift in 0..10 {
            let b = self.u8()?;
            // The 10th byte may only carry the top bit of a u64.
            if shift == 9 && b > 1 {
                return Err(CodecError::Varint);
            }
            v |= u64::from(b & 0x7f) << (shift * 7);
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(CodecError::Varint)
    }

    /// LEB128 varint bounded to u32.
    pub fn u32v(&mut self) -> Result<u32, CodecError> {
        u32::try_from(self.u64v()?).map_err(|_| CodecError::Varint)
    }

    /// Zigzag-folded signed varint.
    pub fn i64z(&mut self) -> Result<i64, CodecError> {
        let z = self.u64v()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let len = self.len_guard(1)?;
        let bytes = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Utf8)
    }

    /// A collection length prefix, rejected when `len * min_elem_bytes`
    /// exceeds the remaining buffer — a corrupted prefix cannot demand an
    /// absurd allocation.
    fn len_guard(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let len = usize::try_from(self.u64v()?).map_err(|_| CodecError::Oversize)?;
        if len.saturating_mul(min_elem_bytes) > self.remaining() {
            return Err(CodecError::Oversize);
        }
        Ok(len)
    }

    /// A level stamp.
    pub fn stamp(&mut self) -> Result<LevelStamp, CodecError> {
        let level = self.len_guard(1)?;
        let mut digits = Vec::with_capacity(level);
        for _ in 0..level {
            digits.push(self.u32v()?);
        }
        Ok(LevelStamp::from_digits(&digits))
    }

    /// A processor id.
    pub fn proc(&mut self) -> Result<ProcId, CodecError> {
        Ok(ProcId(self.u32v()?))
    }

    /// A task address.
    pub fn addr(&mut self) -> Result<TaskAddr, CodecError> {
        let proc = self.proc()?;
        let key = TaskKey(self.u64v()?);
        Ok(TaskAddr { proc, key })
    }

    /// A task link.
    pub fn link(&mut self) -> Result<TaskLink, CodecError> {
        let addr = self.addr()?;
        let stamp = self.stamp()?;
        Ok(TaskLink { addr, stamp })
    }

    /// A value tree (depth-guarded).
    pub fn value(&mut self) -> Result<Value, CodecError> {
        self.value_at(0)
    }

    fn value_at(&mut self, depth: usize) -> Result<Value, CodecError> {
        if depth > MAX_VALUE_DEPTH {
            return Err(CodecError::Depth);
        }
        match self.u8()? {
            0 => Ok(Value::Unit),
            1 => Ok(Value::Bool(self.u8()? != 0)),
            2 => Ok(Value::Int(self.i64z()?)),
            3 => Ok(Value::Str(self.str()?.into())),
            4 => {
                let len = self.len_guard(1)?;
                let mut xs = Vec::with_capacity(len);
                for _ in 0..len {
                    xs.push(self.value_at(depth + 1)?);
                }
                Ok(Value::List(xs.into()))
            }
            t => Err(CodecError::Tag(t)),
        }
    }

    /// A demand.
    pub fn demand(&mut self) -> Result<Demand, CodecError> {
        let fun = FnId(self.u32v()?);
        let n = self.len_guard(1)?;
        let mut args = Vec::with_capacity(n);
        for _ in 0..n {
            args.push(self.value()?);
        }
        Ok(Demand::new(fun, args))
    }

    /// An optional replica tag.
    pub fn replica(&mut self) -> Result<Option<ReplicaInfo>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => {
                let index = self.u32v()?;
                let total = self.u32v()?;
                Ok(Some(ReplicaInfo { index, total }))
            }
            t => Err(CodecError::Tag(t)),
        }
    }
}

// ---------------------------------------------------------------------------
// Msg body codec
// ---------------------------------------------------------------------------

/// Appends the body encoding of `msg` to `out` (no frame envelope). Tags
/// follow `MsgKind::ALL` order.
pub fn encode_msg(msg: &Msg, out: &mut Vec<u8>) {
    let mut e = Enc::new(out);
    match msg {
        Msg::Spawn(p) => {
            e.u8(0);
            e.stamp(&p.stamp);
            e.demand(&p.demand);
            e.link(&p.parent);
            e.u64v(p.ancestors.len() as u64);
            for a in &p.ancestors {
                e.link(a);
            }
            e.u32v(p.incarnation);
            e.u32v(p.hops);
            e.replica(&p.replica);
            e.u8(u8::from(p.under_replica));
        }
        Msg::Ack(a) => {
            e.u8(1);
            e.stamp(&a.child_stamp);
            e.addr(&a.child_addr);
            e.addr(&a.parent);
            e.u32v(a.incarnation);
        }
        Msg::Result(r) => {
            e.u8(2);
            e.stamp(&r.from_stamp);
            e.demand(&r.demand);
            e.value(&r.value);
            e.addr(&r.to);
            e.stamp(&r.to_stamp);
            e.u64v(r.relay_chain.len() as u64);
            for l in &r.relay_chain {
                e.link(l);
            }
            e.replica(&r.replica);
        }
        Msg::Salvage(s) => {
            e.u8(3);
            e.addr(&s.to);
            e.stamp(&s.dead_stamp);
            e.addr(&s.dead_addr);
            e.demand(&s.demand);
            e.value(&s.value);
            e.stamp(&s.from_stamp);
        }
        Msg::Abort { to } => {
            e.u8(4);
            e.addr(to);
        }
        Msg::Load { from, pressure } => {
            e.u8(5);
            e.proc(*from);
            e.u32v(*pressure);
        }
        Msg::FailureNotice { dead } => {
            e.u8(6);
            e.proc(*dead);
        }
        Msg::Probe => e.u8(7),
        Msg::Ckpt(c) => {
            e.u8(8);
            e.addr(&c.owner);
            e.stamp(&c.from_stamp);
            e.u64v(c.entries.len() as u64);
            for (d, v) in &c.entries {
                e.demand(d);
                e.value(v);
            }
        }
    }
}

/// Decodes one `Msg` body produced by [`encode_msg`], rejecting trailing
/// bytes.
pub fn decode_msg(buf: &[u8]) -> Result<Msg, CodecError> {
    let mut d = Dec::new(buf);
    let msg = decode_msg_at(&mut d)?;
    if d.remaining() != 0 {
        return Err(CodecError::Trailing);
    }
    Ok(msg)
}

/// Decodes one `Msg` body at the decoder's cursor, leaving the cursor
/// after it (for bodies embedded in larger structures).
pub fn decode_msg_at(d: &mut Dec<'_>) -> Result<Msg, CodecError> {
    match d.u8()? {
        0 => {
            let stamp = d.stamp()?;
            let demand = d.demand()?;
            let parent = d.link()?;
            let n = d.len_guard(1)?;
            let mut ancestors = Vec::with_capacity(n);
            for _ in 0..n {
                ancestors.push(d.link()?);
            }
            let incarnation = d.u32v()?;
            let hops = d.u32v()?;
            let replica = d.replica()?;
            let under_replica = d.u8()? != 0;
            Ok(Msg::Spawn(Box::new(TaskPacket {
                stamp,
                demand,
                parent,
                ancestors,
                incarnation,
                hops,
                replica,
                under_replica,
            })))
        }
        1 => {
            let child_stamp = d.stamp()?;
            let child_addr = d.addr()?;
            let parent = d.addr()?;
            let incarnation = d.u32v()?;
            Ok(Msg::Ack(Box::new(AckInfo {
                child_stamp,
                child_addr,
                parent,
                incarnation,
            })))
        }
        2 => {
            let from_stamp = d.stamp()?;
            let demand = d.demand()?;
            let value = d.value()?;
            let to = d.addr()?;
            let to_stamp = d.stamp()?;
            let n = d.len_guard(1)?;
            let mut relay_chain = Vec::with_capacity(n);
            for _ in 0..n {
                relay_chain.push(d.link()?);
            }
            let replica = d.replica()?;
            Ok(Msg::Result(Box::new(ResultPacket {
                from_stamp,
                demand,
                value,
                to,
                to_stamp,
                relay_chain,
                replica,
            })))
        }
        3 => {
            let to = d.addr()?;
            let dead_stamp = d.stamp()?;
            let dead_addr = d.addr()?;
            let demand = d.demand()?;
            let value = d.value()?;
            let from_stamp = d.stamp()?;
            Ok(Msg::Salvage(Box::new(SalvagePacket {
                to,
                dead_stamp,
                dead_addr,
                demand,
                value,
                from_stamp,
            })))
        }
        4 => Ok(Msg::Abort { to: d.addr()? }),
        5 => {
            let from = d.proc()?;
            let pressure = d.u32v()?;
            Ok(Msg::Load { from, pressure })
        }
        6 => Ok(Msg::FailureNotice { dead: d.proc()? }),
        7 => Ok(Msg::Probe),
        8 => {
            let owner = d.addr()?;
            let from_stamp = d.stamp()?;
            let n = d.len_guard(1)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let demand = d.demand()?;
                let value = d.value()?;
                entries.push((demand, value));
            }
            Ok(Msg::Ckpt(Box::new(CkptPacket {
                owner,
                from_stamp,
                entries,
            })))
        }
        t => Err(CodecError::Tag(t)),
    }
}

// ---------------------------------------------------------------------------
// Frame envelope
// ---------------------------------------------------------------------------

/// Wraps an already-encoded body in the frame envelope (length word,
/// version byte, checksum), appending to `out`.
pub fn encode_frame(body: &[u8], out: &mut Vec<u8>) {
    let len = 1 + body.len() + 4;
    out.extend_from_slice(&(len as u32).to_le_bytes());
    let payload_start = out.len();
    out.push(WIRE_VERSION);
    out.extend_from_slice(body);
    let crc = crc32(&out[payload_start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Encodes `msg` as one complete frame appended to `out` — the one-stop
/// sender path. `scratch` is a reusable body buffer (cleared here).
pub fn encode_msg_frame(msg: &Msg, scratch: &mut Vec<u8>, out: &mut Vec<u8>) {
    scratch.clear();
    encode_msg(msg, scratch);
    encode_frame(scratch, out);
}

/// Streaming frame reassembly buffer: feed it raw socket bytes, pop
/// complete verified frame bodies. A decode failure poisons only the one
/// frame; the caller decides whether to keep the connection.
#[derive(Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameBuf {
    /// An empty reassembly buffer.
    pub fn new() -> FrameBuf {
        FrameBuf::default()
    }

    /// Appends raw bytes read from the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact once the consumed prefix dominates the buffer, so a
        // long-lived connection does not grow without bound.
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pops the next complete frame body, verifying version and checksum.
    ///
    /// * `Ok(Some(body))` — one verified frame body (envelope stripped);
    /// * `Ok(None)` — no complete frame buffered yet;
    /// * `Err(_)` — the stream is corrupt at the cursor; the caller should
    ///   drop the connection (resynchronising a length-prefixed stream
    ///   after corruption is guesswork).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, CodecError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if !(5..=MAX_FRAME_LEN).contains(&len) {
            return Err(CodecError::FrameLen(len));
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let payload = &avail[4..4 + len];
        let (head, crc_bytes) = payload.split_at(len - 4);
        let crc = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
        if crc32(head) != crc {
            return Err(CodecError::Checksum);
        }
        if head[0] != WIRE_VERSION {
            return Err(CodecError::Version(head[0]));
        }
        let body = head[1..].to_vec();
        self.pos += 4 + len;
        Ok(Some(body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamp(digits: &[u32]) -> LevelStamp {
        LevelStamp::from_digits(digits)
    }

    fn sample_msgs() -> Vec<Msg> {
        let deep: Vec<u32> = (0..40).map(|i| i * 3 + 1).collect();
        let wide = vec![1, 70_000, 3, u32::MAX, 5];
        let demand = Demand::new(
            FnId(7),
            vec![
                Value::Int(-42),
                Value::Str("xs".into()),
                Value::List(vec![Value::Bool(true), Value::Unit].into()),
            ],
        );
        vec![
            Msg::spawn(TaskPacket {
                stamp: stamp(&deep),
                demand: demand.clone(),
                parent: TaskLink::new(TaskAddr::new(ProcId(3), TaskKey(9)), stamp(&[1, 2])),
                ancestors: vec![TaskLink::super_root()],
                incarnation: 2,
                hops: 5,
                replica: Some(ReplicaInfo { index: 1, total: 3 }),
                under_replica: true,
            }),
            Msg::ack(
                stamp(&wide),
                TaskAddr::new(ProcId(1), TaskKey(4)),
                TaskAddr::super_root(),
                1,
            ),
            Msg::result(ResultPacket {
                from_stamp: stamp(&wide),
                demand: demand.clone(),
                value: Value::List(vec![Value::Int(i64::MIN), Value::Int(i64::MAX)].into()),
                to: TaskAddr::super_root(),
                to_stamp: stamp(&[]),
                relay_chain: vec![TaskLink::new(
                    TaskAddr::new(ProcId(2), TaskKey(8)),
                    stamp(&deep),
                )],
                replica: None,
            }),
            Msg::salvage(SalvagePacket {
                to: TaskAddr::new(ProcId(0), TaskKey(1)),
                dead_stamp: stamp(&[9, 9, 9]),
                dead_addr: TaskAddr::new(ProcId(6), TaskKey(2)),
                demand,
                value: Value::Str("orphan".into()),
                from_stamp: stamp(&[1]),
            }),
            Msg::Abort {
                to: TaskAddr::new(ProcId(4), TaskKey(11)),
            },
            Msg::Load {
                from: ProcId(2),
                pressure: 1234,
            },
            Msg::FailureNotice {
                dead: ProcId::SUPER_ROOT,
            },
            Msg::Probe,
            Msg::ckpt(CkptPacket {
                owner: TaskAddr::new(ProcId(3), TaskKey(7)),
                from_stamp: stamp(&[1, 4]),
                entries: vec![
                    (Demand::new(FnId(2), vec![Value::Int(5)]), Value::Int(8)),
                    (
                        Demand::new(FnId(2), vec![Value::Int(4)]),
                        Value::List(vec![Value::Unit].into()),
                    ),
                ],
            }),
        ]
    }

    #[test]
    fn msg_round_trip() {
        for msg in sample_msgs() {
            let mut body = Vec::new();
            encode_msg(&msg, &mut body);
            assert_eq!(decode_msg(&body).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn frame_round_trip_and_stream_reassembly() {
        let msgs = sample_msgs();
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        for m in &msgs {
            encode_msg_frame(m, &mut scratch, &mut wire);
        }
        // Feed the stream one byte at a time: reassembly must still pop
        // every frame, in order.
        let mut fb = FrameBuf::new();
        let mut got = Vec::new();
        for b in &wire {
            fb.extend(std::slice::from_ref(b));
            while let Some(body) = fb.next_frame().unwrap() {
                got.push(decode_msg(&body).unwrap());
            }
        }
        assert_eq!(got, msgs);
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn deep_and_wide_stamps_round_trip() {
        // Past the inline form on both axes: depth > 22 and digits > 255.
        let cases = [
            (0..23).collect::<Vec<u32>>(),
            (0..64).map(|i| i * 7).collect(),
            vec![256, 65_536, u32::MAX],
            vec![],
        ];
        for digits in cases {
            let s = stamp(&digits);
            let mut buf = Vec::new();
            Enc::new(&mut buf).stamp(&s);
            let got = Dec::new(&buf).stamp().unwrap();
            assert_eq!(got, s);
            assert_eq!(got.digits(), digits);
        }
    }

    #[test]
    fn truncation_errors_never_panic() {
        for msg in sample_msgs() {
            let mut body = Vec::new();
            encode_msg(&msg, &mut body);
            for cut in 0..body.len() {
                assert!(decode_msg(&body[..cut]).is_err(), "{msg:?} cut at {cut}");
            }
        }
    }

    #[test]
    fn corrupted_frames_fail_checksum() {
        let mut scratch = Vec::new();
        let mut wire = Vec::new();
        encode_msg_frame(&Msg::Probe, &mut scratch, &mut wire);
        // Flip each payload byte in turn: version, body or checksum —
        // every flip must surface as an error, never a bogus frame.
        for i in 4..wire.len() {
            let mut bad = wire.clone();
            bad[i] ^= 0x40;
            let mut fb = FrameBuf::new();
            fb.extend(&bad);
            assert!(fb.next_frame().is_err(), "flip at {i}");
        }
    }

    #[test]
    fn hostile_length_prefix_is_bounded() {
        let mut fb = FrameBuf::new();
        fb.extend(&u32::MAX.to_le_bytes());
        assert_eq!(
            fb.next_frame(),
            Err(CodecError::FrameLen(u32::MAX as usize))
        );
        let mut fb = FrameBuf::new();
        fb.extend(&2u32.to_le_bytes());
        assert!(matches!(fb.next_frame(), Err(CodecError::FrameLen(2))));
    }

    #[test]
    fn oversize_collection_prefix_rejected() {
        // A spawn whose ancestor count claims more elements than bytes.
        let mut body = Vec::new();
        let mut e = Enc::new(&mut body);
        e.u8(0); // Spawn tag
        e.stamp(&stamp(&[1]));
        e.demand(&Demand::new(FnId(0), vec![]));
        e.link(&TaskLink::super_root());
        e.u64v(1 << 40); // absurd ancestor count
        assert_eq!(decode_msg(&body), Err(CodecError::Oversize));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut body = Vec::new();
        encode_msg(&Msg::Probe, &mut body);
        body.push(0);
        assert_eq!(decode_msg(&body), Err(CodecError::Trailing));
    }

    #[test]
    fn value_depth_guard() {
        let mut nested = Value::Unit;
        for _ in 0..(MAX_VALUE_DEPTH + 2) {
            nested = Value::List(vec![nested].into());
        }
        let mut buf = Vec::new();
        Enc::new(&mut buf).value(&nested);
        assert_eq!(Dec::new(&buf).value(), Err(CodecError::Depth));
    }
}
