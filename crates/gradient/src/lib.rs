//! `splice-gradient` — dynamic task allocation for the applicative machine.
//!
//! §3.3 of the recovery paper makes dynamic allocation a prerequisite:
//! "the ability to recover by simply reissuing checkpointed tasks depends on
//! the availability of a dynamic allocation strategy, such as the gradient
//! model approach." This crate provides that substrate:
//!
//! * [`gradient`] — the gradient model itself (the paper's reference [10]):
//!   demand proximity propagation and hop-by-hop surplus migration;
//! * [`random`] — seeded uniform-random placement and a global
//!   least-loaded placer, the baselines for experiment E12 (round-robin
//!   lives in `splice-core::place`).
//!
//! All placers implement `splice_core::place::Placer` and are interchangeable
//! in both the simulator and the threaded runtime.

#![warn(missing_docs)]

pub mod gradient;
pub mod random;

pub use gradient::{GradientConfig, GradientPlacer, UNKNOWN_PROXIMITY};
pub use random::{LeastLoadedPlacer, RandomPlacer};

use splice_core::ids::ProcId;
use splice_core::place::{Placer, RoundRobinPlacer};
use splice_simnet::topology::Topology;
use std::sync::Arc;

/// Placement policies by name, for experiment configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// The gradient model (default).
    Gradient,
    /// Seeded uniform random.
    Random,
    /// Round-robin over all processors.
    RoundRobin,
    /// Global least-loaded (beacon-driven).
    LeastLoaded,
}

impl Policy {
    /// All policies, for sweeps.
    pub const ALL: [Policy; 4] = [
        Policy::Gradient,
        Policy::Random,
        Policy::RoundRobin,
        Policy::LeastLoaded,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Gradient => "gradient",
            Policy::Random => "random",
            Policy::RoundRobin => "round-robin",
            Policy::LeastLoaded => "least-loaded",
        }
    }

    /// Builds the placer instance for processor `here` of `topology`.
    /// `seed` decorrelates stochastic placers across processors and runs.
    pub fn build(self, here: ProcId, topology: &Topology, seed: u64) -> Box<dyn Placer> {
        let all: Arc<[ProcId]> = (0..topology.len()).map(ProcId).collect();
        self.build_shared(here, topology, seed, &all)
    }

    /// Like [`Policy::build`], but over a caller-shared roster. Machines
    /// build one placer per engine; cloning an `Arc` here instead of
    /// materialising a fresh roster keeps an n-engine build O(n) instead
    /// of O(n²) — the difference between seconds and minutes at 65k
    /// engines.
    pub fn build_shared(
        self,
        here: ProcId,
        topology: &Topology,
        seed: u64,
        all: &Arc<[ProcId]>,
    ) -> Box<dyn Placer> {
        let all = all.clone();
        match self {
            Policy::Gradient => {
                // Sharded topologies mark the gateway links that run through
                // the inter-shard router: the placer charges those
                // neighbours a proximity penalty so surplus prefers
                // intra-shard flow (on flat topologies the set is empty and
                // the penalty is inert).
                let neighbors: Vec<ProcId> =
                    topology.neighbors(here.0).into_iter().map(ProcId).collect();
                let cross_shard = neighbors
                    .iter()
                    .copied()
                    .filter(|p| !topology.same_shard(here.0, p.0))
                    .collect();
                Box::new(GradientPlacer::sharded(
                    here,
                    neighbors,
                    cross_shard,
                    GradientConfig::default(),
                ))
            }
            Policy::Random => Box::new(RandomPlacer::new(
                all,
                seed ^ (here.0 as u64).wrapping_mul(0x9E3779B97F4A7C15),
            )),
            Policy::RoundRobin => Box::new(RoundRobinPlacer::new(all)),
            Policy::LeastLoaded => Box::new(LeastLoadedPlacer::new(here, all)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_build_for_every_topology() {
        let topos = [
            Topology::Complete { n: 4 },
            Topology::Ring { n: 4 },
            Topology::Hypercube { dim: 2 },
            Topology::Sharded {
                shards: 2,
                inner: Box::new(Topology::Complete { n: 2 }),
            },
        ];
        for t in &topos {
            for policy in Policy::ALL {
                let _ = policy.build(ProcId(1), t, 7);
                assert!(!policy.name().is_empty());
            }
        }
    }

    #[test]
    fn sharded_gradient_penalizes_the_gateway_link() {
        // 2 shards × 2 (Complete inner): gateways are 0 and 2; processor 0
        // neighbours 1 (intra) and 2 (cross).
        let t = Topology::Sharded {
            shards: 2,
            inner: Box::new(Topology::Complete { n: 2 }),
        };
        let mut p = Policy::Gradient.build(ProcId(0), &t, 1);
        p.set_local_pressure(10);
        p.on_load(ProcId(1), 1);
        p.on_load(ProcId(2), 1);
        let pkt = splice_core::packet::TaskPacket {
            stamp: splice_core::stamp::LevelStamp::from_digits(&[1]),
            demand: splice_applicative::wave::Demand::new(
                splice_applicative::FnId(0),
                vec![splice_applicative::Value::Int(1)],
            ),
            parent: splice_core::packet::TaskLink::super_root(),
            ancestors: vec![],
            incarnation: 0,
            hops: 0,
            replica: None,
            under_replica: false,
        };
        // Equal advertisements: the cross-shard gateway neighbour loses.
        for _ in 0..3 {
            assert_eq!(
                p.place(&pkt, &splice_applicative::FxHashSet::default()),
                ProcId(1)
            );
        }
    }
}
