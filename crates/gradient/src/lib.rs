//! `splice-gradient` — dynamic task allocation for the applicative machine.
//!
//! §3.3 of the recovery paper makes dynamic allocation a prerequisite:
//! "the ability to recover by simply reissuing checkpointed tasks depends on
//! the availability of a dynamic allocation strategy, such as the gradient
//! model approach." This crate provides that substrate:
//!
//! * [`gradient`] — the gradient model itself (the paper's reference [10]):
//!   demand proximity propagation and hop-by-hop surplus migration;
//! * [`random`] — seeded uniform-random placement and a global
//!   least-loaded placer, the baselines for experiment E12 (round-robin
//!   lives in `splice-core::place`).
//!
//! All placers implement `splice_core::place::Placer` and are interchangeable
//! in both the simulator and the threaded runtime.

#![warn(missing_docs)]

pub mod gradient;
pub mod random;

pub use gradient::{GradientConfig, GradientPlacer, UNKNOWN_PROXIMITY};
pub use random::{LeastLoadedPlacer, RandomPlacer};

use splice_core::ids::ProcId;
use splice_core::place::{Placer, RoundRobinPlacer};
use splice_simnet::topology::Topology;

/// Placement policies by name, for experiment configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// The gradient model (default).
    Gradient,
    /// Seeded uniform random.
    Random,
    /// Round-robin over all processors.
    RoundRobin,
    /// Global least-loaded (beacon-driven).
    LeastLoaded,
}

impl Policy {
    /// All policies, for sweeps.
    pub const ALL: [Policy; 4] = [
        Policy::Gradient,
        Policy::Random,
        Policy::RoundRobin,
        Policy::LeastLoaded,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Gradient => "gradient",
            Policy::Random => "random",
            Policy::RoundRobin => "round-robin",
            Policy::LeastLoaded => "least-loaded",
        }
    }

    /// Builds the placer instance for processor `here` of `topology`.
    /// `seed` decorrelates stochastic placers across processors and runs.
    pub fn build(self, here: ProcId, topology: &Topology, seed: u64) -> Box<dyn Placer> {
        let n = topology.len();
        let all: Vec<ProcId> = (0..n).map(ProcId).collect();
        match self {
            Policy::Gradient => {
                let neighbors = topology.neighbors(here.0).into_iter().map(ProcId).collect();
                Box::new(GradientPlacer::new(
                    here,
                    neighbors,
                    GradientConfig::default(),
                ))
            }
            Policy::Random => Box::new(RandomPlacer::new(
                all,
                seed ^ (here.0 as u64).wrapping_mul(0x9E3779B97F4A7C15),
            )),
            Policy::RoundRobin => Box::new(RoundRobinPlacer::new(all)),
            Policy::LeastLoaded => Box::new(LeastLoadedPlacer::new(here, all)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_build_for_every_topology() {
        let topos = [
            Topology::Complete { n: 4 },
            Topology::Ring { n: 4 },
            Topology::Hypercube { dim: 2 },
        ];
        for t in &topos {
            for policy in Policy::ALL {
                let _ = policy.build(ProcId(1), t, 7);
                assert!(!policy.name().is_empty());
            }
        }
    }
}
