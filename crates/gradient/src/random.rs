//! Seeded uniform-random placement — the simplest dynamic allocator, used
//! as a baseline against the gradient model in experiment E12.

use rand::prelude::*;
use rand::rngs::StdRng;
use splice_applicative::FxHashSet;
use splice_core::ids::ProcId;
use splice_core::packet::TaskPacket;
use splice_core::place::Placer;
use std::sync::Arc;

/// Uniform-random placement over a fixed processor set. The roster is a
/// shared `Arc<[ProcId]>` — one placer per engine must not mean one roster
/// copy per engine.
pub struct RandomPlacer {
    procs: Arc<[ProcId]>,
    rng: StdRng,
}

impl RandomPlacer {
    /// Random placement over `procs`, deterministic per `seed`.
    pub fn new(procs: impl Into<Arc<[ProcId]>>, seed: u64) -> RandomPlacer {
        let procs = procs.into();
        assert!(!procs.is_empty());
        RandomPlacer {
            procs,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Placer for RandomPlacer {
    fn place(&mut self, _packet: &TaskPacket, avoid: &FxHashSet<ProcId>) -> ProcId {
        let live: Vec<ProcId> = self
            .procs
            .iter()
            .filter(|p| !avoid.contains(p))
            .copied()
            .collect();
        if live.is_empty() {
            return self.procs[0];
        }
        live[self.rng.gen_range(0..live.len())]
    }
}

/// Places on the least-loaded processor according to the latest beacons —
/// a "global view" allocator that is only realistic on small machines, but
/// a useful upper-bound baseline for load-balance quality.
pub struct LeastLoadedPlacer {
    here: ProcId,
    procs: Arc<[ProcId]>,
    loads: Vec<u32>,
    local: u32,
}

impl LeastLoadedPlacer {
    /// Least-loaded placement over `procs`. (The beacon-load table stays
    /// per-placer — it is this processor's view — so this placer is still
    /// O(n) memory per engine; it is only realistic on small machines.)
    pub fn new(here: ProcId, procs: impl Into<Arc<[ProcId]>>) -> LeastLoadedPlacer {
        let procs = procs.into();
        let n = procs.len();
        LeastLoadedPlacer {
            here,
            procs,
            loads: vec![0; n],
            local: 0,
        }
    }
}

impl Placer for LeastLoadedPlacer {
    fn place(&mut self, _packet: &TaskPacket, avoid: &FxHashSet<ProcId>) -> ProcId {
        let mut best: Option<(u32, ProcId)> = None;
        for (i, p) in self.procs.iter().enumerate() {
            if avoid.contains(p) {
                continue;
            }
            let load = if *p == self.here {
                self.local
            } else {
                self.loads[i]
            };
            best = match best {
                None => Some((load, *p)),
                Some((bl, bp)) => {
                    if load < bl {
                        Some((load, *p))
                    } else {
                        Some((bl, bp))
                    }
                }
            };
        }
        best.map(|(_, p)| p).unwrap_or(self.here)
    }

    fn on_load(&mut self, from: ProcId, pressure: u32) {
        if let Some(i) = self.procs.iter().position(|p| *p == from) {
            self.loads[i] = pressure;
        }
    }

    fn set_local_pressure(&mut self, pressure: u32) {
        self.local = pressure;
        if let Some(i) = self.procs.iter().position(|p| *p == self.here) {
            self.loads[i] = pressure;
        }
    }

    fn beacon_targets(&self) -> Vec<ProcId> {
        self.procs
            .iter()
            .filter(|p| **p != self.here)
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_applicative::wave::Demand;
    use splice_applicative::{FnId, Value};
    use splice_core::ids::{TaskAddr, TaskKey};
    use splice_core::packet::TaskLink;
    use splice_core::stamp::LevelStamp;

    fn pkt() -> TaskPacket {
        TaskPacket {
            stamp: LevelStamp::from_digits(&[1]),
            demand: Demand::new(FnId(0), vec![Value::Int(1)]),
            parent: TaskLink::new(TaskAddr::new(ProcId(0), TaskKey(0)), LevelStamp::root()),
            ancestors: vec![],
            incarnation: 0,
            hops: 0,
            replica: None,
            under_replica: false,
        }
    }

    #[test]
    fn random_is_seed_deterministic_and_avoids_dead() {
        let procs: Vec<ProcId> = (0..8).map(ProcId).collect();
        let mut a = RandomPlacer::new(procs.clone(), 42);
        let mut b = RandomPlacer::new(procs.clone(), 42);
        let dead: FxHashSet<ProcId> = [ProcId(3)].into_iter().collect();
        for _ in 0..100 {
            let pa = a.place(&pkt(), &dead);
            assert_eq!(pa, b.place(&pkt(), &dead));
            assert_ne!(pa, ProcId(3));
        }
    }

    #[test]
    fn random_covers_the_whole_set() {
        let procs: Vec<ProcId> = (0..4).map(ProcId).collect();
        let mut p = RandomPlacer::new(procs.clone(), 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(p.place(&pkt(), &FxHashSet::default()));
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn least_loaded_tracks_beacons() {
        let procs: Vec<ProcId> = (0..3).map(ProcId).collect();
        let mut p = LeastLoadedPlacer::new(ProcId(0), procs);
        p.set_local_pressure(5);
        p.on_load(ProcId(1), 2);
        p.on_load(ProcId(2), 7);
        assert_eq!(p.place(&pkt(), &FxHashSet::default()), ProcId(1));
        p.on_load(ProcId(1), 9);
        assert_eq!(p.place(&pkt(), &FxHashSet::default()), ProcId(0));
        let dead: FxHashSet<ProcId> = [ProcId(0), ProcId(1)].into_iter().collect();
        assert_eq!(p.place(&pkt(), &dead), ProcId(2));
    }

    #[test]
    fn least_loaded_beacons_exclude_self() {
        let procs: Vec<ProcId> = (0..3).map(ProcId).collect();
        let p = LeastLoadedPlacer::new(ProcId(1), procs);
        assert_eq!(p.beacon_targets(), vec![ProcId(0), ProcId(2)]);
    }
}
