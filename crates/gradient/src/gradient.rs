//! The gradient model (Lin & Keller, "Gradient model: a demand-driven load
//! balancing scheme", ICDCS 1986 — the paper's reference [10]).
//!
//! Each node advertises a *proximity*: its estimated hop distance to the
//! nearest under-loaded ("demanding") node. A demanding node advertises 0;
//! any other node advertises `1 + min(neighbour proximities)`. Surplus
//! tasks flow down the proximity gradient, hop by hop, until they reach a
//! demanding node — placement is fully local and demand-driven, which is
//! exactly the property §3.3 of the recovery paper relies on: recovery
//! reissues are placed like any other task, with no linkage bookkeeping.

use splice_applicative::{FxHashMap, FxHashSet};
use splice_core::ids::ProcId;
use splice_core::packet::TaskPacket;
use splice_core::place::Placer;

/// Proximity advertised when no demanding node is known anywhere.
pub const UNKNOWN_PROXIMITY: u32 = u32::MAX / 2;

/// Gradient-model configuration.
#[derive(Clone, Copy, Debug)]
pub struct GradientConfig {
    /// A node with pressure `<= idle_threshold` is *demanding* (advertises
    /// proximity 0 and keeps arriving work).
    pub idle_threshold: u32,
    /// A node with pressure `<= keep_threshold` executes its own spawns
    /// locally instead of exporting them.
    pub keep_threshold: u32,
    /// Extra proximity charged to neighbours reached through the
    /// inter-shard router: demand across the boundary looks this many hops
    /// further away, so surplus prefers intra-shard flow and only crosses
    /// the router when the imbalance is worth the latency. Irrelevant on
    /// flat topologies (no neighbour is marked cross-shard).
    pub cross_shard_penalty: u32,
}

impl Default for GradientConfig {
    fn default() -> Self {
        GradientConfig {
            idle_threshold: 1,
            keep_threshold: 2,
            cross_shard_penalty: 1,
        }
    }
}

/// One processor's gradient-model placer.
#[derive(Debug)]
pub struct GradientPlacer {
    here: ProcId,
    neighbors: Vec<ProcId>,
    /// Neighbours reached through the inter-shard router (empty on flat
    /// topologies): their advertised proximity is inflated by
    /// `config.cross_shard_penalty`.
    cross_shard: FxHashSet<ProcId>,
    config: GradientConfig,
    local_pressure: u32,
    neighbor_proximity: FxHashMap<ProcId, u32>,
    tie_rotor: usize,
}

impl GradientPlacer {
    /// Creates a placer for `here` with its direct `neighbors`, all
    /// intra-shard.
    pub fn new(here: ProcId, neighbors: Vec<ProcId>, config: GradientConfig) -> GradientPlacer {
        GradientPlacer::sharded(here, neighbors, FxHashSet::default(), config)
    }

    /// Creates a placer for `here` whose neighbours in `cross_shard` sit on
    /// the far side of the inter-shard router.
    pub fn sharded(
        here: ProcId,
        neighbors: Vec<ProcId>,
        cross_shard: FxHashSet<ProcId>,
        config: GradientConfig,
    ) -> GradientPlacer {
        GradientPlacer {
            here,
            neighbors,
            cross_shard,
            config,
            local_pressure: 0,
            neighbor_proximity: FxHashMap::default(),
            tie_rotor: 0,
        }
    }

    /// Proximity of neighbour `n` as seen from here: its advertised value
    /// plus the router penalty when `n` is in another shard.
    fn neighbor_cost(&self, n: &ProcId) -> u32 {
        let advertised = *self.neighbor_proximity.get(n).unwrap_or(&UNKNOWN_PROXIMITY);
        if self.cross_shard.contains(n) {
            advertised.saturating_add(self.config.cross_shard_penalty)
        } else {
            advertised
        }
    }

    /// This node's current proximity estimate.
    pub fn proximity(&self) -> u32 {
        if self.local_pressure <= self.config.idle_threshold {
            return 0;
        }
        self.neighbors
            .iter()
            .filter(|n| self.neighbor_proximity.contains_key(n))
            .map(|n| self.neighbor_cost(n))
            .min()
            .map(|m| m.saturating_add(1))
            .unwrap_or(UNKNOWN_PROXIMITY)
    }

    /// The live neighbour with the smallest penalty-adjusted proximity;
    /// ties are rotated so repeated exports spread across equally good
    /// directions.
    fn best_neighbor(&mut self, avoid: &FxHashSet<ProcId>) -> Option<ProcId> {
        let best = self
            .neighbors
            .iter()
            .filter(|n| !avoid.contains(n))
            .map(|n| (self.neighbor_cost(n), *n))
            .min_by_key(|(p, _)| *p)?;
        let candidates: Vec<ProcId> = self
            .neighbors
            .iter()
            .filter(|n| !avoid.contains(n))
            .filter(|n| self.neighbor_cost(n) == best.0)
            .copied()
            .collect();
        let pick = candidates[self.tie_rotor % candidates.len()];
        self.tie_rotor = self.tie_rotor.wrapping_add(1);
        Some(pick)
    }
}

impl Placer for GradientPlacer {
    fn place(&mut self, _packet: &TaskPacket, avoid: &FxHashSet<ProcId>) -> ProcId {
        if self.local_pressure <= self.config.keep_threshold {
            return self.here;
        }
        self.best_neighbor(avoid).unwrap_or(self.here)
    }

    fn route(&mut self, packet: &TaskPacket, avoid: &FxHashSet<ProcId>) -> Option<ProcId> {
        // Keep arriving work when demanding; otherwise push it further down
        // the gradient — but only if some neighbour actually looks closer to
        // demand than we are.
        if self.local_pressure <= self.config.keep_threshold || packet.hops == 0 {
            return None;
        }
        let my_proximity = self.proximity();
        let next = self.best_neighbor(avoid)?;
        let next_proximity = self.neighbor_cost(&next);
        if next_proximity < my_proximity {
            Some(next)
        } else {
            None
        }
    }

    fn on_load(&mut self, from: ProcId, pressure: u32) {
        // Beacons carry proximities, not raw queue lengths.
        self.neighbor_proximity.insert(from, pressure);
    }

    fn set_local_pressure(&mut self, pressure: u32) {
        self.local_pressure = pressure;
    }

    fn beacon_targets(&self) -> Vec<ProcId> {
        self.neighbors.clone()
    }

    fn beacon_value(&self, _local_pressure: u32) -> u32 {
        self.proximity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_applicative::wave::Demand;
    use splice_applicative::{FnId, Value};
    use splice_core::ids::{TaskAddr, TaskKey};
    use splice_core::packet::TaskLink;
    use splice_core::stamp::LevelStamp;

    fn pkt(hops: u32) -> TaskPacket {
        TaskPacket {
            stamp: LevelStamp::from_digits(&[1]),
            demand: Demand::new(FnId(0), vec![Value::Int(1)]),
            parent: TaskLink::new(TaskAddr::new(ProcId(0), TaskKey(0)), LevelStamp::root()),
            ancestors: vec![],
            incarnation: 0,
            hops,
            replica: None,
            under_replica: false,
        }
    }

    fn placer() -> GradientPlacer {
        GradientPlacer::new(
            ProcId(0),
            vec![ProcId(1), ProcId(2)],
            GradientConfig::default(),
        )
    }

    #[test]
    fn idle_node_advertises_zero() {
        let mut p = placer();
        p.set_local_pressure(0);
        assert_eq!(p.proximity(), 0);
        assert_eq!(p.beacon_value(0), 0);
    }

    #[test]
    fn busy_node_is_one_past_best_neighbor() {
        let mut p = placer();
        p.set_local_pressure(10);
        assert_eq!(p.proximity(), UNKNOWN_PROXIMITY, "no beacons yet");
        p.on_load(ProcId(1), 3);
        p.on_load(ProcId(2), 0);
        assert_eq!(p.proximity(), 1);
    }

    #[test]
    fn low_pressure_keeps_tasks_local() {
        let mut p = placer();
        p.set_local_pressure(1);
        assert_eq!(p.place(&pkt(0), &FxHashSet::default()), ProcId(0));
        assert_eq!(p.route(&pkt(3), &FxHashSet::default()), None);
    }

    #[test]
    fn surplus_flows_toward_demand() {
        let mut p = placer();
        p.set_local_pressure(10);
        p.on_load(ProcId(1), 4);
        p.on_load(ProcId(2), 0);
        assert_eq!(p.place(&pkt(0), &FxHashSet::default()), ProcId(2));
        // Routing forwards too, because neighbour 2 is strictly closer to
        // demand than we are.
        assert_eq!(p.route(&pkt(1), &FxHashSet::default()), Some(ProcId(2)));
    }

    #[test]
    fn dead_neighbors_are_avoided() {
        let mut p = placer();
        p.set_local_pressure(10);
        p.on_load(ProcId(1), 4);
        p.on_load(ProcId(2), 0);
        let dead: FxHashSet<ProcId> = [ProcId(2)].into_iter().collect();
        assert_eq!(p.place(&pkt(0), &dead), ProcId(1));
    }

    #[test]
    fn ties_rotate() {
        let mut p = placer();
        p.set_local_pressure(10);
        p.on_load(ProcId(1), 2);
        p.on_load(ProcId(2), 2);
        let a = p.place(&pkt(0), &FxHashSet::default());
        let b = p.place(&pkt(0), &FxHashSet::default());
        assert_ne!(a, b, "equal-proximity neighbours share the surplus");
    }

    #[test]
    fn cross_shard_neighbors_lose_ties_to_local_ones() {
        let cross: FxHashSet<ProcId> = [ProcId(2)].into_iter().collect();
        let mut p = GradientPlacer::sharded(
            ProcId(0),
            vec![ProcId(1), ProcId(2)],
            cross,
            GradientConfig::default(),
        );
        p.set_local_pressure(10);
        p.on_load(ProcId(1), 2);
        p.on_load(ProcId(2), 2);
        // Equal advertisements, but 2 sits behind the router: the penalty
        // breaks the tie toward the intra-shard neighbour, repeatedly.
        assert_eq!(p.place(&pkt(0), &FxHashSet::default()), ProcId(1));
        assert_eq!(p.place(&pkt(0), &FxHashSet::default()), ProcId(1));
    }

    #[test]
    fn strong_cross_shard_demand_still_wins() {
        let cross: FxHashSet<ProcId> = [ProcId(2)].into_iter().collect();
        let mut p = GradientPlacer::sharded(
            ProcId(0),
            vec![ProcId(1), ProcId(2)],
            cross,
            GradientConfig::default(),
        );
        p.set_local_pressure(10);
        p.on_load(ProcId(1), 4);
        p.on_load(ProcId(2), 0);
        // 0 + penalty(1) still beats 4: real imbalance crosses the router.
        assert_eq!(p.place(&pkt(0), &FxHashSet::default()), ProcId(2));
        // And the penalty feeds the advertised proximity: 1 + (0+1).
        assert_eq!(p.proximity(), 2);
    }

    #[test]
    fn penalty_redirects_routing_into_the_local_shard() {
        let cross: FxHashSet<ProcId> = [ProcId(2)].into_iter().collect();
        let mut p = GradientPlacer::sharded(
            ProcId(0),
            vec![ProcId(1), ProcId(2)],
            cross,
            GradientConfig {
                cross_shard_penalty: 3,
                ..GradientConfig::default()
            },
        );
        p.set_local_pressure(10);
        p.on_load(ProcId(1), 3);
        p.on_load(ProcId(2), 1);
        // Raw demand is across the router (1 < 3), but 1+3 ≥ 3: the
        // surplus stays in the shard.
        assert_eq!(p.route(&pkt(1), &FxHashSet::default()), Some(ProcId(1)));
    }

    #[test]
    fn fresh_spawns_are_never_bounced_by_route() {
        // hops == 0 means the sender just placed it here on purpose.
        let mut p = placer();
        p.set_local_pressure(50);
        p.on_load(ProcId(1), 0);
        assert_eq!(p.route(&pkt(0), &FxHashSet::default()), None);
    }

    #[test]
    fn beacon_targets_are_neighbors() {
        let p = placer();
        assert_eq!(p.beacon_targets(), vec![ProcId(1), ProcId(2)]);
    }
}
