//! Offline stand-in for `criterion`.
//!
//! Provides the configuration builder, `benchmark_group`/`bench_function`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, and the
//! `criterion_group!`/`criterion_main!` macros this workspace's benches
//! use. Measurement is a plain wall-clock loop: warm up for
//! `warm_up_time`, then time `sample_size` samples and print
//! min/median/mean per benchmark. No statistics, plots or baselines —
//! swap in real criterion (see `crates/shims/README.md`) for those.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup (accepted for API compatibility;
/// the shim runs one setup per timed invocation regardless).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Prevents the optimizer from discarding `value`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level bench configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            filter: None,
        }
    }
}

impl Criterion {
    /// Samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total sampling duration target.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Applies command-line arguments. The shim honours a single positional
    /// substring filter, real criterion's `--test` smoke mode (each
    /// benchmark executes one iteration with no warm-up — the CI guard
    /// against bench drift), and ignores other flags like `--bench`.
    pub fn configure_from_args(mut self) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        for a in args {
            if a == "--test" {
                self.sample_size = 1;
                self.warm_up_time = Duration::ZERO;
                self.measurement_time = Duration::ZERO;
            } else if !a.starts_with('-') && self.filter.is_none() {
                self.filter = Some(a);
            }
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks sharing the criterion configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark: `f` receives a [`Bencher`] and calls `iter`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            sample_size: self.criterion.sample_size,
            warm_up_time: self.criterion.warm_up_time,
            samples: Vec::new(),
        };
        f(&mut b);
        report(&full, &b.samples);
        self
    }

    /// Closes the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs and times the hot loop.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, called once per sample after a warm-up phase.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_until = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_until {
            black_box(routine());
        }
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_until = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_until {
            let input = setup();
            black_box(routine(input));
        }
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<44} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!("{id:<44} min {min:>10.2?}   median {median:>10.2?}   mean {mean:>10.2?}");
}

/// Declares a bench group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_filters() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(0))
            .measurement_time(Duration::from_millis(1));
        c.filter = Some("keep".into());
        let mut ran = 0u32;
        let mut g = c.benchmark_group("g");
        g.bench_function("keep_this", |b| b.iter(|| ran += 1));
        g.bench_function("skip_this", |b| b.iter(|| ran += 1_000_000));
        g.finish();
        assert!(
            (3..1_000_000).contains(&ran),
            "filter skipped the second: {ran}"
        );
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(0));
        let mut g = c.benchmark_group("g");
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
