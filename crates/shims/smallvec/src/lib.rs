//! Offline stand-in for `smallvec`.
//!
//! A vector with inline storage for the first `N` elements that spills to
//! an ordinary `Vec` when it grows past them. The API is the subset this
//! workspace uses (`push`/`pop`/`clear`/`drain`/`iter`/indexing); the
//! generic parameter is a const capacity (`SmallVec<T, 8>`) rather than
//! real smallvec's array type (`SmallVec<[T; 8]>`).
//!
//! Unlike the crates.io implementation the inline slots are `Option<T>`,
//! trading a little space for a fully safe implementation (this workspace
//! denies `unsafe_code`). Once spilled, a vector stays on the heap so a
//! long-lived, reused buffer keeps its capacity and stops allocating.

/// A vector storing up to `N` elements inline before spilling to the heap.
#[derive(Clone)]
pub struct SmallVec<T, const N: usize> {
    inline: [Option<T>; N],
    inline_len: usize,
    heap: Vec<T>,
    spilled: bool,
}

impl<T, const N: usize> SmallVec<T, N> {
    /// An empty vector (no heap allocation).
    pub fn new() -> SmallVec<T, N> {
        SmallVec {
            inline: std::array::from_fn(|_| None),
            inline_len: 0,
            heap: Vec::new(),
            spilled: false,
        }
    }

    /// Number of live elements.
    pub fn len(&self) -> usize {
        if self.spilled {
            self.heap.len()
        } else {
            self.inline_len
        }
    }

    /// True when no elements are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once the vector has moved to heap storage. It never moves
    /// back (a reusable buffer keeps its capacity).
    pub fn spilled(&self) -> bool {
        self.spilled
    }

    /// The inline capacity `N`.
    pub fn inline_capacity(&self) -> usize {
        N
    }

    /// Appends an element.
    pub fn push(&mut self, value: T) {
        if self.spilled {
            self.heap.push(value);
            return;
        }
        if self.inline_len < N {
            self.inline[self.inline_len] = Some(value);
            self.inline_len += 1;
            return;
        }
        self.spill();
        self.heap.push(value);
    }

    /// Removes and returns the last element.
    pub fn pop(&mut self) -> Option<T> {
        if self.spilled {
            return self.heap.pop();
        }
        if self.inline_len == 0 {
            return None;
        }
        self.inline_len -= 1;
        self.inline[self.inline_len].take()
    }

    /// Drops every element, keeping heap capacity if spilled.
    pub fn clear(&mut self) {
        if self.spilled {
            self.heap.clear();
        } else {
            for slot in &mut self.inline[..self.inline_len] {
                *slot = None;
            }
            self.inline_len = 0;
        }
    }

    /// The element at `index`, if live.
    pub fn get(&self, index: usize) -> Option<&T> {
        if self.spilled {
            self.heap.get(index)
        } else if index < self.inline_len {
            self.inline[index].as_ref()
        } else {
            None
        }
    }

    /// The element at `index`, mutably.
    pub fn get_mut(&mut self, index: usize) -> Option<&mut T> {
        if self.spilled {
            self.heap.get_mut(index)
        } else if index < self.inline_len {
            self.inline[index].as_mut()
        } else {
            None
        }
    }

    /// The last element, if any.
    pub fn last(&self) -> Option<&T> {
        self.len().checked_sub(1).and_then(|i| self.get(i))
    }

    /// Iterates the live elements in order.
    pub fn iter(&self) -> Iter<'_, T, N> {
        Iter { vec: self, next: 0 }
    }

    /// Removes every element, yielding them front to back. Elements not
    /// consumed by the iterator are dropped when it is.
    pub fn drain(&mut self) -> Drain<'_, T, N> {
        if self.spilled {
            Drain::Heap(self.heap.drain(..))
        } else {
            let len = self.inline_len;
            self.inline_len = 0;
            Drain::Inline {
                slots: &mut self.inline,
                len,
                next: 0,
            }
        }
    }

    /// Copies the elements into a plain `Vec` without draining.
    pub fn to_vec(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.iter().cloned().collect()
    }

    fn spill(&mut self) {
        debug_assert!(!self.spilled);
        self.heap.reserve(N + 1);
        for slot in &mut self.inline[..self.inline_len] {
            self.heap.push(slot.take().expect("live inline slot"));
        }
        self.inline_len = 0;
        self.spilled = true;
    }
}

impl<T, const N: usize> Default for SmallVec<T, N> {
    fn default() -> SmallVec<T, N> {
        SmallVec::new()
    }
}

impl<T: std::fmt::Debug, const N: usize> std::fmt::Debug for SmallVec<T, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: PartialEq, const N: usize> PartialEq for SmallVec<T, N> {
    fn eq(&self, other: &SmallVec<T, N>) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<T: Eq, const N: usize> Eq for SmallVec<T, N> {}

impl<T, const N: usize> std::ops::Index<usize> for SmallVec<T, N> {
    type Output = T;
    fn index(&self, index: usize) -> &T {
        self.get(index).expect("index out of bounds")
    }
}

impl<T, const N: usize> Extend<T> for SmallVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl<T, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> SmallVec<T, N> {
        let mut v = SmallVec::new();
        v.extend(iter);
        v
    }
}

/// Borrowing iterator over a [`SmallVec`].
pub struct Iter<'a, T, const N: usize> {
    vec: &'a SmallVec<T, N>,
    next: usize,
}

impl<'a, T, const N: usize> Iterator for Iter<'a, T, N> {
    type Item = &'a T;
    fn next(&mut self) -> Option<&'a T> {
        let item = self.vec.get(self.next)?;
        self.next += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.vec.len().saturating_sub(self.next);
        (left, Some(left))
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a SmallVec<T, N> {
    type Item = &'a T;
    type IntoIter = Iter<'a, T, N>;
    fn into_iter(self) -> Iter<'a, T, N> {
        self.iter()
    }
}

/// Draining iterator over a [`SmallVec`]: yields elements by value, front
/// to back, and leaves the vector empty (dropping anything unconsumed).
pub enum Drain<'a, T, const N: usize> {
    /// Draining the inline slots; the vector's length was already reset.
    Inline {
        /// The inline storage being emptied.
        slots: &'a mut [Option<T>; N],
        /// Live slots at drain start.
        len: usize,
        /// Next slot to take.
        next: usize,
    },
    /// Draining spilled heap storage (capacity is kept).
    Heap(std::vec::Drain<'a, T>),
}

impl<T, const N: usize> Iterator for Drain<'_, T, N> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        match self {
            Drain::Inline { slots, len, next } => {
                if *next < *len {
                    let item = slots[*next].take();
                    *next += 1;
                    item
                } else {
                    None
                }
            }
            Drain::Heap(d) => d.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = match self {
            Drain::Inline { len, next, .. } => len.saturating_sub(*next),
            Drain::Heap(d) => d.size_hint().0,
        };
        (left, Some(left))
    }
}

impl<T, const N: usize> Drop for Drain<'_, T, N> {
    fn drop(&mut self) {
        if let Drain::Inline { slots, len, next } = self {
            for slot in &mut slots[*next..*len] {
                *slot = None;
            }
        }
        // The heap variant's inner `vec::Drain` clears the remainder itself.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_below_capacity() {
        let mut v: SmallVec<u32, 4> = SmallVec::new();
        for i in 0..4 {
            v.push(i);
        }
        assert!(!v.spilled());
        assert_eq!(v.len(), 4);
        assert_eq!(v[2], 2);
        assert_eq!(v.last(), Some(&3));
        assert_eq!(v.pop(), Some(3));
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn spills_past_capacity_and_stays_spilled() {
        let mut v: SmallVec<u32, 2> = SmallVec::new();
        for i in 0..5 {
            v.push(i);
        }
        assert!(v.spilled());
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        v.clear();
        assert!(v.is_empty());
        assert!(v.spilled(), "capacity kept after clear");
        v.push(9);
        assert_eq!(v.to_vec(), vec![9]);
    }

    #[test]
    fn drain_yields_in_order_and_empties() {
        for n in [2usize, 7] {
            let mut v: SmallVec<String, 4> = SmallVec::new();
            for i in 0..n {
                v.push(format!("x{i}"));
            }
            let drained: Vec<String> = v.drain().collect();
            assert_eq!(drained, (0..n).map(|i| format!("x{i}")).collect::<Vec<_>>());
            assert!(v.is_empty());
            v.push("again".to_string());
            assert_eq!(v.len(), 1);
        }
    }

    #[test]
    fn partially_consumed_drain_drops_the_rest() {
        let mut v: SmallVec<u32, 4> = SmallVec::new();
        v.extend([1, 2, 3]);
        {
            let mut d = v.drain();
            assert_eq!(d.next(), Some(1));
        }
        assert!(v.is_empty());
    }

    #[test]
    fn from_iterator_and_eq() {
        let a: SmallVec<u32, 4> = (0..3).collect();
        let b: SmallVec<u32, 4> = (0..3).collect();
        let c: SmallVec<u32, 4> = (0..6).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(format!("{a:?}"), "[0, 1, 2]");
    }
}
