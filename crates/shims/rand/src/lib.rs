//! Offline stand-in for `rand` 0.8.
//!
//! Implements exactly the surface this workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer ranges, and
//! `SliceRandom::shuffle` — over a splitmix64 generator. Seed-deterministic,
//! but the stream differs from upstream `rand`; nothing in the workspace
//! depends on specific drawn values, only on per-seed determinism.

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `seed`; equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling over a range, `rand`-style: `rng.gen_range(0..n)`.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open, must be non-empty).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range over empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range over empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range over empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (self.end - self.start) * unit
    }
}

/// In-place shuffling of slices.
pub trait SliceRandom {
    /// Fisher–Yates shuffle driven by `rng`.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seedable generator (splitmix64 under this shim).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele et al.): passes BigCrush, one u64 of state.
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

/// The common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed_and_in_range() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let mut c = StdRng::seed_from_u64(10);
        let mut differs = false;
        for _ in 0..64 {
            let x = a.gen_range(5u64..55);
            assert_eq!(x, b.gen_range(5u64..55));
            assert!((5..55).contains(&x));
            differs |= x != c.gen_range(5u64..55);
        }
        assert!(differs, "different seeds give different streams");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements virtually never stay in place");
    }

    #[test]
    fn float_range_stays_inside() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&x));
        }
    }

    #[test]
    fn signed_ranges() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let x = rng.gen_range(-20i64..20);
            assert!((-20..20).contains(&x));
        }
    }
}
