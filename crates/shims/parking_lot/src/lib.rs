//! Offline stand-in for `parking_lot`: a `Mutex` whose `lock()` returns the
//! guard directly (no poison `Result`), matching the parking_lot API this
//! workspace uses. Backed by `std::sync::Mutex`; a poisoned lock is
//! re-entered transparently, mirroring parking_lot's no-poisoning design.

use std::sync::Mutex as StdMutex;

pub use std::sync::MutexGuard;

/// A mutual-exclusion primitive with parking_lot's panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_is_exclusive_and_guard_derefs() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
