//! Offline stand-in for `proptest`.
//!
//! Supports the surface this workspace's property tests use: the
//! `proptest!` macro with `#![proptest_config(...)]`, integer and float
//! range strategies, `any::<T>()` for primitives, and
//! `prop_assert!`/`prop_assert_eq!`. Sampling is deterministic per test
//! name (no failure persistence files, no shrinking): a failing case
//! reproduces on every run, and the first executed case of each strategy
//! is its range minimum, preserving proptest's minimal-input habit of
//! exercising boundaries.

use std::ops::Range;

/// Test-runner plumbing: the deterministic RNG behind every strategy.
pub mod test_runner {
    /// splitmix64 stream keyed by the test's name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is a pure function of `name`.
        pub fn from_name(name: &str) -> TestRng {
            // FNV-1a over the test name: stable across runs and platforms.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// Next word of the stream.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use super::Range;

    /// Something that can produce values for a property test.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws the sample for case number `case` (case 0 must be the
        /// strategy's minimal value).
        fn sample(&self, case: u32, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, case: u32, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy over empty range");
                    if case == 0 {
                        return self.start;
                    }
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, case: u32, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "strategy over empty range");
            if case == 0 {
                return self.start;
            }
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + (self.end - self.start) * unit
        }
    }

    /// The `any::<T>()` strategy: the type's full value space.
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl Strategy for Any<u64> {
        type Value = u64;
        fn sample(&self, case: u32, rng: &mut TestRng) -> u64 {
            if case == 0 {
                0
            } else {
                rng.next_u64()
            }
        }
    }

    impl Strategy for Any<u32> {
        type Value = u32;
        fn sample(&self, case: u32, rng: &mut TestRng) -> u32 {
            if case == 0 {
                0
            } else {
                rng.next_u64() as u32
            }
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, case: u32, rng: &mut TestRng) -> bool {
            case != 0 && rng.next_u64() & 1 == 1
        }
    }
}

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Generates full values of a type (see [`strategy::Any`]).
pub fn any<T>() -> strategy::Any<T>
where
    strategy::Any<T>: strategy::Strategy,
{
    strategy::Any(std::marker::PhantomData)
}

/// Asserts inside a property body; failure reports the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The `proptest!` block: declares property tests whose arguments are
/// drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), case, &mut rng);)*
                let described = || {
                    let mut s = String::new();
                    $(s.push_str(&format!("{} = {:?}, ", stringify!($arg), $arg));)*
                    s
                };
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest case {case} of `{}` failed with inputs: {}",
                        stringify!($name),
                        described()
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 3i64..10, b in 0usize..5, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b < 5);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn any_samples_compile(x in any::<u64>(), flag in any::<bool>()) {
            prop_assert_eq!(x ^ x, 0);
            prop_assert_ne!(flag, !flag);
        }
    }

    #[test]
    fn first_case_is_range_minimum() {
        let mut rng = crate::test_runner::TestRng::from_name("t");
        let v = Strategy::sample(&(7i64..9), 0, &mut rng);
        assert_eq!(v, 7);
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("same");
        let mut b = crate::test_runner::TestRng::from_name("same");
        for case in 0..16 {
            assert_eq!(
                Strategy::sample(&(0u64..1000), case, &mut a),
                Strategy::sample(&(0u64..1000), case, &mut b)
            );
        }
    }
}
