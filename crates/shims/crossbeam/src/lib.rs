//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`
//! (whose `Sender` is `Sync` since Rust 1.72, which is all the threaded
//! runtime needs from crossbeam). See `crates/shims/README.md`.

/// Multi-producer channels with the `crossbeam-channel` API surface used
/// by this workspace: `unbounded`, `bounded`, `send`, `try_send`, `recv`,
/// `try_recv`, `recv_timeout`.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError, TrySendError};

    /// The two std flavours behind the one crossbeam `Sender` type
    /// (crossbeam uses a single sender for bounded and unbounded channels;
    /// std splits them into `Sender`/`SyncSender`).
    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    /// The sending half of a channel.
    pub struct Sender<T>(Tx<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                Tx::Unbounded(tx) => Tx::Unbounded(tx.clone()),
                Tx::Bounded(tx) => Tx::Bounded(tx.clone()),
            })
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`; on a bounded channel this blocks while the
        /// buffer is full. Fails only if all receivers dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Tx::Unbounded(tx) => tx.send(value),
                Tx::Bounded(tx) => tx.send(value),
            }
        }

        /// Non-blocking send: on a full bounded channel this returns
        /// [`TrySendError::Full`] instead of blocking; an unbounded
        /// channel is never full.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.0 {
                Tx::Unbounded(tx) => tx
                    .send(value)
                    .map_err(|mpsc::SendError(v)| TrySendError::Disconnected(v)),
                Tx::Bounded(tx) => tx.try_send(value),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocking receive with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Tx::Unbounded(tx)), Receiver(rx))
    }

    /// Creates a bounded channel holding at most `cap` in-flight values;
    /// `send` blocks while the buffer is full (the parallel reactor's
    /// inter-reactor links rely on this backpressure bound).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Tx::Bounded(tx)), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(7).unwrap());
            assert_eq!(rx.recv().unwrap(), 7);
            drop(tx);
            assert!(matches!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            ));
        }

        #[test]
        fn bounded_preserves_fifo_and_reports_full() {
            let (tx, rx) = bounded::<u32>(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert_eq!(rx.try_recv().unwrap(), 1);
            tx.send(3).unwrap();
            assert_eq!(rx.recv().unwrap(), 2);
            assert_eq!(rx.recv().unwrap(), 3);
            assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
        }

        #[test]
        fn bounded_send_blocks_until_a_slot_frees() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).unwrap();
            let h = std::thread::spawn(move || tx.send(2).unwrap());
            std::thread::sleep(Duration::from_millis(5));
            assert_eq!(rx.recv().unwrap(), 1, "first value still queued");
            assert_eq!(rx.recv().unwrap(), 2, "blocked send completed");
            h.join().unwrap();
        }

        #[test]
        fn bounded_clone_shares_the_buffer() {
            let (tx, rx) = bounded::<u32>(2);
            let tx2 = tx.clone();
            tx.try_send(1).unwrap();
            tx2.try_send(2).unwrap();
            assert!(matches!(tx.try_send(9), Err(TrySendError::Full(9))));
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            drop(tx);
            drop(tx2);
            assert!(matches!(rx.recv(), Err(RecvError)));
        }
    }
}
