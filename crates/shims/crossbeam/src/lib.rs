//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`
//! (whose `Sender` is `Sync` since Rust 1.72, which is all the threaded
//! runtime needs from crossbeam). See `crates/shims/README.md`.

/// Multi-producer channels with the `crossbeam-channel` API surface used
/// by this workspace: `unbounded`, `send`, `recv`, `try_recv`,
/// `recv_timeout`.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, failing only if all receivers dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocking receive with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(7).unwrap());
            assert_eq!(rx.recv().unwrap(), 7);
            drop(tx);
            assert!(matches!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            ));
        }
    }
}
