//! `splice-core` — functional checkpointing and distributed recovery for
//! applicative systems.
//!
//! This crate is the reproduction of the primary contribution of
//! *Lin & Keller, "Distributed Recovery in Applicative Systems", ICPP 1986*:
//!
//! * [`stamp`] — level stamps (§3.1), the genealogical identifiers that
//!   make ancestor/descendant relations observable without synchronization;
//! * [`packet`] — task packets (the functional checkpoints themselves),
//!   result packets, salvage packets and the complete wire vocabulary;
//! * [`checkpoint`] — the per-destination checkpoint table with the §3.2
//!   topmost rule;
//! * [`engine`] — the sans-IO processor protocol loop of §4.2, implementing
//!   both rollback recovery (§3) and splice recovery (§4) plus replicated
//!   tasks with majority voting (§5.3) and k-level ancestor chains (§5.2);
//! * [`superroot`] — the pre-evaluation checkpoint of the root (§4.3.1);
//! * [`place`] — the dynamic-allocation interface (§3.3) the engine
//!   delegates placement to (the gradient model lives in `splice-gradient`);
//! * [`replicate`] — majority voting over replica results;
//! * [`config`], [`stats`], [`task`], [`ids`] — supporting vocabulary.
//!
//! The engine runs identically under the deterministic discrete-event
//! simulator (`splice-sim`) and the threaded runtime (`splice-runtime`);
//! every protocol decision lives here, and drivers only move messages and
//! time.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod config;
pub mod engine;
pub mod ids;
pub mod packet;
pub mod place;
pub mod policy;
pub mod replicate;
pub mod sink;
pub mod stamp;
pub mod stats;
pub mod superroot;
pub mod task;

pub use config::{CheckpointFilter, Config, RecoveryMode, ReplicaSpec, VoteMode};
pub use engine::{Action, Engine, Timer};
pub use ids::{ProcId, TaskAddr, TaskKey};
pub use packet::{CkptPacket, Msg, MsgKind, ResultPacket, SalvagePacket, TaskLink, TaskPacket};
pub use place::Placer;
pub use policy::{PersistenceTier, PolicyKind, PolicySpec, RecoveryPolicy};
pub use sink::ActionSink;
pub use stamp::LevelStamp;
pub use stats::ProcStats;
pub use superroot::SuperRoot;
