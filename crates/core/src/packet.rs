//! Task packets, result packets and the wire-message vocabulary.
//!
//! "A task packet is formed for the new function and then waits for
//! execution. The packet contains all necessary information, either directly
//! or indirectly accessible, to activate the child task." (§2.1)
//!
//! The same [`TaskPacket`] value is what the parent retains as the child's
//! *functional checkpoint*; reissuing the packet — in the rollback or the
//! splice algorithm — is recovery.

use crate::ids::{ProcId, TaskAddr};
use crate::stamp::LevelStamp;
use splice_applicative::wave::Demand;
use splice_applicative::Value;
use std::fmt;

/// A link to a task elsewhere: its address plus its level stamp.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskLink {
    /// Where the task lives (at the time the link was made).
    pub addr: TaskAddr,
    /// The task's level stamp.
    pub stamp: LevelStamp,
}

impl TaskLink {
    /// Creates a link.
    pub fn new(addr: TaskAddr, stamp: LevelStamp) -> TaskLink {
        TaskLink { addr, stamp }
    }

    /// The super-root link (parent of the root task, §4.3.1).
    pub fn super_root() -> TaskLink {
        TaskLink {
            addr: TaskAddr::super_root(),
            stamp: LevelStamp::root(),
        }
    }

    /// Abstract wire size of the link: the address (2 units) plus the
    /// stamp digits it carries.
    pub fn size(&self) -> usize {
        2 + self.stamp.level()
    }
}

/// Replication marker carried by replica task packets (§5.3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplicaInfo {
    /// Index of this replica within its group (0-based).
    pub index: u32,
    /// Total group size.
    pub total: u32,
}

/// A task packet: the complete, self-contained description of one function
/// application, plus the genealogical links recovery needs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskPacket {
    /// The task's level stamp (§3.1).
    pub stamp: LevelStamp,
    /// The application itself: combinator and evaluated arguments.
    pub demand: Demand,
    /// The spawning parent task. Results return here.
    pub parent: TaskLink,
    /// Ancestors beyond the parent, nearest first: `ancestors[0]` is the
    /// grandparent (§4.1), `ancestors[1]` the great-grandparent (§5.2
    /// extension), and so on, truncated to the configured ancestor depth.
    pub ancestors: Vec<TaskLink>,
    /// Incarnation counter: 0 for the original spawn, incremented each time
    /// the packet is reissued by a recovery action or timeout. Recovery
    /// semantics never branch on this; it exists for tracing and metrics.
    pub incarnation: u32,
    /// Number of placement hops taken so far (gradient routing).
    pub hops: u32,
    /// Present on replica packets (§5.3).
    pub replica: Option<ReplicaInfo>,
    /// True for every task in the subtree of a replica: the whole critical
    /// section executes once per replica, and nothing inside it is
    /// re-replicated (that would compound exponentially).
    pub under_replica: bool,
}

impl TaskPacket {
    /// Abstract size of the packet (argument payload plus link overhead) for
    /// cost models and checkpoint-storage accounting. Every genealogical
    /// link is charged at its true size ([`TaskLink::size`]: address plus
    /// stamp digits) — the ancestor chain is not flat-rated, so E8's
    /// overhead numbers track what recovery metadata actually costs.
    pub fn size(&self) -> usize {
        let args: usize = self.demand.args.iter().map(Value::size).sum();
        let links: usize = self.ancestors.iter().map(TaskLink::size).sum();
        args + self.stamp.level() + 2 + self.parent.size() + links
    }

    /// A copy prepared for reissue: same stamp and demand, bumped
    /// incarnation, reset hops.
    pub fn reissue(&self) -> TaskPacket {
        let mut p = self.clone();
        p.incarnation += 1;
        p.hops = 0;
        p
    }
}

/// A result packet, returned from a completed task to its parent — or, when
/// the parent's processor is dead, relayed towards an ancestor (splice,
/// §4.1–4.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResultPacket {
    /// Stamp of the completed task.
    pub from_stamp: LevelStamp,
    /// The demand this result satisfies (the parent keys its call cache by
    /// demand, so the result is self-describing).
    pub demand: Demand,
    /// The computed value.
    pub value: Value,
    /// The task this packet is addressed to.
    pub to: TaskAddr,
    /// Stamp of the task `to` is expected to have (the parent, in the
    /// normal case). Used to classify arrivals as child / grandchild /
    /// other, per the §4.2 `forward result` rule.
    pub to_stamp: LevelStamp,
    /// Remaining ancestor links to try if `to` is unreachable, nearest
    /// first. A fresh result carries the completed task's ancestor chain;
    /// each relay hop consumes one link.
    pub relay_chain: Vec<TaskLink>,
    /// Replica index when this is a replica's vote (§5.3).
    pub replica: Option<ReplicaInfo>,
}

/// A salvaged result being routed *down* a regenerated spine towards the
/// twin task that will consume it (splice recovery).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SalvagePacket {
    /// The task this packet is currently addressed to.
    pub to: TaskAddr,
    /// Stamp of the dead task whose twin should consume the result. The
    /// receiving task either *is* the twin (stamps equal) or forwards the
    /// packet towards its child on the path to `dead_stamp`.
    pub dead_stamp: LevelStamp,
    /// Address of the dead instance the orphan tried to reach. "Processor C
    /// receives these unexpected partial answers from grandchildren and
    /// asserts that the parent of these grandchildren is faulty" (§4.1):
    /// an ancestor still pointing at exactly this instance declares its
    /// processor dead and regenerates the twin.
    pub dead_addr: TaskAddr,
    /// The demand the orphan satisfied.
    pub demand: Demand,
    /// The orphan's value.
    pub value: Value,
    /// Stamp of the orphan task that produced the value (for tracing).
    pub from_stamp: LevelStamp,
}

/// An incremental re-checkpoint (the `MultiCheckpoint` recovery policy):
/// a long-lived task streams its completed children's results back to its
/// own checkpoint owner, which appends them to the stored checkpoint as
/// preload entries. A reissued twin is handed those entries up front and
/// replays strictly fewer waves. Never sent when
/// `Config::policy.recheckpoint_every == 0` (the default), so the paper's
/// eager scheme stays bit-identical.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CkptPacket {
    /// The task that *owns* the sender's checkpoint — the sender's parent.
    pub owner: TaskAddr,
    /// Stamp of the reporting task (the checkpoint entry's key under its
    /// owner).
    pub from_stamp: LevelStamp,
    /// Completed child results accumulated since the last re-checkpoint:
    /// the demand each satisfied and the value computed.
    pub entries: Vec<(Demand, Value)>,
}

impl CkptPacket {
    /// Abstract wire size: stamp digits plus header plus each entry's
    /// value payload.
    pub fn size(&self) -> usize {
        let vals: usize = self.entries.iter().map(|(_, v)| v.size()).sum();
        2 + self.from_stamp.level() + vals
    }
}

/// Placement acknowledgement payload (Figure 6, state c: "task G receives
/// an acknowledge from P and establishes a parent-to-child pointer").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AckInfo {
    /// The spawned child's stamp.
    pub child_stamp: LevelStamp,
    /// Where it landed.
    pub child_addr: TaskAddr,
    /// The parent task being acknowledged.
    pub parent: TaskAddr,
    /// Incarnation of the acknowledged packet.
    pub incarnation: u32,
}

/// Messages exchanged between processors.
///
/// This enum is the complete wire vocabulary of the recovery protocol; both
/// the discrete-event simulator and the threaded runtime transport exactly
/// these values.
///
/// `Msg` values move *by value* through every substrate hop — into the
/// simulator's event queue, out again, through the shard router, across
/// runtime channels. The fat payloads (task packets, results, salvages,
/// acks) are therefore boxed so the enum itself stays three words wide
/// (`size_of::<Msg>() ≤ 24`, pinned by a test); only payload-free control
/// variants are held inline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Msg {
    /// A task packet seeking a processor. May be forwarded several hops by
    /// the placer before an `Ack` pins it down (Figure 6, states b/d).
    Spawn(Box<TaskPacket>),
    /// Placement acknowledgement: the child landed at `child_addr`.
    Ack(Box<AckInfo>),
    /// A completed task's result.
    Result(Box<ResultPacket>),
    /// A salvaged orphan result being routed to its consumer.
    Salvage(Box<SalvagePacket>),
    /// Abort a task and, transitively, its descendants (rollback mode:
    /// orphans "commit suicide" and are garbage collected).
    Abort {
        /// The task to abort.
        to: TaskAddr,
    },
    /// Load/pressure beacon for the dynamic allocator (gradient model).
    Load {
        /// Reporting processor.
        from: ProcId,
        /// Its current pressure (queue length).
        pressure: u32,
    },
    /// Failure notification: `dead` has been identified as faulty, either by
    /// the detector substrate or by gossip.
    FailureNotice {
        /// The failed processor.
        dead: ProcId,
    },
    /// Liveness probe: a parent polling the host of an acked child whose
    /// result is overdue (`Config::probe_acked`). Carries no payload — a
    /// live recipient ignores it; a dead one bounces it, and the bounce
    /// is the detection.
    Probe,
    /// Incremental re-checkpoint entries (`MultiCheckpoint` policy): a
    /// task streaming completed child results back to its checkpoint
    /// owner.
    Ckpt(Box<CkptPacket>),
}

impl Msg {
    /// Wraps a task packet (boxing the payload).
    pub fn spawn(p: TaskPacket) -> Msg {
        Msg::Spawn(Box::new(p))
    }

    /// Builds a placement acknowledgement.
    pub fn ack(
        child_stamp: LevelStamp,
        child_addr: TaskAddr,
        parent: TaskAddr,
        incarnation: u32,
    ) -> Msg {
        Msg::Ack(Box::new(AckInfo {
            child_stamp,
            child_addr,
            parent,
            incarnation,
        }))
    }

    /// Wraps a result packet (boxing the payload).
    pub fn result(r: ResultPacket) -> Msg {
        Msg::Result(Box::new(r))
    }

    /// Wraps a salvage packet (boxing the payload).
    pub fn salvage(s: SalvagePacket) -> Msg {
        Msg::Salvage(Box::new(s))
    }

    /// Wraps a re-checkpoint packet (boxing the payload).
    pub fn ckpt(c: CkptPacket) -> Msg {
        Msg::Ckpt(Box::new(c))
    }

    /// Coarse message class for statistics.
    pub fn kind(&self) -> MsgKind {
        match self {
            Msg::Spawn(_) => MsgKind::Spawn,
            Msg::Ack { .. } => MsgKind::Ack,
            Msg::Result(_) => MsgKind::Result,
            Msg::Salvage(_) => MsgKind::Salvage,
            Msg::Abort { .. } => MsgKind::Abort,
            Msg::Load { .. } => MsgKind::Load,
            Msg::FailureNotice { .. } => MsgKind::FailureNotice,
            Msg::Probe => MsgKind::Probe,
            Msg::Ckpt(_) => MsgKind::Ckpt,
        }
    }

    /// Abstract payload size for link cost models. Like
    /// [`TaskPacket::size`], the recovery metadata a message carries is
    /// charged at true size: an ack carries its child stamp, a salvage its
    /// dead-stamp routing key, and a result its remaining relay links — an
    /// orphan result dragging a long relay chain costs more wire than a
    /// fresh one, which is exactly the overhead E8 measures. (`from_stamp`
    /// fields are tracing metadata and stay inside the flat header
    /// constant.)
    pub fn size(&self) -> usize {
        match self {
            Msg::Spawn(p) => p.size(),
            Msg::Ack(a) => 2 + a.child_stamp.level(),
            Msg::Result(r) => {
                let relay: usize = r.relay_chain.iter().map(TaskLink::size).sum();
                r.value.size() + 4 + relay
            }
            Msg::Salvage(s) => s.value.size() + 4 + s.dead_stamp.level(),
            Msg::Abort { .. } => 1,
            Msg::Load { .. } => 1,
            Msg::FailureNotice { .. } => 1,
            Msg::Probe => 1,
            Msg::Ckpt(c) => c.size(),
        }
    }
}

/// Message classes, used as statistic keys.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum MsgKind {
    Spawn,
    Ack,
    Result,
    Salvage,
    Abort,
    Load,
    FailureNotice,
    Probe,
    Ckpt,
}

impl MsgKind {
    /// All message kinds, for iteration in reports.
    pub const ALL: [MsgKind; 9] = [
        MsgKind::Spawn,
        MsgKind::Ack,
        MsgKind::Result,
        MsgKind::Salvage,
        MsgKind::Abort,
        MsgKind::Load,
        MsgKind::FailureNotice,
        MsgKind::Probe,
        MsgKind::Ckpt,
    ];
}

impl fmt::Display for MsgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MsgKind::Spawn => "spawn",
            MsgKind::Ack => "ack",
            MsgKind::Result => "result",
            MsgKind::Salvage => "salvage",
            MsgKind::Abort => "abort",
            MsgKind::Load => "load",
            MsgKind::FailureNotice => "failure-notice",
            MsgKind::Probe => "probe",
            MsgKind::Ckpt => "ckpt",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TaskKey;
    use splice_applicative::FnId;

    fn packet() -> TaskPacket {
        TaskPacket {
            stamp: LevelStamp::from_digits(&[1, 2]),
            demand: Demand::new(FnId(0), vec![Value::Int(5), Value::ints([1, 2])]),
            parent: TaskLink::new(
                TaskAddr::new(ProcId(1), TaskKey(3)),
                LevelStamp::from_digits(&[1]),
            ),
            ancestors: vec![TaskLink::super_root()],
            incarnation: 0,
            hops: 0,
            replica: None,
            under_replica: false,
        }
    }

    #[test]
    fn packet_size_counts_payload_and_links() {
        let p = packet();
        // args: 1 + 3 (list of 2) = 4; stamp level 2; header 2;
        // parent link 2 + 1 digit = 3; super-root ancestor link 2 + 0 = 2
        // → 13. The ancestor chain is charged at true link size.
        assert_eq!(p.size(), 13);
        let mut deeper = p.clone();
        deeper.ancestors.push(TaskLink::new(
            TaskAddr::new(ProcId(2), TaskKey(0)),
            LevelStamp::from_digits(&[1, 2, 3]),
        ));
        assert_eq!(deeper.size(), p.size() + 5, "2 addr units + 3 digits");
    }

    #[test]
    fn msg_stays_three_words_wide() {
        // The DES queue, shard router and runtime channels all move `Msg`
        // by value; fat payloads must stay boxed. A new inline variant (or
        // an unboxed payload) fails here before it degrades every hop.
        assert!(
            std::mem::size_of::<Msg>() <= 24,
            "Msg grew past 24 bytes: {}",
            std::mem::size_of::<Msg>()
        );
        assert!(
            std::mem::size_of::<LevelStamp>() <= 24,
            "LevelStamp grew past 24 bytes: {}",
            std::mem::size_of::<LevelStamp>()
        );
    }

    #[test]
    fn reissue_bumps_incarnation_and_resets_hops() {
        let mut p = packet();
        p.hops = 7;
        let r = p.reissue();
        assert_eq!(r.incarnation, 1);
        assert_eq!(r.hops, 0);
        assert_eq!(r.stamp, p.stamp);
        assert_eq!(r.demand, p.demand);
        assert_eq!(r.reissue().incarnation, 2);
    }

    #[test]
    fn msg_kinds_cover_all_variants() {
        let p = packet();
        let msgs = vec![
            Msg::spawn(p.clone()),
            Msg::ack(
                p.stamp.clone(),
                TaskAddr::new(ProcId(2), TaskKey(0)),
                p.parent.addr,
                0,
            ),
            Msg::result(ResultPacket {
                from_stamp: p.stamp.clone(),
                demand: p.demand.clone(),
                value: Value::Int(1),
                to: p.parent.addr,
                to_stamp: p.parent.stamp.clone(),
                relay_chain: vec![],
                replica: None,
            }),
            Msg::salvage(SalvagePacket {
                to: p.parent.addr,
                dead_stamp: p.stamp.clone(),
                dead_addr: TaskAddr::new(ProcId(1), TaskKey(0)),
                demand: p.demand.clone(),
                value: Value::Int(1),
                from_stamp: p.stamp.child(1),
            }),
            Msg::Abort { to: p.parent.addr },
            Msg::Load {
                from: ProcId(0),
                pressure: 3,
            },
            Msg::FailureNotice { dead: ProcId(1) },
            Msg::Probe,
            Msg::ckpt(CkptPacket {
                owner: p.parent.addr,
                from_stamp: p.stamp.clone(),
                entries: vec![(p.demand.clone(), Value::Int(1))],
            }),
        ];
        let kinds: Vec<MsgKind> = msgs.iter().map(Msg::kind).collect();
        assert_eq!(kinds, MsgKind::ALL.to_vec());
        for m in &msgs {
            assert!(m.size() >= 1);
        }
    }
}
