//! Dynamic task-allocation interface (§3.3).
//!
//! "The ability to recover by simply reissuing checkpointed tasks depends on
//! the availability of a dynamic allocation strategy, such as the gradient
//! model approach. ... Dynamic allocation does not distinguish between tasks
//! generated for recovery and original tasks."
//!
//! The engine is parameterized over a [`Placer`]; recovery reissues flow
//! through exactly the same placement path as original spawns. The gradient
//! model itself lives in `splice-gradient`; this module defines the trait
//! plus the trivial placers used by unit tests and scripted scenarios.

use crate::ids::ProcId;
use crate::packet::TaskPacket;
use splice_applicative::{FxHashMap, FxHashSet};
use std::sync::Arc;

/// A dynamic task-allocation policy, one instance per processor.
pub trait Placer: Send {
    /// Chooses the destination for a packet spawned locally. `avoid` holds
    /// processors known to be dead; a placer must never return one unless it
    /// has no alternative (in which case the spawn will bounce and retry).
    fn place(&mut self, packet: &TaskPacket, avoid: &FxHashSet<ProcId>) -> ProcId;

    /// Decides whether an arriving packet should execute here (`None`) or be
    /// forwarded another hop. The default accepts immediately, which makes
    /// sender-side placement authoritative.
    fn route(&mut self, _packet: &TaskPacket, _avoid: &FxHashSet<ProcId>) -> Option<ProcId> {
        None
    }

    /// Records a pressure beacon from a peer.
    fn on_load(&mut self, _from: ProcId, _pressure: u32) {}

    /// Updates the local pressure before placement decisions.
    fn set_local_pressure(&mut self, _pressure: u32) {}

    /// Peers to send pressure beacons to (empty disables beacons).
    fn beacon_targets(&self) -> Vec<ProcId> {
        Vec::new()
    }

    /// The value to advertise in beacons. Defaults to the raw local
    /// pressure; the gradient model advertises its *proximity* instead.
    fn beacon_value(&self, local_pressure: u32) -> u32 {
        local_pressure
    }
}

/// Keeps every task on the spawning processor. Single-node execution;
/// useful for differential tests against the local wave driver.
#[derive(Debug)]
pub struct SelfPlacer {
    /// This processor's id.
    pub here: ProcId,
}

impl Placer for SelfPlacer {
    fn place(&mut self, _packet: &TaskPacket, _avoid: &FxHashSet<ProcId>) -> ProcId {
        self.here
    }
}

/// Places tasks by their level stamp according to a script, falling back to
/// a fallback chain. This is how the Figure-1 scenario pins tasks A1, B2,
/// C4… to processors A–D; once the scripted destination dies, reissues fall
/// through to the first live fallback — the dynamic-allocation behaviour
/// §3.3 requires.
#[derive(Debug)]
pub struct ScriptedPlacer {
    assignments: FxHashMap<crate::stamp::LevelStamp, ProcId>,
    subtrees: Vec<(crate::stamp::LevelStamp, ProcId)>,
    fallbacks: Vec<ProcId>,
}

impl ScriptedPlacer {
    /// Creates a scripted placer; `fallbacks` are tried in order for
    /// unassigned stamps and dead destinations.
    pub fn new(fallbacks: Vec<ProcId>) -> ScriptedPlacer {
        assert!(!fallbacks.is_empty());
        ScriptedPlacer {
            assignments: FxHashMap::default(),
            subtrees: Vec::new(),
            fallbacks,
        }
    }

    /// Pins a stamp to a processor.
    pub fn assign(&mut self, stamp: crate::stamp::LevelStamp, proc: ProcId) -> &mut Self {
        self.assignments.insert(stamp, proc);
        self
    }

    /// Pins a whole subtree (every stamp at or below `prefix`) to a
    /// processor. Exact assignments take precedence; among subtree rules
    /// the longest matching prefix wins.
    pub fn assign_subtree(&mut self, prefix: crate::stamp::LevelStamp, proc: ProcId) -> &mut Self {
        self.subtrees.push((prefix, proc));
        self.subtrees
            .sort_by_key(|(p, _)| std::cmp::Reverse(p.level()));
        self
    }
}

impl Placer for ScriptedPlacer {
    fn place(&mut self, packet: &TaskPacket, avoid: &FxHashSet<ProcId>) -> ProcId {
        if let Some(p) = self.assignments.get(&packet.stamp) {
            if !avoid.contains(p) {
                return *p;
            }
        } else if let Some((_, p)) = self
            .subtrees
            .iter()
            .find(|(prefix, _)| prefix.is_self_or_ancestor_of(&packet.stamp))
        {
            if !avoid.contains(p) {
                return *p;
            }
        }
        self.fallbacks
            .iter()
            .find(|p| !avoid.contains(p))
            .copied()
            .unwrap_or(self.fallbacks[0])
    }
}

/// Deterministic round-robin over a fixed processor set, skipping dead
/// processors. The simplest "real" distributed placer; used as a baseline.
///
/// The roster is a shared `Arc<[ProcId]>`: a machine builds one placer per
/// engine, and at tens of thousands of engines a per-placer roster copy
/// would be O(n²) memory.
#[derive(Debug)]
pub struct RoundRobinPlacer {
    procs: Arc<[ProcId]>,
    next: usize,
}

impl RoundRobinPlacer {
    /// Round-robin over `procs` (must be non-empty).
    pub fn new(procs: impl Into<Arc<[ProcId]>>) -> RoundRobinPlacer {
        let procs = procs.into();
        assert!(!procs.is_empty());
        RoundRobinPlacer { procs, next: 0 }
    }
}

impl Placer for RoundRobinPlacer {
    fn place(&mut self, _packet: &TaskPacket, avoid: &FxHashSet<ProcId>) -> ProcId {
        for _ in 0..self.procs.len() {
            let p = self.procs[self.next % self.procs.len()];
            self.next = self.next.wrapping_add(1);
            if !avoid.contains(&p) {
                return p;
            }
        }
        // Everything is dead; return anything and let the bounce path cope.
        self.procs[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{TaskAddr, TaskKey};
    use crate::packet::TaskLink;
    use crate::stamp::LevelStamp;
    use splice_applicative::wave::Demand;
    use splice_applicative::{FnId, Value};

    fn pkt(stamp: &[u32]) -> TaskPacket {
        TaskPacket {
            stamp: LevelStamp::from_digits(stamp),
            demand: Demand::new(FnId(0), vec![Value::Int(1)]),
            parent: TaskLink::new(TaskAddr::new(ProcId(0), TaskKey(0)), LevelStamp::root()),
            ancestors: vec![],
            incarnation: 0,
            hops: 0,
            replica: None,
            under_replica: false,
        }
    }

    #[test]
    fn self_placer_stays_home() {
        let mut p = SelfPlacer { here: ProcId(4) };
        assert_eq!(p.place(&pkt(&[1]), &FxHashSet::default()), ProcId(4));
        assert_eq!(p.route(&pkt(&[1]), &FxHashSet::default()), None);
    }

    #[test]
    fn scripted_placer_follows_script_and_avoids_dead() {
        let mut p = ScriptedPlacer::new(vec![ProcId(9), ProcId(4)]);
        p.assign(LevelStamp::from_digits(&[1]), ProcId(2));
        assert_eq!(p.place(&pkt(&[1]), &FxHashSet::default()), ProcId(2));
        assert_eq!(p.place(&pkt(&[7]), &FxHashSet::default()), ProcId(9));
        let dead: FxHashSet<ProcId> = [ProcId(2)].into_iter().collect();
        assert_eq!(p.place(&pkt(&[1]), &dead), ProcId(9));
        // Dead fallbacks fall through the chain.
        let dead: FxHashSet<ProcId> = [ProcId(2), ProcId(9)].into_iter().collect();
        assert_eq!(p.place(&pkt(&[1]), &dead), ProcId(4));
    }

    #[test]
    fn round_robin_cycles_and_skips_dead() {
        let mut p = RoundRobinPlacer::new(vec![ProcId(0), ProcId(1), ProcId(2)]);
        let none = FxHashSet::default();
        assert_eq!(p.place(&pkt(&[1]), &none), ProcId(0));
        assert_eq!(p.place(&pkt(&[1]), &none), ProcId(1));
        assert_eq!(p.place(&pkt(&[1]), &none), ProcId(2));
        assert_eq!(p.place(&pkt(&[1]), &none), ProcId(0));
        let dead: FxHashSet<ProcId> = [ProcId(1)].into_iter().collect();
        assert_eq!(p.place(&pkt(&[1]), &dead), ProcId(2));
        assert_eq!(p.place(&pkt(&[1]), &dead), ProcId(0));
        assert_eq!(p.place(&pkt(&[1]), &dead), ProcId(2));
    }
}
