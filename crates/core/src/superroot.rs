//! The super-root: the pre-evaluation checkpoint of the whole program
//! (§4.3.1).
//!
//! "One simple method to generate a preevaluation checkpoint is to create a
//! super-root which acts as the parent processor of all user programs. When
//! a user program is initiated, the super-root checkpoints the program so
//! that a duplicate copy of the program can be found in the system should
//! the root fail. With this modification, every task in an applicative
//! program has a parent."
//!
//! The super-root lives on the driver's reliable pseudo-processor
//! ([`crate::ids::ProcId::SUPER_ROOT`]) and implements the same spawn /
//! ack / reissue / salvage protocol as an engine — reduced to its single
//! child, the root task.

use crate::engine::{Action, Timer};
use crate::ids::{ProcId, TaskAddr, TaskKey};
use crate::packet::{Msg, ResultPacket, SalvagePacket, TaskLink, TaskPacket};
use crate::stamp::LevelStamp;
use splice_applicative::wave::Demand;
use splice_applicative::{FnId, Value};
use std::collections::HashSet;

/// The reliable parent of the root task.
#[derive(Debug)]
pub struct SuperRoot {
    packet: TaskPacket,
    acked: Option<(TaskAddr, u32)>,
    incarnation: u32,
    result: Option<Value>,
    pending_salvages: Vec<SalvagePacket>,
    known_dead: HashSet<ProcId>,
    ack_timeout: u64,
    /// Number of times the root was reissued.
    pub reissues: u64,
}

impl SuperRoot {
    /// Checkpoints the user program: entry function applied to arguments.
    /// The root task receives stamp `1` and the super-root as both parent
    /// and (transitively) every ancestor.
    pub fn new(
        entry: FnId,
        args: Vec<Value>,
        ancestor_depth: usize,
        ack_timeout: u64,
    ) -> SuperRoot {
        let packet = TaskPacket {
            stamp: LevelStamp::root().child(1),
            demand: Demand::new(entry, args),
            parent: TaskLink::super_root(),
            ancestors: vec![TaskLink::super_root(); ancestor_depth.saturating_sub(1)],
            incarnation: 0,
            hops: 0,
            replica: None,
            under_replica: false,
        };
        SuperRoot {
            packet,
            acked: None,
            incarnation: 0,
            result: None,
            pending_salvages: Vec::new(),
            known_dead: HashSet::new(),
            ack_timeout,
            reissues: 0,
        }
    }

    /// The root task's stamp.
    pub fn root_stamp(&self) -> &LevelStamp {
        &self.packet.stamp
    }

    /// The program's answer, once the root task reported it.
    pub fn result(&self) -> Option<&Value> {
        self.result.as_ref()
    }

    /// Where the root task currently lives (if acked).
    pub fn root_addr(&self) -> Option<TaskAddr> {
        self.acked
            .filter(|(_, inc)| *inc == self.incarnation)
            .map(|(a, _)| a)
    }

    /// Launches the program: spawn the root task at `dest`.
    pub fn launch(&mut self, dest: ProcId) -> Vec<Action> {
        vec![
            Action::SetTimer {
                timer: Timer::AckTimeout {
                    owner: TaskKey(0),
                    stamp: self.packet.stamp.clone(),
                    incarnation: self.incarnation,
                },
                delay: self.ack_timeout,
            },
            Action::Send {
                to: dest,
                msg: Msg::spawn(self.packet.clone()),
            },
        ]
    }

    /// Reissues the root task at `dest` (root processor failed, or the
    /// placement ack never came).
    pub fn reissue(&mut self, dest: ProcId) -> Vec<Action> {
        if self.result.is_some() {
            return Vec::new();
        }
        self.incarnation += 1;
        self.reissues += 1;
        let mut p = self.packet.clone();
        p.incarnation = self.incarnation;
        // Buffered salvages are not flushed here: the twin root inherits
        // the previous root's orphan results only once its placement is
        // acknowledged (see the `Msg::Ack` arm).
        vec![
            Action::SetTimer {
                timer: Timer::AckTimeout {
                    owner: TaskKey(0),
                    stamp: self.packet.stamp.clone(),
                    incarnation: self.incarnation,
                },
                delay: self.ack_timeout,
            },
            Action::Send {
                to: dest,
                msg: Msg::spawn(p),
            },
        ]
    }

    /// Handles a message addressed to the super-root. `fallback_dest`
    /// supplies a placement for reissues triggered by this message.
    pub fn on_message(&mut self, msg: Msg, fallback_dest: ProcId) -> Vec<Action> {
        match msg {
            Msg::Ack(ack) => {
                let (child_stamp, child_addr, incarnation) =
                    (ack.child_stamp, ack.child_addr, ack.incarnation);
                if child_stamp != self.packet.stamp {
                    return Vec::new();
                }
                // An ack from a processor already known dead is from a
                // corpse — the root died with its host. Recording it would
                // satisfy the ack timeout and wedge the launch (the same
                // slow-ack/fast-notice race Engine::on_ack guards against).
                if self.known_dead.contains(&child_addr.proc) {
                    if self.root_addr().is_none() && incarnation == self.incarnation {
                        return self.reissue(fallback_dest);
                    }
                    return Vec::new();
                }
                let newer = match self.acked {
                    Some((_, prev)) => incarnation >= prev,
                    None => true,
                };
                if !newer {
                    return Vec::new();
                }
                self.acked = Some((child_addr, incarnation));
                let mut actions = Vec::new();
                for mut sp in std::mem::take(&mut self.pending_salvages) {
                    sp.to = child_addr;
                    actions.push(Action::Send {
                        to: child_addr.proc,
                        msg: Msg::salvage(sp),
                    });
                }
                actions
            }
            Msg::Result(rp) => {
                self.on_result(*rp);
                Vec::new()
            }
            Msg::Salvage(sp) => self.on_salvage(*sp, fallback_dest),
            Msg::FailureNotice { dead } => self.on_failure(dead, fallback_dest),
            _ => Vec::new(),
        }
    }

    fn on_result(&mut self, rp: ResultPacket) {
        if rp.from_stamp == self.packet.stamp && self.result.is_none() {
            self.result = Some(rp.value);
        }
    }

    /// An orphan of the (dead) root relayed its result here: recreate the
    /// root twin if needed and forward the salvage once placed.
    fn on_salvage(&mut self, sp: SalvagePacket, fallback_dest: ProcId) -> Vec<Action> {
        if self.result.is_some() {
            return Vec::new();
        }
        if !self.packet.stamp.is_self_or_ancestor_of(&sp.dead_stamp) {
            return Vec::new();
        }
        let mut actions = Vec::new();
        match self.root_addr() {
            Some(addr) if !self.known_dead.contains(&addr.proc) => {
                let mut sp = sp;
                sp.to = addr;
                actions.push(Action::Send {
                    to: addr.proc,
                    msg: Msg::salvage(sp),
                });
            }
            _ => {
                self.pending_salvages.push(sp);
                // If we have not already reissued past the dead root, do so.
                if self.root_addr().is_none() && self.acked.is_some() {
                    // Reissue already pending (ack awaited); just buffer.
                } else if self
                    .acked
                    .map(|(a, _)| self.known_dead.contains(&a.proc))
                    .unwrap_or(false)
                {
                    actions.extend(self.reissue(fallback_dest));
                }
            }
        }
        actions
    }

    /// Processor failure: if it hosted the root, reissue the program —
    /// "the regeneration of the root does not come naturally ... a
    /// preevaluation functional checkpoint needs to be implemented."
    pub fn on_failure(&mut self, dead: ProcId, fallback_dest: ProcId) -> Vec<Action> {
        self.known_dead.insert(dead);
        if self.result.is_some() {
            return Vec::new();
        }
        match self.acked {
            Some((addr, inc)) if addr.proc == dead && inc == self.incarnation => {
                self.reissue(fallback_dest)
            }
            _ => Vec::new(),
        }
    }

    /// Ack-timeout for the root spawn.
    pub fn on_timer(&mut self, timer: Timer, fallback_dest: ProcId) -> Vec<Action> {
        match timer {
            Timer::AckTimeout { incarnation, .. } => {
                if self.result.is_some() {
                    return Vec::new();
                }
                let acked_current = self
                    .acked
                    .map(|(_, inc)| inc >= incarnation)
                    .unwrap_or(false);
                if acked_current || incarnation < self.incarnation {
                    Vec::new()
                } else {
                    self.reissue(fallback_dest)
                }
            }
            Timer::LoadBeacon | Timer::GraceReissue { .. } => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sr() -> SuperRoot {
        SuperRoot::new(FnId(0), vec![Value::Int(10)], 2, 100)
    }

    fn ack(sr_: &SuperRoot, proc: ProcId, inc: u32) -> Msg {
        Msg::ack(
            sr_.root_stamp().clone(),
            TaskAddr::new(proc, TaskKey(0)),
            TaskAddr::super_root(),
            inc,
        )
    }

    fn result(sr_: &SuperRoot, v: i64) -> Msg {
        Msg::result(ResultPacket {
            from_stamp: sr_.root_stamp().clone(),
            demand: sr_.packet.demand.clone(),
            value: Value::Int(v),
            to: TaskAddr::super_root(),
            to_stamp: LevelStamp::root(),
            relay_chain: vec![],
            replica: None,
        })
    }

    #[test]
    fn launch_spawns_root_with_stamp_one() {
        let mut s = sr();
        let actions = s.launch(ProcId(0));
        assert_eq!(actions.len(), 2);
        assert!(matches!(
            &actions[1],
            Action::Send { to: ProcId(0), msg: Msg::Spawn(p) } if p.stamp == LevelStamp::from_digits(&[1])
        ));
    }

    #[test]
    fn result_is_captured_once() {
        let mut s = sr();
        s.launch(ProcId(0));
        s.on_message(ack(&s, ProcId(0), 0), ProcId(0));
        assert_eq!(s.root_addr(), Some(TaskAddr::new(ProcId(0), TaskKey(0))));
        s.on_message(result(&s, 55), ProcId(0));
        assert_eq!(s.result(), Some(&Value::Int(55)));
        // Duplicate result (twin) ignored.
        s.on_message(result(&s, 99), ProcId(0));
        assert_eq!(s.result(), Some(&Value::Int(55)));
    }

    #[test]
    fn root_failure_triggers_reissue() {
        let mut s = sr();
        s.launch(ProcId(0));
        s.on_message(ack(&s, ProcId(0), 0), ProcId(1));
        let actions = s.on_failure(ProcId(0), ProcId(1));
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Send { to: ProcId(1), msg: Msg::Spawn(p) } if p.incarnation == 1)));
        assert_eq!(s.reissues, 1);
        // Failure of an unrelated processor does nothing.
        assert!(s.on_failure(ProcId(7), ProcId(1)).is_empty());
    }

    #[test]
    fn no_reissue_after_completion() {
        let mut s = sr();
        s.launch(ProcId(0));
        s.on_message(ack(&s, ProcId(0), 0), ProcId(1));
        s.on_message(result(&s, 55), ProcId(0));
        assert!(s.on_failure(ProcId(0), ProcId(1)).is_empty());
        assert_eq!(s.reissues, 0);
    }

    #[test]
    fn late_ack_from_dead_host_reissues_instead_of_wedging() {
        // Slow-ack/fast-notice race (high-latency inter-shard router): the
        // failure notice for the root's host arrives while its placement
        // ack is still in flight. The notice finds nothing acked, so it
        // reissues nothing; the corpse's ack must then trigger the reissue
        // rather than being recorded — a recorded dead placement satisfies
        // the ack timeout and wedges the launch forever.
        let mut s = sr();
        s.launch(ProcId(0));
        assert!(
            s.on_failure(ProcId(0), ProcId(1)).is_empty(),
            "nothing acked yet, notice alone reissues nothing"
        );
        let actions = s.on_message(ack(&s, ProcId(0), 0), ProcId(1));
        assert!(
            actions.iter().any(|a| matches!(
                a,
                Action::Send { to: ProcId(1), msg: Msg::Spawn(p) } if p.incarnation == 1
            )),
            "{actions:?}"
        );
        assert_eq!(s.reissues, 1);
        assert_eq!(s.root_addr(), None, "dead placement must not be recorded");
    }

    #[test]
    fn ack_timeout_reissues_unplaced_root() {
        let mut s = sr();
        s.launch(ProcId(0));
        let t = Timer::AckTimeout {
            owner: TaskKey(0),
            stamp: s.root_stamp().clone(),
            incarnation: 0,
        };
        let actions = s.on_timer(t.clone(), ProcId(2));
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Send { to: ProcId(2), .. })));
        // Stale timer after the ack: no-op.
        s.on_message(ack(&s, ProcId(2), 1), ProcId(2));
        assert!(s.on_timer(t, ProcId(2)).is_empty());
    }

    #[test]
    fn salvage_buffers_until_twin_ack_then_flushes() {
        let mut s = sr();
        s.launch(ProcId(0));
        s.on_message(ack(&s, ProcId(0), 0), ProcId(1));
        s.on_failure(ProcId(0), ProcId(1)); // reissue to P1, not yet acked
        let sp = SalvagePacket {
            to: TaskAddr::super_root(),
            dead_stamp: s.root_stamp().clone(),
            dead_addr: TaskAddr::new(ProcId(0), TaskKey(0)),
            demand: Demand::new(FnId(0), vec![Value::Int(9)]),
            value: Value::Int(34),
            from_stamp: s.root_stamp().child(1),
        };
        let actions = s.on_message(Msg::salvage(sp), ProcId(1));
        assert!(actions.is_empty(), "buffered until the twin root is placed");
        let actions = s.on_message(ack(&s, ProcId(1), 1), ProcId(1));
        assert!(
            actions.iter().any(|a| matches!(
                a,
                Action::Send {
                    to: ProcId(1),
                    msg: Msg::Salvage(_)
                }
            )),
            "{actions:?}"
        );
    }
}
