//! The super-root: the pre-evaluation checkpoint of the whole program
//! (§4.3.1).
//!
//! "One simple method to generate a preevaluation checkpoint is to create a
//! super-root which acts as the parent processor of all user programs. When
//! a user program is initiated, the super-root checkpoints the program so
//! that a duplicate copy of the program can be found in the system should
//! the root fail. With this modification, every task in an applicative
//! program has a parent."
//!
//! The super-root lives on the driver's reliable pseudo-processor
//! ([`crate::ids::ProcId::SUPER_ROOT`]) and implements the same spawn /
//! ack / reissue / salvage protocol as an engine — reduced to its single
//! child, the root task.

use crate::engine::{Action, Timer};
use crate::ids::{ProcId, TaskAddr, TaskKey};
use crate::packet::{Msg, ResultPacket, SalvagePacket, TaskLink, TaskPacket};
use crate::sink::ActionSink;
use crate::stamp::LevelStamp;
use splice_applicative::wave::Demand;
use splice_applicative::{FnId, FxHashSet, Value};

/// One replicable input to the super-root state machine.
///
/// The super-root is deterministic: feeding the same input sequence to
/// any number of [`SuperRoot`] instances leaves them in identical states.
/// [`RootQuorum`] exploits exactly that — conceptually every replica
/// applies the same log; since the log is shared, one state machine
/// stands in for all N and only the *liveness* of each replica is
/// tracked separately.
#[derive(Debug)]
pub enum RootInput {
    /// Initial program launch: spawn the root task at `dest`.
    Launch {
        /// Placement for the root spawn.
        dest: ProcId,
    },
    /// A message addressed to the super-root (ack / result / salvage /
    /// failure notice).
    Message {
        /// The message.
        msg: Msg,
        /// Placement for any reissue this message triggers.
        fallback: ProcId,
    },
    /// A processor death notice from the failure detector.
    Failure {
        /// The dead processor.
        dead: ProcId,
        /// Placement for any reissue this notice triggers.
        fallback: ProcId,
    },
    /// A timer owned by the super-root fired.
    Timer {
        /// The timer.
        timer: Timer,
        /// Placement for any reissue this timer triggers.
        fallback: ProcId,
    },
}

/// The reliable parent of the root task.
#[derive(Debug)]
pub struct SuperRoot {
    packet: TaskPacket,
    acked: Option<(TaskAddr, u32)>,
    incarnation: u32,
    result: Option<Value>,
    pending_salvages: Vec<SalvagePacket>,
    known_dead: FxHashSet<ProcId>,
    ack_timeout: u64,
    /// Number of times the root was reissued.
    pub reissues: u64,
}

impl SuperRoot {
    /// Checkpoints the user program: entry function applied to arguments.
    /// The root task receives stamp `1` and the super-root as both parent
    /// and (transitively) every ancestor.
    pub fn new(
        entry: FnId,
        args: Vec<Value>,
        ancestor_depth: usize,
        ack_timeout: u64,
    ) -> SuperRoot {
        let packet = TaskPacket {
            stamp: LevelStamp::root().child(1),
            demand: Demand::new(entry, args),
            parent: TaskLink::super_root(),
            ancestors: vec![TaskLink::super_root(); ancestor_depth.saturating_sub(1)],
            incarnation: 0,
            hops: 0,
            replica: None,
            under_replica: false,
        };
        SuperRoot {
            packet,
            acked: None,
            incarnation: 0,
            result: None,
            pending_salvages: Vec::new(),
            known_dead: FxHashSet::default(),
            ack_timeout,
            reissues: 0,
        }
    }

    /// The root task's stamp.
    pub fn root_stamp(&self) -> &LevelStamp {
        &self.packet.stamp
    }

    /// The program's answer, once the root task reported it.
    pub fn result(&self) -> Option<&Value> {
        self.result.as_ref()
    }

    /// Where the root task currently lives (if acked).
    pub fn root_addr(&self) -> Option<TaskAddr> {
        self.acked
            .filter(|(_, inc)| *inc == self.incarnation)
            .map(|(a, _)| a)
    }

    /// Applies one replicable input to the state machine. This is the
    /// single entry point [`RootQuorum`] drives; the named handlers
    /// ([`SuperRoot::launch`] etc.) remain as direct wrappers.
    pub fn apply(&mut self, input: RootInput, sink: &mut ActionSink) {
        match input {
            RootInput::Launch { dest } => self.launch(dest, sink),
            RootInput::Message { msg, fallback } => self.on_message(msg, fallback, sink),
            RootInput::Failure { dead, fallback } => self.on_failure(dead, fallback, sink),
            RootInput::Timer { timer, fallback } => self.on_timer(timer, fallback, sink),
        }
    }

    /// A successor replica takes over after the acting primary died.
    ///
    /// The replicated checkpoint (the root packet, the incarnation
    /// counter, the captured result, the known-dead set) survives; what
    /// dies with the primary is its *volatile* session state — the
    /// in-flight placement ack and any salvages buffered awaiting a twin
    /// ack. The successor therefore clears both and, unless the answer is
    /// already in, reissues the root wave exactly like any parent
    /// reissues a lost child: the bumped incarnation makes every stale
    /// ack and timer from the previous primary's tenure filter out, and
    /// duplicate results are deduped by stamp as always.
    pub fn take_over(&mut self, fallback: ProcId, sink: &mut ActionSink) {
        self.acked = None;
        self.pending_salvages.clear();
        if self.result.is_none() {
            self.reissue(fallback, sink);
        }
    }

    /// Launches the program: spawn the root task at `dest`.
    pub fn launch(&mut self, dest: ProcId, sink: &mut ActionSink) {
        sink.push(Action::SetTimer {
            timer: Timer::ack_timeout(TaskKey(0), self.packet.stamp.clone(), self.incarnation),
            delay: self.ack_timeout,
        });
        sink.push(Action::Send {
            to: dest,
            msg: Msg::spawn(self.packet.clone()),
        });
    }

    /// Reissues the root task at `dest` (root processor failed, or the
    /// placement ack never came).
    pub fn reissue(&mut self, dest: ProcId, sink: &mut ActionSink) {
        if self.result.is_some() {
            return;
        }
        self.incarnation += 1;
        self.reissues += 1;
        let mut p = self.packet.clone();
        p.incarnation = self.incarnation;
        // Buffered salvages are not flushed here: the twin root inherits
        // the previous root's orphan results only once its placement is
        // acknowledged (see the `Msg::Ack` arm).
        sink.push(Action::SetTimer {
            timer: Timer::ack_timeout(TaskKey(0), self.packet.stamp.clone(), self.incarnation),
            delay: self.ack_timeout,
        });
        sink.push(Action::Send {
            to: dest,
            msg: Msg::spawn(p),
        });
    }

    /// Handles a message addressed to the super-root. `fallback_dest`
    /// supplies a placement for reissues triggered by this message.
    pub fn on_message(&mut self, msg: Msg, fallback_dest: ProcId, sink: &mut ActionSink) {
        match msg {
            Msg::Ack(ack) => {
                let (child_stamp, child_addr, incarnation) =
                    (ack.child_stamp, ack.child_addr, ack.incarnation);
                if child_stamp != self.packet.stamp {
                    return;
                }
                // An ack from a processor already known dead is from a
                // corpse — the root died with its host. Recording it would
                // satisfy the ack timeout and wedge the launch (the same
                // slow-ack/fast-notice race Engine::on_ack guards against).
                if self.known_dead.contains(&child_addr.proc) {
                    if self.root_addr().is_none() && incarnation == self.incarnation {
                        self.reissue(fallback_dest, sink);
                    }
                    return;
                }
                let newer = match self.acked {
                    Some((_, prev)) => incarnation >= prev,
                    None => true,
                };
                if !newer {
                    return;
                }
                self.acked = Some((child_addr, incarnation));
                for mut sp in std::mem::take(&mut self.pending_salvages) {
                    sp.to = child_addr;
                    sink.push(Action::Send {
                        to: child_addr.proc,
                        msg: Msg::salvage(sp),
                    });
                }
            }
            Msg::Result(rp) => {
                self.on_result(*rp);
            }
            Msg::Salvage(sp) => self.on_salvage(*sp, fallback_dest, sink),
            Msg::FailureNotice { dead } => self.on_failure(dead, fallback_dest, sink),
            _ => {}
        }
    }

    fn on_result(&mut self, rp: ResultPacket) {
        if rp.from_stamp == self.packet.stamp && self.result.is_none() {
            self.result = Some(rp.value);
        }
    }

    /// An orphan of the (dead) root relayed its result here: recreate the
    /// root twin if needed and forward the salvage once placed.
    fn on_salvage(&mut self, sp: SalvagePacket, fallback_dest: ProcId, sink: &mut ActionSink) {
        if self.result.is_some() {
            return;
        }
        if !self.packet.stamp.is_self_or_ancestor_of(&sp.dead_stamp) {
            return;
        }
        match self.root_addr() {
            Some(addr) if !self.known_dead.contains(&addr.proc) => {
                let mut sp = sp;
                sp.to = addr;
                sink.push(Action::Send {
                    to: addr.proc,
                    msg: Msg::salvage(sp),
                });
            }
            _ => {
                self.pending_salvages.push(sp);
                // If we have not already reissued past the dead root, do so.
                if self.root_addr().is_none() && self.acked.is_some() {
                    // Reissue already pending (ack awaited); just buffer.
                } else if self
                    .acked
                    .map(|(a, _)| self.known_dead.contains(&a.proc))
                    .unwrap_or(false)
                {
                    self.reissue(fallback_dest, sink);
                }
            }
        }
    }

    /// Processor failure: if it hosted the root, reissue the program —
    /// "the regeneration of the root does not come naturally ... a
    /// preevaluation functional checkpoint needs to be implemented."
    pub fn on_failure(&mut self, dead: ProcId, fallback_dest: ProcId, sink: &mut ActionSink) {
        self.known_dead.insert(dead);
        if self.result.is_some() {
            return;
        }
        if let Some((addr, inc)) = self.acked {
            if addr.proc == dead && inc == self.incarnation {
                self.reissue(fallback_dest, sink);
            }
        }
    }

    /// Ack-timeout for the root spawn.
    pub fn on_timer(&mut self, timer: Timer, fallback_dest: ProcId, sink: &mut ActionSink) {
        match timer {
            Timer::AckTimeout(t) => {
                if self.result.is_some() {
                    return;
                }
                let incarnation = t.incarnation;
                let acked_current = self
                    .acked
                    .map(|(_, inc)| inc >= incarnation)
                    .unwrap_or(false);
                if !acked_current && incarnation >= self.incarnation {
                    self.reissue(fallback_dest, sink);
                }
            }
            Timer::LoadBeacon | Timer::GraceReissue { .. } => {}
        }
    }
}

/// N replicated super-root instances behind one deterministic
/// rank-and-lease rule.
///
/// Every replica holds the root checkpoint and observes the same input
/// log (the inputs of [`RootInput`] are replicable by construction), so
/// all live replicas agree on the state at every step; the quorum keeps
/// one state machine and a per-rank liveness vector. The *lowest-ranked
/// live replica* is the acting primary — its lease is implicit in the
/// liveness rule, renewed by every clock tick on which it is still live.
/// When the primary dies, the next-lowest live rank takes over from the
/// replicated checkpoint ([`SuperRoot::take_over`]): it reissues the
/// root wave like any parent reissues a lost child, and duplicate
/// results from the old tenure are deduped by stamp. With a single
/// replica the quorum degenerates to exactly the old reliable singleton:
/// no extra messages, no extra state transitions, bit-identical runs.
#[derive(Debug)]
pub struct RootQuorum {
    sr: SuperRoot,
    live: Vec<bool>,
    failovers: u64,
}

impl RootQuorum {
    /// Wraps `sr` in a quorum of `replicas` ranks (clamped to ≥ 1), all
    /// initially live; rank 0 is the first primary.
    pub fn new(sr: SuperRoot, replicas: u32) -> RootQuorum {
        RootQuorum {
            sr,
            live: vec![true; replicas.max(1) as usize],
            failovers: 0,
        }
    }

    /// The configured replica count.
    pub fn replicas(&self) -> u32 {
        self.live.len() as u32
    }

    /// The acting primary's rank: the lowest live rank, or `None` once
    /// every replica has crashed.
    pub fn primary(&self) -> Option<u32> {
        self.live.iter().position(|&l| l).map(|r| r as u32)
    }

    /// True while at least one replica survives.
    pub fn has_live_replica(&self) -> bool {
        self.live.iter().any(|&l| l)
    }

    /// True when `rank` exists and has not crashed.
    pub fn replica_live(&self, rank: u32) -> bool {
        self.live.get(rank as usize).copied().unwrap_or(false)
    }

    /// How many primaries died and were succeeded.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// How many times the root task was reissued.
    pub fn reissues(&self) -> u64 {
        self.sr.reissues
    }

    /// The replicated state machine (read-only).
    pub fn state(&self) -> &SuperRoot {
        &self.sr
    }

    /// The program's answer, once the root task reported it to a live
    /// primary.
    pub fn result(&self) -> Option<&Value> {
        self.sr.result()
    }

    /// Applies one input through the acting primary. With every replica
    /// dead there is no primary to process it: the input is discarded —
    /// the run can only stall, which is the honest outcome.
    pub fn apply(&mut self, input: RootInput, sink: &mut ActionSink) {
        if !self.has_live_replica() {
            return;
        }
        self.sr.apply(input, sink);
    }

    /// Crashes replica `rank`. Returns `true` when the crash deposed the
    /// acting primary and a successor took over (reissuing the root wave
    /// from the replicated checkpoint); `false` for crashes of idle
    /// successors, already-dead ranks, out-of-range ranks, and the death
    /// of the *last* replica (nobody is left to take over).
    pub fn crash_replica(&mut self, rank: u32, fallback: ProcId, sink: &mut ActionSink) -> bool {
        if !self.replica_live(rank) {
            return false;
        }
        let was_primary = self.primary() == Some(rank);
        self.live[rank as usize] = false;
        if was_primary && self.has_live_replica() {
            self.failovers += 1;
            self.sr.take_over(fallback, sink);
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sr() -> SuperRoot {
        SuperRoot::new(FnId(0), vec![Value::Int(10)], 2, 100)
    }

    fn launch(s: &mut SuperRoot, dest: ProcId) -> Vec<Action> {
        let mut sink = ActionSink::new();
        s.launch(dest, &mut sink);
        sink.drain_to_vec()
    }

    fn deliver(s: &mut SuperRoot, msg: Msg, fallback: ProcId) -> Vec<Action> {
        let mut sink = ActionSink::new();
        s.on_message(msg, fallback, &mut sink);
        sink.drain_to_vec()
    }

    fn fail(s: &mut SuperRoot, dead: ProcId, fallback: ProcId) -> Vec<Action> {
        let mut sink = ActionSink::new();
        s.on_failure(dead, fallback, &mut sink);
        sink.drain_to_vec()
    }

    fn fire(s: &mut SuperRoot, timer: Timer, fallback: ProcId) -> Vec<Action> {
        let mut sink = ActionSink::new();
        s.on_timer(timer, fallback, &mut sink);
        sink.drain_to_vec()
    }

    fn ack(sr_: &SuperRoot, proc: ProcId, inc: u32) -> Msg {
        Msg::ack(
            sr_.root_stamp().clone(),
            TaskAddr::new(proc, TaskKey(0)),
            TaskAddr::super_root(),
            inc,
        )
    }

    fn result(sr_: &SuperRoot, v: i64) -> Msg {
        Msg::result(ResultPacket {
            from_stamp: sr_.root_stamp().clone(),
            demand: sr_.packet.demand.clone(),
            value: Value::Int(v),
            to: TaskAddr::super_root(),
            to_stamp: LevelStamp::root(),
            relay_chain: vec![],
            replica: None,
        })
    }

    #[test]
    fn launch_spawns_root_with_stamp_one() {
        let mut s = sr();
        let actions = launch(&mut s, ProcId(0));
        assert_eq!(actions.len(), 2);
        assert!(matches!(
            &actions[1],
            Action::Send { to: ProcId(0), msg: Msg::Spawn(p) } if p.stamp == LevelStamp::from_digits(&[1])
        ));
    }

    #[test]
    fn result_is_captured_once() {
        let mut s = sr();
        launch(&mut s, ProcId(0));
        let m = ack(&s, ProcId(0), 0);
        deliver(&mut s, m, ProcId(0));
        assert_eq!(s.root_addr(), Some(TaskAddr::new(ProcId(0), TaskKey(0))));
        let m = result(&s, 55);
        deliver(&mut s, m, ProcId(0));
        assert_eq!(s.result(), Some(&Value::Int(55)));
        // Duplicate result (twin) ignored.
        let m = result(&s, 99);
        deliver(&mut s, m, ProcId(0));
        assert_eq!(s.result(), Some(&Value::Int(55)));
    }

    #[test]
    fn root_failure_triggers_reissue() {
        let mut s = sr();
        launch(&mut s, ProcId(0));
        let m = ack(&s, ProcId(0), 0);
        deliver(&mut s, m, ProcId(1));
        let actions = fail(&mut s, ProcId(0), ProcId(1));
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Send { to: ProcId(1), msg: Msg::Spawn(p) } if p.incarnation == 1)));
        assert_eq!(s.reissues, 1);
        // Failure of an unrelated processor does nothing.
        assert!(fail(&mut s, ProcId(7), ProcId(1)).is_empty());
    }

    #[test]
    fn no_reissue_after_completion() {
        let mut s = sr();
        launch(&mut s, ProcId(0));
        let m = ack(&s, ProcId(0), 0);
        deliver(&mut s, m, ProcId(1));
        let m = result(&s, 55);
        deliver(&mut s, m, ProcId(0));
        assert!(fail(&mut s, ProcId(0), ProcId(1)).is_empty());
        assert_eq!(s.reissues, 0);
    }

    #[test]
    fn late_ack_from_dead_host_reissues_instead_of_wedging() {
        // Slow-ack/fast-notice race (high-latency inter-shard router): the
        // failure notice for the root's host arrives while its placement
        // ack is still in flight. The notice finds nothing acked, so it
        // reissues nothing; the corpse's ack must then trigger the reissue
        // rather than being recorded — a recorded dead placement satisfies
        // the ack timeout and wedges the launch forever.
        let mut s = sr();
        launch(&mut s, ProcId(0));
        assert!(
            fail(&mut s, ProcId(0), ProcId(1)).is_empty(),
            "nothing acked yet, notice alone reissues nothing"
        );
        let m = ack(&s, ProcId(0), 0);
        let actions = deliver(&mut s, m, ProcId(1));
        assert!(
            actions.iter().any(|a| matches!(
                a,
                Action::Send { to: ProcId(1), msg: Msg::Spawn(p) } if p.incarnation == 1
            )),
            "{actions:?}"
        );
        assert_eq!(s.reissues, 1);
        assert_eq!(s.root_addr(), None, "dead placement must not be recorded");
    }

    #[test]
    fn ack_timeout_reissues_unplaced_root() {
        let mut s = sr();
        launch(&mut s, ProcId(0));
        let t = Timer::ack_timeout(TaskKey(0), s.root_stamp().clone(), 0);
        let actions = fire(&mut s, t.clone(), ProcId(2));
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Send { to: ProcId(2), .. })));
        // Stale timer after the ack: no-op.
        let m = ack(&s, ProcId(2), 1);
        deliver(&mut s, m, ProcId(2));
        assert!(fire(&mut s, t, ProcId(2)).is_empty());
    }

    #[test]
    fn salvage_buffers_until_twin_ack_then_flushes() {
        let mut s = sr();
        launch(&mut s, ProcId(0));
        let m = ack(&s, ProcId(0), 0);
        deliver(&mut s, m, ProcId(1));
        fail(&mut s, ProcId(0), ProcId(1)); // reissue to P1, not yet acked
        let sp = SalvagePacket {
            to: TaskAddr::super_root(),
            dead_stamp: s.root_stamp().clone(),
            dead_addr: TaskAddr::new(ProcId(0), TaskKey(0)),
            demand: Demand::new(FnId(0), vec![Value::Int(9)]),
            value: Value::Int(34),
            from_stamp: s.root_stamp().child(1),
        };
        let actions = deliver(&mut s, Msg::salvage(sp), ProcId(1));
        assert!(actions.is_empty(), "buffered until the twin root is placed");
        let m = ack(&s, ProcId(1), 1);
        let actions = deliver(&mut s, m, ProcId(1));
        assert!(
            actions.iter().any(|a| matches!(
                a,
                Action::Send {
                    to: ProcId(1),
                    msg: Msg::Salvage(_)
                }
            )),
            "{actions:?}"
        );
    }

    fn quorum(n: u32) -> RootQuorum {
        RootQuorum::new(sr(), n)
    }

    fn q_apply(q: &mut RootQuorum, input: RootInput) -> Vec<Action> {
        let mut sink = ActionSink::new();
        q.apply(input, &mut sink);
        sink.drain_to_vec()
    }

    fn q_crash(q: &mut RootQuorum, rank: u32, fallback: ProcId) -> (bool, Vec<Action>) {
        let mut sink = ActionSink::new();
        let failed_over = q.crash_replica(rank, fallback, &mut sink);
        (failed_over, sink.drain_to_vec())
    }

    #[test]
    fn primary_is_lowest_live_rank() {
        let mut q = quorum(3);
        assert_eq!(q.primary(), Some(0));
        q_crash(&mut q, 0, ProcId(1));
        assert_eq!(q.primary(), Some(1));
        q_crash(&mut q, 2, ProcId(1));
        assert_eq!(q.primary(), Some(1));
        q_crash(&mut q, 1, ProcId(1));
        assert_eq!(q.primary(), None);
        assert!(!q.has_live_replica());
    }

    #[test]
    fn primary_crash_takes_over_and_reissues() {
        let mut q = quorum(3);
        q_apply(&mut q, RootInput::Launch { dest: ProcId(0) });
        let m = Msg::ack(
            q.state().root_stamp().clone(),
            TaskAddr::new(ProcId(0), TaskKey(0)),
            TaskAddr::super_root(),
            0,
        );
        q_apply(
            &mut q,
            RootInput::Message {
                msg: m,
                fallback: ProcId(0),
            },
        );
        let (failed_over, actions) = q_crash(&mut q, 0, ProcId(2));
        assert!(failed_over);
        assert_eq!(q.failovers(), 1);
        assert_eq!(q.reissues(), 1);
        assert!(
            actions.iter().any(|a| matches!(
                a,
                Action::Send { to: ProcId(2), msg: Msg::Spawn(p) } if p.incarnation == 1
            )),
            "takeover must reissue the root wave: {actions:?}"
        );
        assert_eq!(
            q.state().root_addr(),
            None,
            "the dead primary's volatile ack must not survive the takeover"
        );
    }

    #[test]
    fn successor_crash_is_not_a_failover() {
        let mut q = quorum(3);
        q_apply(&mut q, RootInput::Launch { dest: ProcId(0) });
        let (failed_over, actions) = q_crash(&mut q, 2, ProcId(1));
        assert!(!failed_over, "an idle successor's death deposes nobody");
        assert!(actions.is_empty());
        assert_eq!(q.failovers(), 0);
        // Double-crash of the same rank is inert.
        assert!(!q_crash(&mut q, 2, ProcId(1)).0);
        // Out-of-range rank is inert.
        assert!(!q_crash(&mut q, 9, ProcId(1)).0);
    }

    #[test]
    fn last_replica_death_leaves_inputs_undeliverable() {
        let mut q = quorum(2);
        q_apply(&mut q, RootInput::Launch { dest: ProcId(0) });
        q_crash(&mut q, 0, ProcId(1));
        let (failed_over, _) = q_crash(&mut q, 1, ProcId(1));
        assert!(!failed_over, "nobody left to take over");
        assert_eq!(q.failovers(), 1, "only the first crash deposed a primary");
        // A result arriving after the last replica died is discarded: the
        // super-root role itself is gone.
        let m = Msg::result(ResultPacket {
            from_stamp: q.state().root_stamp().clone(),
            demand: Demand::new(FnId(0), vec![Value::Int(9)]),
            value: Value::Int(55),
            to: TaskAddr::super_root(),
            to_stamp: LevelStamp::root(),
            relay_chain: vec![],
            replica: None,
        });
        q_apply(
            &mut q,
            RootInput::Message {
                msg: m,
                fallback: ProcId(1),
            },
        );
        assert_eq!(q.result(), None);
    }

    #[test]
    fn duplicate_result_from_deposed_tenure_is_deduped_by_stamp() {
        let mut q = quorum(2);
        q_apply(&mut q, RootInput::Launch { dest: ProcId(0) });
        q_crash(&mut q, 0, ProcId(1)); // reissue: incarnation 1 to P1
        let mk_result = |v: i64| {
            Msg::result(ResultPacket {
                from_stamp: q.state().root_stamp().clone(),
                demand: Demand::new(FnId(0), vec![Value::Int(9)]),
                value: Value::Int(v),
                to: TaskAddr::super_root(),
                to_stamp: LevelStamp::root(),
                relay_chain: vec![],
                replica: None,
            })
        };
        // The zombie incarnation-0 root and the reissued twin both report:
        // same stamp, first result wins, the duplicate is dropped.
        let (a, b) = (mk_result(55), mk_result(55));
        q_apply(
            &mut q,
            RootInput::Message {
                msg: a,
                fallback: ProcId(1),
            },
        );
        q_apply(
            &mut q,
            RootInput::Message {
                msg: b,
                fallback: ProcId(1),
            },
        );
        assert_eq!(q.result(), Some(&Value::Int(55)));
    }

    #[test]
    fn take_over_after_result_does_not_reissue() {
        let mut q = quorum(2);
        q_apply(&mut q, RootInput::Launch { dest: ProcId(0) });
        let m = Msg::result(ResultPacket {
            from_stamp: q.state().root_stamp().clone(),
            demand: Demand::new(FnId(0), vec![Value::Int(9)]),
            value: Value::Int(55),
            to: TaskAddr::super_root(),
            to_stamp: LevelStamp::root(),
            relay_chain: vec![],
            replica: None,
        });
        q_apply(
            &mut q,
            RootInput::Message {
                msg: m,
                fallback: ProcId(0),
            },
        );
        let (failed_over, actions) = q_crash(&mut q, 0, ProcId(1));
        assert!(failed_over, "the successor still takes the role over");
        assert!(
            actions.is_empty(),
            "the answer is in — no reissue: {actions:?}"
        );
        assert_eq!(q.reissues(), 0);
        assert_eq!(q.result(), Some(&Value::Int(55)));
    }
}
