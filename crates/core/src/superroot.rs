//! The super-root: the pre-evaluation checkpoint of the whole program
//! (§4.3.1).
//!
//! "One simple method to generate a preevaluation checkpoint is to create a
//! super-root which acts as the parent processor of all user programs. When
//! a user program is initiated, the super-root checkpoints the program so
//! that a duplicate copy of the program can be found in the system should
//! the root fail. With this modification, every task in an applicative
//! program has a parent."
//!
//! The super-root lives on the driver's reliable pseudo-processor
//! ([`crate::ids::ProcId::SUPER_ROOT`]) and implements the same spawn /
//! ack / reissue / salvage protocol as an engine — reduced to its single
//! child, the root task.

use crate::engine::{Action, Timer};
use crate::ids::{ProcId, TaskAddr, TaskKey};
use crate::packet::{Msg, ResultPacket, SalvagePacket, TaskLink, TaskPacket};
use crate::sink::ActionSink;
use crate::stamp::LevelStamp;
use splice_applicative::wave::Demand;
use splice_applicative::{FnId, FxHashSet, Value};

/// The reliable parent of the root task.
#[derive(Debug)]
pub struct SuperRoot {
    packet: TaskPacket,
    acked: Option<(TaskAddr, u32)>,
    incarnation: u32,
    result: Option<Value>,
    pending_salvages: Vec<SalvagePacket>,
    known_dead: FxHashSet<ProcId>,
    ack_timeout: u64,
    /// Number of times the root was reissued.
    pub reissues: u64,
}

impl SuperRoot {
    /// Checkpoints the user program: entry function applied to arguments.
    /// The root task receives stamp `1` and the super-root as both parent
    /// and (transitively) every ancestor.
    pub fn new(
        entry: FnId,
        args: Vec<Value>,
        ancestor_depth: usize,
        ack_timeout: u64,
    ) -> SuperRoot {
        let packet = TaskPacket {
            stamp: LevelStamp::root().child(1),
            demand: Demand::new(entry, args),
            parent: TaskLink::super_root(),
            ancestors: vec![TaskLink::super_root(); ancestor_depth.saturating_sub(1)],
            incarnation: 0,
            hops: 0,
            replica: None,
            under_replica: false,
        };
        SuperRoot {
            packet,
            acked: None,
            incarnation: 0,
            result: None,
            pending_salvages: Vec::new(),
            known_dead: FxHashSet::default(),
            ack_timeout,
            reissues: 0,
        }
    }

    /// The root task's stamp.
    pub fn root_stamp(&self) -> &LevelStamp {
        &self.packet.stamp
    }

    /// The program's answer, once the root task reported it.
    pub fn result(&self) -> Option<&Value> {
        self.result.as_ref()
    }

    /// Where the root task currently lives (if acked).
    pub fn root_addr(&self) -> Option<TaskAddr> {
        self.acked
            .filter(|(_, inc)| *inc == self.incarnation)
            .map(|(a, _)| a)
    }

    /// Launches the program: spawn the root task at `dest`.
    pub fn launch(&mut self, dest: ProcId, sink: &mut ActionSink) {
        sink.push(Action::SetTimer {
            timer: Timer::ack_timeout(TaskKey(0), self.packet.stamp.clone(), self.incarnation),
            delay: self.ack_timeout,
        });
        sink.push(Action::Send {
            to: dest,
            msg: Msg::spawn(self.packet.clone()),
        });
    }

    /// Reissues the root task at `dest` (root processor failed, or the
    /// placement ack never came).
    pub fn reissue(&mut self, dest: ProcId, sink: &mut ActionSink) {
        if self.result.is_some() {
            return;
        }
        self.incarnation += 1;
        self.reissues += 1;
        let mut p = self.packet.clone();
        p.incarnation = self.incarnation;
        // Buffered salvages are not flushed here: the twin root inherits
        // the previous root's orphan results only once its placement is
        // acknowledged (see the `Msg::Ack` arm).
        sink.push(Action::SetTimer {
            timer: Timer::ack_timeout(TaskKey(0), self.packet.stamp.clone(), self.incarnation),
            delay: self.ack_timeout,
        });
        sink.push(Action::Send {
            to: dest,
            msg: Msg::spawn(p),
        });
    }

    /// Handles a message addressed to the super-root. `fallback_dest`
    /// supplies a placement for reissues triggered by this message.
    pub fn on_message(&mut self, msg: Msg, fallback_dest: ProcId, sink: &mut ActionSink) {
        match msg {
            Msg::Ack(ack) => {
                let (child_stamp, child_addr, incarnation) =
                    (ack.child_stamp, ack.child_addr, ack.incarnation);
                if child_stamp != self.packet.stamp {
                    return;
                }
                // An ack from a processor already known dead is from a
                // corpse — the root died with its host. Recording it would
                // satisfy the ack timeout and wedge the launch (the same
                // slow-ack/fast-notice race Engine::on_ack guards against).
                if self.known_dead.contains(&child_addr.proc) {
                    if self.root_addr().is_none() && incarnation == self.incarnation {
                        self.reissue(fallback_dest, sink);
                    }
                    return;
                }
                let newer = match self.acked {
                    Some((_, prev)) => incarnation >= prev,
                    None => true,
                };
                if !newer {
                    return;
                }
                self.acked = Some((child_addr, incarnation));
                for mut sp in std::mem::take(&mut self.pending_salvages) {
                    sp.to = child_addr;
                    sink.push(Action::Send {
                        to: child_addr.proc,
                        msg: Msg::salvage(sp),
                    });
                }
            }
            Msg::Result(rp) => {
                self.on_result(*rp);
            }
            Msg::Salvage(sp) => self.on_salvage(*sp, fallback_dest, sink),
            Msg::FailureNotice { dead } => self.on_failure(dead, fallback_dest, sink),
            _ => {}
        }
    }

    fn on_result(&mut self, rp: ResultPacket) {
        if rp.from_stamp == self.packet.stamp && self.result.is_none() {
            self.result = Some(rp.value);
        }
    }

    /// An orphan of the (dead) root relayed its result here: recreate the
    /// root twin if needed and forward the salvage once placed.
    fn on_salvage(&mut self, sp: SalvagePacket, fallback_dest: ProcId, sink: &mut ActionSink) {
        if self.result.is_some() {
            return;
        }
        if !self.packet.stamp.is_self_or_ancestor_of(&sp.dead_stamp) {
            return;
        }
        match self.root_addr() {
            Some(addr) if !self.known_dead.contains(&addr.proc) => {
                let mut sp = sp;
                sp.to = addr;
                sink.push(Action::Send {
                    to: addr.proc,
                    msg: Msg::salvage(sp),
                });
            }
            _ => {
                self.pending_salvages.push(sp);
                // If we have not already reissued past the dead root, do so.
                if self.root_addr().is_none() && self.acked.is_some() {
                    // Reissue already pending (ack awaited); just buffer.
                } else if self
                    .acked
                    .map(|(a, _)| self.known_dead.contains(&a.proc))
                    .unwrap_or(false)
                {
                    self.reissue(fallback_dest, sink);
                }
            }
        }
    }

    /// Processor failure: if it hosted the root, reissue the program —
    /// "the regeneration of the root does not come naturally ... a
    /// preevaluation functional checkpoint needs to be implemented."
    pub fn on_failure(&mut self, dead: ProcId, fallback_dest: ProcId, sink: &mut ActionSink) {
        self.known_dead.insert(dead);
        if self.result.is_some() {
            return;
        }
        if let Some((addr, inc)) = self.acked {
            if addr.proc == dead && inc == self.incarnation {
                self.reissue(fallback_dest, sink);
            }
        }
    }

    /// Ack-timeout for the root spawn.
    pub fn on_timer(&mut self, timer: Timer, fallback_dest: ProcId, sink: &mut ActionSink) {
        match timer {
            Timer::AckTimeout(t) => {
                if self.result.is_some() {
                    return;
                }
                let incarnation = t.incarnation;
                let acked_current = self
                    .acked
                    .map(|(_, inc)| inc >= incarnation)
                    .unwrap_or(false);
                if !acked_current && incarnation >= self.incarnation {
                    self.reissue(fallback_dest, sink);
                }
            }
            Timer::LoadBeacon | Timer::GraceReissue { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sr() -> SuperRoot {
        SuperRoot::new(FnId(0), vec![Value::Int(10)], 2, 100)
    }

    fn launch(s: &mut SuperRoot, dest: ProcId) -> Vec<Action> {
        let mut sink = ActionSink::new();
        s.launch(dest, &mut sink);
        sink.drain_to_vec()
    }

    fn deliver(s: &mut SuperRoot, msg: Msg, fallback: ProcId) -> Vec<Action> {
        let mut sink = ActionSink::new();
        s.on_message(msg, fallback, &mut sink);
        sink.drain_to_vec()
    }

    fn fail(s: &mut SuperRoot, dead: ProcId, fallback: ProcId) -> Vec<Action> {
        let mut sink = ActionSink::new();
        s.on_failure(dead, fallback, &mut sink);
        sink.drain_to_vec()
    }

    fn fire(s: &mut SuperRoot, timer: Timer, fallback: ProcId) -> Vec<Action> {
        let mut sink = ActionSink::new();
        s.on_timer(timer, fallback, &mut sink);
        sink.drain_to_vec()
    }

    fn ack(sr_: &SuperRoot, proc: ProcId, inc: u32) -> Msg {
        Msg::ack(
            sr_.root_stamp().clone(),
            TaskAddr::new(proc, TaskKey(0)),
            TaskAddr::super_root(),
            inc,
        )
    }

    fn result(sr_: &SuperRoot, v: i64) -> Msg {
        Msg::result(ResultPacket {
            from_stamp: sr_.root_stamp().clone(),
            demand: sr_.packet.demand.clone(),
            value: Value::Int(v),
            to: TaskAddr::super_root(),
            to_stamp: LevelStamp::root(),
            relay_chain: vec![],
            replica: None,
        })
    }

    #[test]
    fn launch_spawns_root_with_stamp_one() {
        let mut s = sr();
        let actions = launch(&mut s, ProcId(0));
        assert_eq!(actions.len(), 2);
        assert!(matches!(
            &actions[1],
            Action::Send { to: ProcId(0), msg: Msg::Spawn(p) } if p.stamp == LevelStamp::from_digits(&[1])
        ));
    }

    #[test]
    fn result_is_captured_once() {
        let mut s = sr();
        launch(&mut s, ProcId(0));
        let m = ack(&s, ProcId(0), 0);
        deliver(&mut s, m, ProcId(0));
        assert_eq!(s.root_addr(), Some(TaskAddr::new(ProcId(0), TaskKey(0))));
        let m = result(&s, 55);
        deliver(&mut s, m, ProcId(0));
        assert_eq!(s.result(), Some(&Value::Int(55)));
        // Duplicate result (twin) ignored.
        let m = result(&s, 99);
        deliver(&mut s, m, ProcId(0));
        assert_eq!(s.result(), Some(&Value::Int(55)));
    }

    #[test]
    fn root_failure_triggers_reissue() {
        let mut s = sr();
        launch(&mut s, ProcId(0));
        let m = ack(&s, ProcId(0), 0);
        deliver(&mut s, m, ProcId(1));
        let actions = fail(&mut s, ProcId(0), ProcId(1));
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Send { to: ProcId(1), msg: Msg::Spawn(p) } if p.incarnation == 1)));
        assert_eq!(s.reissues, 1);
        // Failure of an unrelated processor does nothing.
        assert!(fail(&mut s, ProcId(7), ProcId(1)).is_empty());
    }

    #[test]
    fn no_reissue_after_completion() {
        let mut s = sr();
        launch(&mut s, ProcId(0));
        let m = ack(&s, ProcId(0), 0);
        deliver(&mut s, m, ProcId(1));
        let m = result(&s, 55);
        deliver(&mut s, m, ProcId(0));
        assert!(fail(&mut s, ProcId(0), ProcId(1)).is_empty());
        assert_eq!(s.reissues, 0);
    }

    #[test]
    fn late_ack_from_dead_host_reissues_instead_of_wedging() {
        // Slow-ack/fast-notice race (high-latency inter-shard router): the
        // failure notice for the root's host arrives while its placement
        // ack is still in flight. The notice finds nothing acked, so it
        // reissues nothing; the corpse's ack must then trigger the reissue
        // rather than being recorded — a recorded dead placement satisfies
        // the ack timeout and wedges the launch forever.
        let mut s = sr();
        launch(&mut s, ProcId(0));
        assert!(
            fail(&mut s, ProcId(0), ProcId(1)).is_empty(),
            "nothing acked yet, notice alone reissues nothing"
        );
        let m = ack(&s, ProcId(0), 0);
        let actions = deliver(&mut s, m, ProcId(1));
        assert!(
            actions.iter().any(|a| matches!(
                a,
                Action::Send { to: ProcId(1), msg: Msg::Spawn(p) } if p.incarnation == 1
            )),
            "{actions:?}"
        );
        assert_eq!(s.reissues, 1);
        assert_eq!(s.root_addr(), None, "dead placement must not be recorded");
    }

    #[test]
    fn ack_timeout_reissues_unplaced_root() {
        let mut s = sr();
        launch(&mut s, ProcId(0));
        let t = Timer::ack_timeout(TaskKey(0), s.root_stamp().clone(), 0);
        let actions = fire(&mut s, t.clone(), ProcId(2));
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Send { to: ProcId(2), .. })));
        // Stale timer after the ack: no-op.
        let m = ack(&s, ProcId(2), 1);
        deliver(&mut s, m, ProcId(2));
        assert!(fire(&mut s, t, ProcId(2)).is_empty());
    }

    #[test]
    fn salvage_buffers_until_twin_ack_then_flushes() {
        let mut s = sr();
        launch(&mut s, ProcId(0));
        let m = ack(&s, ProcId(0), 0);
        deliver(&mut s, m, ProcId(1));
        fail(&mut s, ProcId(0), ProcId(1)); // reissue to P1, not yet acked
        let sp = SalvagePacket {
            to: TaskAddr::super_root(),
            dead_stamp: s.root_stamp().clone(),
            dead_addr: TaskAddr::new(ProcId(0), TaskKey(0)),
            demand: Demand::new(FnId(0), vec![Value::Int(9)]),
            value: Value::Int(34),
            from_stamp: s.root_stamp().child(1),
        };
        let actions = deliver(&mut s, Msg::salvage(sp), ProcId(1));
        assert!(actions.is_empty(), "buffered until the twin root is placed");
        let m = ack(&s, ProcId(1), 1);
        let actions = deliver(&mut s, m, ProcId(1));
        assert!(
            actions.iter().any(|a| matches!(
                a,
                Action::Send {
                    to: ProcId(1),
                    msg: Msg::Salvage(_)
                }
            )),
            "{actions:?}"
        );
    }
}
