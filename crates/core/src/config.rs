//! Engine configuration: recovery mode, checkpoint policy, replication and
//! protocol timing.

use crate::policy::PolicySpec;
use splice_applicative::FnId;
use std::collections::HashMap;

/// Which recovery algorithm a processor runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryMode {
    /// No functional checkpointing at all. On any failure the computation is
    /// lost and must be restarted from the super-root (the paper's implicit
    /// baseline: "The user must restart the program").
    None,
    /// §3: simple rollback — re-issue the topmost checkpoints held for the
    /// dead processor; orphans commit suicide and are garbage collected.
    Rollback,
    /// §4: splice recovery — rollback's re-issue plus orphan-result
    /// salvaging via ancestor relays and step-parent twins.
    Splice,
}

impl RecoveryMode {
    /// True when functional checkpoints are being retained.
    pub fn checkpoints(self) -> bool {
        !matches!(self, RecoveryMode::None)
    }

    /// True when orphan results are salvaged.
    pub fn salvages(self) -> bool {
        matches!(self, RecoveryMode::Splice)
    }
}

/// When the topmost-checkpoint rule (§3.2) is applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckpointFilter {
    /// At recovery time, re-issue only the topmost live checkpoints per
    /// dead destination. This is the paper's scheme, made retire-aware.
    Topmost,
    /// Re-issue every live checkpoint held for the dead destination —
    /// including fruitless descendants like the paper's B5 example. Exists
    /// as an ablation (experiment E3).
    All,
}

/// How replica votes are concluded (§5.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VoteMode {
    /// Accept as soon as identical results arrive from a majority of the
    /// replicas: "a node does not have to wait for the slowest answer if it
    /// has received the identical results from the majority".
    Majority,
    /// Wait for all replicas before concluding — the synchronous-hardware-
    /// redundancy emulation used as the comparison point in experiment E10.
    WaitAll,
}

/// Replication request for one combinator ("The user may specify certain
/// critical sections of a program for such a highly reliable operation").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplicaSpec {
    /// Number of replicas (odd values make majorities meaningful).
    pub n: u32,
    /// Vote conclusion mode.
    pub vote: VoteMode,
}

/// Full engine configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Recovery algorithm.
    pub mode: RecoveryMode,
    /// Length of the ancestor chain carried in task packets, *including*
    /// the parent: 2 = parent + grandparent (the paper's splice scheme),
    /// 3 adds the great-grandparent (§5.2 multi-fault extension). Rollback
    /// ignores anything beyond the parent.
    pub ancestor_depth: usize,
    /// Topmost rule application.
    pub ckpt_filter: CheckpointFilter,
    /// Combinators to execute replicated.
    pub replicate: HashMap<FnId, ReplicaSpec>,
    /// Delay before an unacknowledged spawn is reissued (driver time units;
    /// Figure 6 state-b recovery: "processor G times out and reissues").
    pub ack_timeout: u64,
    /// Period of load-pressure beacons to placer neighbours.
    pub load_beacon_period: u64,
    /// Splice-only extension (experiment E13): defer twin creation by this
    /// many time units after a failure notice. 0 (the paper's eager scheme)
    /// regenerates twins immediately, which can duplicate orphan subtrees
    /// that are still computing (§4.1 cases 6/7); a grace period lets
    /// orphan results arrive first (cases 4/5) at the price of a slower
    /// recovery start. Salvage arrivals still create twins immediately —
    /// the grace only delays the *proactive* path.
    pub splice_grace: u64,
    /// When true, an engine that *first* learns of a processor's death —
    /// from a detector notice, a bounced send or a salvage arrival —
    /// forwards a `FailureNotice` to its placer neighbourhood, so
    /// discovery spreads even when the detector's broadcast is disabled
    /// (`DetectorConfig::broadcast = false`). A death already recorded in
    /// `known_dead` is never re-forwarded: the dedup keeps gossip for one
    /// death bounded at one broadcast per engine instead of echoing every
    /// redundant notice back into the network.
    pub gossip_notices: bool,
    /// When true, an ack-timeout on a child that *was* placed (the ack
    /// arrived; the result has not) re-arms the timer and sends a
    /// payload-free [`Msg::Probe`](crate::packet::Msg::Probe) to the
    /// child's host. A live host ignores the probe; a dead one bounces
    /// it, and the bounce feeds the normal failure-discovery path. This
    /// is what keeps a machine with no broadcasting failure detector
    /// live: bounces and ack timeouts only cover *unacked* spawns, so
    /// without probing a parent waits forever on an acked child whose
    /// host died silently. Machines force-enable it whenever the
    /// detector broadcast is off.
    pub probe_acked: bool,
    /// Number of super-root replicas
    /// ([`RootQuorum`](crate::superroot::RootQuorum)): the lowest-ranked
    /// live replica is the acting primary; successors take over from the
    /// replicated checkpoint when it crashes. `1` degenerates to the old
    /// reliable singleton bit-for-bit; fault plans can crash replicas via
    /// `crash_root_replica`.
    pub root_replicas: u32,
    /// Recovery policy ([`PolicySpec`]): what is persisted at spawn time,
    /// whether death discovery reissues eagerly or marks subtrees lost to
    /// rebuild on demand, and whether long-lived tasks re-checkpoint
    /// incrementally. The default, [`PolicySpec::eager`], is the paper's
    /// scheme and is bit-identical to the pre-policy engine.
    pub policy: PolicySpec,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            mode: RecoveryMode::Splice,
            ancestor_depth: 2,
            ckpt_filter: CheckpointFilter::Topmost,
            replicate: HashMap::new(),
            ack_timeout: 4_000,
            load_beacon_period: 500,
            splice_grace: 0,
            gossip_notices: true,
            probe_acked: false,
            root_replicas: 3,
            policy: PolicySpec::eager(),
        }
    }
}

impl Config {
    /// Convenience constructor for a given mode with paper defaults.
    pub fn with_mode(mode: RecoveryMode) -> Config {
        Config {
            mode,
            ..Config::default()
        }
    }

    /// Number of ancestor links to embed in spawned packets (beyond the
    /// parent link itself).
    pub fn links_beyond_parent(&self) -> usize {
        self.ancestor_depth.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_properties() {
        assert!(!RecoveryMode::None.checkpoints());
        assert!(RecoveryMode::Rollback.checkpoints());
        assert!(RecoveryMode::Splice.checkpoints());
        assert!(!RecoveryMode::Rollback.salvages());
        assert!(RecoveryMode::Splice.salvages());
    }

    #[test]
    fn default_is_paper_splice() {
        let c = Config::default();
        assert_eq!(c.mode, RecoveryMode::Splice);
        assert_eq!(c.ancestor_depth, 2);
        assert_eq!(c.links_beyond_parent(), 1);
        assert_eq!(c.ckpt_filter, CheckpointFilter::Topmost);
    }

    #[test]
    fn deeper_chains_for_multifault() {
        let mut c = Config::with_mode(RecoveryMode::Splice);
        c.ancestor_depth = 4;
        assert_eq!(c.links_beyond_parent(), 3);
    }
}
