//! Pluggable recovery policies: the paper's protocol as one point in a
//! measured design space.
//!
//! The paper hard-codes a single strategy — checkpoint the full task frame
//! at spawn time, reissue eagerly the moment a failure notice arrives. The
//! [`RecoveryPolicy`] trait extracts the three decisions that strategy
//! bundles together, so rivals can be swapped in without touching the
//! protocol loop:
//!
//! 1. **What to persist at spawn** ([`PersistenceTier`]): nothing, a
//!    placement record only, or the full task frame. This is HEAL's
//!    persistency-model axis — recovery cost is a function of what a
//!    crashed processor's successor inherits.
//! 2. **What to do on death discovery** ([`RecoveryPolicy::eager_on_death`]):
//!    reissue now (the paper), or mark the subtree *lost* and rebuild it
//!    only when its result is actually demanded — the weak-recovery scheme
//!    shown observationally equivalent by Fabbretti et al.
//! 3. **Whether long-lived tasks re-checkpoint incrementally**
//!    ([`RecoveryPolicy::recheckpoint_every`]): a parent that streams its
//!    children's completed results back to its own checkpoint owner lets a
//!    reissued twin preload those results and replay strictly fewer waves.
//!
//! Three named policies cover the interesting corners:
//!
//! | policy              | tier  | on death        | re-checkpoint |
//! |---------------------|-------|-----------------|---------------|
//! | [`PolicyKind::Eager`]           | Full  | reissue now     | never |
//! | [`PolicyKind::Lazy`]            | Full  | mark lost       | never |
//! | [`PolicyKind::MultiCheckpoint`] | Full  | reissue now     | every k results |
//!
//! `Eager` is bit-identical to the pre-refactor engine (pinned by golden
//! trace checksums in `tests/recovery_policy.rs`); the differential fuzz
//! suite in `tests/backend_fuzz.rs` holds all three to identical final
//! values under identical fault plans on every backend.

use std::fmt;

/// Which named recovery policy a processor runs. Carried in run reports and
/// the multi-process Init handshake.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum PolicyKind {
    /// The paper's scheme: reissue dead children the moment their death is
    /// discovered. Today's behavior, bit-for-bit.
    #[default]
    Eager,
    /// Weak recovery: a dead child is marked *lost*; its owner rebuilds the
    /// subtree only when every remaining demand is blocked on lost children
    /// (i.e. the result is actually needed). Crashed subtrees whose results
    /// are never demanded — e.g. because the demanding orphan itself dies —
    /// cost zero reissues.
    Lazy,
    /// The paper's eager reissue plus periodic incremental re-checkpointing:
    /// a parent ships every k-th completed child result back to its own
    /// checkpoint owner, so a reissued twin preloads them and replays
    /// strictly fewer waves after a late crash.
    MultiCheckpoint,
}

impl PolicyKind {
    /// All named policies, in wire-tag order.
    pub const ALL: [PolicyKind; 3] = [
        PolicyKind::Eager,
        PolicyKind::Lazy,
        PolicyKind::MultiCheckpoint,
    ];

    /// Stable short label for reports, traces and experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Eager => "eager",
            PolicyKind::Lazy => "lazy",
            PolicyKind::MultiCheckpoint => "multickpt",
        }
    }

    /// Stable wire tag (Init handshake, trace codec).
    pub fn tag(self) -> u8 {
        match self {
            PolicyKind::Eager => 0,
            PolicyKind::Lazy => 1,
            PolicyKind::MultiCheckpoint => 2,
        }
    }

    /// Inverse of [`PolicyKind::tag`].
    pub fn from_tag(tag: u8) -> Option<PolicyKind> {
        PolicyKind::ALL.into_iter().find(|k| k.tag() == tag)
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What a checkpoint owner persists for each spawned child — and therefore
/// what a crashed processor's successor inherits at reissue time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum PersistenceTier {
    /// Persist nothing. A crashed child is unrecoverable and the run stalls;
    /// exists as the restart-from-scratch ablation baseline.
    Nothing,
    /// Persist only the placement record (stamp + demand index). The reissue
    /// packet is rebuilt from the live owner task, trading checkpoint bytes
    /// for reconstruction work. Behaviorally identical to `Full` while the
    /// owner survives.
    Placement,
    /// Persist the full task frame — the paper's functional checkpoint.
    #[default]
    Full,
}

impl PersistenceTier {
    /// Stable wire tag (Init handshake).
    pub fn tag(self) -> u8 {
        match self {
            PersistenceTier::Nothing => 0,
            PersistenceTier::Placement => 1,
            PersistenceTier::Full => 2,
        }
    }

    /// Inverse of [`PersistenceTier::tag`].
    pub fn from_tag(tag: u8) -> Option<PersistenceTier> {
        match tag {
            0 => Some(PersistenceTier::Nothing),
            1 => Some(PersistenceTier::Placement),
            2 => Some(PersistenceTier::Full),
            _ => None,
        }
    }
}

/// Serializable recipe for a recovery policy: what `Config` carries, what
/// the Init handshake ships, and what [`PolicySpec::build`] turns into a
/// live [`RecoveryPolicy`] object.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PolicySpec {
    /// Named policy selecting the death-discovery behavior.
    pub kind: PolicyKind,
    /// Persistence tier for spawn-time checkpoints.
    pub tier: PersistenceTier,
    /// Re-checkpoint period in completed child results; 0 disables. Only
    /// meaningful (and only defaulted non-zero) for `MultiCheckpoint`.
    pub recheckpoint_every: u32,
}

impl Default for PolicySpec {
    fn default() -> Self {
        PolicySpec::eager()
    }
}

impl PolicySpec {
    /// The paper's eager scheme (today's behavior, bit-identical).
    pub fn eager() -> PolicySpec {
        PolicySpec {
            kind: PolicyKind::Eager,
            tier: PersistenceTier::Full,
            recheckpoint_every: 0,
        }
    }

    /// Weak recovery: mark lost on death, rebuild on demand.
    pub fn lazy() -> PolicySpec {
        PolicySpec {
            kind: PolicyKind::Lazy,
            tier: PersistenceTier::Full,
            recheckpoint_every: 0,
        }
    }

    /// Eager reissue with incremental re-checkpointing every `every`
    /// completed child results (values < 1 are clamped to 1).
    pub fn multi_checkpoint(every: u32) -> PolicySpec {
        PolicySpec {
            kind: PolicyKind::MultiCheckpoint,
            tier: PersistenceTier::Full,
            recheckpoint_every: every.max(1),
        }
    }

    /// The spec for a named policy with its canonical knob defaults
    /// (`MultiCheckpoint` re-checkpoints every result).
    pub fn of(kind: PolicyKind) -> PolicySpec {
        match kind {
            PolicyKind::Eager => PolicySpec::eager(),
            PolicyKind::Lazy => PolicySpec::lazy(),
            PolicyKind::MultiCheckpoint => PolicySpec::multi_checkpoint(1),
        }
    }

    /// Build the live policy object the engine consults.
    pub fn build(self) -> Box<dyn RecoveryPolicy> {
        match self.kind {
            PolicyKind::Eager => Box::new(Eager { tier: self.tier }),
            PolicyKind::Lazy => Box::new(Lazy { tier: self.tier }),
            PolicyKind::MultiCheckpoint => Box::new(MultiCheckpoint {
                tier: self.tier,
                every: self.recheckpoint_every.max(1),
            }),
        }
    }
}

/// The recovery-decision seam the engine consults instead of hard-coding
/// the paper's strategy. Implementations must be cheap: every method is
/// called on hot protocol paths.
pub trait RecoveryPolicy: Send + Sync {
    /// Which named policy this is (for reports and traces).
    fn kind(&self) -> PolicyKind;

    /// What to persist for each spawned child.
    fn tier(&self) -> PersistenceTier {
        PersistenceTier::Full
    }

    /// True: reissue a dead child the moment its death is discovered (the
    /// paper). False: mark it lost and rebuild only when demanded.
    fn eager_on_death(&self) -> bool {
        true
    }

    /// Incremental re-checkpoint period in completed child results;
    /// 0 disables re-checkpointing entirely.
    fn recheckpoint_every(&self) -> u32 {
        0
    }
}

/// The paper's scheme. See [`PolicyKind::Eager`].
struct Eager {
    tier: PersistenceTier,
}

impl RecoveryPolicy for Eager {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Eager
    }
    fn tier(&self) -> PersistenceTier {
        self.tier
    }
}

/// Weak recovery. See [`PolicyKind::Lazy`].
struct Lazy {
    tier: PersistenceTier,
}

impl RecoveryPolicy for Lazy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Lazy
    }
    fn tier(&self) -> PersistenceTier {
        self.tier
    }
    fn eager_on_death(&self) -> bool {
        false
    }
}

/// Eager plus incremental re-checkpointing. See
/// [`PolicyKind::MultiCheckpoint`].
struct MultiCheckpoint {
    tier: PersistenceTier,
    every: u32,
}

impl RecoveryPolicy for MultiCheckpoint {
    fn kind(&self) -> PolicyKind {
        PolicyKind::MultiCheckpoint
    }
    fn tier(&self) -> PersistenceTier {
        self.tier
    }
    fn recheckpoint_every(&self) -> u32 {
        self.every
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_the_paper() {
        let s = PolicySpec::default();
        assert_eq!(s, PolicySpec::eager());
        let p = s.build();
        assert_eq!(p.kind(), PolicyKind::Eager);
        assert_eq!(p.tier(), PersistenceTier::Full);
        assert!(p.eager_on_death());
        assert_eq!(p.recheckpoint_every(), 0);
    }

    #[test]
    fn lazy_defers_and_multickpt_streams() {
        let lazy = PolicySpec::lazy().build();
        assert!(!lazy.eager_on_death());
        assert_eq!(lazy.recheckpoint_every(), 0);
        let mc = PolicySpec::multi_checkpoint(3).build();
        assert!(mc.eager_on_death());
        assert_eq!(mc.recheckpoint_every(), 3);
        assert_eq!(
            PolicySpec::multi_checkpoint(0).build().recheckpoint_every(),
            1
        );
    }

    #[test]
    fn tags_round_trip() {
        for k in PolicyKind::ALL {
            assert_eq!(PolicyKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(PolicyKind::from_tag(9), None);
        for t in [
            PersistenceTier::Nothing,
            PersistenceTier::Placement,
            PersistenceTier::Full,
        ] {
            assert_eq!(PersistenceTier::from_tag(t.tag()), Some(t));
        }
        assert_eq!(PersistenceTier::from_tag(9), None);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(PolicyKind::Eager.label(), "eager");
        assert_eq!(PolicyKind::Lazy.label(), "lazy");
        assert_eq!(PolicyKind::MultiCheckpoint.label(), "multickpt");
        assert_eq!(format!("{}", PolicyKind::Lazy), "lazy");
    }
}
