//! Per-processor protocol statistics.
//!
//! Every counter here backs at least one experiment: fault-free overhead
//! (E8) reads message and checkpoint counters, recovery experiments (E1,
//! E4–E7) read reissue/salvage/suicide counters, replication (E10) reads the
//! vote counters.

use crate::packet::MsgKind;
use std::fmt;
use std::ops::AddAssign;

/// Counters collected by one engine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Tasks instantiated locally (including twins and replicas).
    pub tasks_created: u64,
    /// Tasks that ran to completion locally.
    pub tasks_completed: u64,
    /// Evaluation waves run.
    pub waves_run: u64,
    /// Abstract work units (AST nodes walked).
    pub work_units: u64,
    /// Messages sent, by kind.
    pub msgs_sent: [u64; MsgKind::ALL.len()],
    /// Messages received, by kind.
    pub msgs_recv: [u64; MsgKind::ALL.len()],
    /// Abstract bytes sent.
    pub bytes_sent: u64,
    /// Child spawns emitted (original placements only).
    pub spawns_emitted: u64,
    /// Packet reissues (ack timeouts, bounces, recovery).
    pub reissues: u64,
    /// Ack timeouts fired on still-unacked spawns.
    pub ack_timeouts: u64,
    /// Checkpoints currently live is tracked by the table; this is the
    /// number of step-parent (twin) tasks this engine created.
    pub step_parents_created: u64,
    /// Orphan results successfully spliced into a twin's evaluation.
    pub salvaged_results: u64,
    /// Salvages consumed *before* the twin demanded the child (§4.1 cases
    /// 4/5: "P' will not spawn C' because the answer is already there").
    pub salvage_before_spawn: u64,
    /// Salvages consumed *after* the twin had already spawned the duplicate
    /// (§4.1 case 6: the duplicate's eventual result is ignored).
    pub salvage_after_spawn: u64,
    /// Salvage packets forwarded a hop down a regenerated spine.
    pub salvage_forwarded: u64,
    /// Salvage packets dropped (stale or unroutable — §4.1 case 8).
    pub salvage_dropped: u64,
    /// Orphan results stranded because the entire ancestor chain was dead
    /// (§5.2: "the orphan task would be stranded").
    pub stranded_orphans: u64,
    /// Abort messages sent (rollback suicide cascade).
    pub aborts_sent: u64,
    /// Local tasks aborted by the cascade.
    pub tasks_aborted: u64,
    /// Orphans that "committed suicide" on discovering the parent dead.
    pub orphans_suicided: u64,
    /// Duplicate results ignored ("the second copy is simply ignored").
    pub duplicate_results_ignored: u64,
    /// Messages ignored because no rule applied (stale addressees etc.).
    pub stale_messages_ignored: u64,
    /// Replica votes concluded by majority.
    pub votes_decided: u64,
    /// Replica votes concluded without a clean majority.
    pub votes_conflicted: u64,
    /// Replica results that disagreed with a vote's accepted answer — a
    /// corrupt (or stale) minority outvoted by the group.
    pub votes_dissenting: u64,
    /// Replica results received.
    pub replica_results: u64,
    /// Evaluation errors surfaced (should stay 0 on shipped workloads).
    pub eval_errors: u64,
    /// Lazy policy: lost children reissued because their owner's progress
    /// actually demanded them (each rebuild also counts in `reissues`).
    pub lazy_rebuilds: u64,
    /// MultiCheckpoint policy: incremental re-checkpoint messages emitted.
    pub recheckpoints: u64,
}

impl ProcStats {
    /// Records a sent message.
    pub fn sent(&mut self, kind: MsgKind, size: usize) {
        self.msgs_sent[kind as usize] += 1;
        self.bytes_sent += size as u64;
    }

    /// Records a received message.
    pub fn received(&mut self, kind: MsgKind) {
        self.msgs_recv[kind as usize] += 1;
    }

    /// Total messages sent across kinds.
    pub fn total_sent(&self) -> u64 {
        self.msgs_sent.iter().sum()
    }

    /// Total messages received across kinds.
    pub fn total_recv(&self) -> u64 {
        self.msgs_recv.iter().sum()
    }

    /// Messages sent of one kind.
    pub fn sent_of(&self, kind: MsgKind) -> u64 {
        self.msgs_sent[kind as usize]
    }
}

impl AddAssign<&ProcStats> for ProcStats {
    fn add_assign(&mut self, rhs: &ProcStats) {
        self.tasks_created += rhs.tasks_created;
        self.tasks_completed += rhs.tasks_completed;
        self.waves_run += rhs.waves_run;
        self.work_units += rhs.work_units;
        for i in 0..MsgKind::ALL.len() {
            self.msgs_sent[i] += rhs.msgs_sent[i];
            self.msgs_recv[i] += rhs.msgs_recv[i];
        }
        self.bytes_sent += rhs.bytes_sent;
        self.spawns_emitted += rhs.spawns_emitted;
        self.reissues += rhs.reissues;
        self.ack_timeouts += rhs.ack_timeouts;
        self.step_parents_created += rhs.step_parents_created;
        self.salvaged_results += rhs.salvaged_results;
        self.salvage_before_spawn += rhs.salvage_before_spawn;
        self.salvage_after_spawn += rhs.salvage_after_spawn;
        self.salvage_forwarded += rhs.salvage_forwarded;
        self.salvage_dropped += rhs.salvage_dropped;
        self.stranded_orphans += rhs.stranded_orphans;
        self.aborts_sent += rhs.aborts_sent;
        self.tasks_aborted += rhs.tasks_aborted;
        self.orphans_suicided += rhs.orphans_suicided;
        self.duplicate_results_ignored += rhs.duplicate_results_ignored;
        self.stale_messages_ignored += rhs.stale_messages_ignored;
        self.votes_decided += rhs.votes_decided;
        self.votes_conflicted += rhs.votes_conflicted;
        self.votes_dissenting += rhs.votes_dissenting;
        self.replica_results += rhs.replica_results;
        self.eval_errors += rhs.eval_errors;
        self.lazy_rebuilds += rhs.lazy_rebuilds;
        self.recheckpoints += rhs.recheckpoints;
    }
}

impl fmt::Display for ProcStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "tasks: {} created, {} completed, {} aborted; waves {}, work {}",
            self.tasks_created,
            self.tasks_completed,
            self.tasks_aborted,
            self.waves_run,
            self.work_units
        )?;
        write!(f, "msgs:")?;
        for k in MsgKind::ALL {
            let n = self.msgs_sent[k as usize];
            if n > 0 {
                write!(f, " {k}={n}")?;
            }
        }
        writeln!(f)?;
        write!(
            f,
            "recovery: {} reissues, {} step-parents, {} salvaged, {} suicided, {} stranded",
            self.reissues,
            self.step_parents_created,
            self.salvaged_results,
            self.orphans_suicided,
            self.stranded_orphans
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_receive_accounting() {
        let mut s = ProcStats::default();
        s.sent(MsgKind::Spawn, 10);
        s.sent(MsgKind::Spawn, 5);
        s.sent(MsgKind::Result, 3);
        s.received(MsgKind::Ack);
        assert_eq!(s.total_sent(), 3);
        assert_eq!(s.sent_of(MsgKind::Spawn), 2);
        assert_eq!(s.total_recv(), 1);
        assert_eq!(s.bytes_sent, 18);
    }

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = ProcStats {
            tasks_created: 3,
            ..ProcStats::default()
        };
        a.sent(MsgKind::Load, 1);
        let mut b = ProcStats {
            tasks_created: 4,
            salvaged_results: 2,
            ..ProcStats::default()
        };
        b.sent(MsgKind::Load, 1);
        a += &b;
        assert_eq!(a.tasks_created, 7);
        assert_eq!(a.salvaged_results, 2);
        assert_eq!(a.sent_of(MsgKind::Load), 2);
    }

    #[test]
    fn display_is_compact() {
        let mut s = ProcStats {
            tasks_created: 1,
            ..ProcStats::default()
        };
        s.sent(MsgKind::Spawn, 4);
        let text = s.to_string();
        assert!(text.contains("spawn=1"));
        assert!(text.contains("1 created"));
    }
}
