//! Processor and task identifiers.

use std::fmt;

/// A processor (node) identifier.
///
/// Processors are numbered `0..n`. The reserved id [`ProcId::SUPER_ROOT`]
/// denotes the reliable host of the super-root (paper §4.3.1: "a super-root
/// which acts as the parent processor of all user programs"); in both the
/// simulator and the threaded runtime it is owned by the driver and cannot
/// fail.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub u32);

impl ProcId {
    /// The reliable pseudo-processor hosting the super-root.
    pub const SUPER_ROOT: ProcId = ProcId(u32::MAX);

    /// True for the super-root pseudo-processor.
    pub fn is_super_root(self) -> bool {
        self == ProcId::SUPER_ROOT
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_super_root() {
            write!(f, "P(super-root)")
        } else {
            write!(f, "P{}", self.0)
        }
    }
}

/// A locally unique task identifier within one processor. Keys are never
/// reused, so a stale message referring to a completed task simply finds no
/// task — the paper's "rule of thumb: ... the processor simply ignores the
/// received message".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskKey(pub u64);

impl fmt::Display for TaskKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A globally unique task address: processor plus local key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TaskAddr {
    /// Hosting processor.
    pub proc: ProcId,
    /// Local key on that processor.
    pub key: TaskKey,
}

impl TaskAddr {
    /// Creates an address.
    pub fn new(proc: ProcId, key: TaskKey) -> TaskAddr {
        TaskAddr { proc, key }
    }

    /// The super-root's well-known address.
    pub fn super_root() -> TaskAddr {
        TaskAddr {
            proc: ProcId::SUPER_ROOT,
            key: TaskKey(0),
        }
    }
}

impl fmt::Display for TaskAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.proc, self.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(ProcId(3).to_string(), "P3");
        assert_eq!(ProcId::SUPER_ROOT.to_string(), "P(super-root)");
        assert_eq!(TaskAddr::new(ProcId(1), TaskKey(9)).to_string(), "P1/t9");
    }

    #[test]
    fn super_root_is_reserved() {
        assert!(ProcId::SUPER_ROOT.is_super_root());
        assert!(!ProcId(0).is_super_root());
        assert_eq!(TaskAddr::super_root().proc, ProcId::SUPER_ROOT);
    }
}
