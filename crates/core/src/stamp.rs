//! Level stamps (paper §3.1).
//!
//! "Assume that the root task carries a null level number, a task at level
//! one will bear a unique one digit identification. Tasks in subsequent
//! levels are stamped by appending one more digit to the number of their
//! parents. ... Since each task is associated with a unique level stamp, it
//! is obvious that ancestor-descendant relationships can be observed by
//! comparing stamps. Note that a level stamp is not a time stamp. Its
//! uniqueness is guaranteed by the program structure."
//!
//! Digits here are `u32` child indices assigned in deterministic demand
//! order (see `splice-applicative`'s wave evaluator): the first child a task
//! spawns gets digit 1, the second digit 2, and so on. Because demand order
//! is schedule-independent, a regenerated twin assigns its children the
//! *same* stamps as the dead original — the property splice recovery's
//! result salvaging is built on.

use std::fmt;
use std::sync::Arc;

/// A hierarchical task identifier. The root stamp is empty ("null").
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LevelStamp(Arc<[u32]>);

impl LevelStamp {
    /// The root task's (empty) stamp.
    pub fn root() -> LevelStamp {
        LevelStamp(Arc::from([] as [u32; 0]))
    }

    /// Builds a stamp from explicit digits (mostly for tests and scenarios).
    pub fn from_digits(digits: &[u32]) -> LevelStamp {
        LevelStamp(Arc::from(digits))
    }

    /// The stamp of this task's `digit`-th child (digits start at 1).
    pub fn child(&self, digit: u32) -> LevelStamp {
        debug_assert!(digit >= 1, "child digits start at 1");
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.extend_from_slice(&self.0);
        v.push(digit);
        LevelStamp(v.into())
    }

    /// The parent's stamp, or `None` for the root.
    pub fn parent(&self) -> Option<LevelStamp> {
        if self.0.is_empty() {
            None
        } else {
            Some(LevelStamp(Arc::from(&self.0[..self.0.len() - 1])))
        }
    }

    /// The task's level: the root is level 0.
    pub fn level(&self) -> usize {
        self.0.len()
    }

    /// The raw digits.
    pub fn digits(&self) -> &[u32] {
        &self.0
    }

    /// True if `self` is a *strict* ancestor of `other` (a proper prefix).
    pub fn is_ancestor_of(&self, other: &LevelStamp) -> bool {
        self.0.len() < other.0.len() && other.0[..self.0.len()] == *self.0
    }

    /// True if `self` is `other` or an ancestor of it.
    pub fn is_self_or_ancestor_of(&self, other: &LevelStamp) -> bool {
        self == other || self.is_ancestor_of(other)
    }

    /// True if `self` is a *strict* descendant of `other`.
    pub fn is_descendant_of(&self, other: &LevelStamp) -> bool {
        other.is_ancestor_of(self)
    }

    /// If `self` is an ancestor of `descendant`, returns the stamp of
    /// `self`'s immediate child lying on the path down to `descendant`.
    /// This is the routing step splice recovery uses to relay salvaged
    /// results down a regenerated spine.
    pub fn child_towards(&self, descendant: &LevelStamp) -> Option<LevelStamp> {
        if self.is_ancestor_of(descendant) {
            Some(LevelStamp(Arc::from(&descendant.0[..self.0.len() + 1])))
        } else {
            None
        }
    }

    /// Longest common ancestor of two stamps.
    pub fn common_ancestor(&self, other: &LevelStamp) -> LevelStamp {
        let n = self
            .0
            .iter()
            .zip(other.0.iter())
            .take_while(|(a, b)| a == b)
            .count();
        LevelStamp(Arc::from(&self.0[..n]))
    }

    /// Selects the *topmost* stamps of a set: the minimal antichain under
    /// the ancestor order. Recovery re-issues only these ("an efficient way
    /// to salvage a group of genealogical dependents is to redo only the
    /// most ancient ancestor and ignore the rest", §3).
    pub fn topmost(stamps: impl IntoIterator<Item = LevelStamp>) -> Vec<LevelStamp> {
        let mut sorted: Vec<LevelStamp> = stamps.into_iter().collect();
        // Lexicographic order puts every ancestor immediately before its
        // descendants, so one pass with a "last kept" marker suffices.
        sorted.sort();
        sorted.dedup();
        let mut out: Vec<LevelStamp> = Vec::new();
        for s in sorted {
            match out.last() {
                Some(last) if last.is_self_or_ancestor_of(&s) => {}
                _ => out.push(s),
            }
        }
        out
    }
}

impl fmt::Display for LevelStamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "ε");
        }
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for LevelStamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LevelStamp({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(d: &[u32]) -> LevelStamp {
        LevelStamp::from_digits(d)
    }

    #[test]
    fn root_is_null() {
        assert_eq!(LevelStamp::root().level(), 0);
        assert_eq!(LevelStamp::root().to_string(), "ε");
        assert_eq!(LevelStamp::root().parent(), None);
    }

    #[test]
    fn child_appends_digit() {
        let root = LevelStamp::root();
        let c1 = root.child(1);
        let c12 = c1.child(2);
        assert_eq!(c1.digits(), &[1]);
        assert_eq!(c12.digits(), &[1, 2]);
        assert_eq!(c12.to_string(), "1.2");
        assert_eq!(c12.level(), 2);
        assert_eq!(c12.parent(), Some(c1.clone()));
        assert_eq!(c1.parent(), Some(root));
    }

    #[test]
    fn ancestry_is_prefix_order() {
        let a = s(&[1]);
        let b = s(&[1, 2]);
        let c = s(&[1, 2, 3]);
        let d = s(&[2]);
        assert!(a.is_ancestor_of(&b));
        assert!(a.is_ancestor_of(&c));
        assert!(b.is_ancestor_of(&c));
        assert!(!b.is_ancestor_of(&a));
        assert!(!a.is_ancestor_of(&a), "ancestry is strict");
        assert!(a.is_self_or_ancestor_of(&a));
        assert!(!a.is_ancestor_of(&d));
        assert!(!d.is_ancestor_of(&a));
        assert!(c.is_descendant_of(&a));
        assert!(LevelStamp::root().is_ancestor_of(&a));
    }

    #[test]
    fn digit_boundaries_do_not_alias() {
        // 1.12 must not look like a descendant of 1.1 — a digit-string
        // encoding would get this wrong, the digit-vector encoding must not.
        let a = s(&[1, 1]);
        let b = s(&[1, 12]);
        assert!(!a.is_ancestor_of(&b));
        assert!(!b.is_ancestor_of(&a));
    }

    #[test]
    fn child_towards_routes_one_step() {
        let a = s(&[1]);
        let target = s(&[1, 3, 2, 4]);
        assert_eq!(a.child_towards(&target), Some(s(&[1, 3])));
        assert_eq!(s(&[1, 3]).child_towards(&target), Some(s(&[1, 3, 2])));
        assert_eq!(target.child_towards(&target), None);
        assert_eq!(s(&[2]).child_towards(&target), None);
    }

    #[test]
    fn common_ancestor_is_longest_prefix() {
        assert_eq!(s(&[1, 2, 3]).common_ancestor(&s(&[1, 2, 7])), s(&[1, 2]));
        assert_eq!(s(&[1]).common_ancestor(&s(&[2])), LevelStamp::root());
        assert_eq!(s(&[1, 2]).common_ancestor(&s(&[1, 2])), s(&[1, 2]));
    }

    #[test]
    fn topmost_selects_minimal_antichain() {
        // The paper's B-entry example: {B2, B3, B5} where B5 is a descendant
        // of B2 — recovery must reissue only B2 and B3.
        let b2 = s(&[1, 1]);
        let b3 = s(&[1, 2]);
        let b5 = s(&[1, 1, 2, 1]); // B5 under B2
        let top = LevelStamp::topmost([b5.clone(), b2.clone(), b3.clone()]);
        assert_eq!(top, vec![b2.clone(), b3.clone()]);
        // Duplicates collapse; unrelated stamps all survive.
        let top = LevelStamp::topmost([b2.clone(), b2.clone()]);
        assert_eq!(top, vec![b2.clone()]);
        let top = LevelStamp::topmost([s(&[3]), s(&[2]), s(&[1])]);
        assert_eq!(top.len(), 3);
        // An ancestor swallows everything below it.
        let top = LevelStamp::topmost([b5, b3.clone(), b2.clone(), s(&[1])]);
        assert_eq!(top, vec![s(&[1])]);
    }

    #[test]
    fn topmost_of_empty_is_empty() {
        assert!(LevelStamp::topmost([]).is_empty());
    }

    #[test]
    fn ordering_groups_subtrees() {
        let mut v = vec![s(&[2]), s(&[1, 2]), s(&[1]), s(&[1, 1, 1])];
        v.sort();
        assert_eq!(v, vec![s(&[1]), s(&[1, 1, 1]), s(&[1, 2]), s(&[2])]);
    }
}
