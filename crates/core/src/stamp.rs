//! Level stamps (paper §3.1).
//!
//! "Assume that the root task carries a null level number, a task at level
//! one will bear a unique one digit identification. Tasks in subsequent
//! levels are stamped by appending one more digit to the number of their
//! parents. ... Since each task is associated with a unique level stamp, it
//! is obvious that ancestor-descendant relationships can be observed by
//! comparing stamps. Note that a level stamp is not a time stamp. Its
//! uniqueness is guaranteed by the program structure."
//!
//! Digits here are `u32` child indices assigned in deterministic demand
//! order (see `splice-applicative`'s wave evaluator): the first child a task
//! spawns gets digit 1, the second digit 2, and so on. Because demand order
//! is schedule-independent, a regenerated twin assigns its children the
//! *same* stamps as the dead original — the property splice recovery's
//! result salvaging is built on.
//!
//! # Representation
//!
//! Stamps are the hottest value type in the protocol: every packet carries
//! several, every checkpoint-table and child-map operation keys on one, and
//! `child()`/`parent()` run once per spawn/salvage hop. The representation
//! is therefore split:
//!
//! * **Inline**: up to [`INLINE_DIGITS`] digits, each ≤ 255, packed into a
//!   fixed byte array held by value. `clone`, `child`, `parent`, `cmp` and
//!   `hash` touch no heap and take no refcounts. Real task trees live here:
//!   a digit is a per-parent child index (bounded by a task's demand
//!   fan-out) and the level is the recursion depth.
//! * **Heap**: deeper or wider stamps fall back to a shared `Arc` of the
//!   digit vector with the stamp's hash computed once and cached alongside,
//!   so map operations on pathological stamps stay cheap too.
//!
//! The representation is *canonical*: a digit string fits inline if and
//! only if it is stored inline, so equality and ordering never compare
//! across representations except to answer "not equal" / digit-wise.
//! Unused inline slots are kept zero, which makes whole-array comparison
//! plus a length tie-break agree exactly with lexicographic digit order
//! (digit sequences are compared element-wise and a strict prefix sorts
//! first — `[1] < [1,1] < [1,2] < [2]`).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Maximum digits (tree depth) a stamp can hold without heap allocation.
pub const INLINE_DIGITS: usize = 22;

/// Heap fallback: the digit vector plus its hash, computed once.
#[derive(Debug)]
struct HeapStamp {
    hash: u64,
    digits: Vec<u32>,
}

impl HeapStamp {
    fn new(digits: Vec<u32>) -> HeapStamp {
        HeapStamp {
            hash: fnv1a(&digits),
            digits,
        }
    }
}

/// FNV-1a over the digit words: the cached hash of heap stamps.
fn fnv1a(digits: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for d in digits {
        h ^= u64::from(*d);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[derive(Clone, Debug)]
enum Repr {
    /// ≤ `INLINE_DIGITS` digits, each ≤ 255; slots past `len` are zero.
    Inline {
        len: u8,
        digits: [u8; INLINE_DIGITS],
    },
    /// Anything deeper or wider.
    Heap(Arc<HeapStamp>),
}

/// A hierarchical task identifier. The root stamp is empty ("null").
#[derive(Clone)]
pub struct LevelStamp(Repr);

/// True when a digit string qualifies for the inline representation.
fn fits_inline(digits: &[u32]) -> bool {
    digits.len() <= INLINE_DIGITS && digits.iter().all(|d| *d <= u8::MAX as u32)
}

impl LevelStamp {
    /// The root task's (empty) stamp.
    pub fn root() -> LevelStamp {
        LevelStamp(Repr::Inline {
            len: 0,
            digits: [0; INLINE_DIGITS],
        })
    }

    /// Builds a stamp from explicit digits (mostly for tests and scenarios).
    pub fn from_digits(digits: &[u32]) -> LevelStamp {
        if fits_inline(digits) {
            let mut d = [0u8; INLINE_DIGITS];
            for (slot, digit) in d.iter_mut().zip(digits) {
                *slot = *digit as u8;
            }
            LevelStamp(Repr::Inline {
                len: digits.len() as u8,
                digits: d,
            })
        } else {
            LevelStamp(Repr::Heap(Arc::new(HeapStamp::new(digits.to_vec()))))
        }
    }

    /// The stamp of this task's `digit`-th child (digits start at 1).
    pub fn child(&self, digit: u32) -> LevelStamp {
        debug_assert!(digit >= 1, "child digits start at 1");
        match &self.0 {
            Repr::Inline { len, digits } if (*len as usize) < INLINE_DIGITS && digit <= 255 => {
                let mut d = *digits;
                d[*len as usize] = digit as u8;
                LevelStamp(Repr::Inline {
                    len: len + 1,
                    digits: d,
                })
            }
            _ => {
                let mut v = Vec::with_capacity(self.level() + 1);
                v.extend(self.iter());
                v.push(digit);
                LevelStamp(Repr::Heap(Arc::new(HeapStamp::new(v))))
            }
        }
    }

    /// The stamp made of this stamp's first `k` digits (`k ≤ level`).
    fn prefix(&self, k: usize) -> LevelStamp {
        debug_assert!(k <= self.level());
        match &self.0 {
            Repr::Inline { digits, .. } => {
                let mut d = [0u8; INLINE_DIGITS];
                d[..k].copy_from_slice(&digits[..k]);
                LevelStamp(Repr::Inline {
                    len: k as u8,
                    digits: d,
                })
            }
            Repr::Heap(h) => LevelStamp::from_digits(&h.digits[..k]),
        }
    }

    /// The parent's stamp, or `None` for the root.
    pub fn parent(&self) -> Option<LevelStamp> {
        match self.level() {
            0 => None,
            n => Some(self.prefix(n - 1)),
        }
    }

    /// The task's level: the root is level 0.
    pub fn level(&self) -> usize {
        match &self.0 {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(h) => h.digits.len(),
        }
    }

    /// The raw digits, materialized. Inline stamps store digits packed, so
    /// this allocates; it exists for tests, traces and scenario scripts —
    /// hot paths use [`LevelStamp::iter`] or the comparison helpers.
    pub fn digits(&self) -> Vec<u32> {
        self.iter().collect()
    }

    /// Iterates the digits without materializing them.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        let (inline, heap): (&[u8], &[u32]) = match &self.0 {
            Repr::Inline { len, digits } => (&digits[..*len as usize], &[]),
            Repr::Heap(h) => (&[], &h.digits),
        };
        inline
            .iter()
            .map(|d| u32::from(*d))
            .chain(heap.iter().copied())
    }

    /// True if `self`'s digits are a prefix of `other`'s.
    fn is_prefix_of(&self, other: &LevelStamp) -> bool {
        match (&self.0, &other.0) {
            (
                Repr::Inline { len: la, digits: a },
                Repr::Inline {
                    len: lb, digits: b, ..
                },
            ) => la <= lb && a[..*la as usize] == b[..*la as usize],
            (Repr::Heap(a), Repr::Heap(b)) => {
                a.digits.len() <= b.digits.len() && b.digits[..a.digits.len()] == a.digits[..]
            }
            // Mixed representations: compare digit-wise (rare path).
            _ => self.level() <= other.level() && self.iter().eq(other.iter().take(self.level())),
        }
    }

    /// True if `self` is a *strict* ancestor of `other` (a proper prefix).
    pub fn is_ancestor_of(&self, other: &LevelStamp) -> bool {
        self.level() < other.level() && self.is_prefix_of(other)
    }

    /// True if `self` is `other` or an ancestor of it.
    pub fn is_self_or_ancestor_of(&self, other: &LevelStamp) -> bool {
        self.level() <= other.level() && self.is_prefix_of(other)
    }

    /// True if `self` is a *strict* descendant of `other`.
    pub fn is_descendant_of(&self, other: &LevelStamp) -> bool {
        other.is_ancestor_of(self)
    }

    /// If `self` is an ancestor of `descendant`, returns the stamp of
    /// `self`'s immediate child lying on the path down to `descendant`.
    /// This is the routing step splice recovery uses to relay salvaged
    /// results down a regenerated spine.
    pub fn child_towards(&self, descendant: &LevelStamp) -> Option<LevelStamp> {
        if self.is_ancestor_of(descendant) {
            Some(descendant.prefix(self.level() + 1))
        } else {
            None
        }
    }

    /// Longest common ancestor of two stamps.
    pub fn common_ancestor(&self, other: &LevelStamp) -> LevelStamp {
        let n = self
            .iter()
            .zip(other.iter())
            .take_while(|(a, b)| a == b)
            .count();
        self.prefix(n)
    }

    /// Selects the *topmost* stamps of a set: the minimal antichain under
    /// the ancestor order. Recovery re-issues only these ("an efficient way
    /// to salvage a group of genealogical dependents is to redo only the
    /// most ancient ancestor and ignore the rest", §3).
    pub fn topmost(stamps: impl IntoIterator<Item = LevelStamp>) -> Vec<LevelStamp> {
        let mut sorted: Vec<LevelStamp> = stamps.into_iter().collect();
        // Lexicographic order puts every ancestor immediately before its
        // descendants, so one pass with a "last kept" marker suffices.
        sorted.sort();
        sorted.dedup();
        let mut out: Vec<LevelStamp> = Vec::new();
        for s in sorted {
            match out.last() {
                Some(last) if last.is_self_or_ancestor_of(&s) => {}
                _ => out.push(s),
            }
        }
        out
    }
}

impl PartialEq for LevelStamp {
    fn eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (Repr::Inline { len: la, digits: a }, Repr::Inline { len: lb, digits: b }) => {
                la == lb && a == b
            }
            (Repr::Heap(a), Repr::Heap(b)) => {
                Arc::ptr_eq(a, b) || (a.hash == b.hash && a.digits == b.digits)
            }
            // Canonical representation: equal digit strings share a variant.
            _ => false,
        }
    }
}

impl Eq for LevelStamp {}

impl PartialOrd for LevelStamp {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for LevelStamp {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        match (&self.0, &other.0) {
            (Repr::Inline { len: la, digits: a }, Repr::Inline { len: lb, digits: b }) => {
                // Zero-filled tails make whole-array order agree with
                // lexicographic digit order; equal arrays defer to length
                // (a strict prefix sorts first).
                a.cmp(b).then(la.cmp(lb))
            }
            (Repr::Heap(a), Repr::Heap(b)) => a.digits.cmp(&b.digits),
            _ => self.iter().cmp(other.iter()),
        }
    }
}

impl Hash for LevelStamp {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match &self.0 {
            Repr::Inline { len, digits } => {
                state.write_u8(*len);
                state.write(&digits[..*len as usize]);
            }
            Repr::Heap(h) => {
                // The cached hash stands in for the digit stream. Inline
                // and heap streams never collide on equal values — the
                // canonical representation keeps equal values in one
                // variant.
                state.write_u8(0xFF);
                state.write_u64(h.hash);
            }
        }
    }
}

impl fmt::Display for LevelStamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.level() == 0 {
            return write!(f, "ε");
        }
        for (i, d) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for LevelStamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LevelStamp({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(d: &[u32]) -> LevelStamp {
        LevelStamp::from_digits(d)
    }

    #[test]
    fn root_is_null() {
        assert_eq!(LevelStamp::root().level(), 0);
        assert_eq!(LevelStamp::root().to_string(), "ε");
        assert_eq!(LevelStamp::root().parent(), None);
    }

    #[test]
    fn child_appends_digit() {
        let root = LevelStamp::root();
        let c1 = root.child(1);
        let c12 = c1.child(2);
        assert_eq!(c1.digits(), &[1]);
        assert_eq!(c12.digits(), &[1, 2]);
        assert_eq!(c12.to_string(), "1.2");
        assert_eq!(c12.level(), 2);
        assert_eq!(c12.parent(), Some(c1.clone()));
        assert_eq!(c1.parent(), Some(root));
    }

    #[test]
    fn ancestry_is_prefix_order() {
        let a = s(&[1]);
        let b = s(&[1, 2]);
        let c = s(&[1, 2, 3]);
        let d = s(&[2]);
        assert!(a.is_ancestor_of(&b));
        assert!(a.is_ancestor_of(&c));
        assert!(b.is_ancestor_of(&c));
        assert!(!b.is_ancestor_of(&a));
        assert!(!a.is_ancestor_of(&a), "ancestry is strict");
        assert!(a.is_self_or_ancestor_of(&a));
        assert!(!a.is_ancestor_of(&d));
        assert!(!d.is_ancestor_of(&a));
        assert!(c.is_descendant_of(&a));
        assert!(LevelStamp::root().is_ancestor_of(&a));
    }

    #[test]
    fn digit_boundaries_do_not_alias() {
        // 1.12 must not look like a descendant of 1.1 — a digit-string
        // encoding would get this wrong, the digit-vector encoding must not.
        let a = s(&[1, 1]);
        let b = s(&[1, 12]);
        assert!(!a.is_ancestor_of(&b));
        assert!(!b.is_ancestor_of(&a));
    }

    #[test]
    fn child_towards_routes_one_step() {
        let a = s(&[1]);
        let target = s(&[1, 3, 2, 4]);
        assert_eq!(a.child_towards(&target), Some(s(&[1, 3])));
        assert_eq!(s(&[1, 3]).child_towards(&target), Some(s(&[1, 3, 2])));
        assert_eq!(target.child_towards(&target), None);
        assert_eq!(s(&[2]).child_towards(&target), None);
    }

    #[test]
    fn common_ancestor_is_longest_prefix() {
        assert_eq!(s(&[1, 2, 3]).common_ancestor(&s(&[1, 2, 7])), s(&[1, 2]));
        assert_eq!(s(&[1]).common_ancestor(&s(&[2])), LevelStamp::root());
        assert_eq!(s(&[1, 2]).common_ancestor(&s(&[1, 2])), s(&[1, 2]));
    }

    #[test]
    fn topmost_selects_minimal_antichain() {
        // The paper's B-entry example: {B2, B3, B5} where B5 is a descendant
        // of B2 — recovery must reissue only B2 and B3.
        let b2 = s(&[1, 1]);
        let b3 = s(&[1, 2]);
        let b5 = s(&[1, 1, 2, 1]); // B5 under B2
        let top = LevelStamp::topmost([b5.clone(), b2.clone(), b3.clone()]);
        assert_eq!(top, vec![b2.clone(), b3.clone()]);
        // Duplicates collapse; unrelated stamps all survive.
        let top = LevelStamp::topmost([b2.clone(), b2.clone()]);
        assert_eq!(top, vec![b2.clone()]);
        let top = LevelStamp::topmost([s(&[3]), s(&[2]), s(&[1])]);
        assert_eq!(top.len(), 3);
        // An ancestor swallows everything below it.
        let top = LevelStamp::topmost([b5, b3.clone(), b2.clone(), s(&[1])]);
        assert_eq!(top, vec![s(&[1])]);
    }

    #[test]
    fn topmost_of_empty_is_empty() {
        assert!(LevelStamp::topmost([]).is_empty());
    }

    #[test]
    fn ordering_groups_subtrees() {
        let mut v = vec![s(&[2]), s(&[1, 2]), s(&[1]), s(&[1, 1, 1])];
        v.sort();
        assert_eq!(v, vec![s(&[1]), s(&[1, 1, 1]), s(&[1, 2]), s(&[2])]);
    }

    // ------------------------------------------------------------------
    // Inline/heap representation properties.
    // ------------------------------------------------------------------

    /// A stamp forced onto the heap: one digit exceeds the inline byte.
    fn wide(d: &[u32]) -> LevelStamp {
        let mut v = d.to_vec();
        v.push(1_000);
        let stamp = LevelStamp::from_digits(&v);
        assert!(matches!(stamp.0, Repr::Heap(_)), "wide digit spills");
        stamp
    }

    #[test]
    fn representation_is_canonical() {
        // Shallow, small digits → inline; deep or wide → heap.
        assert!(matches!(s(&[1, 2, 3]).0, Repr::Inline { .. }));
        assert!(matches!(s(&[255; INLINE_DIGITS]).0, Repr::Inline { .. }));
        assert!(matches!(s(&[1; INLINE_DIGITS + 1]).0, Repr::Heap(_)));
        assert!(matches!(s(&[256]).0, Repr::Heap(_)));
        // child() preserves canonical form at the inline/heap boundary…
        let deep = s(&[1; INLINE_DIGITS]).child(2);
        assert!(matches!(deep.0, Repr::Heap(_)));
        assert_eq!(deep.level(), INLINE_DIGITS + 1);
        // …and parent() restores inline eligibility coming back up.
        let back = deep.parent().unwrap();
        assert!(matches!(back.0, Repr::Inline { .. }));
        assert_eq!(back, s(&[1; INLINE_DIGITS]));
        let wide_parent = wide(&[1, 2]).parent().unwrap();
        assert!(matches!(wide_parent.0, Repr::Inline { .. }));
        assert_eq!(wide_parent, s(&[1, 2]));
    }

    #[test]
    fn heap_and_inline_stamps_interoperate() {
        let a = s(&[1, 2]);
        let w = wide(&[1, 2]); // 1.2.1000
        assert!(a.is_ancestor_of(&w));
        assert!(w.is_descendant_of(&a));
        assert_eq!(a.child_towards(&w), Some(w.clone()));
        assert_eq!(a.common_ancestor(&w), a);
        assert_eq!(w.common_ancestor(&s(&[1, 3])), s(&[1]));
        // Ordering across representations stays lexicographic.
        let mut v = vec![w.clone(), s(&[1, 3]), a.clone()];
        v.sort();
        assert_eq!(v, vec![a, w, s(&[1, 3])]);
    }

    #[test]
    fn deep_chains_round_trip() {
        // Walk down 40 levels and back up; every step agrees with the
        // explicit digit vector.
        let mut stamp = LevelStamp::root();
        let mut digits: Vec<u32> = Vec::new();
        for i in 1..=40u32 {
            stamp = stamp.child(i);
            digits.push(i);
            assert_eq!(stamp, LevelStamp::from_digits(&digits));
            assert_eq!(stamp.level(), digits.len());
            assert_eq!(stamp.digits(), digits);
        }
        for _ in 0..40 {
            digits.pop();
            stamp = stamp.parent().unwrap();
            assert_eq!(stamp, LevelStamp::from_digits(&digits));
        }
        assert_eq!(stamp.parent(), None);
    }

    #[test]
    fn hashes_agree_with_equality() {
        use std::collections::HashMap;
        let mut map: HashMap<LevelStamp, u32> = HashMap::new();
        map.insert(s(&[1, 2]), 1);
        map.insert(wide(&[1, 2]), 2);
        map.insert(s(&[1; INLINE_DIGITS + 3]), 3);
        // Re-derived keys (fresh allocations / fresh inline copies) hit.
        assert_eq!(map.get(&s(&[1]).child(2)), Some(&1));
        assert_eq!(map.get(&wide(&[1, 2])), Some(&2));
        assert_eq!(map.get(&s(&[1; INLINE_DIGITS + 3])), Some(&3));
        assert_eq!(map.len(), 3);
    }

    #[test]
    fn stamp_stays_register_sized() {
        // The whole point of the inline representation: a stamp moves in
        // three words and clones without touching the heap.
        assert!(
            std::mem::size_of::<LevelStamp>() <= 24,
            "LevelStamp grew past 24 bytes: {}",
            std::mem::size_of::<LevelStamp>()
        );
    }
}
