//! Per-task protocol state held by a processor.
//!
//! A [`Task`] couples the suspendable wave evaluation (`TaskEval`) with the
//! genealogical bookkeeping recovery needs: the parent/ancestor links from
//! its packet, per-child spawn state (Figure 6's pointer lifecycle), vote
//! state for replicated children, and buffers for salvaged results that
//! cannot be routed onwards yet.

use crate::ids::{TaskAddr, TaskKey};
use crate::packet::{ReplicaInfo, SalvagePacket, TaskLink, TaskPacket};
use crate::replicate::Vote;
use crate::stamp::LevelStamp;
use splice_applicative::wave::{Demand, TaskEval};
use splice_applicative::FxHashMap;

/// State of one replicated child group (§5.3).
#[derive(Clone, Debug)]
pub struct VoteGroup {
    /// The running vote.
    pub vote: Vote,
    /// The base packet (no replica marker), kept for group reissue when all
    /// replicas are lost.
    pub base: TaskPacket,
    /// Current (last known) processor of each replica; placement destination
    /// until the ACK refines it.
    pub placed: Vec<crate::ids::ProcId>,
}

/// Spawn state of one child demand.
#[derive(Clone, Debug)]
pub struct ChildInfo {
    /// The demand the child computes.
    pub demand: Demand,
    /// The child's level stamp.
    pub stamp: LevelStamp,
    /// Latest acknowledged location and the incarnation it acknowledged.
    pub acked: Option<(TaskAddr, u32)>,
    /// Latest issued incarnation of the child packet.
    pub incarnation: u32,
    /// True once the demand has been satisfied (result, vote or salvage).
    pub done: bool,
    /// Salvage packets waiting for this child's placement ACK before being
    /// forwarded down the regenerated spine.
    pub pending_salvages: Vec<SalvagePacket>,
    /// Vote state when the child is replicated.
    pub vote: Option<VoteGroup>,
    /// Set when a failure notice deferred this child's twin creation by the
    /// splice grace period (E13); cleared when the twin is actually issued.
    pub twin_pending: bool,
    /// Lazy policy: the child's host died and the reissue was deferred
    /// until the owner's progress actually demands the result. Cleared on
    /// rebuild.
    pub lost: bool,
}

impl ChildInfo {
    /// The acknowledged address for the *current* incarnation, if any.
    pub fn current_addr(&self) -> Option<TaskAddr> {
        self.acked
            .filter(|(_, inc)| *inc == self.incarnation)
            .map(|(a, _)| a)
    }
}

/// One resident task.
#[derive(Debug)]
pub struct Task {
    /// Local key.
    pub key: TaskKey,
    /// Level stamp (§3.1).
    pub stamp: LevelStamp,
    /// The suspendable evaluation.
    pub eval: TaskEval,
    /// Parent link (results return here).
    pub parent: TaskLink,
    /// Ancestors beyond the parent, nearest first (grandparent at index 0).
    pub ancestors: Vec<TaskLink>,
    /// Replica marker when this task is one replica of a group.
    pub replica: Option<ReplicaInfo>,
    /// True anywhere inside a replica's subtree (see `TaskPacket`).
    pub under_replica: bool,
    /// Incarnation of the packet that created this instance.
    pub incarnation: u32,
    /// Children by stamp.
    pub children: FxHashMap<LevelStamp, ChildInfo>,
    /// Demand → child stamp (demands are deduplicated per task).
    pub by_demand: FxHashMap<Demand, LevelStamp>,
    /// Next child digit to assign (digits start at 1).
    pub next_digit: u32,
    /// Salvaged results for descendants this (twin) task has not spawned
    /// yet; drained as matching children appear.
    pub future_salvages: Vec<SalvagePacket>,
    /// True while the task sits in the ready queue (guards double-queueing).
    pub queued: bool,
    /// MultiCheckpoint policy: completed child results accumulated since
    /// the last incremental re-checkpoint was shipped to this task's own
    /// checkpoint owner. Unused (stays empty) when re-checkpointing is off.
    pub ckpt_pending: Vec<(Demand, splice_applicative::Value)>,
}

impl Task {
    /// Instantiates a task from its packet.
    pub fn from_packet(key: TaskKey, p: &TaskPacket) -> Task {
        Task {
            key,
            stamp: p.stamp.clone(),
            eval: TaskEval::new(p.demand.fun, p.demand.args.clone()),
            parent: p.parent.clone(),
            ancestors: p.ancestors.clone(),
            replica: p.replica.clone(),
            under_replica: p.under_replica || p.replica.is_some(),
            incarnation: p.incarnation,
            children: FxHashMap::default(),
            by_demand: FxHashMap::default(),
            next_digit: 0,
            future_salvages: Vec::new(),
            queued: false,
            ckpt_pending: Vec::new(),
        }
    }

    /// Reinitializes a recycled frame from a packet — the allocation-free
    /// twin of [`Task::from_packet`]. The frame's maps, buffers and call
    /// cache keep their capacity across task generations.
    pub fn reset_from_packet(&mut self, key: TaskKey, p: &TaskPacket) {
        debug_assert!(
            self.children.is_empty()
                && self.by_demand.is_empty()
                && self.future_salvages.is_empty()
                && self.ckpt_pending.is_empty(),
            "recycled frame was not cleared"
        );
        self.key = key;
        self.stamp = p.stamp.clone();
        self.eval.reset(p.demand.fun, &p.demand.args);
        self.parent = p.parent.clone();
        self.ancestors.clear();
        self.ancestors.extend_from_slice(&p.ancestors);
        self.replica = p.replica.clone();
        self.under_replica = p.under_replica || p.replica.is_some();
        self.incarnation = p.incarnation;
        self.next_digit = 0;
        self.queued = false;
    }

    /// Drops a retired frame's per-task state, keeping the allocations for
    /// [`Task::reset_from_packet`].
    pub fn clear_for_reuse(&mut self) {
        self.children.clear();
        self.by_demand.clear();
        self.future_salvages.clear();
        self.ancestors.clear();
        self.ckpt_pending.clear();
    }

    /// Allocates the stamp for the next child. Demand order is
    /// deterministic (wave evaluator), so twins reproduce the same stamps —
    /// the keystone of splice salvaging.
    pub fn next_child_stamp(&mut self) -> LevelStamp {
        self.next_digit += 1;
        self.stamp.child(self.next_digit)
    }

    /// Registers a spawned child.
    pub fn register_child(&mut self, info: ChildInfo) {
        self.by_demand
            .insert(info.demand.clone(), info.stamp.clone());
        self.children.insert(info.stamp.clone(), info);
    }

    /// Child lookup by stamp.
    pub fn child_mut(&mut self, stamp: &LevelStamp) -> Option<&mut ChildInfo> {
        self.children.get_mut(stamp)
    }

    /// Child lookup by demand.
    pub fn child_stamp_of(&self, demand: &Demand) -> Option<&LevelStamp> {
        self.by_demand.get(demand)
    }

    /// Takes the buffered future salvages that belong to child `stamp`
    /// (the dead stamp equals the child or descends from it).
    pub fn take_future_salvages_for(&mut self, stamp: &LevelStamp) -> Vec<SalvagePacket> {
        let mut taken = Vec::new();
        let mut kept = Vec::new();
        for s in self.future_salvages.drain(..) {
            if stamp.is_self_or_ancestor_of(&s.dead_stamp) {
                taken.push(s);
            } else {
                kept.push(s);
            }
        }
        self.future_salvages = kept;
        taken
    }

    /// True when every registered child demand is satisfied.
    pub fn all_children_done(&self) -> bool {
        self.children.values().all(|c| c.done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ProcId;
    use splice_applicative::{FnId, Value};

    fn packet(stamp: &[u32]) -> TaskPacket {
        TaskPacket {
            stamp: LevelStamp::from_digits(stamp),
            demand: Demand::new(FnId(0), vec![Value::Int(3)]),
            parent: TaskLink::super_root(),
            ancestors: vec![],
            incarnation: 2,
            hops: 1,
            replica: None,
            under_replica: false,
        }
    }

    #[test]
    fn from_packet_copies_links() {
        let t = Task::from_packet(TaskKey(5), &packet(&[1, 2]));
        assert_eq!(t.stamp, LevelStamp::from_digits(&[1, 2]));
        assert_eq!(t.incarnation, 2);
        assert_eq!(t.eval.args(), &[Value::Int(3)]);
        assert!(t.children.is_empty());
    }

    #[test]
    fn child_stamps_are_sequential() {
        let mut t = Task::from_packet(TaskKey(0), &packet(&[1]));
        assert_eq!(t.next_child_stamp(), LevelStamp::from_digits(&[1, 1]));
        assert_eq!(t.next_child_stamp(), LevelStamp::from_digits(&[1, 2]));
        assert_eq!(t.next_child_stamp(), LevelStamp::from_digits(&[1, 3]));
    }

    #[test]
    fn current_addr_requires_matching_incarnation() {
        let addr = TaskAddr::new(ProcId(2), TaskKey(9));
        let mut ci = ChildInfo {
            demand: Demand::new(FnId(0), vec![]),
            stamp: LevelStamp::from_digits(&[1]),
            acked: Some((addr, 0)),
            incarnation: 0,
            done: false,
            pending_salvages: vec![],
            vote: None,
            twin_pending: false,
            lost: false,
        };
        assert_eq!(ci.current_addr(), Some(addr));
        ci.incarnation = 1; // reissued; the old ack is stale
        assert_eq!(ci.current_addr(), None);
        ci.acked = Some((addr, 1));
        assert_eq!(ci.current_addr(), Some(addr));
    }

    #[test]
    fn future_salvage_partition_by_subtree() {
        let mut t = Task::from_packet(TaskKey(0), &packet(&[1]));
        let mk = |dead: &[u32]| SalvagePacket {
            to: TaskAddr::new(ProcId(0), TaskKey(0)),
            dead_stamp: LevelStamp::from_digits(dead),
            dead_addr: TaskAddr::new(ProcId(9), TaskKey(9)),
            demand: Demand::new(FnId(0), vec![]),
            value: Value::Int(0),
            from_stamp: LevelStamp::from_digits(&[9]),
        };
        t.future_salvages.push(mk(&[1, 1]));
        t.future_salvages.push(mk(&[1, 1, 2]));
        t.future_salvages.push(mk(&[1, 2]));
        let for_c1 = t.take_future_salvages_for(&LevelStamp::from_digits(&[1, 1]));
        assert_eq!(for_c1.len(), 2);
        assert_eq!(t.future_salvages.len(), 1);
    }

    #[test]
    fn register_and_lookup_children() {
        let mut t = Task::from_packet(TaskKey(0), &packet(&[1]));
        let d = Demand::new(FnId(1), vec![Value::Int(4)]);
        let stamp = t.next_child_stamp();
        t.register_child(ChildInfo {
            demand: d.clone(),
            stamp: stamp.clone(),
            acked: None,
            incarnation: 0,
            done: false,
            pending_salvages: vec![],
            vote: None,
            twin_pending: false,
            lost: false,
        });
        assert_eq!(t.child_stamp_of(&d), Some(&stamp));
        assert!(!t.all_children_done());
        t.child_mut(&stamp).unwrap().done = true;
        assert!(t.all_children_done());
    }
}
