//! Replicated-task voting (§5.3).
//!
//! "An applicative system can emulate hardware redundancy by simply
//! replicating the task packets. Eventually, a task is executed by several
//! processors at random times. The results are sent back to the originating
//! node asynchronously. The originating node compares these results and
//! selects a majority consensus as the correct answer. ... a node does not
//! have to wait for the slowest answer if it has received the identical
//! results from the majority of replicated tasks."

use crate::config::VoteMode;
use splice_applicative::Value;
use std::collections::HashMap;

/// Outcome of feeding one replica result into a vote.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VoteOutcome {
    /// Not enough information yet; keep waiting.
    Pending,
    /// Consensus reached; the value is the accepted answer and `clean` says
    /// whether it was a strict majority (false = plurality fallback after
    /// all live replicas reported without a majority).
    Decided {
        /// The accepted value.
        value: Value,
        /// True when a strict majority of the group agreed.
        clean: bool,
    },
}

/// The vote state for one replicated child.
#[derive(Clone, Debug)]
pub struct Vote {
    n: u32,
    mode: VoteMode,
    /// Arrived results, by replica index (duplicates from one replica are
    /// dropped).
    votes: HashMap<u32, Value>,
    /// Replicas known lost (their processor died before reporting).
    lost: u32,
    decided: bool,
}

impl Vote {
    /// Creates a vote over `n` replicas.
    pub fn new(n: u32, mode: VoteMode) -> Vote {
        assert!(n >= 1);
        Vote {
            n,
            mode,
            votes: HashMap::new(),
            lost: 0,
            decided: false,
        }
    }

    /// Group size.
    pub fn group_size(&self) -> u32 {
        self.n
    }

    /// True once a decision has been produced.
    pub fn is_decided(&self) -> bool {
        self.decided
    }

    /// Number of votes needed for a strict majority of the *full* group.
    fn majority(&self) -> u32 {
        self.n / 2 + 1
    }

    /// Feeds one replica's result. Returns the (possibly) reached outcome.
    pub fn add(&mut self, replica: u32, value: Value) -> VoteOutcome {
        if self.decided || self.votes.contains_key(&replica) {
            return VoteOutcome::Pending;
        }
        self.votes.insert(replica, value);
        self.evaluate()
    }

    /// Marks one replica as lost (processor failure before reporting).
    pub fn mark_lost(&mut self) -> VoteOutcome {
        if self.decided {
            return VoteOutcome::Pending;
        }
        self.lost += 1;
        self.evaluate()
    }

    fn evaluate(&mut self) -> VoteOutcome {
        let mut counts: HashMap<&Value, u32> = HashMap::new();
        for v in self.votes.values() {
            *counts.entry(v).or_insert(0) += 1;
        }
        let majority = self.majority();
        let all_in = self.votes.len() as u32 + self.lost >= self.n;
        match self.mode {
            VoteMode::Majority => {
                if let Some((v, _)) = counts.iter().find(|(_, &c)| c >= majority) {
                    self.decided = true;
                    return VoteOutcome::Decided {
                        value: (*v).clone(),
                        clean: true,
                    };
                }
            }
            VoteMode::WaitAll => {
                if all_in {
                    if let Some((v, _)) = counts.iter().find(|(_, &c)| c >= majority) {
                        self.decided = true;
                        return VoteOutcome::Decided {
                            value: (*v).clone(),
                            clean: true,
                        };
                    }
                }
            }
        }
        if all_in {
            // Everyone alive has reported and no strict majority exists:
            // fall back to plurality (deterministic tie-break by value
            // order) and flag the conflict.
            let mut best: Option<(&Value, u32)> = None;
            for (v, c) in counts {
                best = match best {
                    None => Some((v, c)),
                    Some((bv, bc)) => {
                        if c > bc || (c == bc && v < bv) {
                            Some((v, c))
                        } else {
                            Some((bv, bc))
                        }
                    }
                };
            }
            if let Some((v, _)) = best {
                self.decided = true;
                return VoteOutcome::Decided {
                    value: v.clone(),
                    clean: false,
                };
            }
            // All replicas lost: undecidable here; the caller reissues.
        }
        VoteOutcome::Pending
    }

    /// True when every replica is accounted for (reported or lost) without
    /// any result — the caller must reissue the replica group.
    pub fn all_lost(&self) -> bool {
        !self.decided && self.votes.is_empty() && self.lost >= self.n
    }

    /// Number of received replica results that disagree with `winner` —
    /// the outvoted minority a decision masked. Meaningful at (or after)
    /// decision time.
    pub fn dissenting(&self, winner: &Value) -> u32 {
        self.votes.values().filter(|v| *v != winner).count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: i64) -> Value {
        Value::Int(n)
    }

    #[test]
    fn majority_decides_without_waiting_for_slowest() {
        let mut vote = Vote::new(3, VoteMode::Majority);
        assert_eq!(vote.add(0, v(42)), VoteOutcome::Pending);
        // Two identical answers out of three: decided now — the third
        // (slowest) replica is not awaited.
        assert_eq!(
            vote.add(1, v(42)),
            VoteOutcome::Decided {
                value: v(42),
                clean: true
            }
        );
        assert!(vote.is_decided());
        // The slowest answer is ignored.
        assert_eq!(vote.add(2, v(42)), VoteOutcome::Pending);
    }

    #[test]
    fn corrupt_minority_is_outvoted() {
        let mut vote = Vote::new(3, VoteMode::Majority);
        assert_eq!(vote.add(0, v(666)), VoteOutcome::Pending);
        assert_eq!(vote.add(1, v(42)), VoteOutcome::Pending);
        assert_eq!(
            vote.add(2, v(42)),
            VoteOutcome::Decided {
                value: v(42),
                clean: true
            }
        );
    }

    #[test]
    fn wait_all_defers_until_everyone_reports() {
        let mut vote = Vote::new(3, VoteMode::WaitAll);
        assert_eq!(vote.add(0, v(1)), VoteOutcome::Pending);
        assert_eq!(
            vote.add(1, v(1)),
            VoteOutcome::Pending,
            "majority exists but mode waits"
        );
        assert_eq!(
            vote.add(2, v(1)),
            VoteOutcome::Decided {
                value: v(1),
                clean: true
            }
        );
    }

    #[test]
    fn duplicate_replica_votes_are_dropped() {
        let mut vote = Vote::new(3, VoteMode::Majority);
        assert_eq!(vote.add(0, v(9)), VoteOutcome::Pending);
        assert_eq!(vote.add(0, v(9)), VoteOutcome::Pending);
        assert_eq!(vote.add(0, v(9)), VoteOutcome::Pending);
        assert!(!vote.is_decided(), "one replica cannot outvote the group");
    }

    #[test]
    fn lost_replicas_shrink_the_wait() {
        let mut vote = Vote::new(3, VoteMode::WaitAll);
        assert_eq!(vote.add(0, v(7)), VoteOutcome::Pending);
        assert_eq!(vote.mark_lost(), VoteOutcome::Pending);
        // 1 vote + 1 lost + this vote = all accounted; 2 identical of 3 is a
        // strict majority.
        assert_eq!(
            vote.add(1, v(7)),
            VoteOutcome::Decided {
                value: v(7),
                clean: true
            }
        );
    }

    #[test]
    fn plurality_fallback_flags_conflict() {
        let mut vote = Vote::new(3, VoteMode::Majority);
        assert_eq!(vote.add(0, v(1)), VoteOutcome::Pending);
        assert_eq!(vote.add(1, v(2)), VoteOutcome::Pending);
        match vote.add(2, v(3)) {
            VoteOutcome::Decided { clean, .. } => assert!(!clean),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn all_lost_demands_reissue() {
        let mut vote = Vote::new(2, VoteMode::Majority);
        vote.mark_lost();
        assert!(!vote.all_lost());
        vote.mark_lost();
        assert!(vote.all_lost());
    }

    #[test]
    fn single_replica_group_accepts_first_answer() {
        let mut vote = Vote::new(1, VoteMode::Majority);
        assert_eq!(
            vote.add(0, v(5)),
            VoteOutcome::Decided {
                value: v(5),
                clean: true
            }
        );
    }
}
