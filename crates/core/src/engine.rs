//! The sans-IO processor engine: the paper's §4.2 protocol loop.
//!
//! ```text
//! LOOP
//!   CASE received packet OF
//!     forward result:  interpret the level stamp (child / grandchild / other)
//!     task packet:     execute; DEMAND unevaluated functions; send result to
//!                      the parent; if the parent is dead, notify the
//!                      grandparent and send the result there
//!     error-detection: respawn the topmost offspring of all severed
//!                      branches; establish the relay for partial results
//!   ENDCASE
//! ENDLOOP
//! ```
//!
//! The engine is *sans-IO*: it owns no clock, no RNG and no transport. Every
//! entry point takes an input and returns a list of [`Action`]s for the
//! driver (the discrete-event simulator or the threaded runtime) to
//! perform. This is what makes the protocol deterministic under test while
//! still running unchanged on real threads.
//!
//! A note on failure discovery: per the paper, "a processor makes its best
//! effort to communicate with a destination node. If the destination cannot
//! be reached ..., the unreachable node is considered faulty." Drivers
//! surface unreachability as [`Engine::on_send_failed`]; an explicit
//! detector (or gossip) surfaces it as a `FailureNotice` message. Both
//! converge on the same internal `on_proc_dead` handling, and splice
//! recovery additionally learns of deaths from arriving salvage packets —
//! "processor C receives these unexpected partial answers from
//! grandchildren and asserts that the parent of these grandchildren is
//! faulty" (§4.1).

use crate::checkpoint::CheckpointTable;
use crate::config::{Config, RecoveryMode};
use crate::ids::{ProcId, TaskAddr, TaskKey};
use crate::packet::{AckInfo, Msg, ReplicaInfo, ResultPacket, SalvagePacket, TaskLink, TaskPacket};
use crate::place::Placer;
use crate::replicate::{Vote, VoteOutcome};
use crate::stamp::LevelStamp;
use crate::stats::ProcStats;
use crate::task::{ChildInfo, Task, VoteGroup};
use splice_applicative::wave::{Demand, WaveResult};
use splice_applicative::{Program, Value};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Maximum placement hops before a packet must be accepted locally.
const MAX_HOPS: u32 = 16;

/// A timer the engine asks its driver to arm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Timer {
    /// Fires if a spawned child packet has not been acknowledged
    /// (Figure 6 state b: reissue as if the first invocation never
    /// happened).
    AckTimeout {
        /// The spawning (parent) task.
        owner: TaskKey,
        /// The child's stamp.
        stamp: LevelStamp,
        /// The incarnation this timer guards.
        incarnation: u32,
    },
    /// Periodic load-pressure beacon for the placer.
    LoadBeacon,
    /// Deferred splice twin creation (the E13 grace extension): fires
    /// `splice_grace` units after a failure notice; the child is reissued
    /// only if nothing (salvage, vote, result) satisfied it meanwhile.
    GraceReissue {
        /// The owning (parent) task.
        owner: TaskKey,
        /// The dead child's stamp.
        stamp: LevelStamp,
    },
}

/// An effect the driver must perform on the engine's behalf.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Transmit `msg` to processor `to` (self-sends are allowed and mean
    /// local delivery).
    Send {
        /// Destination processor.
        to: ProcId,
        /// The message.
        msg: Msg,
    },
    /// Arm `timer` to fire after `delay` driver time units.
    SetTimer {
        /// The timer payload (returned verbatim on expiry).
        timer: Timer,
        /// Delay in driver units.
        delay: u64,
    },
}

/// The per-processor protocol engine.
pub struct Engine {
    id: ProcId,
    program: Arc<Program>,
    config: Config,
    placer: Box<dyn Placer>,
    tasks: HashMap<TaskKey, Task>,
    by_stamp: HashMap<LevelStamp, TaskKey>,
    ready: VecDeque<TaskKey>,
    next_key: u64,
    known_dead: HashSet<ProcId>,
    ckpt: CheckpointTable,
    stats: ProcStats,
    created_log: Vec<LevelStamp>,
}

impl Engine {
    /// Creates an engine for processor `id`.
    pub fn new(
        id: ProcId,
        program: Arc<Program>,
        config: Config,
        placer: Box<dyn Placer>,
    ) -> Engine {
        Engine {
            id,
            program,
            config,
            placer,
            tasks: HashMap::new(),
            by_stamp: HashMap::new(),
            ready: VecDeque::new(),
            next_key: 0,
            known_dead: HashSet::new(),
            ckpt: CheckpointTable::new(),
            stats: ProcStats::default(),
            created_log: Vec::new(),
        }
    }

    /// Drains the stamps of tasks created since the last call. Drivers use
    /// this to build placement logs for scripted scenarios.
    pub fn drain_created(&mut self) -> Vec<LevelStamp> {
        std::mem::take(&mut self.created_log)
    }

    /// Looks up a resident task key by stamp (scenario inspection).
    pub fn task_by_stamp(&self, stamp: &LevelStamp) -> Option<TaskKey> {
        self.by_stamp.get(stamp).copied()
    }

    /// This processor's id.
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// The engine's configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Statistics so far.
    pub fn stats(&self) -> &ProcStats {
        &self.stats
    }

    /// The checkpoint table (for inspection by tests and reports).
    pub fn checkpoints(&self) -> &CheckpointTable {
        &self.ckpt
    }

    /// Number of resident tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Processors this engine believes dead.
    pub fn known_dead(&self) -> &HashSet<ProcId> {
        &self.known_dead
    }

    /// Local pressure: tasks ready to run.
    pub fn pressure(&self) -> u32 {
        self.ready.len() as u32
    }

    /// Called once when the processor starts; arms periodic beacons.
    pub fn on_start(&mut self) -> Vec<Action> {
        let mut actions = Vec::new();
        if self.config.load_beacon_period > 0 && !self.placer.beacon_targets().is_empty() {
            actions.push(Action::SetTimer {
                timer: Timer::LoadBeacon,
                delay: self.config.load_beacon_period,
            });
        }
        actions
    }

    /// Pops the next runnable task, if any.
    pub fn pop_ready(&mut self) -> Option<TaskKey> {
        while let Some(key) = self.ready.pop_front() {
            if let Some(t) = self.tasks.get_mut(&key) {
                if t.queued {
                    t.queued = false;
                    return Some(key);
                }
            }
        }
        None
    }

    /// True when at least one task is runnable.
    pub fn has_ready(&self) -> bool {
        self.ready
            .iter()
            .any(|k| self.tasks.get(k).map(|t| t.queued).unwrap_or(false))
    }

    fn enqueue(&mut self, key: TaskKey) {
        if let Some(t) = self.tasks.get_mut(&key) {
            if !t.queued {
                t.queued = true;
                self.ready.push_back(key);
            }
        }
    }

    fn send(&mut self, actions: &mut Vec<Action>, to: ProcId, msg: Msg) {
        self.stats.sent(msg.kind(), msg.size());
        actions.push(Action::Send { to, msg });
    }

    // -----------------------------------------------------------------
    // Message dispatch
    // -----------------------------------------------------------------

    /// Handles an arriving message.
    pub fn on_message(&mut self, msg: Msg) -> Vec<Action> {
        self.stats.received(msg.kind());
        match msg {
            Msg::Spawn(p) => self.on_spawn(*p),
            Msg::Ack(ack) => {
                let AckInfo {
                    child_stamp,
                    child_addr,
                    parent,
                    incarnation,
                } = *ack;
                self.on_ack(child_stamp, child_addr, parent, incarnation)
            }
            Msg::Result(rp) => self.on_result(*rp),
            Msg::Salvage(sp) => self.on_salvage(*sp),
            Msg::Abort { to } => self.on_abort(to),
            Msg::Load { from, pressure } => {
                self.placer.on_load(from, pressure);
                Vec::new()
            }
            Msg::FailureNotice { dead } => self.on_proc_dead(dead),
        }
    }

    /// Handles a send that the transport reports as undeliverable: the
    /// destination is considered faulty and the message's intent is
    /// recovered where possible.
    pub fn on_send_failed(&mut self, to: ProcId, msg: Msg) -> Vec<Action> {
        let mut actions = self.on_proc_dead(to);
        match msg {
            Msg::Spawn(p) => {
                // In-flight spawn lost. If we are the original parent, the
                // child's checkpoint (or vote group) reissues it; forwarded
                // packets of other parents are re-placed directly.
                actions.extend(self.reissue_packet(*p));
            }
            Msg::Result(rp) => {
                actions.extend(self.handle_undeliverable_result(*rp));
            }
            Msg::Salvage(sp) => {
                // Either the downward forward hit a fresh corpse (the local
                // re-route will buffer it), or the upward relay must try the
                // next ancestor.
                let sp = *sp;
                let (routed, mut acts) = self.route_salvage(sp.clone());
                actions.append(&mut acts);
                if !routed {
                    actions.extend(self.relay_salvage_upward(sp));
                }
            }
            // Lost acks/aborts/loads/notices carry no recoverable intent.
            Msg::Ack { .. } | Msg::Abort { .. } | Msg::Load { .. } | Msg::FailureNotice { .. } => {}
        }
        actions
    }

    /// Handles a timer expiry.
    pub fn on_timer(&mut self, timer: Timer) -> Vec<Action> {
        match timer {
            Timer::AckTimeout {
                owner,
                stamp,
                incarnation,
            } => {
                let needs_reissue =
                    match self.tasks.get(&owner).and_then(|t| t.children.get(&stamp)) {
                        Some(ci) if !ci.done && ci.incarnation == incarnation => {
                            ci.current_addr().is_none()
                        }
                        _ => false,
                    };
                if needs_reissue {
                    self.stats.ack_timeouts += 1;
                    self.reissue_child(owner, &stamp)
                } else {
                    Vec::new()
                }
            }
            Timer::GraceReissue { owner, stamp } => {
                let needs = match self
                    .tasks
                    .get_mut(&owner)
                    .and_then(|t| t.children.get_mut(&stamp))
                {
                    Some(ci) if ci.twin_pending && !ci.done => {
                        ci.twin_pending = false;
                        true
                    }
                    _ => false,
                };
                if needs {
                    self.stats.step_parents_created += 1;
                    self.reissue_child(owner, &stamp)
                } else {
                    Vec::new()
                }
            }
            Timer::LoadBeacon => {
                let mut actions = Vec::new();
                let raw = self.pressure();
                self.placer.set_local_pressure(raw);
                let pressure = self.placer.beacon_value(raw);
                for t in self.placer.beacon_targets() {
                    self.send(
                        &mut actions,
                        t,
                        Msg::Load {
                            from: self.id,
                            pressure,
                        },
                    );
                }
                actions.push(Action::SetTimer {
                    timer: Timer::LoadBeacon,
                    delay: self.config.load_beacon_period,
                });
                actions
            }
        }
    }

    // -----------------------------------------------------------------
    // Spawn / placement (DEMAND_IT receiving side)
    // -----------------------------------------------------------------

    fn on_spawn(&mut self, mut p: TaskPacket) -> Vec<Action> {
        let mut actions = Vec::new();
        let pressure = self.pressure();
        self.placer.set_local_pressure(pressure);
        if p.hops < MAX_HOPS {
            if let Some(next) = self.placer.route(&p, &self.known_dead) {
                if next != self.id {
                    p.hops += 1;
                    self.send(&mut actions, next, Msg::spawn(p));
                    return actions;
                }
            }
        }
        // Accept locally.
        let key = TaskKey(self.next_key);
        self.next_key += 1;
        let task = Task::from_packet(key, &p);
        self.by_stamp.insert(task.stamp.clone(), key);
        self.tasks.insert(key, task);
        self.stats.tasks_created += 1;
        self.created_log.push(p.stamp.clone());
        self.enqueue(key);
        let ack = Msg::ack(
            p.stamp,
            TaskAddr::new(self.id, key),
            p.parent.addr,
            p.incarnation,
        );
        self.send(&mut actions, p.parent.addr.proc, ack);
        actions
    }

    fn on_ack(
        &mut self,
        child_stamp: LevelStamp,
        child_addr: TaskAddr,
        parent: TaskAddr,
        incarnation: u32,
    ) -> Vec<Action> {
        let mut actions = Vec::new();
        let Some(task) = self.tasks.get_mut(&parent.key) else {
            self.stats.stale_messages_ignored += 1;
            return actions;
        };
        let Some(ci) = task.children.get_mut(&child_stamp) else {
            self.stats.stale_messages_ignored += 1;
            return actions;
        };
        if let Some(group) = ci.vote.as_mut() {
            // Replica ack: refine the placement record used for loss
            // tracking. The incarnation field carries the replica index for
            // replica packets (set at spawn).
            if let Some(slot) = group.placed.get_mut(incarnation as usize) {
                *slot = child_addr.proc;
            }
            return actions;
        }
        // An ack from a processor we already know is dead is a message from
        // a corpse: the child it places died with its host. Recording it
        // would permanently wedge the child — the failure-notice recovery
        // pass has already run (and found no checkpoint keyed to the dead
        // processor, since the placement was unacked then), and the ack
        // timeout refuses to reissue a child with a current address. The
        // race only opens when acks travel slower than failure notices
        // (e.g. across a high-latency inter-shard router). Reissue now.
        if self.known_dead.contains(&child_addr.proc) {
            if !ci.done && incarnation == ci.incarnation && ci.current_addr().is_none() {
                return self.reissue_child(parent.key, &child_stamp);
            }
            self.stats.stale_messages_ignored += 1;
            return actions;
        }
        let newer = match ci.acked {
            Some((_, prev_inc)) => incarnation >= prev_inc,
            None => true,
        };
        if newer {
            ci.acked = Some((child_addr, incarnation));
            self.ckpt.on_ack(parent.key, &child_stamp, child_addr.proc);
            // Flush salvages that were waiting for a location.
            let pending = std::mem::take(&mut ci.pending_salvages);
            for mut sp in pending {
                sp.to = child_addr;
                self.stats.salvage_forwarded += 1;
                self.send(&mut actions, child_addr.proc, Msg::salvage(sp));
            }
        } else {
            self.stats.stale_messages_ignored += 1;
        }
        actions
    }

    // -----------------------------------------------------------------
    // Execution (task packet case of the §4.2 loop)
    // -----------------------------------------------------------------

    /// Runs one evaluation wave of `key`. Returns the driver actions plus
    /// the abstract work performed (for time accounting).
    pub fn run_wave(&mut self, key: TaskKey) -> (Vec<Action>, u64) {
        let Some(task) = self.tasks.get_mut(&key) else {
            return (Vec::new(), 0);
        };
        if !task.eval.ready() {
            // Spurious wake-up; wave barrier not met.
            return (Vec::new(), 0);
        }
        let before = task.eval.work();
        let step = task.eval.step(&self.program);
        let work = self
            .tasks
            .get(&key)
            .map(|t| t.eval.work() - before)
            .unwrap_or(0);
        self.stats.waves_run += 1;
        self.stats.work_units += work;
        match step {
            Err(_) => {
                self.stats.eval_errors += 1;
                let actions = self.drop_task(key);
                (actions, work)
            }
            Ok(WaveResult::Done(v)) => (self.finish_task(key, v), work),
            Ok(WaveResult::Blocked { new_demands }) => {
                let mut actions = Vec::new();
                for d in new_demands {
                    actions.extend(self.spawn_child(key, d));
                }
                // All demands may have been satisfied synchronously by
                // preloaded salvage; re-queue in that case.
                if let Some(t) = self.tasks.get(&key) {
                    if t.eval.ready() {
                        self.enqueue(key);
                    }
                }
                (actions, work)
            }
        }
    }

    /// Spawns one child demand (the paper's `DEMAND_IT`):
    /// create packet → level-stamp it → attach parent and grandparent
    /// identifications → queue to the load balancer → functional checkpoint.
    fn spawn_child(&mut self, owner: TaskKey, demand: Demand) -> Vec<Action> {
        let mut actions = Vec::new();
        let (packet, replica_spec, salvages) = {
            let task = self.tasks.get_mut(&owner).expect("owner exists");
            let stamp = task.next_child_stamp();
            let parent_link = TaskLink::new(TaskAddr::new(self.id, owner), task.stamp.clone());
            let ancestors: Vec<TaskLink> = std::iter::once(task.parent.clone())
                .chain(task.ancestors.iter().cloned())
                .take(self.config.links_beyond_parent())
                .collect();
            let packet = TaskPacket {
                stamp: stamp.clone(),
                demand: demand.clone(),
                parent: parent_link,
                ancestors,
                incarnation: 0,
                hops: 0,
                replica: None,
                under_replica: task.under_replica,
            };
            // Nothing inside a replica's subtree is re-replicated: the
            // whole critical section already executes once per replica.
            let replica_spec = if task.under_replica {
                None
            } else {
                self.config.replicate.get(&demand.fun).copied()
            };
            let salvages = task.take_future_salvages_for(&stamp);
            (packet, replica_spec, salvages)
        };
        self.stats.spawns_emitted += 1;

        match replica_spec {
            Some(spec) => {
                let mut placed = Vec::with_capacity(spec.n as usize);
                let mut avoid = self.known_dead.clone();
                for i in 0..spec.n {
                    let mut rp = packet.clone();
                    rp.replica = Some(ReplicaInfo {
                        index: i,
                        total: spec.n,
                    });
                    // Replica packets reuse the incarnation field of the ACK
                    // as the replica index (see `on_ack`).
                    rp.incarnation = i;
                    let dest = self.placer.place(&rp, &avoid);
                    avoid.insert(dest); // replicas on distinct processors
                    placed.push(dest);
                    self.send(&mut actions, dest, Msg::spawn(rp));
                }
                let task = self.tasks.get_mut(&owner).expect("owner exists");
                task.register_child(ChildInfo {
                    demand,
                    stamp: packet.stamp.clone(),
                    acked: None,
                    incarnation: 0,
                    done: false,
                    pending_salvages: salvages,
                    vote: Some(VoteGroup {
                        vote: Vote::new(spec.n, spec.vote),
                        base: packet,
                        placed,
                    }),
                    twin_pending: false,
                });
            }
            None => {
                if self.config.mode.checkpoints() {
                    self.ckpt.store(owner, packet.clone());
                }
                let dest = self.placer.place(&packet, &self.known_dead);
                let task = self.tasks.get_mut(&owner).expect("owner exists");
                task.register_child(ChildInfo {
                    demand,
                    stamp: packet.stamp.clone(),
                    acked: None,
                    incarnation: 0,
                    done: false,
                    pending_salvages: salvages,
                    vote: None,
                    twin_pending: false,
                });
                actions.push(Action::SetTimer {
                    timer: Timer::AckTimeout {
                        owner,
                        stamp: packet.stamp.clone(),
                        incarnation: 0,
                    },
                    delay: self.config.ack_timeout,
                });
                self.send(&mut actions, dest, Msg::spawn(packet));
            }
        }
        actions
    }

    fn finish_task(&mut self, key: TaskKey, value: Value) -> Vec<Action> {
        let mut actions = Vec::new();
        let Some(task) = self.tasks.remove(&key) else {
            return actions;
        };
        if self.by_stamp.get(&task.stamp) == Some(&key) {
            self.by_stamp.remove(&task.stamp);
        }
        debug_assert!(task.all_children_done());
        // Safety net: any checkpoint not retired through the normal paths.
        self.ckpt.retire_owner(key);
        self.stats.tasks_completed += 1;

        let rp = ResultPacket {
            from_stamp: task.stamp.clone(),
            demand: Demand::new(task.eval.fun(), task.eval.args().to_vec()),
            value,
            to: task.parent.addr,
            to_stamp: task.parent.stamp.clone(),
            relay_chain: task.ancestors.clone(),
            replica: task.replica.clone(),
        };
        if self.known_dead.contains(&rp.to.proc) {
            actions.extend(self.handle_undeliverable_result(rp));
        } else {
            let to = rp.to.proc;
            self.send(&mut actions, to, Msg::result(rp));
        }
        actions
    }

    fn drop_task(&mut self, key: TaskKey) -> Vec<Action> {
        if let Some(task) = self.tasks.remove(&key) {
            if self.by_stamp.get(&task.stamp) == Some(&key) {
                self.by_stamp.remove(&task.stamp);
            }
            self.ckpt.retire_owner(key);
        }
        Vec::new()
    }

    // -----------------------------------------------------------------
    // Results (forward-result case of the §4.2 loop)
    // -----------------------------------------------------------------

    fn on_result(&mut self, rp: ResultPacket) -> Vec<Action> {
        let mut actions = Vec::new();
        if let Some(replica) = rp.replica.clone() {
            self.stats.replica_results += 1;
            actions.extend(self.on_replica_result(rp, replica));
            return actions;
        }
        let Some(task) = self.tasks.get_mut(&rp.to.key) else {
            // "others: Ignore the packet" — the addressee is gone (§4.1
            // case 8).
            self.stats.stale_messages_ignored += 1;
            return actions;
        };
        if task.stamp != rp.to_stamp {
            self.stats.stale_messages_ignored += 1;
            return actions;
        }
        match task.children.get(&rp.from_stamp) {
            None => {
                self.stats.stale_messages_ignored += 1;
                actions
            }
            Some(ci) if ci.done => {
                // "Since they are identical, the second copy is simply
                // ignored." (§4.1 cases 6/7)
                self.stats.duplicate_results_ignored += 1;
                actions
            }
            Some(_) => {
                self.supply_child(rp.to.key, &rp.from_stamp, rp.value);
                actions
            }
        }
    }

    fn on_replica_result(&mut self, rp: ResultPacket, replica: ReplicaInfo) -> Vec<Action> {
        let Some(task) = self.tasks.get_mut(&rp.to.key) else {
            self.stats.stale_messages_ignored += 1;
            return Vec::new();
        };
        let Some(ci) = task.children.get_mut(&rp.from_stamp) else {
            self.stats.stale_messages_ignored += 1;
            return Vec::new();
        };
        if ci.done {
            self.stats.duplicate_results_ignored += 1;
            return Vec::new();
        }
        let Some(group) = ci.vote.as_mut() else {
            self.stats.stale_messages_ignored += 1;
            return Vec::new();
        };
        match group.vote.add(replica.index, rp.value) {
            VoteOutcome::Pending => Vec::new(),
            VoteOutcome::Decided { value, clean } => {
                let dissent = group.vote.dissenting(&value) as u64;
                if clean {
                    self.stats.votes_decided += 1;
                } else {
                    self.stats.votes_conflicted += 1;
                }
                self.stats.votes_dissenting += dissent;
                self.supply_child(rp.to.key, &rp.from_stamp, value);
                Vec::new()
            }
        }
    }

    /// Marks a child demand satisfied and resumes the parent when its wave
    /// barrier is met.
    fn supply_child(&mut self, owner: TaskKey, stamp: &LevelStamp, value: Value) {
        let Some(task) = self.tasks.get_mut(&owner) else {
            return;
        };
        let Some(ci) = task.children.get_mut(stamp) else {
            return;
        };
        ci.done = true;
        let demand = ci.demand.clone();
        self.ckpt.retire(owner, stamp);
        if !task.eval.supply(&demand, value) {
            self.stats.duplicate_results_ignored += 1;
        }
        if task.eval.ready() {
            self.enqueue(owner);
        }
    }

    // -----------------------------------------------------------------
    // Failure handling: rollback (§3) and splice (§4)
    // -----------------------------------------------------------------

    /// Convergence point for all failure discovery paths. Idempotent.
    fn on_proc_dead(&mut self, dead: ProcId) -> Vec<Action> {
        if dead == self.id || dead.is_super_root() || !self.known_dead.insert(dead) {
            // A death already in `known_dead` is never re-forwarded: the
            // insert above is the gossip dedup — without it every redundant
            // notice (detector broadcast, peer gossip, repeated bounces)
            // would echo back out as a fresh broadcast.
            return Vec::new();
        }
        let mut actions = Vec::new();
        // Gossip the first discovery to the placer neighbourhood, so deaths
        // learnt from bounces or salvage arrivals propagate even when the
        // detector's broadcast is disabled. Exactly once per engine per
        // death (the dedup above), and never to processors we believe dead.
        if self.config.gossip_notices {
            for t in self.placer.beacon_targets() {
                if t != dead && !self.known_dead.contains(&t) {
                    self.send(&mut actions, t, Msg::FailureNotice { dead });
                }
            }
        }
        match self.config.mode {
            RecoveryMode::None => {}
            RecoveryMode::Rollback => {
                // Orphans commit suicide first, retiring their checkpoints,
                // so the recovery pass below does not reissue into aborted
                // fragments.
                let orphans: Vec<TaskKey> = self
                    .tasks
                    .iter()
                    .filter(|(_, t)| t.parent.addr.proc == dead)
                    .map(|(k, _)| *k)
                    .collect();
                for k in orphans {
                    self.stats.orphans_suicided += 1;
                    actions.extend(self.abort_cascade(k));
                }
                for cp in self.ckpt.recover_candidates(dead, self.config.ckpt_filter) {
                    if self.tasks.contains_key(&cp.owner) {
                        actions.extend(self.reissue_child(cp.owner, &cp.packet.stamp));
                    }
                }
            }
            RecoveryMode::Splice => {
                // Every live parent regenerates each of its dead children
                // as a step-parent twin; orphan fragments keep computing
                // and their results will be spliced in. With a grace
                // period configured, the proactive regeneration is
                // deferred so in-flight orphan results can land first.
                let grace = self.config.splice_grace;
                for cp in self
                    .ckpt
                    .recover_candidates(dead, crate::config::CheckpointFilter::All)
                {
                    if !self.tasks.contains_key(&cp.owner) {
                        continue;
                    }
                    if grace == 0 {
                        self.stats.step_parents_created += 1;
                        actions.extend(self.reissue_child(cp.owner, &cp.packet.stamp));
                    } else {
                        if let Some(ci) = self
                            .tasks
                            .get_mut(&cp.owner)
                            .and_then(|t| t.children.get_mut(&cp.packet.stamp))
                        {
                            ci.twin_pending = true;
                        }
                        actions.push(Action::SetTimer {
                            timer: Timer::GraceReissue {
                                owner: cp.owner,
                                stamp: cp.packet.stamp.clone(),
                            },
                            delay: grace,
                        });
                    }
                }
            }
        }
        // Replicated children: account for lost replicas in either mode
        // with checkpointing.
        if self.config.mode.checkpoints() {
            actions.extend(self.handle_replica_losses(dead));
        }
        actions
    }

    fn handle_replica_losses(&mut self, dead: ProcId) -> Vec<Action> {
        let mut decisions: Vec<(TaskKey, LevelStamp, Option<Value>, bool, u64)> = Vec::new();
        let mut respawns: Vec<(TaskKey, LevelStamp)> = Vec::new();
        for (key, task) in self.tasks.iter_mut() {
            for (stamp, ci) in task.children.iter_mut() {
                let Some(group) = ci.vote.as_mut() else {
                    continue;
                };
                if ci.done {
                    continue;
                }
                let lost = group.placed.iter().filter(|p| **p == dead).count();
                for _ in 0..lost {
                    match group.vote.mark_lost() {
                        VoteOutcome::Decided { value, clean } => {
                            let dissent = group.vote.dissenting(&value) as u64;
                            decisions.push((*key, stamp.clone(), Some(value), clean, dissent));
                        }
                        VoteOutcome::Pending => {}
                    }
                }
                if group.vote.all_lost() {
                    respawns.push((*key, stamp.clone()));
                }
            }
        }
        let mut actions = Vec::new();
        for (key, stamp, value, clean, dissent) in decisions {
            if let Some(v) = value {
                if clean {
                    self.stats.votes_decided += 1;
                } else {
                    self.stats.votes_conflicted += 1;
                }
                self.stats.votes_dissenting += dissent;
                self.supply_child(key, &stamp, v);
            }
        }
        for (key, stamp) in respawns {
            actions.extend(self.respawn_replica_group(key, &stamp));
        }
        actions
    }

    fn respawn_replica_group(&mut self, owner: TaskKey, stamp: &LevelStamp) -> Vec<Action> {
        let mut actions = Vec::new();
        let Some(task) = self.tasks.get_mut(&owner) else {
            return actions;
        };
        let Some(ci) = task.children.get_mut(stamp) else {
            return actions;
        };
        let Some(group) = ci.vote.as_mut() else {
            return actions;
        };
        let n = group.vote.group_size();
        let mode = match self.config.replicate.get(&group.base.demand.fun) {
            Some(spec) => spec.vote,
            None => crate::config::VoteMode::Majority,
        };
        group.vote = Vote::new(n, mode);
        let base = group.base.reissue();
        group.base = base.clone();
        let mut placed = Vec::with_capacity(n as usize);
        let mut avoid = self.known_dead.clone();
        let mut spawns = Vec::new();
        for i in 0..n {
            let mut rp = base.clone();
            rp.replica = Some(ReplicaInfo { index: i, total: n });
            rp.incarnation = i;
            let dest = self.placer.place(&rp, &avoid);
            avoid.insert(dest);
            placed.push(dest);
            spawns.push((dest, rp));
        }
        group.placed = placed;
        self.stats.reissues += 1;
        for (dest, rp) in spawns {
            self.send(&mut actions, dest, Msg::spawn(rp));
        }
        actions
    }

    /// Re-issues a (non-replicated) child from its functional checkpoint.
    /// In splice mode this is exactly step-parent/twin creation.
    fn reissue_child(&mut self, owner: TaskKey, stamp: &LevelStamp) -> Vec<Action> {
        let mut actions = Vec::new();
        let Some(task) = self.tasks.get_mut(&owner) else {
            return actions;
        };
        let Some(ci) = task.children.get_mut(stamp) else {
            return actions;
        };
        if ci.done {
            return actions;
        }
        ci.incarnation += 1;
        let incarnation = ci.incarnation;
        self.ckpt.on_reissue(owner, stamp);
        let Some(cp) = self.ckpt.get(owner, stamp) else {
            return actions;
        };
        let mut packet = cp.packet.clone();
        packet.incarnation = incarnation;
        let dest = self.placer.place(&packet, &self.known_dead);
        self.stats.reissues += 1;
        actions.push(Action::SetTimer {
            timer: Timer::AckTimeout {
                owner,
                stamp: stamp.clone(),
                incarnation,
            },
            delay: self.config.ack_timeout,
        });
        self.send(&mut actions, dest, Msg::spawn(packet));
        actions
    }

    /// Re-places a bounced spawn packet. If this processor is the packet's
    /// parent, go through the checkpointed reissue path (keeps incarnation
    /// bookkeeping coherent); otherwise re-place the packet directly.
    fn reissue_packet(&mut self, p: TaskPacket) -> Vec<Action> {
        if p.parent.addr.proc == self.id && self.tasks.contains_key(&p.parent.addr.key) {
            if p.replica.is_some() {
                // Replica spawn lost; treat as a lost replica — the vote
                // already accounts for its processor via on_proc_dead.
                return Vec::new();
            }
            return self.reissue_child(p.parent.addr.key, &p.stamp);
        }
        // A packet we were merely forwarding: place it somewhere else.
        let mut actions = Vec::new();
        let mut p = p.reissue();
        p.hops = 0;
        let dest = self.placer.place(&p, &self.known_dead);
        self.stats.reissues += 1;
        self.send(&mut actions, dest, Msg::spawn(p));
        actions
    }

    /// A completed task's result cannot reach its parent: splice relays it
    /// toward the nearest live ancestor ("notify the grandparent and send
    /// the result to the grandparent"); rollback discards it — the orphan
    /// has effectively committed suicide after the fact.
    fn handle_undeliverable_result(&mut self, rp: ResultPacket) -> Vec<Action> {
        let mut actions = Vec::new();
        if !self.config.mode.salvages() || rp.replica.is_some() {
            self.stats.orphans_suicided += 1;
            return actions;
        }
        let sp = SalvagePacket {
            to: TaskAddr::new(ProcId(0), TaskKey(0)), // filled below
            dead_stamp: rp.to_stamp.clone(),
            dead_addr: rp.to,
            demand: rp.demand.clone(),
            value: rp.value.clone(),
            from_stamp: rp.from_stamp.clone(),
        };
        actions.extend(self.send_salvage_via_chain(sp, rp.relay_chain, rp.to.proc));
        actions
    }

    /// Sends a salvage packet to the first live link of an ancestor chain.
    fn send_salvage_via_chain(
        &mut self,
        mut sp: SalvagePacket,
        chain: Vec<TaskLink>,
        dead_proc: ProcId,
    ) -> Vec<Action> {
        let mut actions = Vec::new();
        let _ = dead_proc;
        for (i, link) in chain.iter().enumerate() {
            if self.known_dead.contains(&link.addr.proc) {
                continue;
            }
            sp.to = link.addr;
            if link.addr.proc == self.id {
                // The ancestor is local: route directly.
                let (routed, mut acts) = self.route_salvage(sp.clone());
                actions.append(&mut acts);
                if !routed {
                    let rest: Vec<TaskLink> = chain[i + 1..].to_vec();
                    if rest.is_empty() {
                        self.stats.stranded_orphans += 1;
                    } else {
                        actions.extend(self.send_salvage_via_chain(sp, rest, dead_proc));
                    }
                }
                return actions;
            }
            self.send(&mut actions, link.addr.proc, Msg::salvage(sp));
            return actions;
        }
        // "If both the parent and grandparent processors of a task fail
        // simultaneously, the orphan task would be stranded." (§5.2)
        self.stats.stranded_orphans += 1;
        actions
    }

    /// Upward retry after a salvage bounce: try the remaining ancestors of
    /// the dead stamp. The chain is reconstructed from the packet's stamp
    /// prefixes we know locally — if none, the orphan is stranded.
    fn relay_salvage_upward(&mut self, sp: SalvagePacket) -> Vec<Action> {
        // We only know our own tasks; with the direct chain exhausted the
        // orphan result is stranded from this processor's point of view.
        let _ = sp;
        self.stats.stranded_orphans += 1;
        Vec::new()
    }

    fn on_salvage(&mut self, sp: SalvagePacket) -> Vec<Action> {
        // An unexpected grandchild answer implies the intermediate parent is
        // faulty; the stamp itself tells us which task, and the processor it
        // lived on is already in our dead set if a notice arrived first.
        let (_, actions) = {
            let (routed, mut acts) = self.route_salvage(sp.clone());
            if !routed {
                self.stats.salvage_dropped += 1;
            }
            (routed, {
                let v: Vec<Action> = std::mem::take(&mut acts);
                v
            })
        };
        actions
    }

    /// Routes a salvage packet at this processor: deliver to the twin if it
    /// lives here, otherwise hand it one step down the regenerated spine.
    /// Returns whether the packet found a consumer or forwarder.
    fn route_salvage(&mut self, sp: SalvagePacket) -> (bool, Vec<Action>) {
        let mut actions = Vec::new();
        // Twin (or still-live original) of the dead task here?
        if let Some(&key) = self.by_stamp.get(&sp.dead_stamp) {
            self.preload_salvage(key, sp);
            return (true, actions);
        }
        // Deepest live local ancestor of the dead stamp.
        let mut probe = sp.dead_stamp.clone();
        while let Some(parent) = probe.parent() {
            probe = parent;
            let Some(&key) = self.by_stamp.get(&probe) else {
                continue;
            };
            let Some(task) = self.tasks.get_mut(&key) else {
                continue;
            };
            let next = task
                .stamp
                .child_towards(&sp.dead_stamp)
                .expect("probe is an ancestor");
            match task.children.get_mut(&next) {
                None => {
                    // The (twin) ancestor has not demanded this child yet;
                    // park the salvage for when it does.
                    task.future_salvages.push(sp);
                    return (true, actions);
                }
                Some(ci) if ci.done => {
                    // The subtree's value is already known upstream; the
                    // orphan's contribution is stale (§4.1 case 8).
                    self.stats.salvage_dropped += 1;
                    return (true, actions);
                }
                Some(ci) => {
                    // The unexpected grandchild answer itself proves the
                    // instance it addressed is dead (§4.1): if we still
                    // point at exactly that instance, declare its processor
                    // faulty and regenerate before routing.
                    if ci.current_addr() == Some(sp.dead_addr)
                        && !self.known_dead.contains(&sp.dead_addr.proc)
                    {
                        let dead = sp.dead_addr.proc;
                        ci.pending_salvages.push(sp);
                        let mut acts = self.on_proc_dead(dead);
                        actions.append(&mut acts);
                        // "Create a step-parent for the grandchild if there
                        // isn't one already": even with a grace period, the
                        // salvage arrival itself triggers the twin.
                        acts = self.salvage_triggers_twin(key, &next);
                        actions.append(&mut acts);
                        return (true, actions);
                    }
                    match ci.current_addr() {
                        Some(addr) if !self.known_dead.contains(&addr.proc) => {
                            let mut sp = sp;
                            sp.to = addr;
                            self.stats.salvage_forwarded += 1;
                            self.send(&mut actions, addr.proc, Msg::salvage(sp));
                            return (true, actions);
                        }
                        Some(addr) => {
                            // Child instance died too: reissue it (twin) and
                            // park the salvage until the new ACK.
                            let dead = addr.proc;
                            ci.pending_salvages.push(sp);
                            let mut acts = self.on_proc_dead(dead);
                            actions.append(&mut acts);
                            acts = self.salvage_triggers_twin(key, &next);
                            actions.append(&mut acts);
                            return (true, actions);
                        }
                        None => {
                            // Spawn in flight; park until the ACK flushes.
                            ci.pending_salvages.push(sp);
                            return (true, actions);
                        }
                    }
                }
            }
        }
        (false, actions)
    }

    /// Reactive twin creation: a salvage just arrived for a child whose
    /// twin creation was deferred by the grace period.
    fn salvage_triggers_twin(&mut self, owner: TaskKey, stamp: &LevelStamp) -> Vec<Action> {
        let deferred = match self
            .tasks
            .get_mut(&owner)
            .and_then(|t| t.children.get_mut(stamp))
        {
            Some(ci) if ci.twin_pending && !ci.done => {
                ci.twin_pending = false;
                true
            }
            _ => false,
        };
        if deferred {
            self.stats.step_parents_created += 1;
            self.reissue_child(owner, stamp)
        } else {
            Vec::new()
        }
    }

    fn preload_salvage(&mut self, key: TaskKey, sp: SalvagePacket) {
        let Some(task) = self.tasks.get_mut(&key) else {
            return;
        };
        self.stats.salvaged_results += 1;
        // If the twin already spawned this demand, the preload satisfies it
        // (§4.1 case 6: the spawned duplicate's eventual result is ignored);
        // otherwise the preload prevents the spawn entirely (cases 4/5).
        if let Some(stamp) = task.by_demand.get(&sp.demand).cloned() {
            self.stats.salvage_after_spawn += 1;
            let done = task.children.get(&stamp).map(|c| c.done).unwrap_or(false);
            if !done {
                self.supply_child(key, &stamp, sp.value);
            } else {
                self.stats.duplicate_results_ignored += 1;
            }
        } else {
            self.stats.salvage_before_spawn += 1;
            task.eval.preload(sp.demand, sp.value);
            if task.eval.ready() {
                self.enqueue(key);
            }
        }
    }

    // -----------------------------------------------------------------
    // Abort cascade (rollback garbage collection)
    // -----------------------------------------------------------------

    fn on_abort(&mut self, to: TaskAddr) -> Vec<Action> {
        if self.tasks.contains_key(&to.key) {
            self.stats.tasks_aborted += 1;
            self.abort_cascade(to.key)
        } else {
            self.stats.stale_messages_ignored += 1;
            Vec::new()
        }
    }

    fn abort_cascade(&mut self, key: TaskKey) -> Vec<Action> {
        let mut actions = Vec::new();
        let Some(task) = self.tasks.remove(&key) else {
            return actions;
        };
        if self.by_stamp.get(&task.stamp) == Some(&key) {
            self.by_stamp.remove(&task.stamp);
        }
        self.ckpt.retire_owner(key);
        for ci in task.children.values() {
            if ci.done {
                continue;
            }
            if let Some(addr) = ci.current_addr() {
                if !self.known_dead.contains(&addr.proc) {
                    self.stats.aborts_sent += 1;
                    self.send(&mut actions, addr.proc, Msg::Abort { to: addr });
                }
            }
            if let Some(group) = &ci.vote {
                for (i, p) in group.placed.iter().enumerate() {
                    let _ = i;
                    if !self.known_dead.contains(p) {
                        // Best effort: abort replicas at their placement.
                        // Without the acked key we cannot address the task
                        // precisely; replicas finish and their results are
                        // ignored. (Counted as garbage work in experiments.)
                        let _ = p;
                    }
                }
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::SelfPlacer;
    use splice_applicative::Workload;

    fn engine_for(w: &Workload, mode: RecoveryMode) -> Engine {
        let mut cfg = Config::with_mode(mode);
        cfg.load_beacon_period = 0;
        Engine::new(
            ProcId(0),
            Arc::new(w.program.clone()),
            cfg,
            Box::new(SelfPlacer { here: ProcId(0) }),
        )
    }

    fn root_packet(w: &Workload) -> TaskPacket {
        TaskPacket {
            stamp: LevelStamp::root().child(1),
            demand: Demand::new(w.entry, w.args.clone()),
            parent: TaskLink::super_root(),
            ancestors: vec![TaskLink::super_root()],
            incarnation: 0,
            hops: 0,
            replica: None,
            under_replica: false,
        }
    }

    /// Drives a single engine to completion by looping messages back into
    /// it, returning the root result observed at the super-root.
    fn run_single(engine: &mut Engine, w: &Workload) -> Value {
        let mut inbox: VecDeque<Msg> = VecDeque::new();
        inbox.push_back(Msg::spawn(root_packet(w)));
        let mut root_result = None;
        let mut guard = 0u64;
        loop {
            guard += 1;
            assert!(guard < 10_000_000, "single-engine run diverged");
            let actions = if let Some(msg) = inbox.pop_front() {
                engine.on_message(msg)
            } else if let Some(key) = engine.pop_ready() {
                engine.run_wave(key).0
            } else {
                break;
            };
            for a in actions {
                match a {
                    Action::Send { to, msg } => {
                        if to.is_super_root() {
                            if let Msg::Result(rp) = msg {
                                root_result = Some(rp.value);
                            }
                            // Super-root acks are not modelled here.
                        } else {
                            assert_eq!(to, ProcId(0), "SelfPlacer keeps everything local");
                            inbox.push_back(msg);
                        }
                    }
                    Action::SetTimer { .. } => {
                        // Single reliable processor: timers never matter.
                    }
                }
            }
        }
        root_result.expect("root completed")
    }

    #[test]
    fn single_processor_runs_fib_to_completion() {
        let w = Workload::fib(10);
        let mut e = engine_for(&w, RecoveryMode::Splice);
        let v = run_single(&mut e, &w);
        assert_eq!(v, Value::Int(55));
        assert_eq!(e.task_count(), 0, "all tasks drained");
        assert!(e.checkpoints().is_empty(), "all checkpoints retired");
        assert!(e.stats().tasks_completed > 100);
    }

    #[test]
    fn single_processor_agrees_with_reference_across_suite() {
        for w in Workload::suite_small() {
            let mut e = engine_for(&w, RecoveryMode::Splice);
            let v = run_single(&mut e, &w);
            assert_eq!(v, w.reference_result().unwrap(), "{}", w.name);
            assert!(e.checkpoints().is_empty(), "{}", w.name);
        }
    }

    #[test]
    fn mode_none_stores_no_checkpoints() {
        let w = Workload::fib(8);
        let mut e = engine_for(&w, RecoveryMode::None);
        let v = run_single(&mut e, &w);
        assert_eq!(v, Value::Int(21));
        assert_eq!(e.checkpoints().stored_total(), 0);
    }

    #[test]
    fn rollback_stores_and_retires_checkpoints() {
        let w = Workload::fib(8);
        let mut e = engine_for(&w, RecoveryMode::Rollback);
        run_single(&mut e, &w);
        assert!(e.checkpoints().stored_total() > 0);
        assert_eq!(
            e.checkpoints().stored_total(),
            e.checkpoints().retired_total()
        );
        assert!(e.checkpoints().peak_entries() > 0);
    }

    #[test]
    fn stale_messages_are_ignored() {
        let w = Workload::fib(5);
        let mut e = engine_for(&w, RecoveryMode::Splice);
        let stale = Msg::result(ResultPacket {
            from_stamp: LevelStamp::from_digits(&[1, 1]),
            demand: Demand::new(w.entry, vec![Value::Int(1)]),
            value: Value::Int(1),
            to: TaskAddr::new(ProcId(0), TaskKey(999)),
            to_stamp: LevelStamp::from_digits(&[1]),
            relay_chain: vec![],
            replica: None,
        });
        let actions = e.on_message(stale);
        assert!(actions.is_empty());
        assert_eq!(e.stats().stale_messages_ignored, 1);
        // Unknown aborts equally ignored.
        e.on_message(Msg::Abort {
            to: TaskAddr::new(ProcId(0), TaskKey(1)),
        });
        assert_eq!(e.stats().stale_messages_ignored, 2);
    }

    #[test]
    fn failure_notice_is_idempotent() {
        let w = Workload::fib(5);
        let mut e = engine_for(&w, RecoveryMode::Rollback);
        assert!(e
            .on_message(Msg::FailureNotice { dead: ProcId(3) })
            .is_empty());
        assert!(e
            .on_message(Msg::FailureNotice { dead: ProcId(3) })
            .is_empty());
        assert!(e.known_dead().contains(&ProcId(3)));
    }
}
