//! The sans-IO processor engine: the paper's §4.2 protocol loop.
//!
//! ```text
//! LOOP
//!   CASE received packet OF
//!     forward result:  interpret the level stamp (child / grandchild / other)
//!     task packet:     execute; DEMAND unevaluated functions; send result to
//!                      the parent; if the parent is dead, notify the
//!                      grandparent and send the result there
//!     error-detection: respawn the topmost offspring of all severed
//!                      branches; establish the relay for partial results
//!   ENDCASE
//! ENDLOOP
//! ```
//!
//! The engine is *sans-IO*: it owns no clock, no RNG and no transport. Every
//! entry point takes an input and returns a list of [`Action`]s for the
//! driver (the discrete-event simulator or the threaded runtime) to
//! perform. This is what makes the protocol deterministic under test while
//! still running unchanged on real threads.
//!
//! A note on failure discovery: per the paper, "a processor makes its best
//! effort to communicate with a destination node. If the destination cannot
//! be reached ..., the unreachable node is considered faulty." Drivers
//! surface unreachability as [`Engine::on_send_failed`]; an explicit
//! detector (or gossip) surfaces it as a `FailureNotice` message. Both
//! converge on the same internal `on_proc_dead` handling, and splice
//! recovery additionally learns of deaths from arriving salvage packets —
//! "processor C receives these unexpected partial answers from
//! grandchildren and asserts that the parent of these grandchildren is
//! faulty" (§4.1).

use crate::checkpoint::CheckpointTable;
use crate::config::{Config, RecoveryMode};
use crate::ids::{ProcId, TaskAddr, TaskKey};
use crate::packet::{
    AckInfo, CkptPacket, Msg, ReplicaInfo, ResultPacket, SalvagePacket, TaskLink, TaskPacket,
};
use crate::place::Placer;
use crate::policy::{PersistenceTier, PolicyKind, RecoveryPolicy};
use crate::replicate::{Vote, VoteOutcome};
use crate::sink::ActionSink;
use crate::stamp::LevelStamp;
use crate::stats::ProcStats;
use crate::task::{ChildInfo, Task, VoteGroup};
use splice_applicative::wave::{Demand, FramePool};
use splice_applicative::{FxHashMap, FxHashSet, Program, Value};
use std::collections::VecDeque;
use std::sync::Arc;

/// Maximum placement hops before a packet must be accepted locally.
const MAX_HOPS: u32 = 16;

/// Retired task frames an engine keeps for reuse. Enough for the resident
/// peak of every shipped workload; beyond it frames are simply dropped.
const FREE_TASK_CAP: usize = 512;

/// Payload of [`Timer::AckTimeout`] (boxed to keep `Action` small).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AckTimer {
    /// The spawning (parent) task.
    pub owner: TaskKey,
    /// The child's stamp.
    pub stamp: LevelStamp,
    /// The incarnation this timer guards.
    pub incarnation: u32,
}

/// Payload of [`Timer::GraceReissue`] (boxed to keep `Action` small).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraceTimer {
    /// The owning (parent) task.
    pub owner: TaskKey,
    /// The dead child's stamp.
    pub stamp: LevelStamp,
}

/// A timer the engine asks its driver to arm.
///
/// Timers ride inside [`Action`]s through every substrate hop, so the fat
/// payloads are boxed: the enum stays two words and `Action` stays within
/// its 32-byte pin (see the `action_stays_small` test).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Timer {
    /// Fires if a spawned child packet has not been acknowledged
    /// (Figure 6 state b: reissue as if the first invocation never
    /// happened).
    AckTimeout(Box<AckTimer>),
    /// Periodic load-pressure beacon for the placer.
    LoadBeacon,
    /// Deferred splice twin creation (the E13 grace extension): fires
    /// `splice_grace` units after a failure notice; the child is reissued
    /// only if nothing (salvage, vote, result) satisfied it meanwhile.
    GraceReissue(Box<GraceTimer>),
}

impl Timer {
    /// Builds an ack-timeout timer.
    pub fn ack_timeout(owner: TaskKey, stamp: LevelStamp, incarnation: u32) -> Timer {
        Timer::AckTimeout(Box::new(AckTimer {
            owner,
            stamp,
            incarnation,
        }))
    }

    /// Builds a grace-reissue timer.
    pub fn grace_reissue(owner: TaskKey, stamp: LevelStamp) -> Timer {
        Timer::GraceReissue(Box::new(GraceTimer { owner, stamp }))
    }
}

/// An effect the driver must perform on the engine's behalf.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Transmit `msg` to processor `to` (self-sends are allowed and mean
    /// local delivery).
    Send {
        /// Destination processor.
        to: ProcId,
        /// The message.
        msg: Msg,
    },
    /// Arm `timer` to fire after `delay` driver time units.
    SetTimer {
        /// The timer payload (returned verbatim on expiry).
        timer: Timer,
        /// Delay in driver units.
        delay: u64,
    },
}

/// The per-processor protocol engine.
pub struct Engine {
    id: ProcId,
    program: Arc<Program>,
    config: Config,
    placer: Box<dyn Placer>,
    tasks: FxHashMap<TaskKey, Task>,
    by_stamp: FxHashMap<LevelStamp, TaskKey>,
    ready: VecDeque<TaskKey>,
    next_key: u64,
    known_dead: FxHashSet<ProcId>,
    ckpt: CheckpointTable,
    /// The recovery-policy seam: what to persist at spawn, whether death
    /// discovery reissues eagerly or marks subtrees lost, re-checkpoint
    /// cadence. Built from `config.policy`.
    policy: Box<dyn RecoveryPolicy>,
    stats: ProcStats,
    /// Wave-evaluation scratch shared by every resident task.
    pool: FramePool,
    /// Reusable demand out-buffer for `run_wave`.
    demand_buf: Vec<Demand>,
    /// Retired task frames: their maps and buffers are reused by the next
    /// accepted spawn, so steady-state task churn allocates nothing.
    free_tasks: Vec<Task>,
    /// Only filled while a driver has enabled creation logging.
    log_created: bool,
    created_log: Vec<LevelStamp>,
}

impl Engine {
    /// Creates an engine for processor `id`.
    pub fn new(
        id: ProcId,
        program: Arc<Program>,
        config: Config,
        placer: Box<dyn Placer>,
    ) -> Engine {
        let policy = config.policy.build();
        Engine {
            id,
            program,
            config,
            placer,
            policy,
            tasks: FxHashMap::default(),
            by_stamp: FxHashMap::default(),
            ready: VecDeque::new(),
            next_key: 0,
            known_dead: FxHashSet::default(),
            ckpt: CheckpointTable::new(),
            stats: ProcStats::default(),
            pool: FramePool::new(),
            demand_buf: Vec::new(),
            free_tasks: Vec::new(),
            log_created: false,
            created_log: Vec::new(),
        }
    }

    /// Enables the per-creation stamp log ([`Engine::drain_created`]).
    /// Off by default: unscripted runs should not grow a log nobody reads.
    pub fn enable_created_log(&mut self) {
        self.log_created = true;
    }

    /// Drains the stamps of tasks created since the last call. Drivers use
    /// this to build placement logs for scripted scenarios (enable with
    /// [`Engine::enable_created_log`] first).
    pub fn drain_created(&mut self) -> Vec<LevelStamp> {
        std::mem::take(&mut self.created_log)
    }

    /// Looks up a resident task key by stamp (scenario inspection).
    pub fn task_by_stamp(&self, stamp: &LevelStamp) -> Option<TaskKey> {
        self.by_stamp.get(stamp).copied()
    }

    /// This processor's id.
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// The engine's configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Statistics so far.
    pub fn stats(&self) -> &ProcStats {
        &self.stats
    }

    /// The checkpoint table (for inspection by tests and reports).
    pub fn checkpoints(&self) -> &CheckpointTable {
        &self.ckpt
    }

    /// Which named recovery policy this engine runs.
    pub fn policy_kind(&self) -> PolicyKind {
        self.policy.kind()
    }

    /// Number of resident tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Processors this engine believes dead.
    pub fn known_dead(&self) -> &FxHashSet<ProcId> {
        &self.known_dead
    }

    /// Local pressure: tasks ready to run.
    pub fn pressure(&self) -> u32 {
        self.ready.len() as u32
    }

    /// Called once when the processor starts; arms periodic beacons.
    pub fn on_start(&mut self, sink: &mut ActionSink) {
        if self.config.load_beacon_period > 0 && !self.placer.beacon_targets().is_empty() {
            sink.push(Action::SetTimer {
                timer: Timer::LoadBeacon,
                delay: self.config.load_beacon_period,
            });
        }
    }

    /// Pops the next runnable task, if any.
    pub fn pop_ready(&mut self) -> Option<TaskKey> {
        while let Some(key) = self.ready.pop_front() {
            if let Some(t) = self.tasks.get_mut(&key) {
                if t.queued {
                    t.queued = false;
                    return Some(key);
                }
            }
        }
        None
    }

    /// True when at least one task is runnable.
    pub fn has_ready(&self) -> bool {
        self.ready
            .iter()
            .any(|k| self.tasks.get(k).map(|t| t.queued).unwrap_or(false))
    }

    fn enqueue(&mut self, key: TaskKey) {
        if let Some(t) = self.tasks.get_mut(&key) {
            if !t.queued {
                t.queued = true;
                self.ready.push_back(key);
            }
        }
    }

    fn send(&mut self, sink: &mut ActionSink, to: ProcId, msg: Msg) {
        self.stats.sent(msg.kind(), msg.size());
        sink.push(Action::Send { to, msg });
    }

    // -----------------------------------------------------------------
    // Message dispatch
    // -----------------------------------------------------------------

    /// Handles an arriving message, appending the engine's responses to
    /// `sink` (as every handler below does).
    pub fn on_message(&mut self, msg: Msg, sink: &mut ActionSink) {
        self.stats.received(msg.kind());
        match msg {
            Msg::Spawn(p) => self.on_spawn(*p, sink),
            Msg::Ack(ack) => {
                let AckInfo {
                    child_stamp,
                    child_addr,
                    parent,
                    incarnation,
                } = *ack;
                self.on_ack(child_stamp, child_addr, parent, incarnation, sink)
            }
            Msg::Result(rp) => self.on_result(*rp, sink),
            Msg::Salvage(sp) => self.on_salvage(*sp, sink),
            Msg::Abort { to } => self.on_abort(to, sink),
            Msg::Load { from, pressure } => {
                self.placer.on_load(from, pressure);
            }
            Msg::FailureNotice { dead } => self.on_proc_dead(dead, sink),
            // A delivered probe answers itself: the sender only learns
            // anything when the transport bounces one.
            Msg::Probe => {}
            Msg::Ckpt(cp) => self.on_ckpt(*cp),
        }
    }

    /// Handles a send that the transport reports as undeliverable: the
    /// destination is considered faulty and the message's intent is
    /// recovered where possible.
    pub fn on_send_failed(&mut self, to: ProcId, msg: Msg, sink: &mut ActionSink) {
        self.on_proc_dead(to, sink);
        match msg {
            Msg::Spawn(p) => {
                // In-flight spawn lost. If we are the original parent, the
                // child's checkpoint (or vote group) reissues it; forwarded
                // packets of other parents are re-placed directly.
                self.reissue_packet(*p, sink);
            }
            Msg::Result(rp) => {
                self.handle_undeliverable_result(*rp, sink);
            }
            Msg::Salvage(sp) => {
                // Either the downward forward hit a fresh corpse (the local
                // re-route will buffer it), or the upward relay must try the
                // next ancestor. The packet moves through unrouted returns
                // instead of being cloned per attempt.
                if let Some(sp) = self.route_salvage(*sp, sink) {
                    self.relay_salvage_upward(sp);
                }
            }
            // Lost acks/aborts/loads/notices/probes carry no recoverable
            // intent beyond the death itself (handled above). A bounced
            // probe in particular has done its whole job by bouncing, and
            // a lost re-checkpoint only costs the twin some replayed waves.
            Msg::Ack { .. }
            | Msg::Abort { .. }
            | Msg::Load { .. }
            | Msg::FailureNotice { .. }
            | Msg::Probe
            | Msg::Ckpt(_) => {}
        }
    }

    /// Handles a timer expiry.
    pub fn on_timer(&mut self, timer: Timer, sink: &mut ActionSink) {
        match timer {
            Timer::AckTimeout(t) => {
                let AckTimer {
                    owner,
                    stamp,
                    incarnation,
                } = *t;
                // An unacked child is reissued outright. An acked child
                // with an overdue result is (optionally) probed instead:
                // its host may have died silently, and with the detector
                // broadcast off nothing else would ever tell us.
                let mut probe = None;
                let mut lazy_lost = false;
                let needs_reissue =
                    match self.tasks.get(&owner).and_then(|t| t.children.get(&stamp)) {
                        Some(ci) if !ci.done && ci.incarnation == incarnation => {
                            match ci.current_addr() {
                                // A child marked lost belongs to the lazy
                                // rebuild path, not the retransmit path.
                                None => !ci.lost,
                                Some(addr) => {
                                    if !self.policy.eager_on_death()
                                        && self.known_dead.contains(&addr.proc)
                                    {
                                        // Lazy: the acked host died and no
                                        // reissue bumped the incarnation, so
                                        // this timer would probe a corpse
                                        // forever. Hand the child to the
                                        // rebuild path and let it drop.
                                        lazy_lost = true;
                                    } else if self.config.probe_acked && addr.proc != self.id {
                                        probe = Some(addr.proc);
                                    }
                                    false
                                }
                            }
                        }
                        _ => false,
                    };
                if needs_reissue {
                    self.stats.ack_timeouts += 1;
                    self.reissue_child(owner, &stamp, sink);
                } else if lazy_lost {
                    if self.mark_lost(owner, &stamp) {
                        self.lazy_rebuild_check(owner, sink);
                    }
                } else if let Some(host) = probe {
                    // Live host: no-op. Dead host: the bounce runs the
                    // full discovery path (`on_send_failed`). Either way
                    // the re-armed timer keeps polling until the child
                    // retires or is reissued under a new incarnation.
                    self.send(sink, host, Msg::Probe);
                    sink.push(Action::SetTimer {
                        timer: Timer::ack_timeout(owner, stamp, incarnation),
                        delay: self.config.ack_timeout,
                    });
                }
            }
            Timer::GraceReissue(t) => {
                let GraceTimer { owner, stamp } = *t;
                let needs = match self
                    .tasks
                    .get_mut(&owner)
                    .and_then(|t| t.children.get_mut(&stamp))
                {
                    Some(ci) if ci.twin_pending && !ci.done => {
                        ci.twin_pending = false;
                        true
                    }
                    _ => false,
                };
                if needs {
                    self.stats.step_parents_created += 1;
                    self.reissue_child(owner, &stamp, sink);
                }
            }
            Timer::LoadBeacon => {
                let raw = self.pressure();
                self.placer.set_local_pressure(raw);
                let pressure = self.placer.beacon_value(raw);
                for t in self.placer.beacon_targets() {
                    self.send(
                        sink,
                        t,
                        Msg::Load {
                            from: self.id,
                            pressure,
                        },
                    );
                }
                sink.push(Action::SetTimer {
                    timer: Timer::LoadBeacon,
                    delay: self.config.load_beacon_period,
                });
            }
        }
    }

    // -----------------------------------------------------------------
    // Spawn / placement (DEMAND_IT receiving side)
    // -----------------------------------------------------------------

    fn on_spawn(&mut self, mut p: TaskPacket, sink: &mut ActionSink) {
        let pressure = self.pressure();
        self.placer.set_local_pressure(pressure);
        if p.hops < MAX_HOPS {
            if let Some(next) = self.placer.route(&p, &self.known_dead) {
                if next != self.id {
                    p.hops += 1;
                    self.send(sink, next, Msg::spawn(p));
                    return;
                }
            }
        }
        // Accept locally, reviving a retired task frame when one exists.
        let key = TaskKey(self.next_key);
        self.next_key += 1;
        let task = match self.free_tasks.pop() {
            Some(mut t) => {
                t.reset_from_packet(key, &p);
                t
            }
            None => Task::from_packet(key, &p),
        };
        self.by_stamp.insert(task.stamp.clone(), key);
        self.tasks.insert(key, task);
        self.stats.tasks_created += 1;
        if self.log_created {
            self.created_log.push(p.stamp.clone());
        }
        self.enqueue(key);
        let ack = Msg::ack(
            p.stamp,
            TaskAddr::new(self.id, key),
            p.parent.addr,
            p.incarnation,
        );
        self.send(sink, p.parent.addr.proc, ack);
    }

    /// Retires a task frame into the free list for reuse.
    fn recycle_task(&mut self, mut task: Task) {
        if self.free_tasks.len() < FREE_TASK_CAP {
            task.clear_for_reuse();
            self.free_tasks.push(task);
        }
    }

    fn on_ack(
        &mut self,
        child_stamp: LevelStamp,
        child_addr: TaskAddr,
        parent: TaskAddr,
        incarnation: u32,
        sink: &mut ActionSink,
    ) {
        let Some(task) = self.tasks.get_mut(&parent.key) else {
            self.stats.stale_messages_ignored += 1;
            return;
        };
        let Some(ci) = task.children.get_mut(&child_stamp) else {
            self.stats.stale_messages_ignored += 1;
            return;
        };
        if let Some(group) = ci.vote.as_mut() {
            // Replica ack: refine the placement record used for loss
            // tracking. The incarnation field carries the replica index for
            // replica packets (set at spawn).
            if let Some(slot) = group.placed.get_mut(incarnation as usize) {
                *slot = child_addr.proc;
            }
            return;
        }
        // An ack from a processor we already know is dead is a message from
        // a corpse: the child it places died with its host. Recording it
        // would permanently wedge the child — the failure-notice recovery
        // pass has already run (and found no checkpoint keyed to the dead
        // processor, since the placement was unacked then), and the ack
        // timeout refuses to reissue a child with a current address. The
        // race only opens when acks travel slower than failure notices
        // (e.g. across a high-latency inter-shard router). Reissue now.
        if self.known_dead.contains(&child_addr.proc) {
            if !ci.done && incarnation == ci.incarnation && ci.current_addr().is_none() {
                if self.policy.eager_on_death() {
                    return self.reissue_child(parent.key, &child_stamp, sink);
                }
                // Lazy: the placement died with its host; defer the
                // rebuild until the owner's progress demands it.
                if self.mark_lost(parent.key, &child_stamp) {
                    self.lazy_rebuild_check(parent.key, sink);
                }
                return;
            }
            self.stats.stale_messages_ignored += 1;
            return;
        }
        let newer = match ci.acked {
            Some((_, prev_inc)) => incarnation >= prev_inc,
            None => true,
        };
        if newer {
            ci.acked = Some((child_addr, incarnation));
            self.ckpt.on_ack(parent.key, &child_stamp, child_addr.proc);
            // Flush salvages that were waiting for a location.
            let pending = std::mem::take(&mut ci.pending_salvages);
            for mut sp in pending {
                sp.to = child_addr;
                self.stats.salvage_forwarded += 1;
                self.send(sink, child_addr.proc, Msg::salvage(sp));
            }
        } else {
            self.stats.stale_messages_ignored += 1;
        }
    }

    // -----------------------------------------------------------------
    // Execution (task packet case of the §4.2 loop)
    // -----------------------------------------------------------------

    /// Runs one evaluation wave of `key`, appending the driver actions to
    /// `sink`. Returns the abstract work performed (for time accounting).
    /// Evaluation scratch (value stack, environments, demand buffers)
    /// comes from the engine's frame pool, so a steady-state wave performs
    /// no allocation beyond genuinely new demand payloads.
    pub fn run_wave(&mut self, key: TaskKey, sink: &mut ActionSink) -> u64 {
        let Some(task) = self.tasks.get_mut(&key) else {
            return 0;
        };
        if !task.eval.ready() {
            // Spurious wake-up; wave barrier not met.
            return 0;
        }
        let before = task.eval.work();
        let mut demands = std::mem::take(&mut self.demand_buf);
        demands.clear();
        let step = task
            .eval
            .step_pooled(&self.program, &mut self.pool, &mut demands);
        let work = task.eval.work() - before;
        self.stats.waves_run += 1;
        self.stats.work_units += work;
        match step {
            Err(_) => {
                self.stats.eval_errors += 1;
                self.drop_task(key);
            }
            Ok(Some(v)) => self.finish_task(key, v, sink),
            Ok(None) => {
                for d in demands.drain(..) {
                    self.spawn_child(key, d, sink);
                }
                // All demands may have been satisfied synchronously by
                // preloaded salvage; re-queue in that case.
                if let Some(t) = self.tasks.get(&key) {
                    if t.eval.ready() {
                        self.enqueue(key);
                    } else if !self.policy.eager_on_death() {
                        // Lazy: the wave re-blocked; if everything it still
                        // waits on is lost, the results are now demanded.
                        self.lazy_rebuild_check(key, sink);
                    }
                }
            }
        }
        self.demand_buf = demands;
        work
    }

    /// Spawns one child demand (the paper's `DEMAND_IT`):
    /// create packet → level-stamp it → attach parent and grandparent
    /// identifications → queue to the load balancer → functional checkpoint.
    fn spawn_child(&mut self, owner: TaskKey, demand: Demand, sink: &mut ActionSink) {
        let (packet, replica_spec, salvages) = {
            let task = self.tasks.get_mut(&owner).expect("owner exists");
            let stamp = task.next_child_stamp();
            let parent_link = TaskLink::new(TaskAddr::new(self.id, owner), task.stamp.clone());
            let ancestors: Vec<TaskLink> = std::iter::once(task.parent.clone())
                .chain(task.ancestors.iter().cloned())
                .take(self.config.links_beyond_parent())
                .collect();
            let packet = TaskPacket {
                stamp: stamp.clone(),
                demand: demand.clone(),
                parent: parent_link,
                ancestors,
                incarnation: 0,
                hops: 0,
                replica: None,
                under_replica: task.under_replica,
            };
            // Nothing inside a replica's subtree is re-replicated: the
            // whole critical section already executes once per replica.
            let replica_spec = if task.under_replica {
                None
            } else {
                self.config.replicate.get(&demand.fun).copied()
            };
            let salvages = task.take_future_salvages_for(&stamp);
            (packet, replica_spec, salvages)
        };
        self.stats.spawns_emitted += 1;

        match replica_spec {
            Some(spec) => {
                let mut placed = Vec::with_capacity(spec.n as usize);
                let mut avoid = self.known_dead.clone();
                for i in 0..spec.n {
                    let mut rp = packet.clone();
                    rp.replica = Some(ReplicaInfo {
                        index: i,
                        total: spec.n,
                    });
                    // Replica packets reuse the incarnation field of the ACK
                    // as the replica index (see `on_ack`).
                    rp.incarnation = i;
                    let dest = self.placer.place(&rp, &avoid);
                    avoid.insert(dest); // replicas on distinct processors
                    placed.push(dest);
                    self.send(sink, dest, Msg::spawn(rp));
                }
                let task = self.tasks.get_mut(&owner).expect("owner exists");
                task.register_child(ChildInfo {
                    demand,
                    stamp: packet.stamp.clone(),
                    acked: None,
                    incarnation: 0,
                    done: false,
                    pending_salvages: salvages,
                    vote: Some(VoteGroup {
                        vote: Vote::new(spec.n, spec.vote),
                        base: packet,
                        placed,
                    }),
                    twin_pending: false,
                    lost: false,
                });
            }
            None => {
                if self.config.mode.checkpoints() {
                    match self.policy.tier() {
                        PersistenceTier::Full => self.ckpt.store(owner, packet.clone()),
                        PersistenceTier::Placement => {
                            self.ckpt.store_placement(owner, packet.stamp.clone())
                        }
                        PersistenceTier::Nothing => {}
                    }
                }
                let dest = self.placer.place(&packet, &self.known_dead);
                let task = self.tasks.get_mut(&owner).expect("owner exists");
                task.register_child(ChildInfo {
                    demand,
                    stamp: packet.stamp.clone(),
                    acked: None,
                    incarnation: 0,
                    done: false,
                    pending_salvages: salvages,
                    vote: None,
                    twin_pending: false,
                    lost: false,
                });
                sink.push(Action::SetTimer {
                    timer: Timer::ack_timeout(owner, packet.stamp.clone(), 0),
                    delay: self.config.ack_timeout,
                });
                self.send(sink, dest, Msg::spawn(packet));
            }
        }
    }

    fn finish_task(&mut self, key: TaskKey, value: Value, sink: &mut ActionSink) {
        let Some(mut task) = self.tasks.remove(&key) else {
            return;
        };
        if self.by_stamp.get(&task.stamp) == Some(&key) {
            self.by_stamp.remove(&task.stamp);
        }
        debug_assert!(task.all_children_done());
        // Safety net: any checkpoint not retired through the normal paths.
        self.ckpt.retire_owner(key);
        self.stats.tasks_completed += 1;

        // The frame is being retired: move its links and arguments into
        // the result packet instead of cloning them.
        let rp = ResultPacket {
            from_stamp: task.stamp.clone(),
            demand: Demand::new(task.eval.fun(), task.eval.take_args()),
            value,
            to: task.parent.addr,
            to_stamp: std::mem::replace(&mut task.parent.stamp, LevelStamp::root()),
            relay_chain: std::mem::take(&mut task.ancestors),
            replica: task.replica.take(),
        };
        self.recycle_task(task);
        if self.known_dead.contains(&rp.to.proc) {
            self.handle_undeliverable_result(rp, sink);
        } else {
            let to = rp.to.proc;
            self.send(sink, to, Msg::result(rp));
        }
    }

    fn drop_task(&mut self, key: TaskKey) {
        if let Some(task) = self.tasks.remove(&key) {
            if self.by_stamp.get(&task.stamp) == Some(&key) {
                self.by_stamp.remove(&task.stamp);
            }
            self.ckpt.retire_owner(key);
            self.recycle_task(task);
        }
    }

    // -----------------------------------------------------------------
    // Results (forward-result case of the §4.2 loop)
    // -----------------------------------------------------------------

    fn on_result(&mut self, rp: ResultPacket, sink: &mut ActionSink) {
        if let Some(replica) = rp.replica.clone() {
            self.stats.replica_results += 1;
            self.on_replica_result(rp, replica, sink);
            return;
        }
        let Some(task) = self.tasks.get_mut(&rp.to.key) else {
            // "others: Ignore the packet" — the addressee is gone (§4.1
            // case 8).
            self.stats.stale_messages_ignored += 1;
            return;
        };
        if task.stamp != rp.to_stamp {
            self.stats.stale_messages_ignored += 1;
            return;
        }
        match task.children.get(&rp.from_stamp) {
            None => {
                self.stats.stale_messages_ignored += 1;
            }
            Some(ci) if ci.done => {
                // "Since they are identical, the second copy is simply
                // ignored." (§4.1 cases 6/7)
                self.stats.duplicate_results_ignored += 1;
            }
            Some(_) => {
                self.supply_child(rp.to.key, &rp.from_stamp, rp.value, sink);
            }
        }
    }

    fn on_replica_result(&mut self, rp: ResultPacket, replica: ReplicaInfo, sink: &mut ActionSink) {
        let Some(task) = self.tasks.get_mut(&rp.to.key) else {
            self.stats.stale_messages_ignored += 1;
            return;
        };
        let Some(ci) = task.children.get_mut(&rp.from_stamp) else {
            self.stats.stale_messages_ignored += 1;
            return;
        };
        if ci.done {
            self.stats.duplicate_results_ignored += 1;
            return;
        }
        let Some(group) = ci.vote.as_mut() else {
            self.stats.stale_messages_ignored += 1;
            return;
        };
        match group.vote.add(replica.index, rp.value) {
            VoteOutcome::Pending => {}
            VoteOutcome::Decided { value, clean } => {
                let dissent = group.vote.dissenting(&value) as u64;
                if clean {
                    self.stats.votes_decided += 1;
                } else {
                    self.stats.votes_conflicted += 1;
                }
                self.stats.votes_dissenting += dissent;
                self.supply_child(rp.to.key, &rp.from_stamp, value, sink);
            }
        }
    }

    /// Marks a child demand satisfied and resumes the parent when its wave
    /// barrier is met. Under the MultiCheckpoint policy the completed
    /// result is also buffered and periodically streamed back to the
    /// owner's own checkpoint holder ([`Msg::Ckpt`]); under Lazy a supply
    /// that does not unblock the owner re-checks whether everything it
    /// still waits on is lost.
    fn supply_child(
        &mut self,
        owner: TaskKey,
        stamp: &LevelStamp,
        value: Value,
        sink: &mut ActionSink,
    ) {
        let every = self.policy.recheckpoint_every();
        let mut ckpt_msg: Option<(ProcId, CkptPacket)> = None;
        let mut duplicate = false;
        let ready;
        {
            let Some(task) = self.tasks.get_mut(&owner) else {
                return;
            };
            let Some(ci) = task.children.get_mut(stamp) else {
                return;
            };
            ci.done = true;
            // Clone the entry before the eval consumes the value. Only the
            // MultiCheckpoint policy pays this; the root task reports to
            // the super-root, which keeps the whole program anyway.
            let entry = (every > 0 && !task.parent.addr.proc.is_super_root())
                .then(|| (ci.demand.clone(), value.clone()));
            self.ckpt.retire(owner, stamp);
            // `ci` borrows `task.children`; the eval is a disjoint field, so
            // the demand is passed by reference instead of cloned per result.
            if !task.eval.supply(&ci.demand, value) {
                duplicate = true;
            }
            if let Some(en) = entry {
                task.ckpt_pending.push(en);
                if task.ckpt_pending.len() >= every as usize {
                    ckpt_msg = Some((
                        task.parent.addr.proc,
                        CkptPacket {
                            owner: task.parent.addr,
                            from_stamp: task.stamp.clone(),
                            entries: std::mem::take(&mut task.ckpt_pending),
                        },
                    ));
                }
            }
            ready = task.eval.ready();
        }
        if duplicate {
            self.stats.duplicate_results_ignored += 1;
        }
        if let Some((to, cp)) = ckpt_msg {
            if !self.known_dead.contains(&to) {
                self.stats.recheckpoints += 1;
                self.send(sink, to, Msg::ckpt(cp));
            }
        }
        if ready {
            self.enqueue(owner);
        } else if !self.policy.eager_on_death() {
            self.lazy_rebuild_check(owner, sink);
        }
    }

    /// Handles an incremental re-checkpoint report: append the entries to
    /// the live checkpoint the reporting task's frame is stored under.
    fn on_ckpt(&mut self, cp: CkptPacket) {
        if cp.owner.proc != self.id
            || !self
                .ckpt
                .add_preloads(cp.owner.key, &cp.from_stamp, cp.entries)
        {
            // The owner moved on (twin elsewhere, checkpoint retired):
            // applicative determinism makes the loss benign.
            self.stats.stale_messages_ignored += 1;
        }
    }

    // -----------------------------------------------------------------
    // Failure handling: rollback (§3) and splice (§4)
    // -----------------------------------------------------------------

    /// Convergence point for all failure discovery paths. Idempotent.
    fn on_proc_dead(&mut self, dead: ProcId, sink: &mut ActionSink) {
        if dead == self.id || dead.is_super_root() || !self.known_dead.insert(dead) {
            // A death already in `known_dead` is never re-forwarded: the
            // insert above is the gossip dedup — without it every redundant
            // notice (detector broadcast, peer gossip, repeated bounces)
            // would echo back out as a fresh broadcast.
            return;
        }
        // Gossip the first discovery to the placer neighbourhood, so deaths
        // learnt from bounces or salvage arrivals propagate even when the
        // detector's broadcast is disabled. Exactly once per engine per
        // death (the dedup above), and never to processors we believe dead.
        if self.config.gossip_notices {
            for t in self.placer.beacon_targets() {
                if t != dead && !self.known_dead.contains(&t) {
                    self.send(sink, t, Msg::FailureNotice { dead });
                }
            }
        }
        match self.config.mode {
            RecoveryMode::None => {}
            RecoveryMode::Rollback => {
                // Orphans commit suicide first, retiring their checkpoints,
                // so the recovery pass below does not reissue into aborted
                // fragments.
                let orphans: Vec<TaskKey> = self
                    .tasks
                    .iter()
                    .filter(|(_, t)| t.parent.addr.proc == dead)
                    .map(|(k, _)| *k)
                    .collect();
                for k in orphans {
                    self.stats.orphans_suicided += 1;
                    self.abort_cascade(k, sink);
                }
                let eager = self.policy.eager_on_death();
                let mut lazy_owners: Vec<TaskKey> = Vec::new();
                for cp in self.ckpt.recover_candidates(dead, self.config.ckpt_filter) {
                    if !self.tasks.contains_key(&cp.owner) {
                        continue;
                    }
                    if eager {
                        self.reissue_child(cp.owner, &cp.stamp, sink);
                    } else if self.mark_lost(cp.owner, &cp.stamp) {
                        lazy_owners.push(cp.owner);
                    }
                }
                for owner in lazy_owners {
                    self.lazy_rebuild_check(owner, sink);
                }
            }
            RecoveryMode::Splice => {
                // Every live parent regenerates each of its dead children
                // as a step-parent twin; orphan fragments keep computing
                // and their results will be spliced in. With a grace
                // period configured, the proactive regeneration is
                // deferred so in-flight orphan results can land first.
                let grace = self.config.splice_grace;
                let eager = self.policy.eager_on_death();
                let mut lazy_owners: Vec<TaskKey> = Vec::new();
                for cp in self
                    .ckpt
                    .recover_candidates(dead, crate::config::CheckpointFilter::All)
                {
                    if !self.tasks.contains_key(&cp.owner) {
                        continue;
                    }
                    if !eager {
                        // Lazy: no proactive twin — the subtree is rebuilt
                        // only when the owner's progress demands it. Orphan
                        // fragments keep computing; their salvages land in
                        // `pending_salvages` and flow to an eventual twin.
                        if self.mark_lost(cp.owner, &cp.stamp) {
                            lazy_owners.push(cp.owner);
                        }
                    } else if grace == 0 {
                        self.stats.step_parents_created += 1;
                        self.reissue_child(cp.owner, &cp.stamp, sink);
                    } else {
                        if let Some(ci) = self
                            .tasks
                            .get_mut(&cp.owner)
                            .and_then(|t| t.children.get_mut(&cp.stamp))
                        {
                            ci.twin_pending = true;
                        }
                        sink.push(Action::SetTimer {
                            timer: Timer::grace_reissue(cp.owner, cp.stamp.clone()),
                            delay: grace,
                        });
                    }
                }
                for owner in lazy_owners {
                    self.lazy_rebuild_check(owner, sink);
                }
            }
        }
        // Replicated children: account for lost replicas in either mode
        // with checkpointing.
        if self.config.mode.checkpoints() {
            self.handle_replica_losses(dead, sink);
        }
    }

    fn handle_replica_losses(&mut self, dead: ProcId, sink: &mut ActionSink) {
        let mut decisions: Vec<(TaskKey, LevelStamp, Option<Value>, bool, u64)> = Vec::new();
        let mut respawns: Vec<(TaskKey, LevelStamp)> = Vec::new();
        for (key, task) in self.tasks.iter_mut() {
            for (stamp, ci) in task.children.iter_mut() {
                let Some(group) = ci.vote.as_mut() else {
                    continue;
                };
                if ci.done {
                    continue;
                }
                let lost = group.placed.iter().filter(|p| **p == dead).count();
                for _ in 0..lost {
                    match group.vote.mark_lost() {
                        VoteOutcome::Decided { value, clean } => {
                            let dissent = group.vote.dissenting(&value) as u64;
                            decisions.push((*key, stamp.clone(), Some(value), clean, dissent));
                        }
                        VoteOutcome::Pending => {}
                    }
                }
                if group.vote.all_lost() {
                    respawns.push((*key, stamp.clone()));
                }
            }
        }
        for (key, stamp, value, clean, dissent) in decisions {
            if let Some(v) = value {
                if clean {
                    self.stats.votes_decided += 1;
                } else {
                    self.stats.votes_conflicted += 1;
                }
                self.stats.votes_dissenting += dissent;
                self.supply_child(key, &stamp, v, sink);
            }
        }
        for (key, stamp) in respawns {
            self.respawn_replica_group(key, &stamp, sink);
        }
    }

    fn respawn_replica_group(&mut self, owner: TaskKey, stamp: &LevelStamp, sink: &mut ActionSink) {
        let Some(task) = self.tasks.get_mut(&owner) else {
            return;
        };
        let Some(ci) = task.children.get_mut(stamp) else {
            return;
        };
        let Some(group) = ci.vote.as_mut() else {
            return;
        };
        let n = group.vote.group_size();
        let mode = match self.config.replicate.get(&group.base.demand.fun) {
            Some(spec) => spec.vote,
            None => crate::config::VoteMode::Majority,
        };
        group.vote = Vote::new(n, mode);
        let base = group.base.reissue();
        group.base = base.clone();
        let mut placed = Vec::with_capacity(n as usize);
        let mut avoid = self.known_dead.clone();
        let mut spawns = Vec::new();
        for i in 0..n {
            let mut rp = base.clone();
            rp.replica = Some(ReplicaInfo { index: i, total: n });
            rp.incarnation = i;
            let dest = self.placer.place(&rp, &avoid);
            avoid.insert(dest);
            placed.push(dest);
            spawns.push((dest, rp));
        }
        group.placed = placed;
        self.stats.reissues += 1;
        for (dest, rp) in spawns {
            self.send(sink, dest, Msg::spawn(rp));
        }
    }

    /// Lazy policy: record a dead child as lost instead of reissuing it.
    /// Returns `true` when a live, undecided, non-replicated child was
    /// marked (replica groups keep their own eager loss handling).
    fn mark_lost(&mut self, owner: TaskKey, stamp: &LevelStamp) -> bool {
        match self
            .tasks
            .get_mut(&owner)
            .and_then(|t| t.children.get_mut(stamp))
        {
            Some(ci) if !ci.done && ci.vote.is_none() => {
                ci.lost = true;
                true
            }
            _ => false,
        }
    }

    /// Lazy policy: rebuild an owner's lost children once its progress
    /// actually demands them — i.e. the task is blocked and *everything*
    /// it still waits on is lost. While any live child remains, its
    /// arrival re-runs this check, so rebuilds start exactly when the
    /// subtree's results become the critical path.
    fn lazy_rebuild_check(&mut self, owner: TaskKey, sink: &mut ActionSink) {
        let mut stamps: Vec<LevelStamp> = {
            let Some(task) = self.tasks.get(&owner) else {
                return;
            };
            if task.queued || task.eval.ready() {
                return;
            }
            let mut lost = Vec::new();
            for (stamp, ci) in task.children.iter() {
                if ci.done {
                    continue;
                }
                if !ci.lost {
                    // A live child may still unblock the owner; its result
                    // (or its own loss) re-triggers this check.
                    return;
                }
                lost.push(stamp.clone());
            }
            lost
        };
        stamps.sort();
        for stamp in stamps {
            if let Some(ci) = self
                .tasks
                .get_mut(&owner)
                .and_then(|t| t.children.get_mut(&stamp))
            {
                ci.lost = false;
            }
            self.stats.lazy_rebuilds += 1;
            self.reissue_child(owner, &stamp, sink);
        }
    }

    /// Re-issues a (non-replicated) child from its functional checkpoint.
    /// In splice mode this is exactly step-parent/twin creation.
    fn reissue_child(&mut self, owner: TaskKey, stamp: &LevelStamp, sink: &mut ActionSink) {
        let Some(task) = self.tasks.get_mut(&owner) else {
            return;
        };
        let Some(ci) = task.children.get_mut(stamp) else {
            return;
        };
        if ci.done {
            return;
        }
        ci.incarnation += 1;
        let incarnation = ci.incarnation;
        self.ckpt.on_reissue(owner, stamp);
        let Some(cp) = self.ckpt.get(owner, stamp) else {
            return;
        };
        let mut packet = match &cp.packet {
            Some(p) => p.clone(),
            // Placement tier: only the placement record survived; rebuild
            // the frame from the live owner (same recipe as `spawn_child`).
            None => TaskPacket {
                stamp: stamp.clone(),
                demand: ci.demand.clone(),
                parent: TaskLink::new(TaskAddr::new(self.id, owner), task.stamp.clone()),
                ancestors: std::iter::once(task.parent.clone())
                    .chain(task.ancestors.iter().cloned())
                    .take(self.config.links_beyond_parent())
                    .collect(),
                incarnation: 0,
                hops: 0,
                replica: None,
                under_replica: task.under_replica,
            },
        };
        packet.incarnation = incarnation;
        // Hand incremental re-checkpoint entries (MultiCheckpoint) to the
        // twin as parked salvages: they flow out on the twin's placement
        // ACK like any salvage. The stored preloads are cloned, NOT
        // drained — a second crash during the rebuild must still find the
        // recovery anchor intact.
        for (d, v) in cp.preloads.iter() {
            if ci.pending_salvages.iter().any(|s| s.demand == *d) {
                continue;
            }
            ci.pending_salvages.push(SalvagePacket {
                to: TaskAddr::new(self.id, owner), // rewritten at the ACK flush
                dead_stamp: stamp.clone(),
                dead_addr: TaskAddr::new(self.id, owner),
                demand: d.clone(),
                value: v.clone(),
                from_stamp: stamp.clone(),
            });
        }
        let dest = self.placer.place(&packet, &self.known_dead);
        self.stats.reissues += 1;
        sink.push(Action::SetTimer {
            timer: Timer::ack_timeout(owner, stamp.clone(), incarnation),
            delay: self.config.ack_timeout,
        });
        self.send(sink, dest, Msg::spawn(packet));
    }

    /// Re-places a bounced spawn packet. If this processor is the packet's
    /// parent, go through the checkpointed reissue path (keeps incarnation
    /// bookkeeping coherent); otherwise re-place the packet directly. The
    /// bounced packet itself is reused for the re-send — the old path
    /// cloned it a second time on top of the copy already made for the
    /// failure handling.
    fn reissue_packet(&mut self, mut p: TaskPacket, sink: &mut ActionSink) {
        if p.parent.addr.proc == self.id && self.tasks.contains_key(&p.parent.addr.key) {
            if p.replica.is_some() {
                // Replica spawn lost; treat as a lost replica — the vote
                // already accounts for its processor via on_proc_dead.
                return;
            }
            if !self.policy.eager_on_death() {
                // Lazy: the spawn died in flight; rebuild only on demand.
                if self.mark_lost(p.parent.addr.key, &p.stamp) {
                    self.lazy_rebuild_check(p.parent.addr.key, sink);
                }
                return;
            }
            return self.reissue_child(p.parent.addr.key, &p.stamp, sink);
        }
        // A packet we were merely forwarding: place it somewhere else,
        // bumping the incarnation in place.
        p.incarnation += 1;
        p.hops = 0;
        let dest = self.placer.place(&p, &self.known_dead);
        self.stats.reissues += 1;
        self.send(sink, dest, Msg::spawn(p));
    }

    /// A completed task's result cannot reach its parent: splice relays it
    /// toward the nearest live ancestor ("notify the grandparent and send
    /// the result to the grandparent"); rollback discards it — the orphan
    /// has effectively committed suicide after the fact. The result's
    /// payload moves into the salvage packet; nothing is cloned.
    fn handle_undeliverable_result(&mut self, rp: ResultPacket, sink: &mut ActionSink) {
        if !self.config.mode.salvages() || rp.replica.is_some() {
            self.stats.orphans_suicided += 1;
            return;
        }
        let ResultPacket {
            from_stamp,
            demand,
            value,
            to,
            to_stamp,
            relay_chain,
            replica: _,
        } = rp;
        let sp = SalvagePacket {
            to: TaskAddr::new(ProcId(0), TaskKey(0)), // filled below
            dead_stamp: to_stamp,
            dead_addr: to,
            demand,
            value,
            from_stamp,
        };
        self.send_salvage_via_chain(sp, &relay_chain, sink);
    }

    /// Sends a salvage packet to the first live link of an ancestor chain.
    fn send_salvage_via_chain(
        &mut self,
        mut sp: SalvagePacket,
        chain: &[TaskLink],
        sink: &mut ActionSink,
    ) {
        for (i, link) in chain.iter().enumerate() {
            if self.known_dead.contains(&link.addr.proc) {
                continue;
            }
            sp.to = link.addr;
            if link.addr.proc == self.id {
                // The ancestor is local: route directly; an unrouted packet
                // comes back by value and tries the rest of the chain.
                if let Some(back) = self.route_salvage(sp, sink) {
                    let rest = &chain[i + 1..];
                    if rest.is_empty() {
                        self.stats.stranded_orphans += 1;
                    } else {
                        self.send_salvage_via_chain(back, rest, sink);
                    }
                }
                return;
            }
            self.send(sink, link.addr.proc, Msg::salvage(sp));
            return;
        }
        // "If both the parent and grandparent processors of a task fail
        // simultaneously, the orphan task would be stranded." (§5.2)
        self.stats.stranded_orphans += 1;
    }

    /// Upward retry after a salvage bounce: try the remaining ancestors of
    /// the dead stamp. The chain is reconstructed from the packet's stamp
    /// prefixes we know locally — if none, the orphan is stranded.
    fn relay_salvage_upward(&mut self, sp: SalvagePacket) {
        // We only know our own tasks; with the direct chain exhausted the
        // orphan result is stranded from this processor's point of view.
        let _ = sp;
        self.stats.stranded_orphans += 1;
    }

    fn on_salvage(&mut self, sp: SalvagePacket, sink: &mut ActionSink) {
        // An unexpected grandchild answer implies the intermediate parent is
        // faulty; the stamp itself tells us which task, and the processor it
        // lived on is already in our dead set if a notice arrived first.
        if self.route_salvage(sp, sink).is_some() {
            self.stats.salvage_dropped += 1;
        }
    }

    /// Routes a salvage packet at this processor: deliver to the twin if it
    /// lives here, otherwise hand it one step down the regenerated spine.
    /// Consumes the packet when it found a consumer or forwarder; returns
    /// it unrouted otherwise (so callers relay or drop without a clone).
    fn route_salvage(&mut self, sp: SalvagePacket, sink: &mut ActionSink) -> Option<SalvagePacket> {
        // Twin (or still-live original) of the dead task here?
        if let Some(&key) = self.by_stamp.get(&sp.dead_stamp) {
            self.preload_salvage(key, sp, sink);
            return None;
        }
        // Deepest live local ancestor of the dead stamp.
        let mut probe = sp.dead_stamp.clone();
        while let Some(parent) = probe.parent() {
            probe = parent;
            let Some(&key) = self.by_stamp.get(&probe) else {
                continue;
            };
            let Some(task) = self.tasks.get_mut(&key) else {
                continue;
            };
            let next = task
                .stamp
                .child_towards(&sp.dead_stamp)
                .expect("probe is an ancestor");
            match task.children.get_mut(&next) {
                None => {
                    // The (twin) ancestor has not demanded this child yet;
                    // park the salvage for when it does.
                    task.future_salvages.push(sp);
                    return None;
                }
                Some(ci) if ci.done => {
                    // The subtree's value is already known upstream; the
                    // orphan's contribution is stale (§4.1 case 8).
                    self.stats.salvage_dropped += 1;
                    return None;
                }
                Some(ci) => {
                    // The unexpected grandchild answer itself proves the
                    // instance it addressed is dead (§4.1): if we still
                    // point at exactly that instance, declare its processor
                    // faulty and regenerate before routing.
                    if ci.current_addr() == Some(sp.dead_addr)
                        && !self.known_dead.contains(&sp.dead_addr.proc)
                    {
                        let dead = sp.dead_addr.proc;
                        ci.pending_salvages.push(sp);
                        self.on_proc_dead(dead, sink);
                        // "Create a step-parent for the grandchild if there
                        // isn't one already": even with a grace period, the
                        // salvage arrival itself triggers the twin.
                        self.salvage_triggers_twin(key, &next, sink);
                        return None;
                    }
                    match ci.current_addr() {
                        Some(addr) if !self.known_dead.contains(&addr.proc) => {
                            let mut sp = sp;
                            sp.to = addr;
                            self.stats.salvage_forwarded += 1;
                            self.send(sink, addr.proc, Msg::salvage(sp));
                            return None;
                        }
                        Some(addr) => {
                            // Child instance died too: reissue it (twin) and
                            // park the salvage until the new ACK.
                            let dead = addr.proc;
                            ci.pending_salvages.push(sp);
                            self.on_proc_dead(dead, sink);
                            self.salvage_triggers_twin(key, &next, sink);
                            return None;
                        }
                        None => {
                            // Spawn in flight; park until the ACK flushes.
                            ci.pending_salvages.push(sp);
                            return None;
                        }
                    }
                }
            }
        }
        Some(sp)
    }

    /// Reactive twin creation: a salvage just arrived for a child whose
    /// twin creation was deferred by the grace period.
    fn salvage_triggers_twin(&mut self, owner: TaskKey, stamp: &LevelStamp, sink: &mut ActionSink) {
        let deferred = match self
            .tasks
            .get_mut(&owner)
            .and_then(|t| t.children.get_mut(stamp))
        {
            Some(ci) if ci.twin_pending && !ci.done => {
                ci.twin_pending = false;
                true
            }
            _ => false,
        };
        if deferred {
            self.stats.step_parents_created += 1;
            self.reissue_child(owner, stamp, sink);
        }
    }

    fn preload_salvage(&mut self, key: TaskKey, sp: SalvagePacket, sink: &mut ActionSink) {
        let Some(task) = self.tasks.get_mut(&key) else {
            return;
        };
        self.stats.salvaged_results += 1;
        // If the twin already spawned this demand, the preload satisfies it
        // (§4.1 case 6: the spawned duplicate's eventual result is ignored);
        // otherwise the preload prevents the spawn entirely (cases 4/5).
        if let Some(stamp) = task.by_demand.get(&sp.demand).cloned() {
            self.stats.salvage_after_spawn += 1;
            let done = task.children.get(&stamp).map(|c| c.done).unwrap_or(false);
            if !done {
                self.supply_child(key, &stamp, sp.value, sink);
            } else {
                self.stats.duplicate_results_ignored += 1;
            }
        } else {
            self.stats.salvage_before_spawn += 1;
            task.eval.preload(sp.demand, sp.value);
            if task.eval.ready() {
                self.enqueue(key);
            }
        }
    }

    // -----------------------------------------------------------------
    // Abort cascade (rollback garbage collection)
    // -----------------------------------------------------------------

    fn on_abort(&mut self, to: TaskAddr, sink: &mut ActionSink) {
        if self.tasks.contains_key(&to.key) {
            self.stats.tasks_aborted += 1;
            self.abort_cascade(to.key, sink);
        } else {
            self.stats.stale_messages_ignored += 1;
        }
    }

    fn abort_cascade(&mut self, key: TaskKey, sink: &mut ActionSink) {
        let Some(task) = self.tasks.remove(&key) else {
            return;
        };
        if self.by_stamp.get(&task.stamp) == Some(&key) {
            self.by_stamp.remove(&task.stamp);
        }
        self.ckpt.retire_owner(key);
        for ci in task.children.values() {
            if ci.done {
                continue;
            }
            if let Some(addr) = ci.current_addr() {
                if !self.known_dead.contains(&addr.proc) {
                    self.stats.aborts_sent += 1;
                    self.send(sink, addr.proc, Msg::Abort { to: addr });
                }
            }
            if let Some(group) = &ci.vote {
                for (i, p) in group.placed.iter().enumerate() {
                    let _ = i;
                    if !self.known_dead.contains(p) {
                        // Best effort: abort replicas at their placement.
                        // Without the acked key we cannot address the task
                        // precisely; replicas finish and their results are
                        // ignored. (Counted as garbage work in experiments.)
                        let _ = p;
                    }
                }
            }
        }
        self.recycle_task(task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::SelfPlacer;
    use splice_applicative::Workload;

    fn engine_for(w: &Workload, mode: RecoveryMode) -> Engine {
        let mut cfg = Config::with_mode(mode);
        cfg.load_beacon_period = 0;
        Engine::new(
            ProcId(0),
            Arc::new(w.program.clone()),
            cfg,
            Box::new(SelfPlacer { here: ProcId(0) }),
        )
    }

    fn root_packet(w: &Workload) -> TaskPacket {
        TaskPacket {
            stamp: LevelStamp::root().child(1),
            demand: Demand::new(w.entry, w.args.clone()),
            parent: TaskLink::super_root(),
            ancestors: vec![TaskLink::super_root()],
            incarnation: 0,
            hops: 0,
            replica: None,
            under_replica: false,
        }
    }

    /// Collects a handler's sink output into a plain `Vec` (test shim).
    fn pump(engine: &mut Engine, msg: Msg) -> Vec<Action> {
        let mut sink = ActionSink::new();
        engine.on_message(msg, &mut sink);
        sink.drain_to_vec()
    }

    /// Drives a single engine to completion by looping messages back into
    /// it, returning the root result observed at the super-root. The one
    /// sink is reused across the whole run, like the real drivers.
    fn run_single(engine: &mut Engine, w: &Workload) -> Value {
        let mut inbox: VecDeque<Msg> = VecDeque::new();
        inbox.push_back(Msg::spawn(root_packet(w)));
        let mut root_result = None;
        let mut sink = ActionSink::new();
        let mut guard = 0u64;
        loop {
            guard += 1;
            assert!(guard < 10_000_000, "single-engine run diverged");
            if let Some(msg) = inbox.pop_front() {
                engine.on_message(msg, &mut sink);
            } else if let Some(key) = engine.pop_ready() {
                engine.run_wave(key, &mut sink);
            } else {
                break;
            };
            for a in sink.drain() {
                match a {
                    Action::Send { to, msg } => {
                        if to.is_super_root() {
                            if let Msg::Result(rp) = msg {
                                root_result = Some(rp.value);
                            }
                            // Super-root acks are not modelled here.
                        } else {
                            assert_eq!(to, ProcId(0), "SelfPlacer keeps everything local");
                            inbox.push_back(msg);
                        }
                    }
                    Action::SetTimer { .. } => {
                        // Single reliable processor: timers never matter.
                    }
                }
            }
        }
        root_result.expect("root completed")
    }

    #[test]
    fn single_processor_runs_fib_to_completion() {
        let w = Workload::fib(10);
        let mut e = engine_for(&w, RecoveryMode::Splice);
        let v = run_single(&mut e, &w);
        assert_eq!(v, Value::Int(55));
        assert_eq!(e.task_count(), 0, "all tasks drained");
        assert!(e.checkpoints().is_empty(), "all checkpoints retired");
        assert!(e.stats().tasks_completed > 100);
    }

    #[test]
    fn single_processor_agrees_with_reference_across_suite() {
        for w in Workload::suite_small() {
            let mut e = engine_for(&w, RecoveryMode::Splice);
            let v = run_single(&mut e, &w);
            assert_eq!(v, w.reference_result().unwrap(), "{}", w.name);
            assert!(e.checkpoints().is_empty(), "{}", w.name);
        }
    }

    #[test]
    fn mode_none_stores_no_checkpoints() {
        let w = Workload::fib(8);
        let mut e = engine_for(&w, RecoveryMode::None);
        let v = run_single(&mut e, &w);
        assert_eq!(v, Value::Int(21));
        assert_eq!(e.checkpoints().stored_total(), 0);
    }

    #[test]
    fn rollback_stores_and_retires_checkpoints() {
        let w = Workload::fib(8);
        let mut e = engine_for(&w, RecoveryMode::Rollback);
        run_single(&mut e, &w);
        assert!(e.checkpoints().stored_total() > 0);
        assert_eq!(
            e.checkpoints().stored_total(),
            e.checkpoints().retired_total()
        );
        assert!(e.checkpoints().peak_entries() > 0);
    }

    #[test]
    fn stale_messages_are_ignored() {
        let w = Workload::fib(5);
        let mut e = engine_for(&w, RecoveryMode::Splice);
        let stale = Msg::result(ResultPacket {
            from_stamp: LevelStamp::from_digits(&[1, 1]),
            demand: Demand::new(w.entry, vec![Value::Int(1)]),
            value: Value::Int(1),
            to: TaskAddr::new(ProcId(0), TaskKey(999)),
            to_stamp: LevelStamp::from_digits(&[1]),
            relay_chain: vec![],
            replica: None,
        });
        let actions = pump(&mut e, stale);
        assert!(actions.is_empty());
        assert_eq!(e.stats().stale_messages_ignored, 1);
        // Unknown aborts equally ignored.
        pump(
            &mut e,
            Msg::Abort {
                to: TaskAddr::new(ProcId(0), TaskKey(1)),
            },
        );
        assert_eq!(e.stats().stale_messages_ignored, 2);
    }

    #[test]
    fn failure_notice_is_idempotent() {
        let w = Workload::fib(5);
        let mut e = engine_for(&w, RecoveryMode::Rollback);
        assert!(pump(&mut e, Msg::FailureNotice { dead: ProcId(3) }).is_empty());
        assert!(pump(&mut e, Msg::FailureNotice { dead: ProcId(3) }).is_empty());
        assert!(e.known_dead().contains(&ProcId(3)));
    }

    #[test]
    fn action_stays_small() {
        // Actions move by value through sinks, the DES queue and runtime
        // channels; the timer payload boxing exists to keep them small.
        assert!(
            std::mem::size_of::<Action>() <= 32,
            "Action grew past 32 bytes: {}",
            std::mem::size_of::<Action>()
        );
        assert!(
            std::mem::size_of::<Timer>() <= 16,
            "Timer grew past 16 bytes: {}",
            std::mem::size_of::<Timer>()
        );
    }

    #[test]
    fn task_frames_are_recycled_across_generations() {
        // Two back-to-back runs on one engine: the second run's tasks are
        // revived from the first run's retired frames, and the engine ends
        // both runs fully drained.
        let w = Workload::fib(8);
        let mut e = engine_for(&w, RecoveryMode::Splice);
        assert_eq!(run_single(&mut e, &w), Value::Int(21));
        let created_first = e.stats().tasks_created;
        assert!(!e.free_tasks.is_empty(), "retired frames were kept");
        assert_eq!(run_single(&mut e, &w), Value::Int(21));
        assert_eq!(e.task_count(), 0);
        assert!(e.stats().tasks_created > created_first);
        assert!(e.checkpoints().is_empty());
    }

    /// Sends every child to one fixed peer (the probe tests need a child
    /// that is placed — and acked — remotely).
    struct PeerPlacer(ProcId);

    impl Placer for PeerPlacer {
        fn place(&mut self, _packet: &TaskPacket, _avoid: &FxHashSet<ProcId>) -> ProcId {
            self.0
        }
    }

    /// Spawns the root on an engine that places children on `ProcId(1)` and
    /// runs waves until the first child spawn leaves, returning the engine,
    /// the outgoing packet and the ack timer guarding it.
    fn engine_with_remote_child(cfg: Config, w: &Workload) -> (Engine, Box<TaskPacket>, Timer) {
        let mut e = Engine::new(
            ProcId(0),
            Arc::new(w.program.clone()),
            cfg,
            Box::new(PeerPlacer(ProcId(1))),
        );
        let mut sink = ActionSink::new();
        e.on_message(Msg::spawn(root_packet(w)), &mut sink);
        let mut spawn: Option<Box<TaskPacket>> = None;
        let mut timer: Option<Timer> = None;
        for _ in 0..100 {
            if spawn.is_some() && timer.is_some() {
                break;
            }
            let key = e.pop_ready().expect("root must spawn children");
            e.run_wave(key, &mut sink);
            for a in sink.drain() {
                match a {
                    Action::Send {
                        to,
                        msg: Msg::Spawn(p),
                    } if to == ProcId(1) && spawn.is_none() => spawn = Some(p),
                    Action::SetTimer {
                        timer: t @ Timer::AckTimeout(_),
                        ..
                    } if timer.is_none() => timer = Some(t),
                    _ => {}
                }
            }
        }
        let spawn = spawn.expect("child spawn emitted");
        let timer = timer.expect("ack timer armed");
        if let Timer::AckTimeout(at) = &timer {
            assert_eq!(at.stamp, spawn.stamp, "timer guards the captured spawn");
        }
        (e, spawn, timer)
    }

    #[test]
    fn ack_timeout_probes_acked_children_when_enabled() {
        let w = Workload::fib(6);
        let mut cfg = Config::with_mode(RecoveryMode::Splice);
        cfg.load_beacon_period = 0;
        cfg.probe_acked = true;
        let (mut e, spawn, timer) = engine_with_remote_child(cfg, &w);
        let child_addr = TaskAddr::new(ProcId(1), TaskKey(7));
        pump(
            &mut e,
            Msg::ack(spawn.stamp.clone(), child_addr, spawn.parent.addr, 0),
        );
        let mut sink = ActionSink::new();
        e.on_timer(timer, &mut sink);
        let acts = sink.drain_to_vec();
        assert!(
            acts.iter()
                .any(|a| matches!(a, Action::Send { to, msg: Msg::Probe } if *to == ProcId(1))),
            "placed child with an overdue result is probed: {acts:?}"
        );
        assert!(
            acts.iter().any(|a| matches!(
                a,
                Action::SetTimer {
                    timer: Timer::AckTimeout(_),
                    ..
                }
            )),
            "the probe re-arms the poll: {acts:?}"
        );
        assert_eq!(
            e.stats().reissues,
            0,
            "acked children are never reissued blind"
        );
    }

    #[test]
    fn ack_timeout_on_acked_child_is_silent_without_probing() {
        let w = Workload::fib(6);
        let mut cfg = Config::with_mode(RecoveryMode::Splice);
        cfg.load_beacon_period = 0;
        let (mut e, spawn, timer) = engine_with_remote_child(cfg, &w);
        let child_addr = TaskAddr::new(ProcId(1), TaskKey(7));
        pump(
            &mut e,
            Msg::ack(spawn.stamp.clone(), child_addr, spawn.parent.addr, 0),
        );
        let mut sink = ActionSink::new();
        e.on_timer(timer, &mut sink);
        assert!(
            sink.drain_to_vec().is_empty(),
            "paper default: an acked child is trusted until a notice or bounce"
        );
    }
}
