//! The caller-owned action buffer every engine handler fills.
//!
//! Handlers used to return a fresh `Vec<Action>` per stimulus — one heap
//! allocation per delivered message, timer pop and wave, on a path that
//! usually carries zero to four actions. An [`ActionSink`] inverts the
//! ownership: the driver owns one sink per engine pump, hands it to every
//! handler, and drains it in place after each call. The storage is a
//! small-vector (eight actions inline, spilling to a heap buffer that is
//! then kept), so the steady-state pump performs no allocation at all.

use crate::engine::Action;
use crate::ids::ProcId;
use crate::packet::Msg;
use smallvec::SmallVec;

/// Actions held inline before the sink spills. Recovery storms (a failure
/// notice reissuing many children) exceed this and spill once; the spilled
/// buffer is reused for the rest of the sink's life.
const INLINE_ACTIONS: usize = 8;

/// A reusable buffer of engine [`Action`]s, drained by the dispatcher
/// after every handler call.
#[derive(Debug, Default)]
pub struct ActionSink {
    buf: SmallVec<Action, INLINE_ACTIONS>,
}

impl ActionSink {
    /// An empty sink (no heap allocation).
    pub fn new() -> ActionSink {
        ActionSink::default()
    }

    /// Appends an action.
    pub fn push(&mut self, action: Action) {
        self.buf.push(action);
    }

    /// Convenience: appends a send action.
    pub fn send(&mut self, to: ProcId, msg: Msg) {
        self.buf.push(Action::Send { to, msg });
    }

    /// Number of buffered actions.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Drops every buffered action.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// The buffered action at `index`, if any.
    pub fn get(&self, index: usize) -> Option<&Action> {
        self.buf.get(index)
    }

    /// Iterates the buffered actions in push order.
    pub fn iter(&self) -> impl Iterator<Item = &Action> {
        self.buf.iter()
    }

    /// Removes and yields every buffered action in push order.
    pub fn drain(&mut self) -> impl Iterator<Item = Action> + '_ {
        self.buf.drain()
    }

    /// Drains into a plain `Vec` (test and scripting convenience; the hot
    /// path uses [`ActionSink::drain`]).
    pub fn drain_to_vec(&mut self) -> Vec<Action> {
        self.buf.drain().collect()
    }
}

impl Extend<Action> for ActionSink {
    fn extend<I: IntoIterator<Item = Action>>(&mut self, iter: I) {
        for a in iter {
            self.buf.push(a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Timer;

    fn timer_action(delay: u64) -> Action {
        Action::SetTimer {
            timer: Timer::LoadBeacon,
            delay,
        }
    }

    #[test]
    fn push_drain_reuse() {
        let mut sink = ActionSink::new();
        for i in 0..3 {
            sink.push(timer_action(i));
        }
        assert_eq!(sink.len(), 3);
        let drained = sink.drain_to_vec();
        assert_eq!(drained.len(), 3);
        assert!(sink.is_empty());
        sink.push(timer_action(9));
        assert!(matches!(
            sink.get(0),
            Some(Action::SetTimer { delay: 9, .. })
        ));
    }

    #[test]
    fn spills_past_inline_capacity_and_keeps_working() {
        let mut sink = ActionSink::new();
        for i in 0..40 {
            sink.push(timer_action(i));
        }
        assert_eq!(sink.len(), 40);
        let delays: Vec<u64> = sink
            .drain()
            .map(|a| match a {
                Action::SetTimer { delay, .. } => delay,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(delays, (0..40).collect::<Vec<_>>());
        assert!(sink.is_empty());
    }
}
