//! Functional checkpoints and the per-destination checkpoint table (§2, §3.2).
//!
//! "As a child task is spawned to a new node, the parent task may retain a
//! copy of the task packet. This retained copy is all that the parent needs
//! to regenerate the child task, should the node evaluating the child task
//! fail." (§2)
//!
//! "Each processor maintains a table of linked lists. The Nth entry of the
//! table contains all topmost checkpoints from the host processor to
//! processor N." (§3.2)
//!
//! Lifecycle refinement (see DESIGN.md): checkpoints are stored at spawn
//! time (destination unknown until the placement ACK — Figure 6 state b),
//! filed under the destination on ACK, retired when the child's result
//! arrives or the owning task aborts, and the *topmost* rule is applied at
//! recovery time over the live entries. Filtering at insert time would be
//! unsound once an ancestor checkpoint retires before its descendants.

use crate::config::CheckpointFilter;
use crate::ids::{ProcId, TaskKey};
use crate::packet::TaskPacket;
use crate::stamp::LevelStamp;
use splice_applicative::wave::Demand;
use splice_applicative::{FxHashMap, FxHashSet, Value};
use std::collections::HashSet;

/// Key of a stored checkpoint: owning (parent) task plus child stamp. Two
/// concurrent twin instances on one processor can hold checkpoints for the
/// same child stamp, hence the owner in the key.
pub type CheckpointKey = (TaskKey, LevelStamp);

/// A retained task packet plus bookkeeping.
#[derive(Clone, Debug)]
pub struct StoredCheckpoint {
    /// The checkpointed child's stamp (always retained — it is the entry's
    /// key and recovery's routing handle, whatever the persistence tier).
    pub stamp: LevelStamp,
    /// The retained packet — everything needed to regenerate the child.
    /// `None` under `PersistenceTier::Placement`, where only the placement
    /// record survives and the reissue packet is rebuilt from the live
    /// owner task.
    pub packet: Option<TaskPacket>,
    /// Incremental re-checkpoint entries (`MultiCheckpoint` policy):
    /// completed grandchild results the checkpointed child reported back.
    /// A reissued twin is handed these as preloads so it replays fewer
    /// waves. Empty unless re-checkpointing is on.
    pub preloads: Vec<(Demand, Value)>,
    /// The local task that spawned (and can re-spawn) the child.
    pub owner: TaskKey,
    /// Destination processor, once the placement ACK named it.
    pub dest: Option<ProcId>,
}

impl StoredCheckpoint {
    /// Abstract retained bytes: the packet (or the bare placement record)
    /// plus any preloaded result values.
    fn size(&self) -> usize {
        let base = match &self.packet {
            Some(p) => p.size(),
            None => 2 + self.stamp.level(),
        };
        base + self.preloads.iter().map(|(_, v)| v.size()).sum::<usize>()
    }
}

/// The per-processor checkpoint table.
///
/// Entries are filed per owner and then per child stamp, so every lookup
/// path (`get`, `on_ack`, `retire`, salvage routing) borrows the caller's
/// stamp instead of cloning it into a tuple key, and `retire_owner` drops
/// an aborting task's checkpoints by detaching one inner map.
#[derive(Debug, Default)]
pub struct CheckpointTable {
    entries: FxHashMap<TaskKey, FxHashMap<LevelStamp, StoredCheckpoint>>,
    by_dest: FxHashMap<ProcId, FxHashSet<CheckpointKey>>,
    count: usize,
    bytes: usize,
    peak_entries: usize,
    peak_bytes: usize,
    stored_total: u64,
    retired_total: u64,
}

impl CheckpointTable {
    /// Creates an empty table.
    pub fn new() -> CheckpointTable {
        CheckpointTable::default()
    }

    /// Stores the retained packet for a freshly spawned child (the
    /// `PersistenceTier::Full` functional checkpoint). The entry is
    /// "pending" (no destination) until [`CheckpointTable::on_ack`].
    pub fn store(&mut self, owner: TaskKey, packet: TaskPacket) {
        let stamp = packet.stamp.clone();
        self.store_entry(owner, stamp, Some(packet));
    }

    /// Stores a bare placement record (the `PersistenceTier::Placement`
    /// checkpoint): the stamp survives a crash but the reissue packet must
    /// be rebuilt from the live owner task.
    pub fn store_placement(&mut self, owner: TaskKey, stamp: LevelStamp) {
        self.store_entry(owner, stamp, None);
    }

    fn store_entry(&mut self, owner: TaskKey, stamp: LevelStamp, packet: Option<TaskPacket>) {
        let cp = StoredCheckpoint {
            stamp: stamp.clone(),
            packet,
            preloads: Vec::new(),
            owner,
            dest: None,
        };
        self.bytes += cp.size();
        if let Some(old) = self
            .entries
            .entry(owner)
            .or_default()
            .insert(stamp.clone(), cp)
        {
            // Re-store of the same child (shouldn't happen in practice).
            self.bytes -= old.size();
            if let Some(d) = old.dest {
                self.by_dest.get_mut(&d).map(|s| s.remove(&(owner, stamp)));
            }
        } else {
            self.count += 1;
        }
        self.stored_total += 1;
        self.peak_entries = self.peak_entries.max(self.count);
        self.peak_bytes = self.peak_bytes.max(self.bytes);
    }

    /// Appends incremental re-checkpoint entries to a live checkpoint
    /// (`MultiCheckpoint` policy), deduplicating by demand. Returns `true`
    /// when the checkpoint exists (stale reports are the caller's counter).
    pub fn add_preloads(
        &mut self,
        owner: TaskKey,
        stamp: &LevelStamp,
        entries: Vec<(Demand, Value)>,
    ) -> bool {
        let Some(cp) = self.entries.get_mut(&owner).and_then(|m| m.get_mut(stamp)) else {
            return false;
        };
        let mut added = 0usize;
        for (d, v) in entries {
            if cp.preloads.iter().any(|(pd, _)| *pd == d) {
                continue;
            }
            added += v.size();
            cp.preloads.push((d, v));
        }
        self.bytes += added;
        self.peak_bytes = self.peak_bytes.max(self.bytes);
        true
    }

    fn entry_mut(&mut self, owner: TaskKey, stamp: &LevelStamp) -> Option<&mut StoredCheckpoint> {
        self.entries.get_mut(&owner)?.get_mut(stamp)
    }

    /// Files (or re-files) a checkpoint under the destination processor
    /// named by a placement ACK.
    pub fn on_ack(&mut self, owner: TaskKey, stamp: &LevelStamp, dest: ProcId) {
        let Some(cp) = self.entry_mut(owner, stamp) else {
            return;
        };
        if let Some(old) = cp.dest.replace(dest) {
            if old != dest {
                self.by_dest
                    .get_mut(&old)
                    .map(|s| s.remove(&(owner, stamp.clone())));
            }
        }
        self.by_dest
            .entry(dest)
            .or_default()
            .insert((owner, stamp.clone()));
    }

    /// Marks a reissued checkpoint as pending again (destination unknown
    /// until the new ACK).
    pub fn on_reissue(&mut self, owner: TaskKey, stamp: &LevelStamp) {
        let Some(cp) = self.entry_mut(owner, stamp) else {
            return;
        };
        if let Some(p) = cp.packet.as_mut() {
            p.incarnation += 1;
        }
        if let Some(old) = cp.dest.take() {
            self.by_dest
                .get_mut(&old)
                .map(|s| s.remove(&(owner, stamp.clone())));
        }
    }

    /// Retires the checkpoint for `stamp` owned by `owner` (the child's
    /// result arrived, or the demand was satisfied by salvage). Returns
    /// `true` if an entry was removed.
    pub fn retire(&mut self, owner: TaskKey, stamp: &LevelStamp) -> bool {
        let Some(inner) = self.entries.get_mut(&owner) else {
            return false;
        };
        let Some(cp) = inner.remove(stamp) else {
            return false;
        };
        if inner.is_empty() {
            self.entries.remove(&owner);
        }
        self.count -= 1;
        self.bytes -= cp.size();
        if let Some(d) = cp.dest {
            self.by_dest
                .get_mut(&d)
                .map(|s| s.remove(&(owner, stamp.clone())));
        }
        self.retired_total += 1;
        true
    }

    /// Retires every checkpoint owned by an aborting task. Returns how many
    /// were dropped.
    pub fn retire_owner(&mut self, owner: TaskKey) -> usize {
        let Some(inner) = self.entries.remove(&owner) else {
            return 0;
        };
        let n = inner.len();
        for (stamp, cp) in inner {
            self.bytes -= cp.size();
            if let Some(d) = cp.dest {
                self.by_dest
                    .get_mut(&d)
                    .map(|s| s.remove(&(owner, stamp.clone())));
            }
        }
        self.count -= n;
        self.retired_total += n as u64;
        n
    }

    /// The live checkpoints filed under destination `dead`, selected for
    /// recovery re-issue.
    ///
    /// * `CheckpointFilter::Topmost` applies the paper's §3.2 rule: skip any
    ///   checkpoint whose stamp descends from another checkpoint *in the
    ///   same entry* (the B5 example).
    /// * `CheckpointFilter::All` returns every live entry — required by
    ///   splice recovery (every live parent regenerates its own dead
    ///   children) and available in rollback as the E3 ablation.
    pub fn recover_candidates(
        &self,
        dead: ProcId,
        filter: CheckpointFilter,
    ) -> Vec<StoredCheckpoint> {
        let keys = match self.by_dest.get(&dead) {
            None => return Vec::new(),
            Some(k) => k,
        };
        let mut cps: Vec<&StoredCheckpoint> = keys
            .iter()
            .filter_map(|(owner, stamp)| self.entries.get(owner)?.get(stamp))
            .collect();
        // Deterministic order regardless of hash iteration.
        cps.sort_by(|a, b| a.stamp.cmp(&b.stamp).then(a.owner.cmp(&b.owner)));
        match filter {
            CheckpointFilter::All => cps.into_iter().cloned().collect(),
            CheckpointFilter::Topmost => {
                let top = LevelStamp::topmost(cps.iter().map(|c| c.stamp.clone()));
                let top: HashSet<LevelStamp> = top.into_iter().collect();
                cps.into_iter()
                    .filter(|c| top.contains(&c.stamp))
                    .cloned()
                    .collect()
            }
        }
    }

    /// Looks up the live checkpoint for a given owner/stamp.
    pub fn get(&self, owner: TaskKey, stamp: &LevelStamp) -> Option<&StoredCheckpoint> {
        self.entries.get(&owner)?.get(stamp)
    }

    /// Number of live checkpoints.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True if no checkpoints are live.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Current retained bytes (abstract units).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Peak simultaneous entries.
    pub fn peak_entries(&self) -> usize {
        self.peak_entries
    }

    /// Peak retained bytes.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Total checkpoints ever stored.
    pub fn stored_total(&self) -> u64 {
        self.stored_total
    }

    /// Total checkpoints retired.
    pub fn retired_total(&self) -> u64 {
        self.retired_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TaskAddr;
    use crate::packet::TaskLink;
    use splice_applicative::wave::Demand;
    use splice_applicative::{FnId, Value};

    fn pkt(stamp: &[u32]) -> TaskPacket {
        TaskPacket {
            stamp: LevelStamp::from_digits(stamp),
            demand: Demand::new(FnId(0), vec![Value::Int(1)]),
            parent: TaskLink::new(TaskAddr::new(ProcId(0), TaskKey(0)), LevelStamp::root()),
            ancestors: vec![],
            incarnation: 0,
            hops: 0,
            replica: None,
            under_replica: false,
        }
    }

    const B: ProcId = ProcId(1);

    #[test]
    fn store_ack_retire_lifecycle() {
        let mut t = CheckpointTable::new();
        let owner = TaskKey(7);
        t.store(owner, pkt(&[1, 1]));
        assert_eq!(t.len(), 1);
        assert!(t.bytes() > 0);
        // Pending entries are not recoverable for any destination yet.
        assert!(t.recover_candidates(B, CheckpointFilter::All).is_empty());
        t.on_ack(owner, &LevelStamp::from_digits(&[1, 1]), B);
        assert_eq!(t.recover_candidates(B, CheckpointFilter::All).len(), 1);
        assert!(t.retire(owner, &LevelStamp::from_digits(&[1, 1])));
        assert!(!t.retire(owner, &LevelStamp::from_digits(&[1, 1])));
        assert!(t.is_empty());
        assert_eq!(t.bytes(), 0);
        assert_eq!(t.stored_total(), 1);
        assert_eq!(t.retired_total(), 1);
    }

    #[test]
    fn figure1_topmost_rule() {
        // Processor C holds checkpoints for B2, B3, B5 in entry B, where B5
        // descends from B2. Recovery must reissue only B2 and B3.
        let mut t = CheckpointTable::new();
        let c1 = TaskKey(1); // spawned B2
        let c2 = TaskKey(2); // spawned B3
        let c4 = TaskKey(4); // spawned B5
        let b2 = LevelStamp::from_digits(&[1, 1]);
        let b3 = LevelStamp::from_digits(&[1, 2]);
        let b5 = LevelStamp::from_digits(&[1, 1, 2, 1]);
        t.store(c1, pkt(&b2.digits()));
        t.store(c2, pkt(&b3.digits()));
        t.store(c4, pkt(&b5.digits()));
        t.on_ack(c1, &b2, B);
        t.on_ack(c2, &b3, B);
        t.on_ack(c4, &b5, B);
        let top = t.recover_candidates(B, CheckpointFilter::Topmost);
        let stamps: Vec<&LevelStamp> = top.iter().map(|c| &c.stamp).collect();
        assert_eq!(stamps, vec![&b2, &b3]);
        // The ablation reissues all three (B5 fruitlessly).
        assert_eq!(t.recover_candidates(B, CheckpointFilter::All).len(), 3);
    }

    #[test]
    fn retirement_repromotes_descendants() {
        // Once B2 retires (its result arrived), B5 becomes topmost — the
        // scenario that makes insert-time filtering unsound.
        let mut t = CheckpointTable::new();
        let b2 = LevelStamp::from_digits(&[1, 1]);
        let b5 = LevelStamp::from_digits(&[1, 1, 2, 1]);
        t.store(TaskKey(1), pkt(&b2.digits()));
        t.store(TaskKey(4), pkt(&b5.digits()));
        t.on_ack(TaskKey(1), &b2, B);
        t.on_ack(TaskKey(4), &b5, B);
        assert_eq!(t.recover_candidates(B, CheckpointFilter::Topmost).len(), 1);
        t.retire(TaskKey(1), &b2);
        let top = t.recover_candidates(B, CheckpointFilter::Topmost);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].stamp, b5);
    }

    #[test]
    fn entries_move_between_destinations() {
        let mut t = CheckpointTable::new();
        let s = LevelStamp::from_digits(&[2]);
        t.store(TaskKey(0), pkt(&s.digits()));
        t.on_ack(TaskKey(0), &s, B);
        // Reissue: pending again.
        t.on_reissue(TaskKey(0), &s);
        assert!(t.recover_candidates(B, CheckpointFilter::All).is_empty());
        assert_eq!(
            t.get(TaskKey(0), &s)
                .unwrap()
                .packet
                .as_ref()
                .unwrap()
                .incarnation,
            1
        );
        // Re-acked at a different processor.
        t.on_ack(TaskKey(0), &s, ProcId(3));
        assert!(t.recover_candidates(B, CheckpointFilter::All).is_empty());
        assert_eq!(
            t.recover_candidates(ProcId(3), CheckpointFilter::All).len(),
            1
        );
    }

    #[test]
    fn retire_owner_drops_all_of_a_tasks_checkpoints() {
        let mut t = CheckpointTable::new();
        t.store(TaskKey(1), pkt(&[1, 1]));
        t.store(TaskKey(1), pkt(&[1, 2]));
        t.store(TaskKey(2), pkt(&[2, 1]));
        assert_eq!(t.retire_owner(TaskKey(1)), 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.retire_owner(TaskKey(1)), 0);
    }

    #[test]
    fn same_stamp_different_owners_coexist() {
        // Two twin instances can checkpoint the same child stamp.
        let mut t = CheckpointTable::new();
        let s = LevelStamp::from_digits(&[1, 3]);
        t.store(TaskKey(1), pkt(&s.digits()));
        t.store(TaskKey(2), pkt(&s.digits()));
        assert_eq!(t.len(), 2);
        t.on_ack(TaskKey(1), &s, B);
        t.on_ack(TaskKey(2), &s, B);
        assert_eq!(t.recover_candidates(B, CheckpointFilter::All).len(), 2);
        assert!(t.retire(TaskKey(1), &s));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn placement_records_recover_without_a_packet() {
        // The Placement tier keeps the stamp (routing handle) but not the
        // frame; it costs fewer bytes and still surfaces as a candidate.
        let mut t = CheckpointTable::new();
        let s = LevelStamp::from_digits(&[1, 4]);
        t.store_placement(TaskKey(3), s.clone());
        let placement_bytes = t.bytes();
        t.on_ack(TaskKey(3), &s, B);
        let cands = t.recover_candidates(B, CheckpointFilter::All);
        assert_eq!(cands.len(), 1);
        assert!(cands[0].packet.is_none());
        assert_eq!(cands[0].stamp, s);
        // on_reissue on a packet-less entry must not panic.
        t.on_reissue(TaskKey(3), &s);
        assert!(t.retire(TaskKey(3), &s));
        assert_eq!(t.bytes(), 0);
        let mut full = CheckpointTable::new();
        full.store(TaskKey(3), pkt(&s.digits()));
        assert!(placement_bytes < full.bytes(), "placement must be cheaper");
    }

    #[test]
    fn preloads_accumulate_and_dedup_by_demand() {
        let mut t = CheckpointTable::new();
        let s = LevelStamp::from_digits(&[1, 1]);
        t.store(TaskKey(1), pkt(&s.digits()));
        let base = t.bytes();
        let d1 = Demand::new(FnId(1), vec![Value::Int(1)]);
        let d2 = Demand::new(FnId(1), vec![Value::Int(2)]);
        assert!(t.add_preloads(TaskKey(1), &s, vec![(d1.clone(), Value::Int(10))]));
        assert!(t.add_preloads(
            TaskKey(1),
            &s,
            vec![(d1.clone(), Value::Int(10)), (d2, Value::Int(20))]
        ));
        let cp = t.get(TaskKey(1), &s).unwrap();
        assert_eq!(cp.preloads.len(), 2, "duplicate demand must not re-enter");
        assert!(t.bytes() > base);
        // Unknown checkpoints report stale.
        assert!(!t.add_preloads(TaskKey(9), &s, vec![(d1, Value::Int(0))]));
        t.retire(TaskKey(1), &s);
        assert_eq!(t.bytes(), 0, "retire must release preload bytes too");
    }

    #[test]
    fn peaks_track_high_water_marks() {
        let mut t = CheckpointTable::new();
        t.store(TaskKey(1), pkt(&[1]));
        t.store(TaskKey(1), pkt(&[2]));
        let peak = t.peak_entries();
        t.retire(TaskKey(1), &LevelStamp::from_digits(&[1]));
        t.retire(TaskKey(1), &LevelStamp::from_digits(&[2]));
        assert_eq!(t.peak_entries(), peak);
        assert!(t.peak_bytes() > 0);
        assert_eq!(t.bytes(), 0);
    }
}
