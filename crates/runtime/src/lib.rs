//! `splice-runtime` — real multi-threaded execution of the recovery
//! protocol.
//!
//! One OS thread per processor, channels as the partitioned-memory
//! interconnect, a heartbeat monitor as the failure detector, and
//! fail-silent fault injection via kill flags. The protocol engine is the
//! same `splice_core::engine::Engine` the deterministic simulator drives,
//! pumped by the same `splice_harness::DriverLoop`; this crate contributes
//! only a wall-clock `Substrate` implementation, and exists to demonstrate
//! (and test) that the recovery protocol is driver-agnostic and survives
//! real races.

#![warn(missing_docs)]

pub mod runtime;

pub use runtime::{run, run_plan, CrashAt, RuntimeConfig, RuntimeReport};
