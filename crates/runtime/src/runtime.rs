//! The threaded runtime: one OS thread per processor, channels as the
//! interconnect.
//!
//! This is the "real machine" counterpart of `splice-sim`: the *same*
//! protocol engine (`splice_core::engine::Engine`) runs unmodified under
//! the *same* shared driver loop (`splice_harness::DriverLoop`); only the
//! [`Substrate`] differs. Processors are worker threads with private state
//! (partitioned memory), messages travel through unbounded channels, time
//! is the OS clock, and failure detection is a heartbeat monitor rather
//! than a simulator oracle.
//!
//! Fail-silent fault injection: a killed worker stops heartbeating,
//! processing and sending — exactly the paper's fault model ("if a
//! processor fails, it will no longer transmit any valid messages"). A
//! corrupting worker keeps running but emits detectably wrong replica
//! results (the §5.3 voting experiment), using the same corruption the
//! simulator applies so replicated runs agree across backends.
//!
//! The runtime favours clarity over throughput: it demonstrates that the
//! recovery protocol is driver-agnostic and exercises it under real
//! concurrency and real races. Timing experiments belong to the
//! deterministic simulator.

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use splice_applicative::{Program, Value, Workload};
use splice_core::config::Config as RecoveryConfig;
use splice_core::engine::Timer;
use splice_core::ids::ProcId;
use splice_core::packet::Msg;
use splice_core::policy::PolicyKind;
use splice_core::stats::ProcStats;
use splice_gradient::Policy;
use splice_harness::{
    corrupt_value, death_notice_targets, BatchingSubstrate, DriverLoop, EngineSnapshot,
    EngineTotals, ShardMap, ShardRouter, Substrate, SuperRootDriver, TimerWheel, TracingSubstrate,
};
use splice_simnet::fault::{FaultKind, FaultOutcome, FaultPlan, PlanRun};
use splice_simnet::time::VirtualTime;
use splice_simnet::topology::Topology;
use splice_simnet::trace::{TraceMode, TraceSummary, Tracer};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Runtime configuration.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of worker processors.
    pub n_procs: u32,
    /// Logical topology (drives gradient neighbourhoods; messages are
    /// always directly deliverable).
    pub topology: Topology,
    /// Placement policy.
    pub policy: Policy,
    /// Recovery configuration shared by all engines.
    pub recovery: RecoveryConfig,
    /// Wall-clock duration of one abstract engine time unit (timer delays
    /// in the engine's `SetTimer` actions are multiplied by this).
    pub time_unit: Duration,
    /// Heartbeat period of the failure detector.
    pub heartbeat_period: Duration,
    /// Silence threshold after which a worker is declared dead.
    pub heartbeat_timeout: Duration,
    /// Overall run timeout.
    pub run_timeout: Duration,
    /// Extra delivery delay (abstract units) per message crossing a shard
    /// boundary of a `Topology::Sharded` — the threaded counterpart of the
    /// simulator's inter-shard router, served by the delayed-delivery
    /// queue. Inert on flat topologies or at 0.
    pub router_latency: u64,
    /// Flush window (abstract units) of the batched-delivery bus: worker
    /// messages buffered within one pump are delivered together, a window
    /// late. 0 disables batching.
    pub batch_window: u64,
    /// When false, the heartbeat monitor never runs and no broadcast
    /// failure notices are generated (the threaded counterpart of the
    /// simulator's `DetectorConfig::broadcast = false`): failures are
    /// discovered exclusively through bounced sends, salvage arrivals and
    /// ack timeouts — the most pessimistic detection regime.
    pub detector_broadcast: bool,
    /// Seed for stochastic placers.
    pub seed: u64,
    /// Canonical-trace mode. Each worker owns a tracer; the per-worker
    /// summaries merge into [`RuntimeReport::trace`] in processor order.
    /// Event timestamps derive from the wall clock, so the order-sensitive
    /// stream checksum is *not* reproducible across runs here — only the
    /// commutative semantic checksum is comparable to the deterministic
    /// backends.
    pub trace: TraceMode,
}

impl RuntimeConfig {
    /// Defaults sized for tests: small machine, fast detector.
    pub fn new(n_procs: u32) -> RuntimeConfig {
        RuntimeConfig {
            n_procs,
            topology: Topology::Complete { n: n_procs },
            policy: Policy::RoundRobin,
            recovery: RecoveryConfig::default(),
            time_unit: Duration::from_micros(25),
            heartbeat_period: Duration::from_millis(5),
            heartbeat_timeout: Duration::from_millis(40),
            run_timeout: Duration::from_secs(30),
            router_latency: 0,
            batch_window: 0,
            detector_broadcast: true,
            seed: 1,
            trace: TraceMode::Off,
        }
    }
}

/// A scheduled fail-silent crash.
#[derive(Clone, Copy, Debug)]
pub struct CrashAt {
    /// Victim processor.
    pub victim: u32,
    /// Delay from launch to the crash.
    pub after: Duration,
}

/// Outcome of a runtime execution.
#[derive(Clone, Debug)]
pub struct RuntimeReport {
    /// The program's answer, if it completed in time.
    pub result: Option<Value>,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Aggregate engine statistics.
    pub stats: ProcStats,
    /// Per-processor engine statistics.
    pub per_proc: Vec<ProcStats>,
    /// Total checkpoints ever stored, across processors.
    pub ckpt_stored: u64,
    /// Failure notices broadcast by the heartbeat monitor.
    pub detections: u64,
    /// Messages that travelled through the delayed-delivery queue (router
    /// surcharges and batching windows).
    pub delayed_msgs: u64,
    /// Sends returned to their (live) senders because the destination was
    /// already marked dead — the transport-level unreachability signal the
    /// simulator calls a bounce.
    pub bounces: u64,
    /// Times the super-root reissued the root.
    pub root_reissues: u64,
    /// Times a super-root successor took over from a crashed acting
    /// primary (0 unless the plan crashed root replicas).
    pub root_failovers: u64,
    /// Super-root replica count the run was configured with.
    pub root_replicas: u32,
    /// Merged per-worker canonical-trace fingerprint (processor order).
    /// The semantic checksum is cross-backend comparable; the stream
    /// checksum is wall-clock-ordered and varies run to run.
    pub trace: TraceSummary,
    /// Recovery policy the run's engines were configured with.
    pub policy: PolicyKind,
}

enum Envelope {
    Net {
        msg: Msg,
    },
    Notice {
        dead: ProcId,
    },
    /// A best-effort send that failed: the transport knew `dead` was
    /// unreachable and returned the message to its sender.
    Bounce {
        dead: ProcId,
        msg: Msg,
    },
    Shutdown,
}

/// A message parked in the delayed-delivery queue ([`Substrate::send_delayed`]
/// on real threads: router surcharges, batching windows).
struct Delayed {
    due: Instant,
    seq: u64,
    /// The sending worker (`None` for the super-root driver) — a release
    /// whose destination died meanwhile bounces back to it.
    from: Option<u32>,
    to: ProcId,
    msg: Msg,
}

impl PartialEq for Delayed {
    fn eq(&self, other: &Delayed) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}

impl Eq for Delayed {}

impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Delayed) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Delayed {
    fn cmp(&self, other: &Delayed) -> std::cmp::Ordering {
        // (due, seq): deadline order with send-order ties, so per-link
        // FIFO survives the heap (same-link messages carry the same extra
        // and therefore non-decreasing deadlines).
        self.due.cmp(&other.due).then(self.seq.cmp(&other.seq))
    }
}

/// Sentinel in `Shared::beats`: the worker thread has not beaten yet. The
/// monitor must not compare silence against it — a worker that is merely
/// slow to get scheduled (a loaded CI box) would be declared dead before
/// its first beat.
const NEVER_BEAT: u64 = u64::MAX;

struct Shared {
    senders: Vec<Sender<Envelope>>,
    to_superroot: Sender<Envelope>,
    /// Inlet of the delayed-delivery thread.
    to_router: Sender<Delayed>,
    /// Sequence stamp for delayed messages (heap tie-break = send order).
    delay_seq: AtomicU64,
    /// Messages that took the delayed path (reporting).
    delayed_sent: AtomicU64,
    /// Sends bounced back to their senders (reporting).
    bounced: AtomicU64,
    killed: Vec<AtomicBool>,
    corrupting: Vec<AtomicBool>,
    /// Millis since `epoch` of each worker's last heartbeat
    /// ([`NEVER_BEAT`] until the first one).
    beats: Vec<AtomicU64>,
    epoch: Instant,
    done: AtomicBool,
    snapshots: Vec<Mutex<EngineSnapshot>>,
    /// Per-worker trace fingerprints, published at worker exit.
    trace_sums: Vec<Mutex<TraceSummary>>,
}

impl Shared {
    fn send(&self, to: ProcId, env: Envelope) {
        if to.is_super_root() {
            let _ = self.to_superroot.send(env);
        } else if let Some(s) = self.senders.get(to.0 as usize) {
            let _ = s.send(env);
        }
    }

    fn is_killed(&self, p: ProcId) -> bool {
        self.killed
            .get(p.0 as usize)
            .is_some_and(|k| k.load(Ordering::SeqCst))
    }

    /// Best-effort delivery with the transport-level bounce the simulator
    /// models: a send to a worker already marked dead returns to a live
    /// worker sender as [`Envelope::Bounce`] (the sender learns the
    /// destination is unreachable — the paper's "the unreachable node is
    /// considered faulty"), and vanishes otherwise. The driver link is
    /// reliable and always delivers.
    fn deliver(&self, from: Option<u32>, to: ProcId, msg: Msg) {
        if !to.is_super_root() && self.is_killed(to) {
            if let Some(me) = from {
                if !self.is_killed(ProcId(me)) {
                    self.bounced.fetch_add(1, Ordering::Relaxed);
                    self.send(ProcId(me), Envelope::Bounce { dead: to, msg });
                }
            }
            return;
        }
        self.send(to, Envelope::Net { msg });
    }
}

/// The wall-clock [`Substrate`]: channels as the interconnect, `Instant`s
/// on a [`TimerWheel`] as the clock. One is constructed per pump (worker
/// thread or the super-root driver thread) around that actor's own wheel;
/// liveness is the shared kill-flag array.
struct ThreadSubstrate<'a> {
    shared: &'a Shared,
    /// The worker this substrate acts for (`None` on the driver thread).
    me: Option<u32>,
    time_unit: Duration,
    wheel: &'a mut TimerWheel<Instant>,
}

impl<'a> ThreadSubstrate<'a> {
    /// Applies the sender-side fault model: a killed worker emits nothing
    /// (fail-silent even mid-batch: "it will no longer transmit any valid
    /// messages"), a corrupting worker emits detectably wrong replica
    /// results — the same send-side rule as the simulator's substrate.
    fn outbound(&self, mut msg: Msg) -> Option<Msg> {
        if let Some(me) = self.me {
            if self.shared.killed[me as usize].load(Ordering::SeqCst) {
                return None;
            }
            if self.shared.corrupting[me as usize].load(Ordering::Relaxed) {
                if let Msg::Result(rp) = &mut msg {
                    if rp.replica.is_some() {
                        rp.value = corrupt_value(&rp.value);
                    }
                }
            }
        }
        Some(msg)
    }

    fn new(
        shared: &'a Shared,
        me: Option<u32>,
        time_unit: Duration,
        wheel: &'a mut TimerWheel<Instant>,
    ) -> ThreadSubstrate<'a> {
        ThreadSubstrate {
            shared,
            me,
            time_unit,
            wheel,
        }
    }
}

fn units_to_wall(time_unit: Duration, units: u64) -> Duration {
    Duration::from_nanos((time_unit.as_nanos() as u64).saturating_mul(units))
}

/// Builds one pump's substrate stack: the shard router (charging
/// `router_latency` per boundary crossing of a sharded topology) over the
/// batching bus (flushed when the stack drops at the end of the pump) over
/// the raw channel substrate. On flat topologies with batching off both
/// decorators are transparent and the transient stack allocates nothing
/// (a single-shard router keeps no link matrix). The per-pump
/// `ShardStats`/`BatchStats` are dropped with the stack — the runtime
/// reports only the `delayed_msgs` aggregate; per-link accounting is a
/// simulator-report feature.
fn pump_sub<'a>(
    shared: &'a Shared,
    me: Option<u32>,
    cfg: &RuntimeConfig,
    wheel: &'a mut TimerWheel<Instant>,
    tracer: &'a mut Tracer,
) -> ShardRouter<BatchingSubstrate<TracingSubstrate<ThreadSubstrate<'a>, &'a mut Tracer>>> {
    let inner = ThreadSubstrate::new(shared, me, cfg.time_unit, wheel);
    ShardRouter::new(
        BatchingSubstrate::new(TracingSubstrate::new(inner, tracer), cfg.batch_window),
        ShardMap::new(cfg.topology.shard_count(), cfg.topology.per_shard()),
        cfg.router_latency,
    )
}

/// The delayed-delivery thread: parks [`Delayed`] messages in a deadline
/// heap and releases each to its destination channel when due. Exits when
/// the run is torn down.
fn delay_router(rx: Receiver<Delayed>, shared: Arc<Shared>) {
    let mut heap: BinaryHeap<Reverse<Delayed>> = BinaryHeap::new();
    loop {
        let now = Instant::now();
        while heap.peek().is_some_and(|Reverse(d)| d.due <= now) {
            let Reverse(d) = heap.pop().expect("peeked");
            // Release with the liveness known *now*: a destination that
            // died while the message was parked bounces it back to its
            // sender, exactly like an immediate send would.
            shared.deliver(d.from, d.to, d.msg);
        }
        if shared.done.load(Ordering::SeqCst) {
            // Run over: undelivered delayed traffic is moot.
            return;
        }
        let wait = heap
            .peek()
            .map(|Reverse(d)| d.due.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(5))
            .min(Duration::from_millis(5));
        match rx.recv_timeout(wait.max(Duration::from_micros(100))) {
            Ok(d) => heap.push(Reverse(d)),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

impl Substrate for ThreadSubstrate<'_> {
    fn n_procs(&self) -> u32 {
        self.shared.senders.len() as u32
    }

    fn is_live(&self, p: ProcId) -> bool {
        self.shared
            .killed
            .get(p.0 as usize)
            .is_some_and(|k| !k.load(Ordering::SeqCst))
    }

    fn now_units(&self) -> u64 {
        (self.shared.epoch.elapsed().as_nanos() / self.time_unit.as_nanos().max(1)) as u64
    }

    fn send(&mut self, _from: ProcId, to: ProcId, msg: Msg) {
        if let Some(msg) = self.outbound(msg) {
            self.shared.deliver(self.me, to, msg);
        }
    }

    fn send_delayed(&mut self, from: ProcId, to: ProcId, msg: Msg, extra: u64) {
        if extra == 0 {
            return self.send(from, to, msg);
        }
        // A real override at last (the ROADMAP's sharded-runtime-parity
        // gap): the message parks in the delayed-delivery queue and the
        // router thread releases it `extra` abstract units later, so shard
        // surcharges and batching windows cost real wall-clock here too.
        let Some(msg) = self.outbound(msg) else {
            return;
        };
        let due = Instant::now() + units_to_wall(self.time_unit, extra);
        let seq = self.shared.delay_seq.fetch_add(1, Ordering::Relaxed);
        self.shared.delayed_sent.fetch_add(1, Ordering::Relaxed);
        let _ = self.shared.to_router.send(Delayed {
            due,
            seq,
            from: self.me,
            to,
            msg,
        });
    }

    fn arm_timer(&mut self, _owner: ProcId, timer: Timer, delay: u64) {
        let at = Instant::now() + units_to_wall(self.time_unit, delay);
        self.wheel.arm(at, timer);
    }

    fn report_death(&mut self, dead: ProcId) {
        for to in death_notice_targets(self.n_procs(), |p| self.is_live(p), dead) {
            self.shared.send(to, Envelope::Notice { dead });
        }
    }
}

/// Runs `workload` on real threads, injecting `crashes`, and reports.
/// Internally the crash list becomes a [`FaultPlan`] (crash instants
/// divided by `cfg.time_unit`), so both entry points share one plan path.
pub fn run(cfg: RuntimeConfig, workload: &Workload, crashes: &[CrashAt]) -> RuntimeReport {
    let time_unit = cfg.time_unit;
    let mut plan = FaultPlan::none();
    for c in crashes {
        let at = VirtualTime((c.after.as_nanos() / time_unit.as_nanos().max(1)) as u64);
        plan = plan.and(c.victim, at, FaultKind::Crash);
    }
    run_plan(cfg, workload, &plan)
}

/// Runs `workload` under a simulator [`FaultPlan`], mapping virtual fault
/// times onto the wall clock through `cfg.time_unit`. This lets one fault
/// plan drive every backend — the driver-parity tests feed the same plan
/// here, to `splice_sim::run_workload` and to `splice_sim::run_reactor`.
/// Multi-fault plans (including `FaultPlan::random_crashes` with protected
/// processors, whole-shard plans and corrupt-after-crash mixes) apply
/// through the same shared [`PlanRun`] transition rules as the other
/// backends.
pub fn run_plan(cfg: RuntimeConfig, workload: &Workload, plan: &FaultPlan) -> RuntimeReport {
    let n = cfg.n_procs as usize;
    assert!(n >= 1);
    let program = Arc::new(workload.program.clone());
    let (sr_tx, sr_rx) = unbounded::<Envelope>();
    let (router_tx, router_rx) = unbounded::<Delayed>();
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded::<Envelope>();
        senders.push(tx);
        receivers.push(rx);
    }
    let shared = Arc::new(Shared {
        senders,
        to_superroot: sr_tx,
        to_router: router_tx,
        delay_seq: AtomicU64::new(0),
        delayed_sent: AtomicU64::new(0),
        bounced: AtomicU64::new(0),
        killed: (0..n).map(|_| AtomicBool::new(false)).collect(),
        corrupting: (0..n).map(|_| AtomicBool::new(false)).collect(),
        beats: (0..n).map(|_| AtomicU64::new(NEVER_BEAT)).collect(),
        epoch: Instant::now(),
        done: AtomicBool::new(false),
        snapshots: (0..n)
            .map(|_| Mutex::new(EngineSnapshot::default()))
            .collect(),
        trace_sums: (0..n)
            .map(|_| Mutex::new(TraceSummary::default()))
            .collect(),
    });

    // Workers.
    let mut handles = Vec::with_capacity(n);
    for (i, rx) in receivers.into_iter().enumerate() {
        let shared = shared.clone();
        let program = program.clone();
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || {
            worker(i as u32, rx, shared, program, cfg)
        }));
    }

    // Heartbeat monitor — not spawned at all in the detector-disabled
    // (bounce-only) regime.
    let monitor = cfg.detector_broadcast.then(|| {
        let shared = shared.clone();
        let cfg = cfg.clone();
        std::thread::spawn(move || heartbeat_monitor(shared, cfg))
    });

    // Delayed-delivery router (shard surcharges, batching windows).
    let router = {
        let shared = shared.clone();
        std::thread::spawn(move || delay_router(router_rx, shared))
    };

    // Fault injector: polls the shared `PlanRun` against wall-clock-derived
    // units, so plan ordering and the crash/corrupt transition rules are
    // the same code the simulator and the reactor execute. The injector is
    // the only writer of the kill/corrupt flags; the atomics publish what
    // the state machine decided.
    let injector = {
        let shared = shared.clone();
        // Root-replica crashes apply on the driver thread (the only owner
        // of the super-root); the injector gets the processor faults.
        let plan = FaultPlan {
            events: plan.events.clone(),
            root_events: Vec::new(),
        };
        let time_unit = cfg.time_unit;
        let n_procs = cfg.n_procs;
        std::thread::spawn(move || {
            let mut run = PlanRun::new(&plan, n_procs);
            let start = Instant::now();
            while !run.exhausted() {
                // Sleep in short slices: a fault scheduled past program
                // completion must not hold up teardown (run() joins this
                // thread).
                if shared.done.load(Ordering::SeqCst) {
                    return;
                }
                let now_units = (start.elapsed().as_nanos() / time_unit.as_nanos().max(1)) as u64;
                let mut applied = false;
                while let Some((ev, outcome)) = run.pop_due(VirtualTime(now_units)) {
                    applied = true;
                    let flags = match outcome {
                        FaultOutcome::Crashed => &shared.killed,
                        FaultOutcome::Corrupted => &shared.corrupting,
                        FaultOutcome::Ignored => continue,
                    };
                    if let Some(flag) = flags.get(ev.victim as usize) {
                        flag.store(true, Ordering::SeqCst);
                    }
                }
                if applied || run.exhausted() {
                    continue;
                }
                let due = units_to_wall(time_unit, run.next_at().expect("not exhausted").ticks());
                let wait = due
                    .saturating_sub(start.elapsed())
                    .min(Duration::from_millis(5));
                std::thread::sleep(wait.max(Duration::from_micros(50)));
            }
        })
    };

    // Super-root on the driver thread, over the same substrate type the
    // workers pump.
    let start = Instant::now();
    let mut superroot = SuperRootDriver::new(workload, &cfg.recovery);
    let mut wheel: TimerWheel<Instant> = TimerWheel::new();
    // The super-root's pumps are deliberately untraced, like on every
    // other backend (the driver link is out-of-band).
    let mut sr_tracer = Tracer::new(TraceMode::Off);
    let mut detections = 0u64;
    {
        let mut sub = pump_sub(&shared, None, &cfg, &mut wheel, &mut sr_tracer);
        superroot.launch(&mut sub);
    }

    // Root-replica crash cursor: applied here, between super-root pumps,
    // against the same wall-clock-derived units the injector uses for
    // processor faults.
    let root_events = plan.sorted_root();
    let mut next_root = 0usize;

    let result = loop {
        if start.elapsed() > cfg.run_timeout {
            break None;
        }
        // Apply due root-replica crashes; a deposed primary's successor
        // takes over (reissuing the root wave) inside `crash_replica`.
        let now_units = (start.elapsed().as_nanos() / cfg.time_unit.as_nanos().max(1)) as u64;
        while next_root < root_events.len() && root_events[next_root].at.ticks() <= now_units {
            let rank = root_events[next_root].rank;
            next_root += 1;
            let mut sub = pump_sub(&shared, None, &cfg, &mut wheel, &mut sr_tracer);
            superroot.crash_replica(rank, &mut sub);
        }
        // With every root replica dead the super-root role is gone: no
        // input can be processed, so the result can never arrive.
        if !superroot.has_live_replica() {
            break None;
        }
        // Fire due super-root timers.
        while let Some(timer) = wheel.pop_due(&Instant::now()) {
            let mut sub = pump_sub(&shared, None, &cfg, &mut wheel, &mut sr_tracer);
            superroot.on_timer(timer, &mut sub);
        }
        match sr_rx.recv_timeout(Duration::from_millis(1)) {
            Ok(Envelope::Net { msg }) => {
                let mut sub = pump_sub(&shared, None, &cfg, &mut wheel, &mut sr_tracer);
                superroot.on_message(msg, &mut sub);
            }
            Ok(Envelope::Notice { dead }) => {
                detections += 1;
                let mut sub = pump_sub(&shared, None, &cfg, &mut wheel, &mut sr_tracer);
                superroot.on_failure(dead, &mut sub);
            }
            // The driver link is reliable; nothing bounces to it.
            Ok(Envelope::Bounce { .. }) => {}
            Ok(Envelope::Shutdown) => break None,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break None,
        }
        if let Some(v) = superroot.result() {
            break Some(v.clone());
        }
    };

    // Tear down.
    shared.done.store(true, Ordering::SeqCst);
    for s in &shared.senders {
        let _ = s.send(Envelope::Shutdown);
    }
    for h in handles {
        let _ = h.join();
    }
    if let Some(m) = monitor {
        let _ = m.join();
    }
    let _ = injector.join();
    let _ = router.join();

    let totals = EngineTotals::collect(shared.snapshots.iter().map(|s| s.lock().clone()));
    let mut trace = TraceSummary::default();
    for s in &shared.trace_sums {
        trace.absorb(*s.lock());
    }
    RuntimeReport {
        result,
        elapsed: start.elapsed(),
        stats: totals.stats,
        per_proc: totals.per_proc,
        ckpt_stored: totals.ckpt_stored,
        detections,
        delayed_msgs: shared.delayed_sent.load(Ordering::Relaxed),
        bounces: shared.bounced.load(Ordering::Relaxed),
        root_reissues: superroot.reissues(),
        root_failovers: superroot.failovers(),
        root_replicas: superroot.replicas(),
        trace,
        policy: cfg.recovery.policy.kind,
    }
}

fn worker(
    id: u32,
    rx: Receiver<Envelope>,
    shared: Arc<Shared>,
    program: Arc<Program>,
    cfg: RuntimeConfig,
) {
    let placer = cfg.policy.build(ProcId(id), &cfg.topology, cfg.seed);
    // Same rule as the simulated machines: with the heartbeat monitor off,
    // acked-child probing is the only way a parent ever learns its child's
    // host died silently.
    let mut recovery = cfg.recovery.clone();
    recovery.probe_acked |= !cfg.detector_broadcast;
    let mut node = DriverLoop::new(ProcId(id), program, recovery, placer);
    let mut wheel: TimerWheel<Instant> = TimerWheel::new();
    let mut tracer = Tracer::new(cfg.trace);
    {
        let mut sub = pump_sub(&shared, Some(id), &cfg, &mut wheel, &mut tracer);
        node.start(&mut sub);
    }

    loop {
        if shared.done.load(Ordering::SeqCst) {
            break;
        }
        if shared.killed[id as usize].load(Ordering::SeqCst) {
            // Fail-silent: no heartbeats, no processing, no sends. Keep
            // draining the channel so senders never block, then exit once
            // the run ends.
            match rx.recv_timeout(Duration::from_millis(5)) {
                Ok(Envelope::Shutdown) => break,
                _ => continue,
            }
        }
        // Heartbeat.
        shared.beats[id as usize]
            .store(shared.epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
        // Fire due timers.
        while let Some(timer) = wheel.pop_due(&Instant::now()) {
            let mut sub = pump_sub(&shared, Some(id), &cfg, &mut wheel, &mut tracer);
            node.on_timer(timer, &mut sub);
        }
        // Drain a batch of messages.
        let mut worked = false;
        let mut shutdown = false;
        for _ in 0..64 {
            match rx.try_recv() {
                Ok(env) => {
                    worked = true;
                    if !pump_envelope(env, &mut node, &mut wheel, &mut tracer, &shared, id, &cfg) {
                        shutdown = true;
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        if shutdown {
            break;
        }
        // Run ready waves (effects release immediately: real time already
        // passed while the wave ran).
        for _ in 0..16 {
            let mut sub = pump_sub(&shared, Some(id), &cfg, &mut wheel, &mut tracer);
            if !node.run_ready_wave(&mut sub) {
                break;
            }
            worked = true;
        }
        if !worked {
            // Idle: wait briefly for traffic, but never sleep past the
            // next armed timer's deadline.
            let idle = Duration::from_micros(500);
            let wait = match wheel.next_deadline() {
                Some(at) => at.saturating_duration_since(Instant::now()).min(idle),
                None => idle,
            };
            if let Ok(env) = rx.recv_timeout(wait) {
                if !pump_envelope(env, &mut node, &mut wheel, &mut tracer, &shared, id, &cfg) {
                    break;
                }
            }
        }
    }
    *shared.snapshots[id as usize].lock() = EngineSnapshot::of(node.engine());
    *shared.trace_sums[id as usize].lock() = tracer.summary();
}

/// Feeds one envelope through the worker's driver loop. Returns false on
/// `Shutdown` — the caller exits its loop and the snapshot is captured at
/// the single worker exit point.
fn pump_envelope(
    env: Envelope,
    node: &mut DriverLoop,
    wheel: &mut TimerWheel<Instant>,
    tracer: &mut Tracer,
    shared: &Shared,
    id: u32,
    cfg: &RuntimeConfig,
) -> bool {
    let mut sub = pump_sub(shared, Some(id), cfg, wheel, tracer);
    match env {
        Envelope::Net { msg } => node.on_message(msg, &mut sub),
        Envelope::Notice { dead } => node.on_message(Msg::FailureNotice { dead }, &mut sub),
        Envelope::Bounce { dead, msg } => node.on_send_failed(dead, msg, &mut sub),
        Envelope::Shutdown => return false,
    }
    true
}

/// Declares workers dead after `heartbeat_timeout` of silence and
/// broadcasts `FailureNotice`s to every live worker and the super-root —
/// the "passive node diagnosis" stand-in. Recipients come from the same
/// [`death_notice_targets`] enumeration the simulator's detector uses.
fn heartbeat_monitor(shared: Arc<Shared>, cfg: RuntimeConfig) {
    let n = shared.killed.len();
    let mut declared = vec![false; n];
    // Give workers a grace period to start beating.
    std::thread::sleep(cfg.heartbeat_timeout);
    while !shared.done.load(Ordering::SeqCst) {
        let now = shared.epoch.elapsed().as_millis() as u64;
        for (i, was_declared) in declared.iter_mut().enumerate() {
            if *was_declared {
                continue;
            }
            let last = shared.beats[i].load(Ordering::Relaxed);
            let timeout_ms = cfg.heartbeat_timeout.as_millis() as u64;
            // A live worker that has never beaten is (probably) starting
            // up, not silent: declaring it dead after one quiet timeout is
            // the false positive a loaded box turns into a spurious
            // recovery, so first beats get an extended 5× grace. Silence
            // is declared real early only for a *killed* worker (it will
            // never beat, and the threaded runtime has no bounce path to
            // discover it otherwise); a worker that never beats through
            // the whole grace window (startup panic or deadlock) is
            // eventually declared too.
            let silent = if last == NEVER_BEAT {
                shared.killed[i].load(Ordering::SeqCst) || now > 5 * timeout_ms
            } else {
                now.saturating_sub(last) > timeout_ms
            };
            if silent {
                *was_declared = true;
                let dead = ProcId(i as u32);
                let live = |p: ProcId| !shared.killed[p.0 as usize].load(Ordering::SeqCst);
                for to in death_notice_targets(n as u32, live, dead) {
                    shared.send(to, Envelope::Notice { dead });
                }
            }
        }
        std::thread::sleep(cfg.heartbeat_period);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(n: u32) -> RuntimeConfig {
        let mut c = RuntimeConfig::new(n);
        c.recovery.load_beacon_period = 0;
        // Abstract ack-timeout (4000 units × 25µs = 100ms) stays above the
        // heartbeat timeout so detection usually wins the race.
        c
    }

    #[test]
    fn fault_free_matches_reference() {
        let w = Workload::fib(11);
        let r = run(quick_cfg(4), &w, &[]);
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
        assert!(r.stats.tasks_completed >= 100);
        assert_eq!(r.per_proc.len(), 4);
        assert_eq!(r.detections, 0, "no worker died; none may be declared");
    }

    #[test]
    fn fault_free_small_suite() {
        for w in [
            Workload::dcsum(0, 48),
            Workload::quicksort(16, 3),
            Workload::nqueens(4),
        ] {
            let r = run(quick_cfg(3), &w, &[]);
            assert_eq!(r.result, Some(w.reference_result().unwrap()), "{}", w.name);
            assert_eq!(r.detections, 0, "{}: spurious detection", w.name);
        }
    }

    #[test]
    fn corrupt_after_crash_is_inert() {
        // The victim crashes, then a later Corrupt targets the same (dead)
        // worker: it must be a no-op — the run recovers exactly as under
        // the crash alone.
        let w = Workload::fib(14);
        let mut cfg = quick_cfg(4);
        cfg.recovery.mode = splice_core::config::RecoveryMode::Splice;
        let plan = FaultPlan::crash_at(2, splice_simnet::time::VirtualTime(400)).and(
            2,
            splice_simnet::time::VirtualTime(800),
            FaultKind::Corrupt,
        );
        let r = run_plan(cfg, &w, &plan);
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
    }

    #[test]
    fn crash_is_detected_and_survived_splice() {
        // fib(16) runs ~40ms+ on 4 workers; crashing 8ms in guarantees the
        // victim still holds live tasks when the heartbeat expires (the
        // seed version crashed at 30ms, racing run completion). The
        // timeout is shortened because bounce-driven discovery now
        // recovers — and finishes — runs faster than the default 40ms
        // first scan.
        let w = Workload::fib(16);
        let mut cfg = quick_cfg(4);
        cfg.recovery.mode = splice_core::config::RecoveryMode::Splice;
        cfg.heartbeat_timeout = Duration::from_millis(8);
        let crashes = [CrashAt {
            victim: 2,
            after: Duration::from_millis(8),
        }];
        let r = run(cfg, &w, &crashes);
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
        assert!(r.detections >= 1, "heartbeat monitor must notice the crash");
    }

    #[test]
    fn crash_is_survived_rollback() {
        let w = Workload::fib(14);
        let mut cfg = quick_cfg(4);
        cfg.recovery.mode = splice_core::config::RecoveryMode::Rollback;
        let crashes = [CrashAt {
            victim: 1,
            after: Duration::from_millis(8),
        }];
        let r = run(cfg, &w, &crashes);
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
    }

    #[test]
    fn immediate_crash_before_launch_is_survived() {
        let w = Workload::fib(10);
        let mut cfg = quick_cfg(3);
        cfg.recovery.mode = splice_core::config::RecoveryMode::Splice;
        // Kill the processor that will host the root, instantly.
        let crashes = [CrashAt {
            victim: 0,
            after: Duration::from_millis(0),
        }];
        let r = run(cfg, &w, &crashes);
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
    }

    #[test]
    fn crash_before_first_beat_is_still_detected() {
        // Killed at t=0 the victim (usually) never beats; the monitor must
        // still declare it — never-beaten is only a grace state for *live*
        // workers. A short heartbeat timeout puts the monitor's first scan
        // well inside the run: since the bounce path landed, engine-side
        // discovery no longer waits on the monitor, so the run finishes
        // too fast for the default 40ms first scan to happen at all.
        let w = Workload::fib(16);
        let mut cfg = quick_cfg(4);
        cfg.recovery.mode = splice_core::config::RecoveryMode::Splice;
        cfg.heartbeat_timeout = Duration::from_millis(8);
        let crashes = [CrashAt {
            victim: 2,
            after: Duration::from_millis(0),
        }];
        let r = run(cfg, &w, &crashes);
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
        assert!(r.detections >= 1, "early crash went undetected");
    }

    #[test]
    fn sharded_topology_charges_router_latency_on_real_threads() {
        // The E14 scenario on the threaded runtime: a sharded topology
        // whose cross-shard messages take the delayed-delivery queue. The
        // run must stay correct and the delayed path must demonstrably
        // carry traffic (the ROADMAP's sharded-runtime-parity gap).
        let w = Workload::fib(13);
        let mut cfg = quick_cfg(4);
        cfg.topology = Topology::Sharded {
            shards: 2,
            inner: Box::new(Topology::Complete { n: 2 }),
        };
        cfg.policy = Policy::RoundRobin;
        cfg.router_latency = 40; // 40 × 25µs = 1ms per crossing
        cfg.recovery.ack_timeout += 4 * cfg.router_latency;
        let r = run(cfg, &w, &[]);
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
        assert!(r.delayed_msgs > 0, "no message crossed the router");
    }

    #[test]
    fn sharded_runtime_survives_a_crash_through_the_router() {
        let w = Workload::fib(15);
        let mut cfg = quick_cfg(4);
        cfg.recovery.mode = splice_core::config::RecoveryMode::Splice;
        cfg.topology = Topology::Sharded {
            shards: 2,
            inner: Box::new(Topology::Complete { n: 2 }),
        };
        cfg.policy = Policy::RoundRobin;
        cfg.router_latency = 40;
        cfg.recovery.ack_timeout += 4 * cfg.router_latency;
        let crashes = [CrashAt {
            victim: 3,
            after: Duration::from_millis(8),
        }];
        let r = run(cfg, &w, &crashes);
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
        assert!(r.delayed_msgs > 0);
    }

    #[test]
    fn batched_delivery_runs_on_real_threads() {
        // The E15 scenario on the threaded runtime: per-pump batching with
        // a real flush window served by the delayed-delivery queue.
        let w = Workload::fib(13);
        let mut cfg = quick_cfg(4);
        cfg.batch_window = 20; // 0.5ms flush window
        cfg.recovery.ack_timeout += 4 * cfg.batch_window;
        let r = run(cfg, &w, &[]);
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
        assert!(r.delayed_msgs > 0, "no message took the batching window");
    }

    #[test]
    fn bounce_only_discovery_recovers_without_the_monitor() {
        // `detector_broadcast = false`: the heartbeat monitor never runs
        // and no failure notice is ever broadcast. Recovery must complete
        // through bounced sends (plus salvage arrivals and ack timeouts)
        // alone — the threaded mirror of `DetectorConfig::broadcast =
        // false`.
        let w = Workload::fib(16);
        let mut cfg = quick_cfg(4);
        cfg.recovery.mode = splice_core::config::RecoveryMode::Splice;
        cfg.detector_broadcast = false;
        let crashes = [CrashAt {
            victim: 2,
            after: Duration::from_millis(8),
        }];
        let r = run(cfg, &w, &crashes);
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
        assert_eq!(r.detections, 0, "no monitor, no detections");
        assert!(r.bounces > 0, "discovery must have come from bounced sends");
    }

    #[test]
    fn multi_fault_plan_with_protected_processors_recovers() {
        // The simulator's multi-fault generator drives the threaded
        // machine through the same `run_plan` path: two random victims
        // (never the protected processor 0, which hosts the root at
        // launch) crash mid-run and splice recovery still completes.
        let w = Workload::fib(16);
        let mut cfg = quick_cfg(4);
        cfg.recovery.mode = splice_core::config::RecoveryMode::Splice;
        // 400–1200 units × 25µs = crashes between 10ms and 30ms.
        let plan =
            FaultPlan::random_crashes(2, 4, (VirtualTime(400), VirtualTime(1_200)), &[0], 11);
        assert_eq!(plan.crashes(), 2);
        assert!(plan.events.iter().all(|e| e.victim != 0), "0 is protected");
        let r = run_plan(cfg, &w, &plan);
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
    }

    #[test]
    fn fault_plans_map_onto_the_wall_clock() {
        // 400 units × 25µs = a 10ms crash: same plan shape the simulator
        // takes, same answer out.
        let w = Workload::fib(14);
        let mut cfg = quick_cfg(4);
        cfg.recovery.mode = splice_core::config::RecoveryMode::Splice;
        let plan = FaultPlan::crash_at(2, splice_simnet::time::VirtualTime(400));
        let r = run_plan(cfg, &w, &plan);
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
    }
}
