//! The threaded runtime: one OS thread per processor, crossbeam channels as
//! the interconnect.
//!
//! This is the "real machine" counterpart of `splice-sim`: the *same*
//! protocol engine (`splice_core::engine::Engine`) runs unmodified; only
//! the driver differs. Processors are worker threads with private state
//! (partitioned memory), messages travel through unbounded channels, time
//! is the OS clock, and failure detection is a heartbeat monitor rather
//! than a simulator oracle.
//!
//! Fail-silent fault injection: a killed worker stops heartbeating,
//! processing and sending — exactly the paper's fault model ("if a
//! processor fails, it will no longer transmit any valid messages").
//!
//! The runtime favours clarity over throughput: it demonstrates that the
//! recovery protocol is driver-agnostic and exercises it under real
//! concurrency and real races. Timing experiments belong to the
//! deterministic simulator.

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use splice_applicative::{Program, Value, Workload};
use splice_core::config::Config as RecoveryConfig;
use splice_core::engine::{Action, Engine, Timer};
use splice_core::ids::ProcId;
use splice_core::packet::Msg;
use splice_core::stats::ProcStats;
use splice_core::superroot::SuperRoot;
use splice_gradient::Policy;
use splice_simnet::topology::Topology;
use std::collections::BinaryHeap;
use std::cmp::Reverse;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Runtime configuration.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of worker processors.
    pub n_procs: u32,
    /// Logical topology (drives gradient neighbourhoods; messages are
    /// always directly deliverable).
    pub topology: Topology,
    /// Placement policy.
    pub policy: Policy,
    /// Recovery configuration shared by all engines.
    pub recovery: RecoveryConfig,
    /// Wall-clock duration of one abstract engine time unit (timer delays
    /// in the engine's `SetTimer` actions are multiplied by this).
    pub time_unit: Duration,
    /// Heartbeat period of the failure detector.
    pub heartbeat_period: Duration,
    /// Silence threshold after which a worker is declared dead.
    pub heartbeat_timeout: Duration,
    /// Overall run timeout.
    pub run_timeout: Duration,
    /// Seed for stochastic placers.
    pub seed: u64,
}

impl RuntimeConfig {
    /// Defaults sized for tests: small machine, fast detector.
    pub fn new(n_procs: u32) -> RuntimeConfig {
        RuntimeConfig {
            n_procs,
            topology: Topology::Complete { n: n_procs },
            policy: Policy::RoundRobin,
            recovery: RecoveryConfig::default(),
            time_unit: Duration::from_micros(25),
            heartbeat_period: Duration::from_millis(5),
            heartbeat_timeout: Duration::from_millis(40),
            run_timeout: Duration::from_secs(30),
            seed: 1,
        }
    }
}

/// A scheduled fail-silent crash.
#[derive(Clone, Copy, Debug)]
pub struct CrashAt {
    /// Victim processor.
    pub victim: u32,
    /// Delay from launch to the crash.
    pub after: Duration,
}

/// Outcome of a runtime execution.
#[derive(Clone, Debug)]
pub struct RuntimeReport {
    /// The program's answer, if it completed in time.
    pub result: Option<Value>,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Aggregate engine statistics.
    pub stats: ProcStats,
    /// Failure notices broadcast by the heartbeat monitor.
    pub detections: u64,
    /// Times the super-root reissued the root.
    pub root_reissues: u64,
}

enum Envelope {
    Net { msg: Msg },
    Notice { dead: ProcId },
    Shutdown,
}

struct Shared {
    senders: Vec<Sender<Envelope>>,
    to_superroot: Sender<Envelope>,
    killed: Vec<AtomicBool>,
    /// Millis since `epoch` of each worker's last heartbeat.
    beats: Vec<AtomicU64>,
    epoch: Instant,
    done: AtomicBool,
    stats: Vec<Mutex<ProcStats>>,
}

impl Shared {
    fn send(&self, to: ProcId, env: Envelope) {
        if to.is_super_root() {
            let _ = self.to_superroot.send(env);
        } else if let Some(s) = self.senders.get(to.0 as usize) {
            let _ = s.send(env);
        }
    }
}

/// Runs `workload` on real threads, injecting `crashes`, and reports.
pub fn run(cfg: RuntimeConfig, workload: &Workload, crashes: &[CrashAt]) -> RuntimeReport {
    let n = cfg.n_procs as usize;
    assert!(n >= 1);
    let program = Arc::new(workload.program.clone());
    let (sr_tx, sr_rx) = unbounded::<Envelope>();
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded::<Envelope>();
        senders.push(tx);
        receivers.push(rx);
    }
    let shared = Arc::new(Shared {
        senders,
        to_superroot: sr_tx,
        killed: (0..n).map(|_| AtomicBool::new(false)).collect(),
        beats: (0..n).map(|_| AtomicU64::new(0)).collect(),
        epoch: Instant::now(),
        done: AtomicBool::new(false),
        stats: (0..n).map(|_| Mutex::new(ProcStats::default())).collect(),
    });

    // Workers.
    let mut handles = Vec::with_capacity(n);
    for (i, rx) in receivers.into_iter().enumerate() {
        let shared = shared.clone();
        let program = program.clone();
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || {
            worker(i as u32, rx, shared, program, cfg)
        }));
    }

    // Heartbeat monitor.
    let monitor = {
        let shared = shared.clone();
        let cfg = cfg.clone();
        std::thread::spawn(move || heartbeat_monitor(shared, cfg))
    };

    // Fault injector.
    let injector = {
        let shared = shared.clone();
        let crashes: Vec<CrashAt> = crashes.to_vec();
        std::thread::spawn(move || {
            let start = Instant::now();
            let mut remaining = crashes;
            remaining.sort_by_key(|c| c.after);
            for c in remaining {
                let now = start.elapsed();
                if c.after > now {
                    std::thread::sleep(c.after - now);
                }
                if let Some(flag) = shared.killed.get(c.victim as usize) {
                    flag.store(true, Ordering::SeqCst);
                }
            }
        })
    };

    // Super-root on the driver thread.
    let start = Instant::now();
    let mut superroot = SuperRoot::new(
        workload.entry,
        workload.args.clone(),
        cfg.recovery.ancestor_depth,
        cfg.recovery.ack_timeout,
    );
    let mut sr_timers: BinaryHeap<Reverse<(Instant, u64)>> = BinaryHeap::new();
    let mut sr_timer_payloads: Vec<Timer> = Vec::new();
    let mut detections = 0u64;
    let mut rotor: u32 = 0;
    let pick_live = |shared: &Shared, rotor: &mut u32| -> ProcId {
        for _ in 0..n {
            let c = *rotor % n as u32;
            *rotor = rotor.wrapping_add(1);
            if !shared.killed[c as usize].load(Ordering::SeqCst) {
                return ProcId(c);
            }
        }
        ProcId(0)
    };
    let dest = pick_live(&shared, &mut rotor);
    let apply_sr_actions = |actions: Vec<Action>,
                                shared: &Shared,
                                timers: &mut BinaryHeap<Reverse<(Instant, u64)>>,
                                payloads: &mut Vec<Timer>| {
        for a in actions {
            match a {
                Action::Send { to, msg } => shared.send(to, Envelope::Net { msg }),
                Action::SetTimer { timer, delay } => {
                    let at = Instant::now() + cfg.time_unit * delay as u32;
                    payloads.push(timer);
                    timers.push(Reverse((at, (payloads.len() - 1) as u64)));
                }
            }
        }
    };
    apply_sr_actions(
        superroot.launch(dest),
        &shared,
        &mut sr_timers,
        &mut sr_timer_payloads,
    );

    let result = loop {
        if start.elapsed() > cfg.run_timeout {
            break None;
        }
        // Fire due super-root timers.
        while let Some(Reverse((at, idx))) = sr_timers.peek().copied() {
            if at > Instant::now() {
                break;
            }
            sr_timers.pop();
            let timer = sr_timer_payloads[idx as usize].clone();
            let fallback = pick_live(&shared, &mut rotor);
            let actions = superroot.on_timer(timer, fallback);
            apply_sr_actions(actions, &shared, &mut sr_timers, &mut sr_timer_payloads);
        }
        match sr_rx.recv_timeout(Duration::from_millis(1)) {
            Ok(Envelope::Net { msg }) => {
                let fallback = pick_live(&shared, &mut rotor);
                let actions = superroot.on_message(msg, fallback);
                apply_sr_actions(actions, &shared, &mut sr_timers, &mut sr_timer_payloads);
            }
            Ok(Envelope::Notice { dead }) => {
                detections += 1;
                let fallback = pick_live(&shared, &mut rotor);
                let actions = superroot.on_failure(dead, fallback);
                apply_sr_actions(actions, &shared, &mut sr_timers, &mut sr_timer_payloads);
            }
            Ok(Envelope::Shutdown) => break None,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break None,
        }
        if let Some(v) = superroot.result() {
            break Some(v.clone());
        }
    };

    // Tear down.
    shared.done.store(true, Ordering::SeqCst);
    for s in &shared.senders {
        let _ = s.send(Envelope::Shutdown);
    }
    for h in handles {
        let _ = h.join();
    }
    let _ = monitor.join();
    let _ = injector.join();

    let mut stats = ProcStats::default();
    for s in shared.stats.iter() {
        stats += &s.lock();
    }
    RuntimeReport {
        result,
        elapsed: start.elapsed(),
        stats,
        detections,
        root_reissues: superroot.reissues,
    }
}

fn worker(
    id: u32,
    rx: Receiver<Envelope>,
    shared: Arc<Shared>,
    program: Arc<Program>,
    cfg: RuntimeConfig,
) {
    let placer = cfg.policy.build(ProcId(id), &cfg.topology, cfg.seed);
    let mut engine = Engine::new(ProcId(id), program, cfg.recovery.clone(), placer);
    let mut timers: BinaryHeap<Reverse<(Instant, u64)>> = BinaryHeap::new();
    let mut timer_payloads: Vec<Timer> = Vec::new();
    let apply = |engine: &Engine,
                     actions: Vec<Action>,
                     timers: &mut BinaryHeap<Reverse<(Instant, u64)>>,
                     payloads: &mut Vec<Timer>,
                     shared: &Shared| {
        let _ = engine;
        for a in actions {
            match a {
                Action::Send { to, msg } => shared.send(to, Envelope::Net { msg }),
                Action::SetTimer { timer, delay } => {
                    let at = Instant::now() + cfg.time_unit * delay as u32;
                    payloads.push(timer);
                    timers.push(Reverse((at, (payloads.len() - 1) as u64)));
                }
            }
        }
    };
    let actions = engine.on_start();
    apply(&engine, actions, &mut timers, &mut timer_payloads, &shared);

    loop {
        if shared.done.load(Ordering::SeqCst) {
            break;
        }
        if shared.killed[id as usize].load(Ordering::SeqCst) {
            // Fail-silent: no heartbeats, no processing, no sends. Keep
            // draining the channel so senders never block, then exit once
            // the run ends.
            match rx.recv_timeout(Duration::from_millis(5)) {
                Ok(Envelope::Shutdown) => break,
                _ => continue,
            }
        }
        // Heartbeat.
        shared.beats[id as usize].store(
            shared.epoch.elapsed().as_millis() as u64,
            Ordering::Relaxed,
        );
        // Fire due timers.
        while let Some(Reverse((at, idx))) = timers.peek().copied() {
            if at > Instant::now() {
                break;
            }
            timers.pop();
            let t = timer_payloads[idx as usize].clone();
            let actions = engine.on_timer(t);
            apply(&engine, actions, &mut timers, &mut timer_payloads, &shared);
        }
        // Drain a batch of messages.
        let mut worked = false;
        for _ in 0..64 {
            match rx.try_recv() {
                Ok(Envelope::Net { msg }) => {
                    worked = true;
                    let actions = engine.on_message(msg);
                    apply(&engine, actions, &mut timers, &mut timer_payloads, &shared);
                }
                Ok(Envelope::Notice { dead }) => {
                    worked = true;
                    let actions = engine.on_message(Msg::FailureNotice { dead });
                    apply(&engine, actions, &mut timers, &mut timer_payloads, &shared);
                }
                Ok(Envelope::Shutdown) => {
                    *shared.stats[id as usize].lock() = engine.stats().clone();
                    return;
                }
                Err(_) => break,
            }
        }
        // Run ready waves.
        for _ in 0..16 {
            let Some(key) = engine.pop_ready() else { break };
            worked = true;
            let (actions, _work) = engine.run_wave(key);
            apply(&engine, actions, &mut timers, &mut timer_payloads, &shared);
        }
        if !worked {
            // Idle: wait briefly for traffic (bounded by next timer).
            match rx.recv_timeout(Duration::from_micros(500)) {
                Ok(Envelope::Net { msg }) => {
                    let actions = engine.on_message(msg);
                    apply(&engine, actions, &mut timers, &mut timer_payloads, &shared);
                }
                Ok(Envelope::Notice { dead }) => {
                    let actions = engine.on_message(Msg::FailureNotice { dead });
                    apply(&engine, actions, &mut timers, &mut timer_payloads, &shared);
                }
                Ok(Envelope::Shutdown) => break,
                Err(_) => {}
            }
        }
    }
    *shared.stats[id as usize].lock() = engine.stats().clone();
}

/// Declares workers dead after `heartbeat_timeout` of silence and
/// broadcasts `FailureNotice`s to every live worker and the super-root —
/// the "passive node diagnosis" stand-in.
fn heartbeat_monitor(shared: Arc<Shared>, cfg: RuntimeConfig) {
    let n = shared.killed.len();
    let mut declared = vec![false; n];
    // Give workers a grace period to start beating.
    std::thread::sleep(cfg.heartbeat_timeout);
    while !shared.done.load(Ordering::SeqCst) {
        let now = shared.epoch.elapsed().as_millis() as u64;
        for i in 0..n {
            if declared[i] {
                continue;
            }
            let last = shared.beats[i].load(Ordering::Relaxed);
            if now.saturating_sub(last) > cfg.heartbeat_timeout.as_millis() as u64 {
                declared[i] = true;
                let dead = ProcId(i as u32);
                for j in 0..n {
                    if j != i {
                        shared.send(ProcId(j as u32), Envelope::Notice { dead });
                    }
                }
                shared.send(ProcId::SUPER_ROOT, Envelope::Notice { dead });
            }
        }
        std::thread::sleep(cfg.heartbeat_period);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(n: u32) -> RuntimeConfig {
        let mut c = RuntimeConfig::new(n);
        c.recovery.load_beacon_period = 0;
        // Abstract ack-timeout (4000 units × 25µs = 100ms) stays above the
        // heartbeat timeout so detection usually wins the race.
        c
    }

    #[test]
    fn fault_free_matches_reference() {
        let w = Workload::fib(11);
        let r = run(quick_cfg(4), &w, &[]);
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
        assert!(r.stats.tasks_completed >= 100);
    }

    #[test]
    fn fault_free_small_suite() {
        for w in [
            Workload::dcsum(0, 48),
            Workload::quicksort(16, 3),
            Workload::nqueens(4),
        ] {
            let r = run(quick_cfg(3), &w, &[]);
            assert_eq!(r.result, Some(w.reference_result().unwrap()), "{}", w.name);
        }
    }

    #[test]
    fn crash_is_detected_and_survived_splice() {
        let w = Workload::fib(14);
        let mut cfg = quick_cfg(4);
        cfg.recovery.mode = splice_core::config::RecoveryMode::Splice;
        let crashes = [CrashAt {
            victim: 2,
            after: Duration::from_millis(30),
        }];
        let r = run(cfg, &w, &crashes);
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
        assert!(r.detections >= 1, "heartbeat monitor must notice the crash");
    }

    #[test]
    fn crash_is_survived_rollback() {
        let w = Workload::fib(14);
        let mut cfg = quick_cfg(4);
        cfg.recovery.mode = splice_core::config::RecoveryMode::Rollback;
        let crashes = [CrashAt {
            victim: 1,
            after: Duration::from_millis(25),
        }];
        let r = run(cfg, &w, &crashes);
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
    }

    #[test]
    fn immediate_crash_before_launch_is_survived() {
        let w = Workload::fib(10);
        let mut cfg = quick_cfg(3);
        cfg.recovery.mode = splice_core::config::RecoveryMode::Splice;
        // Kill the processor that will host the root, instantly.
        let crashes = [CrashAt {
            victim: 0,
            after: Duration::from_millis(0),
        }];
        let r = run(cfg, &w, &crashes);
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
    }
}
