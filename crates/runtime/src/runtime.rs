//! The threaded runtime: one OS thread per processor, channels as the
//! interconnect.
//!
//! This is the "real machine" counterpart of `splice-sim`: the *same*
//! protocol engine (`splice_core::engine::Engine`) runs unmodified under
//! the *same* shared driver loop (`splice_harness::DriverLoop`); only the
//! [`Substrate`] differs. Processors are worker threads with private state
//! (partitioned memory), messages travel through unbounded channels, time
//! is the OS clock, and failure detection is a heartbeat monitor rather
//! than a simulator oracle.
//!
//! Fail-silent fault injection: a killed worker stops heartbeating,
//! processing and sending — exactly the paper's fault model ("if a
//! processor fails, it will no longer transmit any valid messages"). A
//! corrupting worker keeps running but emits detectably wrong replica
//! results (the §5.3 voting experiment), using the same corruption the
//! simulator applies so replicated runs agree across backends.
//!
//! The runtime favours clarity over throughput: it demonstrates that the
//! recovery protocol is driver-agnostic and exercises it under real
//! concurrency and real races. Timing experiments belong to the
//! deterministic simulator.

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use splice_applicative::{Program, Value, Workload};
use splice_core::config::Config as RecoveryConfig;
use splice_core::engine::Timer;
use splice_core::ids::ProcId;
use splice_core::packet::Msg;
use splice_core::stats::ProcStats;
use splice_gradient::Policy;
use splice_harness::{
    corrupt_value, death_notice_targets, DriverLoop, EngineSnapshot, EngineTotals, Substrate,
    SuperRootDriver, TimerWheel,
};
use splice_simnet::fault::{FaultKind, FaultPlan};
use splice_simnet::topology::Topology;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Runtime configuration.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of worker processors.
    pub n_procs: u32,
    /// Logical topology (drives gradient neighbourhoods; messages are
    /// always directly deliverable).
    pub topology: Topology,
    /// Placement policy.
    pub policy: Policy,
    /// Recovery configuration shared by all engines.
    pub recovery: RecoveryConfig,
    /// Wall-clock duration of one abstract engine time unit (timer delays
    /// in the engine's `SetTimer` actions are multiplied by this).
    pub time_unit: Duration,
    /// Heartbeat period of the failure detector.
    pub heartbeat_period: Duration,
    /// Silence threshold after which a worker is declared dead.
    pub heartbeat_timeout: Duration,
    /// Overall run timeout.
    pub run_timeout: Duration,
    /// Seed for stochastic placers.
    pub seed: u64,
}

impl RuntimeConfig {
    /// Defaults sized for tests: small machine, fast detector.
    pub fn new(n_procs: u32) -> RuntimeConfig {
        RuntimeConfig {
            n_procs,
            topology: Topology::Complete { n: n_procs },
            policy: Policy::RoundRobin,
            recovery: RecoveryConfig::default(),
            time_unit: Duration::from_micros(25),
            heartbeat_period: Duration::from_millis(5),
            heartbeat_timeout: Duration::from_millis(40),
            run_timeout: Duration::from_secs(30),
            seed: 1,
        }
    }
}

/// A scheduled fail-silent crash.
#[derive(Clone, Copy, Debug)]
pub struct CrashAt {
    /// Victim processor.
    pub victim: u32,
    /// Delay from launch to the crash.
    pub after: Duration,
}

/// Outcome of a runtime execution.
#[derive(Clone, Debug)]
pub struct RuntimeReport {
    /// The program's answer, if it completed in time.
    pub result: Option<Value>,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Aggregate engine statistics.
    pub stats: ProcStats,
    /// Per-processor engine statistics.
    pub per_proc: Vec<ProcStats>,
    /// Total checkpoints ever stored, across processors.
    pub ckpt_stored: u64,
    /// Failure notices broadcast by the heartbeat monitor.
    pub detections: u64,
    /// Times the super-root reissued the root.
    pub root_reissues: u64,
}

enum Envelope {
    Net { msg: Msg },
    Notice { dead: ProcId },
    Shutdown,
}

/// One scheduled fault on the wall clock (internal normalized form of both
/// [`CrashAt`] lists and simulator [`FaultPlan`]s).
#[derive(Clone, Copy, Debug)]
struct FaultAt {
    after: Duration,
    victim: u32,
    kind: FaultKind,
}

/// Sentinel in `Shared::beats`: the worker thread has not beaten yet. The
/// monitor must not compare silence against it — a worker that is merely
/// slow to get scheduled (a loaded CI box) would be declared dead before
/// its first beat.
const NEVER_BEAT: u64 = u64::MAX;

struct Shared {
    senders: Vec<Sender<Envelope>>,
    to_superroot: Sender<Envelope>,
    killed: Vec<AtomicBool>,
    corrupting: Vec<AtomicBool>,
    /// Millis since `epoch` of each worker's last heartbeat
    /// ([`NEVER_BEAT`] until the first one).
    beats: Vec<AtomicU64>,
    epoch: Instant,
    done: AtomicBool,
    snapshots: Vec<Mutex<EngineSnapshot>>,
}

impl Shared {
    fn send(&self, to: ProcId, env: Envelope) {
        if to.is_super_root() {
            let _ = self.to_superroot.send(env);
        } else if let Some(s) = self.senders.get(to.0 as usize) {
            let _ = s.send(env);
        }
    }
}

/// The wall-clock [`Substrate`]: channels as the interconnect, `Instant`s
/// on a [`TimerWheel`] as the clock. One is constructed per pump (worker
/// thread or the super-root driver thread) around that actor's own wheel;
/// liveness is the shared kill-flag array.
struct ThreadSubstrate<'a> {
    shared: &'a Shared,
    /// The worker this substrate acts for (`None` on the driver thread).
    me: Option<u32>,
    time_unit: Duration,
    wheel: &'a mut TimerWheel<Instant>,
}

impl<'a> ThreadSubstrate<'a> {
    fn new(
        shared: &'a Shared,
        me: Option<u32>,
        time_unit: Duration,
        wheel: &'a mut TimerWheel<Instant>,
    ) -> ThreadSubstrate<'a> {
        ThreadSubstrate {
            shared,
            me,
            time_unit,
            wheel,
        }
    }
}

fn units_to_wall(time_unit: Duration, units: u64) -> Duration {
    Duration::from_nanos((time_unit.as_nanos() as u64).saturating_mul(units))
}

impl Substrate for ThreadSubstrate<'_> {
    fn n_procs(&self) -> u32 {
        self.shared.senders.len() as u32
    }

    fn is_live(&self, p: ProcId) -> bool {
        self.shared
            .killed
            .get(p.0 as usize)
            .is_some_and(|k| !k.load(Ordering::SeqCst))
    }

    fn now_units(&self) -> u64 {
        (self.shared.epoch.elapsed().as_nanos() / self.time_unit.as_nanos().max(1)) as u64
    }

    fn send(&mut self, _from: ProcId, to: ProcId, mut msg: Msg) {
        if let Some(me) = self.me {
            // Fail-silent even mid-batch: a worker whose kill flag was set
            // while it was still pumping must not emit another message ("it
            // will no longer transmit any valid messages").
            if self.shared.killed[me as usize].load(Ordering::SeqCst) {
                return;
            }
            // A corrupting worker emits detectably wrong replica results —
            // same send-side rule as the simulator's substrate.
            if self.shared.corrupting[me as usize].load(Ordering::Relaxed) {
                if let Msg::Result(rp) = &mut msg {
                    if rp.replica.is_some() {
                        rp.value = corrupt_value(&rp.value);
                    }
                }
            }
        }
        self.shared.send(to, Envelope::Net { msg });
    }

    fn arm_timer(&mut self, _owner: ProcId, timer: Timer, delay: u64) {
        let at = Instant::now() + units_to_wall(self.time_unit, delay);
        self.wheel.arm(at, timer);
    }

    fn report_death(&mut self, dead: ProcId) {
        for to in death_notice_targets(self.n_procs(), |p| self.is_live(p), dead) {
            self.shared.send(to, Envelope::Notice { dead });
        }
    }
}

/// Runs `workload` on real threads, injecting `crashes`, and reports.
pub fn run(cfg: RuntimeConfig, workload: &Workload, crashes: &[CrashAt]) -> RuntimeReport {
    let faults: Vec<FaultAt> = crashes
        .iter()
        .map(|c| FaultAt {
            after: c.after,
            victim: c.victim,
            kind: FaultKind::Crash,
        })
        .collect();
    run_faults(cfg, workload, faults)
}

/// Runs `workload` under a simulator [`FaultPlan`], mapping virtual fault
/// times onto the wall clock through `cfg.time_unit`. This lets one fault
/// plan drive both machines — the driver-parity tests feed the same plan
/// here and to `splice_sim::run_workload`.
pub fn run_plan(cfg: RuntimeConfig, workload: &Workload, plan: &FaultPlan) -> RuntimeReport {
    let time_unit = cfg.time_unit;
    let faults: Vec<FaultAt> = plan
        .sorted()
        .into_iter()
        .map(|f| FaultAt {
            after: units_to_wall(time_unit, f.at.ticks()),
            victim: f.victim,
            kind: f.kind,
        })
        .collect();
    run_faults(cfg, workload, faults)
}

fn run_faults(cfg: RuntimeConfig, workload: &Workload, faults: Vec<FaultAt>) -> RuntimeReport {
    let n = cfg.n_procs as usize;
    assert!(n >= 1);
    let program = Arc::new(workload.program.clone());
    let (sr_tx, sr_rx) = unbounded::<Envelope>();
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded::<Envelope>();
        senders.push(tx);
        receivers.push(rx);
    }
    let shared = Arc::new(Shared {
        senders,
        to_superroot: sr_tx,
        killed: (0..n).map(|_| AtomicBool::new(false)).collect(),
        corrupting: (0..n).map(|_| AtomicBool::new(false)).collect(),
        beats: (0..n).map(|_| AtomicU64::new(NEVER_BEAT)).collect(),
        epoch: Instant::now(),
        done: AtomicBool::new(false),
        snapshots: (0..n)
            .map(|_| Mutex::new(EngineSnapshot::default()))
            .collect(),
    });

    // Workers.
    let mut handles = Vec::with_capacity(n);
    for (i, rx) in receivers.into_iter().enumerate() {
        let shared = shared.clone();
        let program = program.clone();
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || {
            worker(i as u32, rx, shared, program, cfg)
        }));
    }

    // Heartbeat monitor.
    let monitor = {
        let shared = shared.clone();
        let cfg = cfg.clone();
        std::thread::spawn(move || heartbeat_monitor(shared, cfg))
    };

    // Fault injector.
    let injector = {
        let shared = shared.clone();
        let mut faults = faults;
        faults.sort_by_key(|f| f.after);
        std::thread::spawn(move || {
            let start = Instant::now();
            for f in faults {
                // Sleep in short slices: a fault scheduled past program
                // completion must not hold up teardown (run() joins this
                // thread).
                loop {
                    if shared.done.load(Ordering::SeqCst) {
                        return;
                    }
                    let now = start.elapsed();
                    if f.after <= now {
                        break;
                    }
                    std::thread::sleep((f.after - now).min(Duration::from_millis(5)));
                }
                let flags = match f.kind {
                    FaultKind::Crash => &shared.killed,
                    FaultKind::Corrupt => {
                        // A crashed worker is fail-silent — corrupting it is
                        // a no-op, matching the simulator, so mixed fault
                        // plans stay comparable across substrates.
                        let already_dead = shared
                            .killed
                            .get(f.victim as usize)
                            .is_some_and(|k| k.load(Ordering::SeqCst));
                        if already_dead {
                            continue;
                        }
                        &shared.corrupting
                    }
                };
                if let Some(flag) = flags.get(f.victim as usize) {
                    flag.store(true, Ordering::SeqCst);
                }
            }
        })
    };

    // Super-root on the driver thread, over the same substrate type the
    // workers pump.
    let start = Instant::now();
    let mut superroot = SuperRootDriver::new(workload, &cfg.recovery);
    let mut wheel: TimerWheel<Instant> = TimerWheel::new();
    let mut detections = 0u64;
    {
        let mut sub = ThreadSubstrate::new(&shared, None, cfg.time_unit, &mut wheel);
        superroot.launch(&mut sub);
    }

    let result = loop {
        if start.elapsed() > cfg.run_timeout {
            break None;
        }
        // Fire due super-root timers.
        while let Some(timer) = wheel.pop_due(&Instant::now()) {
            let mut sub = ThreadSubstrate::new(&shared, None, cfg.time_unit, &mut wheel);
            superroot.on_timer(timer, &mut sub);
        }
        match sr_rx.recv_timeout(Duration::from_millis(1)) {
            Ok(Envelope::Net { msg }) => {
                let mut sub = ThreadSubstrate::new(&shared, None, cfg.time_unit, &mut wheel);
                superroot.on_message(msg, &mut sub);
            }
            Ok(Envelope::Notice { dead }) => {
                detections += 1;
                let mut sub = ThreadSubstrate::new(&shared, None, cfg.time_unit, &mut wheel);
                superroot.on_failure(dead, &mut sub);
            }
            Ok(Envelope::Shutdown) => break None,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break None,
        }
        if let Some(v) = superroot.result() {
            break Some(v.clone());
        }
    };

    // Tear down.
    shared.done.store(true, Ordering::SeqCst);
    for s in &shared.senders {
        let _ = s.send(Envelope::Shutdown);
    }
    for h in handles {
        let _ = h.join();
    }
    let _ = monitor.join();
    let _ = injector.join();

    let totals = EngineTotals::collect(shared.snapshots.iter().map(|s| s.lock().clone()));
    RuntimeReport {
        result,
        elapsed: start.elapsed(),
        stats: totals.stats,
        per_proc: totals.per_proc,
        ckpt_stored: totals.ckpt_stored,
        detections,
        root_reissues: superroot.reissues(),
    }
}

fn worker(
    id: u32,
    rx: Receiver<Envelope>,
    shared: Arc<Shared>,
    program: Arc<Program>,
    cfg: RuntimeConfig,
) {
    let placer = cfg.policy.build(ProcId(id), &cfg.topology, cfg.seed);
    let mut node = DriverLoop::new(ProcId(id), program, cfg.recovery.clone(), placer);
    let mut wheel: TimerWheel<Instant> = TimerWheel::new();
    {
        let mut sub = ThreadSubstrate::new(&shared, Some(id), cfg.time_unit, &mut wheel);
        node.start(&mut sub);
    }

    loop {
        if shared.done.load(Ordering::SeqCst) {
            break;
        }
        if shared.killed[id as usize].load(Ordering::SeqCst) {
            // Fail-silent: no heartbeats, no processing, no sends. Keep
            // draining the channel so senders never block, then exit once
            // the run ends.
            match rx.recv_timeout(Duration::from_millis(5)) {
                Ok(Envelope::Shutdown) => break,
                _ => continue,
            }
        }
        // Heartbeat.
        shared.beats[id as usize]
            .store(shared.epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
        // Fire due timers.
        while let Some(timer) = wheel.pop_due(&Instant::now()) {
            let mut sub = ThreadSubstrate::new(&shared, Some(id), cfg.time_unit, &mut wheel);
            node.on_timer(timer, &mut sub);
        }
        // Drain a batch of messages.
        let mut worked = false;
        let mut shutdown = false;
        for _ in 0..64 {
            match rx.try_recv() {
                Ok(env) => {
                    worked = true;
                    if !pump_envelope(env, &mut node, &mut wheel, &shared, id, &cfg) {
                        shutdown = true;
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        if shutdown {
            break;
        }
        // Run ready waves (effects release immediately: real time already
        // passed while the wave ran).
        for _ in 0..16 {
            let mut sub = ThreadSubstrate::new(&shared, Some(id), cfg.time_unit, &mut wheel);
            if !node.run_ready_wave(&mut sub) {
                break;
            }
            worked = true;
        }
        if !worked {
            // Idle: wait briefly for traffic, but never sleep past the
            // next armed timer's deadline.
            let idle = Duration::from_micros(500);
            let wait = match wheel.next_deadline() {
                Some(at) => at.saturating_duration_since(Instant::now()).min(idle),
                None => idle,
            };
            if let Ok(env) = rx.recv_timeout(wait) {
                if !pump_envelope(env, &mut node, &mut wheel, &shared, id, &cfg) {
                    break;
                }
            }
        }
    }
    *shared.snapshots[id as usize].lock() = EngineSnapshot::of(node.engine());
}

/// Feeds one envelope through the worker's driver loop. Returns false on
/// `Shutdown` — the caller exits its loop and the snapshot is captured at
/// the single worker exit point.
fn pump_envelope(
    env: Envelope,
    node: &mut DriverLoop,
    wheel: &mut TimerWheel<Instant>,
    shared: &Shared,
    id: u32,
    cfg: &RuntimeConfig,
) -> bool {
    let mut sub = ThreadSubstrate::new(shared, Some(id), cfg.time_unit, wheel);
    match env {
        Envelope::Net { msg } => node.on_message(msg, &mut sub),
        Envelope::Notice { dead } => node.on_message(Msg::FailureNotice { dead }, &mut sub),
        Envelope::Shutdown => return false,
    }
    true
}

/// Declares workers dead after `heartbeat_timeout` of silence and
/// broadcasts `FailureNotice`s to every live worker and the super-root —
/// the "passive node diagnosis" stand-in. Recipients come from the same
/// [`death_notice_targets`] enumeration the simulator's detector uses.
fn heartbeat_monitor(shared: Arc<Shared>, cfg: RuntimeConfig) {
    let n = shared.killed.len();
    let mut declared = vec![false; n];
    // Give workers a grace period to start beating.
    std::thread::sleep(cfg.heartbeat_timeout);
    while !shared.done.load(Ordering::SeqCst) {
        let now = shared.epoch.elapsed().as_millis() as u64;
        for (i, was_declared) in declared.iter_mut().enumerate() {
            if *was_declared {
                continue;
            }
            let last = shared.beats[i].load(Ordering::Relaxed);
            let timeout_ms = cfg.heartbeat_timeout.as_millis() as u64;
            // A live worker that has never beaten is (probably) starting
            // up, not silent: declaring it dead after one quiet timeout is
            // the false positive a loaded box turns into a spurious
            // recovery, so first beats get an extended 5× grace. Silence
            // is declared real early only for a *killed* worker (it will
            // never beat, and the threaded runtime has no bounce path to
            // discover it otherwise); a worker that never beats through
            // the whole grace window (startup panic or deadlock) is
            // eventually declared too.
            let silent = if last == NEVER_BEAT {
                shared.killed[i].load(Ordering::SeqCst) || now > 5 * timeout_ms
            } else {
                now.saturating_sub(last) > timeout_ms
            };
            if silent {
                *was_declared = true;
                let dead = ProcId(i as u32);
                let live = |p: ProcId| !shared.killed[p.0 as usize].load(Ordering::SeqCst);
                for to in death_notice_targets(n as u32, live, dead) {
                    shared.send(to, Envelope::Notice { dead });
                }
            }
        }
        std::thread::sleep(cfg.heartbeat_period);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(n: u32) -> RuntimeConfig {
        let mut c = RuntimeConfig::new(n);
        c.recovery.load_beacon_period = 0;
        // Abstract ack-timeout (4000 units × 25µs = 100ms) stays above the
        // heartbeat timeout so detection usually wins the race.
        c
    }

    #[test]
    fn fault_free_matches_reference() {
        let w = Workload::fib(11);
        let r = run(quick_cfg(4), &w, &[]);
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
        assert!(r.stats.tasks_completed >= 100);
        assert_eq!(r.per_proc.len(), 4);
        assert_eq!(r.detections, 0, "no worker died; none may be declared");
    }

    #[test]
    fn fault_free_small_suite() {
        for w in [
            Workload::dcsum(0, 48),
            Workload::quicksort(16, 3),
            Workload::nqueens(4),
        ] {
            let r = run(quick_cfg(3), &w, &[]);
            assert_eq!(r.result, Some(w.reference_result().unwrap()), "{}", w.name);
            assert_eq!(r.detections, 0, "{}: spurious detection", w.name);
        }
    }

    #[test]
    fn corrupt_after_crash_is_inert() {
        // The victim crashes, then a later Corrupt targets the same (dead)
        // worker: it must be a no-op — the run recovers exactly as under
        // the crash alone.
        let w = Workload::fib(14);
        let mut cfg = quick_cfg(4);
        cfg.recovery.mode = splice_core::config::RecoveryMode::Splice;
        let plan = FaultPlan::crash_at(2, splice_simnet::time::VirtualTime(400)).and(
            2,
            splice_simnet::time::VirtualTime(800),
            FaultKind::Corrupt,
        );
        let r = run_plan(cfg, &w, &plan);
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
    }

    #[test]
    fn crash_is_detected_and_survived_splice() {
        // fib(16) runs ~40ms+ on 4 workers; crashing 8ms in guarantees the
        // victim still holds live tasks when the heartbeat expires (the
        // seed version crashed at 30ms, racing run completion).
        let w = Workload::fib(16);
        let mut cfg = quick_cfg(4);
        cfg.recovery.mode = splice_core::config::RecoveryMode::Splice;
        let crashes = [CrashAt {
            victim: 2,
            after: Duration::from_millis(8),
        }];
        let r = run(cfg, &w, &crashes);
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
        assert!(r.detections >= 1, "heartbeat monitor must notice the crash");
    }

    #[test]
    fn crash_is_survived_rollback() {
        let w = Workload::fib(14);
        let mut cfg = quick_cfg(4);
        cfg.recovery.mode = splice_core::config::RecoveryMode::Rollback;
        let crashes = [CrashAt {
            victim: 1,
            after: Duration::from_millis(8),
        }];
        let r = run(cfg, &w, &crashes);
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
    }

    #[test]
    fn immediate_crash_before_launch_is_survived() {
        let w = Workload::fib(10);
        let mut cfg = quick_cfg(3);
        cfg.recovery.mode = splice_core::config::RecoveryMode::Splice;
        // Kill the processor that will host the root, instantly.
        let crashes = [CrashAt {
            victim: 0,
            after: Duration::from_millis(0),
        }];
        let r = run(cfg, &w, &crashes);
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
    }

    #[test]
    fn crash_before_first_beat_is_still_detected() {
        // Killed at t=0 the victim (usually) never beats; the monitor must
        // still declare it — never-beaten is only a grace state for *live*
        // workers. fib(16) keeps the run alive well past the heartbeat
        // timeout so the declaration demonstrably happens.
        let w = Workload::fib(16);
        let mut cfg = quick_cfg(4);
        cfg.recovery.mode = splice_core::config::RecoveryMode::Splice;
        let crashes = [CrashAt {
            victim: 2,
            after: Duration::from_millis(0),
        }];
        let r = run(cfg, &w, &crashes);
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
        assert!(r.detections >= 1, "early crash went undetected");
    }

    #[test]
    fn fault_plans_map_onto_the_wall_clock() {
        // 400 units × 25µs = a 10ms crash: same plan shape the simulator
        // takes, same answer out.
        let w = Workload::fib(14);
        let mut cfg = quick_cfg(4);
        cfg.recovery.mode = splice_core::config::RecoveryMode::Splice;
        let plan = FaultPlan::crash_at(2, splice_simnet::time::VirtualTime(400));
        let r = run_plan(cfg, &w, &plan);
        assert_eq!(r.result, Some(w.reference_result().unwrap()));
    }
}
