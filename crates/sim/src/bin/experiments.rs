//! Prints every experiment table (E1–E18) — the data recorded in
//! EXPERIMENTS.md.
//!
//! Usage:
//! ```text
//! cargo run --release -p splice-sim --bin experiments            # all
//! cargo run --release -p splice-sim --bin experiments -- e7 e10  # subset
//! cargo run --release -p splice-sim --bin experiments -- quick   # smaller sweeps
//! ```

use splice_applicative::Workload;
use splice_sim::experiment as ex;
use splice_simnet::topology::Topology;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "quick");
    let want = |id: &str| -> bool {
        let ids: Vec<&String> = args.iter().filter(|a| a.as_str() != "quick").collect();
        ids.is_empty() || ids.iter().any(|a| a.as_str() == id)
    };
    let (sweep, fine) = if quick { (4, 8) } else { (8, 16) };

    println!("# splice experiments — Lin & Keller, ICPP 1986 reproduction\n");

    if want("e1") {
        println!("{}", ex::e01_figure1());
    }
    if want("e3") {
        println!("{}", ex::e03_topmost_rule());
    }
    if want("e5") {
        println!(
            "{}",
            ex::e05_case_mix(&Workload::fib(if quick { 13 } else { 15 }), sweep)
        );
    }
    if want("e6") {
        println!(
            "{}",
            ex::e06_residue(&Workload::dcsum(0, if quick { 64 } else { 128 }), fine)
        );
    }
    if want("e7") {
        println!(
            "{}",
            ex::e07_fault_timing(&Workload::fib(if quick { 13 } else { 16 }), sweep)
        );
        println!(
            "{}",
            ex::e07_fault_timing(&Workload::quicksort(if quick { 32 } else { 64 }, 42), sweep)
        );
    }
    if want("e8") {
        let ws = if quick {
            vec![Workload::fib(13), Workload::dcsum(0, 128)]
        } else {
            vec![
                Workload::fib(15),
                Workload::dcsum(0, 256),
                Workload::nqueens(5),
                Workload::quicksort(48, 42),
            ]
        };
        println!("{}", ex::e08_overhead(&ws));
    }
    if want("e9") {
        println!(
            "{}",
            ex::e09_different_branches(&Workload::mapreduce(0, 32, 8))
        );
        println!("{}", ex::e09_chain_depth());
    }
    if want("e13") {
        println!(
            "{}",
            ex::e13_splice_grace(
                &Workload::mapreduce(0, if quick { 32 } else { 64 }, 8),
                &[0, 500, 2_000, 10_000, 50_000]
            )
        );
    }
    if want("e10") {
        println!("{}", ex::e10_replication());
    }
    if want("e11") {
        let counts: &[u32] = if quick {
            &[1, 2, 4, 8]
        } else {
            &[1, 2, 4, 8, 16, 32]
        };
        println!(
            "{}",
            ex::e11_scalability(
                &Workload::mapreduce(0, 64, if quick { 8 } else { 10 }),
                counts
            )
        );
    }
    if want("e14") {
        let w = Workload::fib(if quick { 12 } else { 14 });
        println!("{}", ex::e14_sharding(&w));
        let lats: &[u64] = if quick {
            &[0, 1_000, 5_000]
        } else {
            &[0, 200, 1_000, 5_000, 20_000]
        };
        println!("{}", ex::e14_router_latency(&w, lats));
        let replicas: &[u32] = if quick { &[1, 3] } else { &[1, 2, 3, 5] };
        println!("{}", ex::e14_root_replicas(&w, replicas));
    }
    if want("e15") {
        let w = Workload::fib(if quick { 12 } else { 14 });
        let windows: &[u64] = if quick {
            &[0, 200, 2_000]
        } else {
            &[0, 50, 200, 1_000, 5_000]
        };
        println!("{}", ex::e15_batching(&w, windows));
    }
    if want("e16") {
        let w = Workload::fib(if quick { 13 } else { 16 });
        let counts: &[u32] = if quick {
            &[64, 512]
        } else {
            &[64, 256, 1024, 4096]
        };
        println!("{}", ex::e16_reactor(&w, counts));
        let threads: &[u32] = &[1, 2, 4];
        let tcounts: &[u32] = if quick { &[512] } else { &[4096, 16384] };
        println!("{}", ex::e16_threads(&w, threads, tcounts));
    }
    if want("e12") {
        println!(
            "{}",
            ex::e12_policies(
                &Workload::mapreduce(0, 32, 8),
                Topology::Mesh {
                    w: 4,
                    h: 4,
                    wrap: true
                }
            )
        );
        println!(
            "{}",
            ex::e12_policies(
                &Workload::fib(if quick { 13 } else { 15 }),
                Topology::Hypercube { dim: 3 }
            )
        );
    }
    if want("e18") {
        let w = Workload::fib(if quick { 12 } else { 14 });
        println!(
            "{}",
            ex::e18_recovery_policies(
                &w,
                &[
                    Topology::Complete { n: 8 },
                    Topology::Mesh {
                        w: 4,
                        h: 2,
                        wrap: false
                    },
                ]
            )
        );
    }
}
