//! Comparison baselines: whole-program restart and periodic global
//! checkpointing.
//!
//! §2 of the paper positions functional checkpointing against the classical
//! alternatives: restarting the program, and the periodic *global*
//! checkpoint schemes of Barigazzi & Strigini [3], Fischer et al. [5] and
//! Tamir & Séquin [15] ("virtually stop all computational operations while
//! periodic global checkpointing takes place").
//!
//! We model both analytically over *measured* fault-free runs of the same
//! machine rather than re-implementing a second full protocol stack: the
//! simulator records the live-state timeline `state_samples`, and the
//! models below charge
//!
//! * restart: on a fault at time `t`, all progress is lost; total time is
//!   `t + T` (and the work is re-done);
//! * periodic global checkpointing with interval `I`: every `I` ticks all
//!   processors synchronize and snapshot, pausing for
//!   `sync + per_task · live_tasks(t)`; a fault at `t` rolls back to the
//!   last completed snapshot.
//!
//! This keeps the comparison honest (same workload, same machine, same
//! cost units) while acknowledging in DESIGN.md that the baselines are
//! models, not protocol implementations.

use crate::report::RunReport;

/// Cost parameters of the periodic global checkpoint model.
#[derive(Clone, Copy, Debug)]
pub struct GlobalCheckpointModel {
    /// Checkpoint interval (virtual ticks).
    pub interval: u64,
    /// Fixed global synchronization cost per checkpoint ("periodic global
    /// synchronization among a large number of processors is potentially
    /// inefficient").
    pub sync_cost: u64,
    /// Snapshot cost per live task at the checkpoint instant.
    pub per_task_cost: u64,
}

impl GlobalCheckpointModel {
    /// A default model: moderate interval, sync cost comparable to a few
    /// message round-trips.
    pub fn with_interval(interval: u64) -> GlobalCheckpointModel {
        GlobalCheckpointModel {
            interval,
            sync_cost: 200,
            per_task_cost: 4,
        }
    }

    /// Live tasks at time `t` according to the run's samples (step
    /// interpolation).
    fn live_tasks_at(&self, run: &RunReport, t: u64) -> u64 {
        let mut last = 0;
        for (st, tasks) in &run.state_samples {
            if *st > t {
                break;
            }
            last = *tasks;
        }
        last
    }

    /// Fault-free completion time under this model: the measured time plus
    /// one pause per completed interval.
    pub fn fault_free_time(&self, fault_free: &RunReport) -> u64 {
        let t = fault_free.finish.ticks();
        let checkpoints = t / self.interval;
        let mut total = t;
        for i in 1..=checkpoints {
            total += self.sync_cost
                + self.per_task_cost * self.live_tasks_at(fault_free, i * self.interval);
        }
        total
    }

    /// Total checkpoint pause time in a fault-free run (the scheme's
    /// overhead, compared in experiment E8).
    pub fn overhead(&self, fault_free: &RunReport) -> u64 {
        self.fault_free_time(fault_free) - fault_free.finish.ticks()
    }

    /// Completion time when a single fault hits at `t_fault` (in original,
    /// pause-free time units): progress rolls back to the last completed
    /// snapshot, then the remainder re-runs (E7).
    pub fn time_with_fault(&self, fault_free: &RunReport, t_fault: u64) -> u64 {
        let t_total = fault_free.finish.ticks();
        let t_fault = t_fault.min(t_total);
        let last_snapshot = (t_fault / self.interval) * self.interval;
        // Time spent until the fault, plus redo from the snapshot point.
        let redo = t_total - last_snapshot;
        let base = t_fault + redo;
        // Pauses: every interval boundary crossed while computing.
        let computed_ticks = base;
        let checkpoints = computed_ticks / self.interval;
        let mut total = base;
        for i in 1..=checkpoints {
            let sample_at = (i * self.interval).min(t_total);
            total +=
                self.sync_cost + self.per_task_cost * self.live_tasks_at(fault_free, sample_at);
        }
        total
    }
}

/// Whole-program restart: completion time with a single fault at `t_fault`.
pub fn restart_time_with_fault(fault_free: &RunReport, t_fault: u64) -> u64 {
    let t_total = fault_free.finish.ticks();
    t_fault.min(t_total) + t_total
}

/// Work re-executed under restart for a fault at `t_fault`, as a fraction
/// of total work (assumes work accrues roughly uniformly over time).
pub fn restart_redundant_fraction(fault_free: &RunReport, t_fault: u64) -> f64 {
    let t_total = fault_free.finish.ticks().max(1);
    (t_fault.min(t_total)) as f64 / t_total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_core::stats::ProcStats;
    use splice_simnet::time::VirtualTime;

    fn fake_run(finish: u64, samples: Vec<(u64, u64)>) -> RunReport {
        RunReport {
            result: None,
            completed: true,
            stalled: false,
            finish: VirtualTime(finish),
            events: 0,
            delivered: 0,
            dropped_to_dead: 0,
            bounces: 0,
            stats: ProcStats::default(),
            per_proc: vec![],
            ckpt_peak_entries: 0,
            ckpt_peak_bytes: 0,
            ckpt_stored: 0,
            root_reissues: 0,
            root_failovers: 0,
            root_replicas: 1,
            state_samples: samples,
            spawn_log: vec![],
            n_procs: 4,
            shards: 1,
            shard_msgs_intra: 0,
            shard_msgs_inter: 0,
            batch_envelopes: 0,
            batch_msgs: 0,
            faults: 0,
            threads: 1,
            msgs_cross_reactor: 0,
            steals: 0,
            frames_sent: 0,
            frames_resent: 0,
            reconnects: 0,
            decode_errors: 0,
            trace: splice_simnet::trace::TraceSummary::default(),
            policy: splice_core::policy::PolicyKind::Eager,
        }
    }

    #[test]
    fn global_checkpoint_overhead_grows_with_frequency() {
        let run = fake_run(10_000, vec![(0, 10), (5_000, 20), (9_000, 5)]);
        let frequent = GlobalCheckpointModel::with_interval(500);
        let rare = GlobalCheckpointModel::with_interval(5_000);
        assert!(frequent.overhead(&run) > rare.overhead(&run));
        assert!(rare.overhead(&run) > 0);
    }

    #[test]
    fn fault_rolls_back_to_last_snapshot() {
        let run = fake_run(10_000, vec![(0, 10)]);
        let m = GlobalCheckpointModel::with_interval(2_000);
        // Fault at 5000: snapshot at 4000, redo 6000 → base 11000.
        let with_fault = m.time_with_fault(&run, 5_000);
        let fault_free = m.fault_free_time(&run);
        assert!(with_fault > fault_free);
        // A fault just after a snapshot costs less than one just before
        // the next snapshot (less progress is lost).
        assert!(m.time_with_fault(&run, 4_100) < m.time_with_fault(&run, 5_900));
    }

    #[test]
    fn restart_doubles_late_fault_cost() {
        let run = fake_run(10_000, vec![]);
        assert_eq!(restart_time_with_fault(&run, 9_999), 19_999);
        assert_eq!(restart_time_with_fault(&run, 0), 10_000);
        assert!((restart_redundant_fraction(&run, 5_000) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn live_tasks_interpolation_is_stepwise() {
        let run = fake_run(10_000, vec![(0, 1), (100, 7), (200, 3)]);
        let m = GlobalCheckpointModel::with_interval(1000);
        assert_eq!(m.live_tasks_at(&run, 50), 1);
        assert_eq!(m.live_tasks_at(&run, 150), 7);
        assert_eq!(m.live_tasks_at(&run, 250), 3);
    }
}
