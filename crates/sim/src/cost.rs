//! Execution cost model.
//!
//! Maps abstract evaluation work (AST nodes walked per wave) onto virtual
//! time. Together with the link model this determines every timing result;
//! the defaults are chosen so that one task wave is the same order of
//! magnitude as one or two message hops, which matches the fine task grain
//! of reduction machines like Rediflow.

/// Cost parameters for task execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Fixed dispatch cost per wave (scheduling, packet handling).
    pub wave_base: u64,
    /// Cost per abstract work unit (AST node walked).
    pub per_work_unit: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            wave_base: 10,
            per_work_unit: 2,
        }
    }
}

impl CostModel {
    /// Virtual-time cost of a wave that performed `work` units.
    pub fn wave_cost(&self, work: u64) -> u64 {
        self.wave_base + self.per_work_unit * work
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wave_cost_is_affine() {
        let c = CostModel {
            wave_base: 5,
            per_work_unit: 3,
        };
        assert_eq!(c.wave_cost(0), 5);
        assert_eq!(c.wave_cost(10), 35);
    }
}
