//! The experiment suite (E1–E12 of DESIGN.md).
//!
//! The paper has no quantitative tables — its figures are conceptual — so
//! each experiment either *executes* a figure as a checked scenario or
//! *quantifies* one of the paper's comparative claims. Every function here
//! is deterministic; the `experiments` binary prints the tables that
//! EXPERIMENTS.md records, and the criterion benches time the underlying
//! runs.

use crate::baseline::{restart_time_with_fault, GlobalCheckpointModel};
use crate::figure1;
use crate::machine::{run_workload, MachineConfig};
use splice_applicative::Workload;
use splice_core::config::{CheckpointFilter, RecoveryMode, ReplicaSpec, VoteMode};
use splice_gradient::Policy;
use splice_simnet::fault::{FaultKind, FaultPlan};
use splice_simnet::time::VirtualTime;
use splice_simnet::topology::Topology;
use std::fmt;

// ---------------------------------------------------------------------------
// Table rendering
// ---------------------------------------------------------------------------

/// A printable experiment table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id + description.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {}", self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {:w$} |", c, w = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<w$}|", "", w = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

fn fmt_f(x: f64) -> String {
    format!("{x:.2}")
}

/// The default experiment machine: 8 processors, complete graph, gradient
/// placement.
pub fn default_config(n: u32, mode: RecoveryMode) -> MachineConfig {
    let mut cfg = MachineConfig::new(n);
    cfg.recovery.mode = mode;
    cfg
}

// ---------------------------------------------------------------------------
// E1 — Figure 1
// ---------------------------------------------------------------------------

/// E1: the Figure-1 scenario under both algorithms plus the no-filter
/// ablation.
pub fn e01_figure1() -> Table {
    let mut t = Table::new(
        "E1 (Figure 1): processor B fails mid-evaluation; three fragments",
        &[
            "recovery",
            "completed",
            "correct",
            "reissues",
            "suicides",
            "aborted",
            "salvaged",
            "tasks",
            "finish",
        ],
    );
    for (name, mode, filter) in [
        (
            "rollback/topmost",
            RecoveryMode::Rollback,
            CheckpointFilter::Topmost,
        ),
        (
            "rollback/all",
            RecoveryMode::Rollback,
            CheckpointFilter::All,
        ),
        ("splice", RecoveryMode::Splice, CheckpointFilter::Topmost),
    ] {
        let out = figure1::run(mode, filter);
        t.row(vec![
            name.into(),
            out.report.completed.to_string(),
            out.correct().to_string(),
            out.report.stats.reissues.to_string(),
            out.report.stats.orphans_suicided.to_string(),
            out.report.stats.tasks_aborted.to_string(),
            out.report.stats.salvaged_results.to_string(),
            out.report.stats.tasks_created.to_string(),
            out.report.finish.ticks().to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// E3 — checkpoint table & topmost rule
// ---------------------------------------------------------------------------

/// E3: reissue counts and wasted work with and without the topmost rule,
/// on Figure 1 and on a random-placement workload.
pub fn e03_topmost_rule() -> Table {
    let mut t = Table::new(
        "E3 (§3.2): topmost rule vs reissue-all (rollback)",
        &["scenario", "filter", "reissues", "total work", "finish"],
    );
    for (filter, name) in [
        (CheckpointFilter::Topmost, "topmost"),
        (CheckpointFilter::All, "all"),
    ] {
        let out = figure1::run(RecoveryMode::Rollback, filter);
        t.row(vec![
            "figure1".into(),
            name.into(),
            out.report.stats.reissues.to_string(),
            out.report.total_work().to_string(),
            out.report.finish.ticks().to_string(),
        ]);
    }
    let w = Workload::dcsum(0, 256);
    for (filter, name) in [
        (CheckpointFilter::Topmost, "topmost"),
        (CheckpointFilter::All, "all"),
    ] {
        let mut cfg = default_config(8, RecoveryMode::Rollback);
        cfg.recovery.ckpt_filter = filter;
        let fault_free = run_workload(cfg.clone(), &w, &FaultPlan::none());
        let crash = VirtualTime(fault_free.finish.ticks() / 2);
        let r = run_workload(cfg, &w, &FaultPlan::crash_at(5, crash));
        t.row(vec![
            w.name.clone(),
            name.into(),
            r.stats.reissues.to_string(),
            r.total_work().to_string(),
            r.finish.ticks().to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// E5 — the eight orderings, statistically
// ---------------------------------------------------------------------------

/// E5 (Figure 5): sweep the crash instant and classify how salvage landed —
/// before the twin's demand (cases 4/5), after it (cases 6/7), or not at
/// all (fragments finished or never started). The deterministic per-case
/// forcing lives in `tests/eight_cases.rs`; this table shows all orderings
/// occur in the wild.
pub fn e05_case_mix(w: &Workload, steps: u32) -> Table {
    let mut t = Table::new(
        format!(
            "E5 (Figure 5): salvage-ordering mix over crash instants [{}]",
            w.name
        ),
        &[
            "crash@%",
            "correct",
            "salvaged",
            "before-spawn(4/5)",
            "after-spawn(6/7)",
            "dup-ignored",
            "stranded",
        ],
    );
    let cfg = default_config(8, RecoveryMode::Splice);
    let fault_free = run_workload(cfg.clone(), w, &FaultPlan::none());
    let total = fault_free.finish.ticks();
    for i in 1..steps {
        let frac = i as f64 / steps as f64;
        let crash = VirtualTime((total as f64 * frac) as u64);
        let r = run_workload(cfg.clone(), w, &FaultPlan::crash_at(5, crash));
        let correct = r.result == Some(w.reference_result().unwrap());
        t.row(vec![
            format!("{:.0}%", frac * 100.0),
            correct.to_string(),
            r.stats.salvaged_results.to_string(),
            r.stats.salvage_before_spawn.to_string(),
            r.stats.salvage_after_spawn.to_string(),
            r.stats.duplicate_results_ignored.to_string(),
            r.stats.stranded_orphans.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// E6 — residue-freedom across the whole spawn state machine
// ---------------------------------------------------------------------------

/// E6 (Figures 6–7): fine crash-time sweep; the answer must be correct at
/// *every* instant, whatever spawn/ack/result state the fault interrupts.
pub fn e06_residue(w: &Workload, steps: u32) -> Table {
    let mut t = Table::new(
        format!(
            "E6 (Figures 6-7): correctness across all fault instants [{}]",
            w.name
        ),
        &[
            "mode",
            "instants",
            "completed",
            "correct",
            "min finish",
            "max finish",
        ],
    );
    for mode in [RecoveryMode::Rollback, RecoveryMode::Splice] {
        let cfg = default_config(6, mode);
        let fault_free = run_workload(cfg.clone(), w, &FaultPlan::none());
        let total = fault_free.finish.ticks();
        let mut completed = 0;
        let mut correct = 0;
        let mut min_finish = u64::MAX;
        let mut max_finish = 0;
        for i in 0..steps {
            let crash = VirtualTime(total * i as u64 / steps as u64 + 1);
            let r = run_workload(cfg.clone(), w, &FaultPlan::crash_at(4, crash));
            if r.completed {
                completed += 1;
                min_finish = min_finish.min(r.finish.ticks());
                max_finish = max_finish.max(r.finish.ticks());
            }
            if r.result == Some(w.reference_result().unwrap()) {
                correct += 1;
            }
        }
        t.row(vec![
            format!("{mode:?}"),
            steps.to_string(),
            completed.to_string(),
            correct.to_string(),
            min_finish.to_string(),
            max_finish.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// E7 — recovery cost vs fault timing
// ---------------------------------------------------------------------------

/// One row of the E7 sweep.
#[derive(Clone, Debug)]
pub struct FaultTimingPoint {
    /// Fault instant as a fraction of the fault-free completion time.
    pub fraction: f64,
    /// Slowdown of rollback vs fault-free.
    pub rollback_slowdown: f64,
    /// Slowdown of splice vs fault-free.
    pub splice_slowdown: f64,
    /// Slowdown of whole-program restart (model).
    pub restart_slowdown: f64,
    /// Slowdown of periodic global checkpointing (model).
    pub gcp_slowdown: f64,
    /// Redundant work fraction, rollback.
    pub rollback_redundant: f64,
    /// Redundant work fraction, splice.
    pub splice_redundant: f64,
    /// Results salvaged by splice.
    pub splice_salvaged: u64,
}

/// E7 sweep data (also used by the bench).
pub fn e07_points(w: &Workload, steps: u32, n_procs: u32) -> Vec<FaultTimingPoint> {
    let base_cfg = default_config(n_procs, RecoveryMode::Splice);
    let fault_free = run_workload(base_cfg.clone(), w, &FaultPlan::none());
    let total = fault_free.finish.ticks();
    let gcp = GlobalCheckpointModel::with_interval(total / 10);
    // Crash the busiest processor: under locality-preserving placement the
    // highest-numbered one may never host work at all.
    let victim = fault_free
        .per_proc
        .iter()
        .enumerate()
        .max_by_key(|(_, s)| s.tasks_created)
        .map(|(i, _)| i as u32)
        .unwrap_or(0);
    let mut points = Vec::new();
    for i in 1..steps {
        let fraction = i as f64 / steps as f64;
        let crash = VirtualTime((total as f64 * fraction) as u64);
        let faults = FaultPlan::crash_at(victim, crash);
        let rollback = run_workload(default_config(n_procs, RecoveryMode::Rollback), w, &faults);
        let splice = run_workload(default_config(n_procs, RecoveryMode::Splice), w, &faults);
        points.push(FaultTimingPoint {
            fraction,
            rollback_slowdown: rollback.slowdown_vs(&fault_free),
            splice_slowdown: splice.slowdown_vs(&fault_free),
            restart_slowdown: restart_time_with_fault(&fault_free, crash.ticks()) as f64
                / total.max(1) as f64,
            gcp_slowdown: gcp.time_with_fault(&fault_free, crash.ticks()) as f64
                / total.max(1) as f64,
            rollback_redundant: rollback.redundant_work_vs(&fault_free),
            splice_redundant: splice.redundant_work_vs(&fault_free),
            splice_salvaged: splice.stats.salvaged_results,
        });
    }
    points
}

/// E7: the table.
pub fn e07_fault_timing(w: &Workload, steps: u32) -> Table {
    let mut t = Table::new(
        format!(
            "E7 (§6): recovery cost vs fault instant [{}] — slowdown vs fault-free",
            w.name
        ),
        &[
            "fault@%",
            "rollback",
            "splice",
            "restart(model)",
            "gcp(model)",
            "redo-work rb",
            "redo-work sp",
            "salvaged",
        ],
    );
    for p in e07_points(w, steps, 8) {
        t.row(vec![
            format!("{:.0}%", p.fraction * 100.0),
            fmt_f(p.rollback_slowdown),
            fmt_f(p.splice_slowdown),
            fmt_f(p.restart_slowdown),
            fmt_f(p.gcp_slowdown),
            fmt_f(p.rollback_redundant),
            fmt_f(p.splice_redundant),
            p.splice_salvaged.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// E8 — fault-free overhead
// ---------------------------------------------------------------------------

/// E8: fault-free overhead of functional checkpointing vs no fault
/// tolerance vs the periodic global checkpoint model.
pub fn e08_overhead(workloads: &[Workload]) -> Table {
    let mut t = Table::new(
        "E8 (§2): fault-free overhead — functional vs periodic global checkpointing",
        &[
            "workload",
            "scheme",
            "finish",
            "slowdown",
            "msgs",
            "bytes",
            "ckpt peak entries",
            "ckpt peak bytes",
        ],
    );
    for w in workloads {
        let none = run_workload(default_config(8, RecoveryMode::None), w, &FaultPlan::none());
        for (name, mode) in [
            ("none", RecoveryMode::None),
            ("rollback", RecoveryMode::Rollback),
            ("splice", RecoveryMode::Splice),
        ] {
            let r = run_workload(default_config(8, mode), w, &FaultPlan::none());
            t.row(vec![
                w.name.clone(),
                name.into(),
                r.finish.ticks().to_string(),
                fmt_f(r.slowdown_vs(&none)),
                r.stats.total_sent().to_string(),
                r.stats.bytes_sent.to_string(),
                r.ckpt_peak_entries.to_string(),
                r.ckpt_peak_bytes.to_string(),
            ]);
        }
        for interval_div in [20u64, 10, 5] {
            let interval = (none.finish.ticks() / interval_div).max(1);
            let gcp = GlobalCheckpointModel::with_interval(interval);
            let time = gcp.fault_free_time(&none);
            t.row(vec![
                w.name.clone(),
                format!("global-ckpt I=T/{interval_div}"),
                time.to_string(),
                fmt_f(time as f64 / none.finish.ticks().max(1) as f64),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------------
// E9 — multiple faults and ancestor depth
// ---------------------------------------------------------------------------

/// E9a: multiple faults on different branches (splice recovers in parallel).
pub fn e09_different_branches(w: &Workload) -> Table {
    let mut t = Table::new(
        format!(
            "E9a (§5.2): multiple faults on different branches [{}]",
            w.name
        ),
        &[
            "faults",
            "mode",
            "completed",
            "correct",
            "reissues",
            "salvaged",
            "finish",
        ],
    );
    for k in [1usize, 2, 3] {
        for mode in [RecoveryMode::Rollback, RecoveryMode::Splice] {
            let cfg = default_config(12, mode);
            let fault_free = run_workload(cfg.clone(), w, &FaultPlan::none());
            let total = fault_free.finish.ticks();
            let faults = FaultPlan::random_crashes(
                k,
                12,
                (VirtualTime(total / 4), VirtualTime(3 * total / 4)),
                &[],
                99,
            );
            let r = run_workload(cfg, w, &faults);
            let correct = r.result == Some(w.reference_result().unwrap());
            t.row(vec![
                k.to_string(),
                format!("{mode:?}"),
                r.completed.to_string(),
                correct.to_string(),
                r.stats.reissues.to_string(),
                r.stats.salvaged_results.to_string(),
                r.finish.ticks().to_string(),
            ]);
        }
    }
    t
}

/// E9b: parent *and* grandparent die simultaneously (Figure 1's B and C);
/// sweep the ancestor-chain depth. Depth 2 (the paper's base scheme)
/// strands the orphans; depth ≥ 3 (the §5.2 extension) salvages through
/// the great-grandparent. Completion is achieved either way — stranding
/// only costs the salvage.
pub fn e09_chain_depth() -> Table {
    let mut t = Table::new(
        "E9b (§5.2): B and C fail together; ancestor-chain depth sweep (figure-1 tree)",
        &[
            "depth",
            "completed",
            "correct",
            "stranded",
            "salvaged",
            "finish",
        ],
    );
    for depth in [2usize, 3, 4] {
        let crash_at = figure1::crash_instant();
        let w = figure1::workload();
        let assignments = figure1::stamps();
        let mut cfg = MachineConfig::new(4);
        cfg.policy = Policy::RoundRobin;
        cfg.recovery.mode = RecoveryMode::Splice;
        cfg.recovery.ancestor_depth = depth;
        cfg.recovery.load_beacon_period = 0;
        let m = crate::machine::Machine::with_placer_factory(cfg, &w, move |_| {
            let mut sp = splice_core::place::ScriptedPlacer::new(vec![
                figure1::B,
                figure1::D,
                figure1::A,
                figure1::C,
            ]);
            for (_, stamp, proc) in &assignments {
                sp.assign(stamp.clone(), *proc);
            }
            Box::new(sp)
        });
        let faults = FaultPlan::crash_at(figure1::B.0, crash_at).and(
            figure1::C.0,
            crash_at,
            FaultKind::Crash,
        );
        let r = m.run(&faults);
        let correct = r.result == Some(splice_applicative::Value::Int(figure1::TREE_SIZE));
        t.row(vec![
            depth.to_string(),
            r.completed.to_string(),
            correct.to_string(),
            r.stats.stranded_orphans.to_string(),
            r.stats.salvaged_results.to_string(),
            r.finish.ticks().to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// E10 — replicated tasks
// ---------------------------------------------------------------------------

/// E10 (§5.3): replicated critical tasks with a corrupting processor.
/// `n = 1` shows unprotected corruption propagating to the answer; majority
/// voting masks it; `WaitAll` shows the synchronous-redundancy latency.
pub fn e10_replication() -> Table {
    let mut t = Table::new(
        "E10 (§5.3): replicated tasks, one corrupting processor",
        &[
            "replication",
            "correct",
            "votes ok",
            "votes conflicted",
            "replica results",
            "finish",
        ],
    );
    let w = Workload::mapreduce(0, 16, 8);
    // Replicate the splitter itself: the root's two child subtrees each run
    // as one replica group (whole-subtree critical sections, §5.3).
    let mapred = w.program.lookup("mapred").unwrap();
    let expected = w.reference_result().unwrap();
    for (name, n, vote) in [
        ("n=1 (unprotected)", 1u32, VoteMode::Majority),
        ("n=3 majority", 3, VoteMode::Majority),
        ("n=3 wait-all", 3, VoteMode::WaitAll),
        ("n=5 majority", 5, VoteMode::Majority),
    ] {
        let mut cfg = default_config(8, RecoveryMode::Splice);
        // Round-robin spreads replicas across all processors, so the
        // corrupting node demonstrably participates.
        cfg.policy = Policy::RoundRobin;
        cfg.recovery
            .replicate
            .insert(mapred, ReplicaSpec { n, vote });
        // Processor 0 hosts the root, so the round-robin rotor places the
        // first replica of the first group there deterministically — and
        // processor 0 corrupts every replica result it emits.
        let faults = FaultPlan {
            events: vec![splice_simnet::fault::FaultEvent {
                at: VirtualTime(0),
                victim: 0,
                kind: FaultKind::Corrupt,
            }],
            root_events: Vec::new(),
        };
        let r = run_workload(cfg, &w, &faults);
        let correct = r.result == Some(expected.clone());
        t.row(vec![
            name.into(),
            correct.to_string(),
            r.stats.votes_decided.to_string(),
            r.stats.votes_conflicted.to_string(),
            r.stats.replica_results.to_string(),
            r.finish.ticks().to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// E11 — scalability with checkpointing on/off
// ---------------------------------------------------------------------------

/// E11: speedup over processor counts, with and without functional
/// checkpointing (the Rediflow-style scaling context of [9]).
pub fn e11_scalability(w: &Workload, proc_counts: &[u32]) -> Table {
    let mut t = Table::new(
        format!("E11: scalability with checkpointing on/off [{}]", w.name),
        &[
            "procs",
            "finish none",
            "finish splice",
            "speedup none",
            "speedup splice",
            "ckpt overhead",
        ],
    );
    let base_none = run_workload(default_config(1, RecoveryMode::None), w, &FaultPlan::none());
    let base_splice = run_workload(
        default_config(1, RecoveryMode::Splice),
        w,
        &FaultPlan::none(),
    );
    for &n in proc_counts {
        let none = run_workload(default_config(n, RecoveryMode::None), w, &FaultPlan::none());
        let splice = run_workload(
            default_config(n, RecoveryMode::Splice),
            w,
            &FaultPlan::none(),
        );
        t.row(vec![
            n.to_string(),
            none.finish.ticks().to_string(),
            splice.finish.ticks().to_string(),
            fmt_f(base_none.finish.ticks() as f64 / none.finish.ticks().max(1) as f64),
            fmt_f(base_splice.finish.ticks() as f64 / splice.finish.ticks().max(1) as f64),
            fmt_f(splice.finish.ticks() as f64 / none.finish.ticks().max(1) as f64),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// E12 — placement policies
// ---------------------------------------------------------------------------

/// E12 (§3.3): load-balance quality per placement policy, fault-free and
/// with one mid-run crash (recovery placement transparency).
pub fn e12_policies(w: &Workload, topology: Topology) -> Table {
    let mut t = Table::new(
        format!(
            "E12 (§3.3): placement policies [{}] on {:?}",
            w.name, topology
        ),
        &[
            "policy",
            "finish",
            "imbalance",
            "msgs",
            "crash finish",
            "crash correct",
        ],
    );
    let n = topology.len();
    for policy in Policy::ALL {
        let mut cfg = default_config(n, RecoveryMode::Splice);
        cfg.topology = topology.clone();
        cfg.policy = policy;
        let fault_free = run_workload(cfg.clone(), w, &FaultPlan::none());
        let crash = VirtualTime(fault_free.finish.ticks() / 2);
        let crashed = run_workload(cfg, w, &FaultPlan::crash_at(n - 1, crash));
        let correct = crashed.result == Some(w.reference_result().unwrap());
        t.row(vec![
            policy.name().into(),
            fault_free.finish.ticks().to_string(),
            fmt_f(fault_free.work_imbalance()),
            fault_free.stats.total_sent().to_string(),
            crashed.finish.ticks().to_string(),
            correct.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// E13 — splice grace period (extension)
// ---------------------------------------------------------------------------

/// E13 (extension): eager vs deferred twin creation. Eager splice (the
/// paper's scheme, grace = 0) regenerates twins at the failure notice and
/// can duplicate orphan subtrees still in flight (§4.1 cases 6/7); a grace
/// period lets orphan results land first (cases 4/5), trading recovery
/// latency for less redundant work. The sweep quantifies that trade.
pub fn e13_splice_grace(w: &Workload, graces: &[u64]) -> Table {
    let mut t = Table::new(
        format!(
            "E13 (extension): splice twin-creation grace period [{}]",
            w.name
        ),
        &[
            "grace",
            "correct",
            "finish",
            "slowdown",
            "redo-work",
            "salvaged",
            "before-spawn(4/5)",
            "after-spawn(6/7)",
            "twins",
        ],
    );
    let base_cfg = default_config(8, RecoveryMode::Splice);
    let fault_free = run_workload(base_cfg.clone(), w, &FaultPlan::none());
    let crash = VirtualTime(fault_free.finish.ticks() / 2);
    for &grace in graces {
        let mut cfg = base_cfg.clone();
        cfg.recovery.splice_grace = grace;
        let r = run_workload(cfg, w, &FaultPlan::crash_at(6, crash));
        let correct = r.result == Some(w.reference_result().unwrap());
        t.row(vec![
            grace.to_string(),
            correct.to_string(),
            r.finish.ticks().to_string(),
            fmt_f(r.slowdown_vs(&fault_free)),
            fmt_f(r.redundant_work_vs(&fault_free)),
            r.stats.salvaged_results.to_string(),
            r.stats.salvage_before_spawn.to_string(),
            r.stats.salvage_after_spawn.to_string(),
            r.stats.step_parents_created.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// E14 — sharded substrate (extension)
// ---------------------------------------------------------------------------

/// E14a (extension): whole-shard failure vs shard count, at 16 processors.
///
/// The paper argues recovery cost scales with the number of processors, but
/// a flat interconnect hides the cost of recovering *across* a partition
/// boundary. Here the 16 processors are split into 2/4/8 shards behind an
/// inter-shard router and the entire last shard dies mid-run: the surviving
/// shards must splice-recover the lost subtrees through the router.
pub fn e14_sharding(w: &Workload) -> Table {
    let mut t = Table::new(
        format!(
            "E14a (extension): whole-shard crash vs shard count, 16 procs [{}]",
            w.name
        ),
        &[
            "shards",
            "ff finish",
            "inter msgs",
            "inter share",
            "crash finish",
            "slowdown",
            "correct",
            "reissues",
            "salvaged",
        ],
    );
    for shards in [2u32, 4, 8] {
        let per_shard = 16 / shards;
        let mut cfg = MachineConfig::sharded(shards, per_shard, 400);
        cfg.recovery.mode = RecoveryMode::Splice;
        // Round-robin spreads the tree across every shard, so the dying
        // shard demonstrably holds live work (gradient placement keeps
        // most of a small tree at home, making the crash vacuous).
        cfg.policy = Policy::RoundRobin;
        let fault_free = run_workload(cfg.clone(), w, &FaultPlan::none());
        let crash = VirtualTime(fault_free.finish.ticks() / 2);
        let faults = FaultPlan::crash_shard(shards - 1, per_shard, crash);
        let r = run_workload(cfg, w, &faults);
        let correct = r.result == Some(w.reference_result().unwrap());
        let total = fault_free.shard_msgs_intra + fault_free.shard_msgs_inter;
        t.row(vec![
            shards.to_string(),
            fault_free.finish.ticks().to_string(),
            fault_free.shard_msgs_inter.to_string(),
            fmt_f(fault_free.shard_msgs_inter as f64 / total.max(1) as f64),
            r.finish.ticks().to_string(),
            fmt_f(r.slowdown_vs(&fault_free)),
            correct.to_string(),
            r.stats.reissues.to_string(),
            r.stats.salvaged_results.to_string(),
        ]);
    }
    t
}

/// E14b (extension): recovery latency vs inter-shard router latency, on a
/// fixed 4×4 sharded machine losing one whole shard mid-run. The router
/// surcharge is paid by every *worker-to-worker* message that crosses the
/// boundary — reissued spawns, their acks, salvage relays between
/// surviving engines — so recovery slows as the partitions move "further"
/// apart (the driver link to the super-root and the detector's failure
/// notices are out-of-band and stay unrouted). To keep router latency the
/// only variable, every row runs with the same ack timeout, sized for the
/// largest latency in the sweep.
pub fn e14_router_latency(w: &Workload, latencies: &[u64]) -> Table {
    let max_lat = latencies.iter().copied().max().unwrap_or(0);
    let mut t = Table::new(
        format!(
            "E14b (extension): whole-shard crash vs router latency, 4×4 [{}]",
            w.name
        ),
        &[
            "router latency",
            "ff finish",
            "crash finish",
            "slowdown",
            "correct",
            "inter msgs (crash)",
        ],
    );
    for &lat in latencies {
        let mut cfg = MachineConfig::sharded(4, 4, lat);
        cfg.recovery.mode = RecoveryMode::Splice;
        cfg.policy = Policy::RoundRobin;
        // Uniform timeout across rows (sharded() scales it with the row's
        // own latency, which would confound the sweep's single axis).
        cfg.recovery.ack_timeout = MachineConfig::sharded(4, 4, max_lat).recovery.ack_timeout;
        let fault_free = run_workload(cfg.clone(), w, &FaultPlan::none());
        let crash = VirtualTime(fault_free.finish.ticks() / 2);
        let r = run_workload(cfg, w, &FaultPlan::crash_shard(3, 4, crash));
        let correct = r.result == Some(w.reference_result().unwrap());
        t.row(vec![
            lat.to_string(),
            fault_free.finish.ticks().to_string(),
            r.finish.ticks().to_string(),
            fmt_f(r.slowdown_vs(&fault_free)),
            correct.to_string(),
            r.shard_msgs_inter.to_string(),
        ]);
    }
    t
}

/// E14c (extension): recovery vs super-root replica count. Each row
/// crashes the acting primary, then each successor in turn, until one
/// replica remains (`n = 1` has no successor: its lone primary is
/// crashed and the machine must stall as a verdict). Fault-free finish
/// is invariant in the replica count — the quorum layer adds zero events
/// until a root fault fires — while each faulted run pays one reissued
/// root wave per takeover, so recovery latency grows with the length of
/// the succession chain the plan forces.
pub fn e14_root_replicas(w: &Workload, replica_counts: &[u32]) -> Table {
    let mut t = Table::new(
        format!(
            "E14c (extension): primary crashes vs root-replica count [{}]",
            w.name
        ),
        &[
            "replicas",
            "ff finish",
            "primary crashes",
            "verdict",
            "crash finish",
            "slowdown",
            "failovers",
            "root reissues",
            "correct",
        ],
    );
    for &n in replica_counts {
        let mut cfg = default_config(8, RecoveryMode::Splice);
        cfg.policy = Policy::RoundRobin;
        cfg.recovery.root_replicas = n;
        let fault_free = run_workload(cfg.clone(), w, &FaultPlan::none());
        let t0 = fault_free.finish.ticks() / 2;
        let step = (fault_free.finish.ticks() / 8).max(1);
        let crashes = if n == 1 { 1 } else { n - 1 };
        let mut plan = FaultPlan::none();
        for r in 0..crashes {
            plan = plan.crash_root_replica(r, VirtualTime(t0 + u64::from(r) * step));
        }
        let r = run_workload(cfg, w, &plan);
        let verdict = if r.completed {
            "completed"
        } else if r.stalled {
            "stalled"
        } else {
            "budget"
        };
        let correct = r.result == Some(w.reference_result().unwrap());
        t.row(vec![
            n.to_string(),
            fault_free.finish.ticks().to_string(),
            crashes.to_string(),
            verdict.into(),
            r.finish.ticks().to_string(),
            fmt_f(r.slowdown_vs(&fault_free)),
            r.root_failovers.to_string(),
            r.root_reissues.to_string(),
            correct.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// E15 — batched delivery (extension)
// ---------------------------------------------------------------------------

/// E15 (extension): protocol sensitivity to delivery batching.
///
/// A batching bus coalesces the worker messages of one pump into
/// per-destination envelopes delivered `window` ticks late (HEAL-style
/// delivery batching). Batching amortizes per-message overhead on a real
/// interconnect, but the recovery protocol's spawn/ack round trips and
/// splice relays sit directly on the delayed path — this sweep quantifies
/// how completion (fault-free) and recovery (one mid-run crash) latency
/// degrade as the flush window widens, and how much coalescing the bus
/// actually achieves on this traffic (mean messages per envelope). The ack
/// timeout is held uniform across rows (sized for the largest window) so
/// the window is the only variable.
pub fn e15_batching(w: &Workload, windows: &[u64]) -> Table {
    let max_window = windows.iter().copied().max().unwrap_or(0);
    let mut t = Table::new(
        format!(
            "E15 (extension): completion and recovery vs batch flush window, 8 procs [{}]",
            w.name
        ),
        &[
            "flush window",
            "ff finish",
            "mean batch",
            "crash finish",
            "slowdown",
            "correct",
            "reissues",
            "salvaged",
        ],
    );
    for &window in windows {
        let mut cfg = MachineConfig::batched(8, window);
        cfg.recovery.mode = RecoveryMode::Splice;
        // Uniform timeout across rows (batched() scales it with the row's
        // own window, which would confound the sweep's single axis).
        cfg.recovery.ack_timeout = MachineConfig::batched(8, max_window).recovery.ack_timeout;
        let fault_free = run_workload(cfg.clone(), w, &FaultPlan::none());
        let crash = VirtualTime(fault_free.finish.ticks() / 2);
        let r = run_workload(cfg, w, &FaultPlan::crash_at(2, crash));
        let correct = r.result == Some(w.reference_result().unwrap());
        let mean_batch = if fault_free.batch_envelopes == 0 {
            0.0
        } else {
            fault_free.batch_msgs as f64 / fault_free.batch_envelopes as f64
        };
        t.row(vec![
            window.to_string(),
            fault_free.finish.ticks().to_string(),
            fmt_f(mean_batch),
            r.finish.ticks().to_string(),
            fmt_f(r.slowdown_vs(&fault_free)),
            correct.to_string(),
            r.stats.reissues.to_string(),
            r.stats.salvaged_results.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// E16 — the cooperative reactor at scale
// ---------------------------------------------------------------------------

/// E16 (extension): completion and recovery latency versus engine count on
/// the cooperative reactor — one thread, no thread-per-processor limit.
/// Each row runs fault-free and with a mid-run crash of one engine (splice
/// recovery); virtual finish times come from the reactor's parallel-charge
/// clock, wall milliseconds are the real single-thread pump cost.
pub fn e16_reactor(w: &Workload, engine_counts: &[u32]) -> Table {
    let mut t = Table::new(
        format!(
            "E16 (extension): reactor completion and recovery vs engine count [{}]",
            w.name
        ),
        &[
            "engines",
            "ff finish",
            "ff wall ms",
            "crash finish",
            "slowdown",
            "correct",
            "tasks",
            "delivered",
        ],
    );
    for &engines in engine_counts {
        let mut cfg = MachineConfig::new(engines);
        cfg.recovery.mode = RecoveryMode::Splice;
        cfg.policy = Policy::RoundRobin;
        cfg.recovery.load_beacon_period = 0;
        let t0 = std::time::Instant::now();
        let fault_free = crate::reactor::run_reactor(cfg.clone(), w, &FaultPlan::none());
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let crash = VirtualTime((fault_free.finish.ticks() / 2).max(1));
        let r = crate::reactor::run_reactor(cfg, w, &FaultPlan::crash_at(engines / 2, crash));
        let correct = fault_free.result == Some(w.reference_result().unwrap())
            && r.result == Some(w.reference_result().unwrap());
        t.row(vec![
            engines.to_string(),
            fault_free.finish.ticks().to_string(),
            fmt_f(wall_ms),
            r.finish.ticks().to_string(),
            fmt_f(r.slowdown_vs(&fault_free)),
            correct.to_string(),
            r.stats.tasks_completed.to_string(),
            r.delivered.to_string(),
        ]);
    }
    t
}

/// E16 (threads): the multi-core parallel reactor across a threads ×
/// engines sweep — each row partitions the engines over that many pump
/// threads, runs fault-free, then again with a mid-run crash of one
/// engine. Virtual finish times stay identical across thread counts (the
/// BSP clock charges the same parallel work either way); wall
/// milliseconds show what the host's cores actually buy, and the
/// cross-reactor message and steal counts show the partition at work.
pub fn e16_threads(w: &Workload, thread_counts: &[u32], engine_counts: &[u32]) -> Table {
    let mut t = Table::new(
        format!(
            "E16 (threads): parallel reactor, pumps x engines [{}]",
            w.name
        ),
        &[
            "threads",
            "engines",
            "ff finish",
            "ff wall ms",
            "crash finish",
            "slowdown",
            "correct",
            "cross msgs",
            "steals",
        ],
    );
    for &engines in engine_counts {
        for &threads in thread_counts {
            let mut cfg = MachineConfig::new(engines);
            cfg.recovery.mode = RecoveryMode::Splice;
            cfg.policy = Policy::RoundRobin;
            cfg.recovery.load_beacon_period = 0;
            cfg.threads = threads;
            let t0 = std::time::Instant::now();
            let fault_free =
                crate::parallel::run_parallel_reactor(cfg.clone(), w, &FaultPlan::none());
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            let crash = VirtualTime((fault_free.finish.ticks() / 2).max(1));
            let r = crate::parallel::run_parallel_reactor(
                cfg,
                w,
                &FaultPlan::crash_at(engines / 2, crash),
            );
            let correct = fault_free.result == Some(w.reference_result().unwrap())
                && r.result == Some(w.reference_result().unwrap());
            t.row(vec![
                threads.to_string(),
                engines.to_string(),
                fault_free.finish.ticks().to_string(),
                fmt_f(wall_ms),
                r.finish.ticks().to_string(),
                fmt_f(r.slowdown_vs(&fault_free)),
                correct.to_string(),
                r.msgs_cross_reactor.to_string(),
                r.steals.to_string(),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------------
// E18 — recovery-policy zoo (extension)
// ---------------------------------------------------------------------------

/// E18 (extension): the pluggable recovery policies head to head, swept
/// across fault rate and topology. Eager is the paper's scheme (reissue
/// lost children at the failure notice); Lazy marks them lost and rebuilds
/// only when the owner's own progress demands the value; MultiCheckpoint
/// re-checkpoints incrementally so a reissued twin replays fewer waves.
/// Every cell must stay correct — the policies trade recovery *cost*
/// (finish, redone work, reissues), never the answer.
pub fn e18_recovery_policies(w: &Workload, topologies: &[Topology]) -> Table {
    use splice_core::policy::{PolicyKind, PolicySpec};
    let mut t = Table::new(
        format!(
            "E18 (extension): recovery policies x fault rate x topology [{}]",
            w.name
        ),
        &[
            "topology",
            "crashes",
            "policy",
            "correct",
            "finish",
            "slowdown",
            "redo-work",
            "reissues",
            "lazy-rebuilds",
            "reckpts",
        ],
    );
    for topology in topologies {
        let n = topology.len();
        for kind in PolicyKind::ALL {
            let mut cfg = default_config(n, RecoveryMode::Splice);
            cfg.topology = topology.clone();
            cfg.recovery.policy = PolicySpec::of(kind);
            // Per-policy fault-free baseline: MultiCheckpoint pays its
            // checkpoint traffic even without faults, and that overhead is
            // part of what the sweep measures.
            let fault_free = run_workload(cfg.clone(), w, &FaultPlan::none());
            let mid = VirtualTime(fault_free.finish.ticks() / 2);
            let late = VirtualTime(fault_free.finish.ticks() * 3 / 4);
            let plans = [
                (0u32, FaultPlan::none()),
                (1, FaultPlan::crash_at(n - 1, mid)),
                (
                    2,
                    FaultPlan::crash_at(n - 1, mid).and(n - 2, late, FaultKind::Crash),
                ),
            ];
            for (crashes, plan) in plans {
                let r = run_workload(cfg.clone(), w, &plan);
                let correct = r.result == Some(w.reference_result().unwrap());
                t.row(vec![
                    format!("{topology:?}"),
                    crashes.to_string(),
                    kind.label().into(),
                    correct.to_string(),
                    r.finish.ticks().to_string(),
                    fmt_f(r.slowdown_vs(&fault_free)),
                    fmt_f(r.redundant_work_vs(&fault_free)),
                    r.stats.reissues.to_string(),
                    r.stats.lazy_rebuilds.to_string(),
                    r.stats.recheckpoints.to_string(),
                ]);
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["x".into(), "1".into()]);
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("| a | long-header |"));
        assert!(s.contains("| x | 1           |"));
    }

    #[test]
    fn e01_reproduces_figure1_claims() {
        let t = e01_figure1();
        assert_eq!(t.rows.len(), 3);
        // Every configuration completes correctly.
        for row in &t.rows {
            assert_eq!(row[1], "true", "{row:?}");
            assert_eq!(row[2], "true", "{row:?}");
        }
        // rollback/topmost reissues exactly 4; rollback/all at least 5.
        assert_eq!(t.rows[0][3], "4");
        assert!(t.rows[1][3].parse::<u64>().unwrap() >= 5);
        // splice salvages.
        assert!(t.rows[2][6].parse::<u64>().unwrap() > 0);
    }

    #[test]
    fn e07_has_the_papers_shape() {
        // "if a fault happens at a later stage of the evaluation, the
        // rollback recovery may be costly" — and restart costlier still:
        // restart's cost grows monotonically with the fault instant, and
        // at the latest instant checkpoint-based recovery (either
        // algorithm) beats restarting the program.
        let w = Workload::fib(13);
        let pts = e07_points(&w, 4, 6);
        assert_eq!(pts.len(), 3);
        // Restart's cost grows monotonically with the fault instant.
        assert!(pts.last().unwrap().restart_slowdown > pts[0].restart_slowdown);
        // Rollback's redone work grows as the fault moves later (the §6
        // caveat: "if a fault happens at a later stage ... rollback
        // recovery may be costly").
        assert!(
            pts.last().unwrap().rollback_redundant > pts[0].rollback_redundant,
            "{pts:?}"
        );
        // Splice actually salvages something at the mid-run fault.
        assert!(pts[1].splice_salvaged > 0, "{:?}", pts[1]);
        // The global-checkpoint model is never free.
        for p in &pts {
            assert!(p.gcp_slowdown > 1.0, "{p:?}");
        }
    }

    #[test]
    fn e13_grace_reduces_duplication_and_stays_correct() {
        let w = Workload::mapreduce(0, 32, 8);
        let t = e13_splice_grace(&w, &[0, 2_000, 10_000]);
        for row in &t.rows {
            assert_eq!(row[1], "true", "grace={} must stay correct", row[0]);
        }
        // With a generous grace, more salvage lands before the twin spawns
        // the duplicate.
        let before_eager: u64 = t.rows[0][6].parse().unwrap();
        let before_lazy: u64 = t.rows[2][6].parse().unwrap();
        assert!(
            before_lazy >= before_eager,
            "grace should move salvage to the before-spawn cases: {t}"
        );
    }

    #[test]
    fn e14_survives_whole_shard_loss_at_every_scale() {
        let w = Workload::fib(12);
        let t = e14_sharding(&w);
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            assert_eq!(row[6], "true", "shards={} must stay correct", row[0]);
            assert!(
                row[2].parse::<u64>().unwrap() > 0,
                "shards={}: no router traffic",
                row[0]
            );
        }
    }

    #[test]
    fn e14_recovery_pays_for_router_latency() {
        let w = Workload::fib(12);
        let t = e14_router_latency(&w, &[0, 2_000]);
        for row in &t.rows {
            assert_eq!(row[4], "true", "latency={} must stay correct", row[0]);
        }
        let near: u64 = t.rows[0][2].parse().unwrap();
        let far: u64 = t.rows[1][2].parse().unwrap();
        assert!(
            far > near,
            "a further router must slow the recovered run: {near} vs {far}"
        );
    }

    #[test]
    fn e15_batching_stays_correct_and_coalesces() {
        let w = Workload::fib(11);
        let t = e15_batching(&w, &[0, 500]);
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            assert_eq!(row[5], "true", "window={} must stay correct", row[0]);
        }
        // Window 0 is a pass-through (no envelopes at all); a real window
        // must coalesce at least one multi-message envelope on this tree.
        assert_eq!(t.rows[0][2], "0.00");
        let mean: f64 = t.rows[1][2].parse().unwrap();
        assert!(mean >= 1.0, "window 500 saw no envelopes: {mean}");
        let near: u64 = t.rows[0][1].parse().unwrap();
        let far: u64 = t.rows[1][1].parse().unwrap();
        assert!(far > near, "flush window must slow completion");
    }

    #[test]
    fn e10_votes_mask_corruption() {
        let t = e10_replication();
        // Unprotected run is corrupted...
        assert_eq!(t.rows[0][1], "false", "{:?}", t.rows[0]);
        // ...while every replicated configuration masks it.
        for row in &t.rows[1..] {
            assert_eq!(row[1], "true", "{row:?}");
        }
    }

    #[test]
    fn e16_reactor_scales_and_stays_correct() {
        let w = Workload::fib(12);
        let t = e16_reactor(&w, &[8, 128]);
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            assert_eq!(row[5], "true", "{} engines must stay correct", row[0]);
            let slowdown: f64 = row[4].parse().unwrap();
            assert!(
                slowdown >= 1.0,
                "{} engines: a crash cannot speed the run up",
                row[0]
            );
        }
    }

    #[test]
    fn e18_every_policy_cell_is_correct_and_the_policies_differ() {
        let w = Workload::fib(12);
        let t = e18_recovery_policies(&w, &[Topology::Complete { n: 6 }]);
        // 3 policies × 3 fault rates on one topology.
        assert_eq!(t.rows.len(), 9);
        for row in &t.rows {
            assert_eq!(
                row[3], "true",
                "policy={} crashes={} must stay correct",
                row[2], row[1]
            );
        }
        let cell = |policy: &str, crashes: &str, col: usize| -> u64 {
            t.rows
                .iter()
                .find(|r| r[2] == policy && r[1] == crashes)
                .unwrap()[col]
                .parse()
                .unwrap()
        };
        // Fault-free, no policy reissues or rebuilds anything…
        for p in ["eager", "lazy", "multickpt"] {
            assert_eq!(cell(p, "0", 7), 0, "{p}: fault-free reissues");
            assert_eq!(cell(p, "0", 8), 0, "{p}: fault-free lazy rebuilds");
        }
        // …but MultiCheckpoint pays checkpoint traffic even fault-free,
        // while the others never re-checkpoint.
        assert!(cell("multickpt", "0", 9) > 0);
        assert_eq!(cell("eager", "2", 9), 0);
        assert_eq!(cell("lazy", "2", 9), 0);
        // Under faults Eager reissues at the notice and never via the lazy
        // path; Lazy's recovery reissues are demand-driven rebuilds.
        assert!(cell("eager", "1", 7) > 0);
        assert!(cell("lazy", "1", 8) > 0);
        assert!(cell("lazy", "1", 8) <= cell("lazy", "1", 7));
        assert_eq!(cell("eager", "1", 8), 0);
    }

    #[test]
    fn e16_threads_stays_correct_and_thread_invariant() {
        let w = Workload::fib(12);
        let t = e16_threads(&w, &[1, 2], &[32]);
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            assert_eq!(row[6], "true", "{} threads must stay correct", row[0]);
        }
        // The BSP clock charges the same parallel work regardless of how
        // many pump threads host the partition: fault-free virtual finish
        // times are identical across thread counts.
        assert_eq!(
            t.rows[0][2], t.rows[1][2],
            "ff finish must not depend on threads"
        );
        // Two pumps over a round-robin-placed tree must actually talk.
        assert!(t.rows[1][7].parse::<u64>().unwrap() > 0);
    }
}
